"""Phase-2 scheduling evaluation: request generation, the layer-granularity
preemptive engine, and the paper's metrics (ANTT, SLO violation rate, STP)."""

from repro.sim.request import Request
from repro.sim.ready_queue import ReadyQueue
from repro.sim.workload import WorkloadSpec, generate_workload, iter_workload
from repro.sim.engine import SimResult, simulate
from repro.sim.multi import simulate_multi
from repro.sim.metrics import antt, slo_violation_rate, system_throughput, summarize
from repro.sim.analysis import (
    jains_fairness,
    per_class_breakdown,
    turnaround_percentile,
    waiting_time_stats,
)

__all__ = [
    "jains_fairness",
    "per_class_breakdown",
    "turnaround_percentile",
    "waiting_time_stats",
    "ReadyQueue",
    "Request",
    "WorkloadSpec",
    "generate_workload",
    "iter_workload",
    "SimResult",
    "simulate",
    "simulate_multi",
    "antt",
    "slo_violation_rate",
    "system_throughput",
    "summarize",
]
