"""Phase-2 scheduling evaluation: request generation, the layer-granularity
preemptive engines, and the paper's metrics.

Workloads (`WorkloadSpec`, lazy `iter_workload`, scenario streams) replay
on a single time-shared NPU (:func:`simulate`) or a pool of identical NPUs
behind one shared queue (:func:`simulate_multi`); the cluster tier in
:mod:`repro.cluster` reuses the same per-pool semantics.  All engines share
the vectorized scheduling core — the array-backed :class:`ReadyQueue` plus
batch selection on converted schedulers, bit-identical to the scalar
reference path — and report ANTT, SLO violation rate, STP and the
p50/p95/p99 normalized-turnaround tails via :func:`summarize`."""

from repro.sim.request import Request
from repro.sim.ready_queue import ReadyQueue
from repro.sim.workload import WorkloadSpec, generate_workload, iter_workload
from repro.sim.engine import SimResult, simulate
from repro.sim.multi import simulate_multi
from repro.sim.metrics import antt, slo_violation_rate, system_throughput, summarize
from repro.sim.analysis import (
    jains_fairness,
    per_class_breakdown,
    turnaround_percentile,
    waiting_time_stats,
)

__all__ = [
    "jains_fairness",
    "per_class_breakdown",
    "turnaround_percentile",
    "waiting_time_stats",
    "ReadyQueue",
    "Request",
    "WorkloadSpec",
    "generate_workload",
    "iter_workload",
    "SimResult",
    "simulate",
    "simulate_multi",
    "antt",
    "slo_violation_rate",
    "system_throughput",
    "summarize",
]
