"""Array-backed ready queue: the vectorized scheduling core's data plane.

The scalar engines kept the ready queue as a plain ``List[Request]`` and let
every scheduler re-derive per-request scalars (deadline, LUT-average
remaining time, waiting clock, ...) through Python properties and dict
lookups at every layer boundary — O(queue) interpreter round trips per
decision.  :class:`ReadyQueue` instead keeps the scheduler-visible scalar
state in parallel **numpy arrays** (plus plain-list mirrors for the small-
queue fast path), maintained incrementally:

* **O(1) swap-remove** — removing a request moves the tail entry into its
  slot in every column; order is not preserved (no converted policy is
  order-sensitive: every selection key ends in the unique rid).
* **O(1) incremental updates** — arrival fills a row from the request's
  cached state; a layer completion refreshes only the affected row.
* **column subsets** — the bound scheduler declares which columns it reads
  (``Scheduler.batch_columns``), and only those are maintained.
* **aux columns** — named scheduler-owned per-request state (PREMA tokens,
  Dysta's cached remaining estimate) that rides along with swap-removes and
  survives the remove/re-add cycle of the multi-accelerator engines via a
  requeue stash.

The queue also implements the ``Sequence`` protocol over the live
:class:`~repro.sim.request.Request` objects, so unconverted schedulers'
scalar ``select(queue, now)`` works on it unmodified.

Numpy arrays are the single source of truth; list mirrors exist because at
small queue depths (the common case at moderate load) a tight Python loop
over list elements beats numpy's per-ufunc dispatch overhead.  Vectorized
writers mark a column dirty and the mirror is rebuilt lazily.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.sim.request import Request

#: Columns a scheduler may declare in ``batch_columns``.  ``rid`` is always
#: maintained.  ``est_*`` columns come from the (model, pattern) LUT entry;
#: ``true_*`` columns are ground truth (Oracle only by convention).
KNOWN_COLUMNS = (
    "arrival",
    "deadline",
    "priority",
    "est_isolated",
    "est_remaining",
    "true_isolated",
    "true_remaining",
    "last_run_end",
    "executed_time",
)

_INITIAL_CAPACITY = 64


class _AuxColumn:
    """One scheduler-owned aux column: numpy array + list mirror.

    A single holder object keeps the hot point-write path to one dict lookup;
    ``arr`` is rebound on capacity growth, ``ls`` is mutated in place only.
    """

    __slots__ = ("arr", "ls", "default", "dirty")

    def __init__(self, arr, ls, default):
        self.arr = arr
        self.ls = ls
        self.default = default
        self.dirty = False


def np_lexmin(primary: np.ndarray, *ties: np.ndarray) -> int:
    """Index of the lexicographic minimum of ``(primary, *ties)`` columns."""
    cand = np.flatnonzero(primary == primary.min())
    for arr in ties:
        if cand.size == 1:
            break
        vals = arr[cand]
        cand = cand[vals == vals.min()]
    return int(cand[0])


class ReadyQueue(Sequence):
    """Parallel-array ready queue shared by all three scheduling engines."""

    def __init__(self, lut=None, columns: Sequence[str] = (), capacity: int = _INITIAL_CAPACITY):
        for col in columns:
            if col not in KNOWN_COLUMNS:
                raise SchedulingError(f"unknown ready-queue column {col!r}")
        self._lut = lut
        self._cols = frozenset(columns)
        self._cap = max(int(capacity), 4)
        self._n = 0
        self._requests: List[Request] = []
        self._pos: Dict[int, int] = {}
        #: rid -> (column values, aux values, missing flag) for requests
        #: temporarily removed while running on an accelerator (multi /
        #: cluster engines).  Re-adding a ticketed request restores the
        #: constant columns verbatim and only recomputes the progress-
        #: dependent ones.
        self._stash: Dict[int, tuple] = {}
        self._missing = 0  # live requests without a LUT entry
        #: Change journal for the incremental selection cache: rids touched
        #: since the cache last rebuilt.  ``None`` until a cache attaches via
        #: :meth:`enable_journal`, so unconverted setups pay nothing.
        self._journal: Optional[set] = None
        self._journal_all = True

        self.np_rid = np.empty(self._cap, dtype=np.int64)
        self.ls_rid: List[int] = []
        self._need_entry = "est_isolated" in self._cols or "est_remaining" in self._cols
        self._ls_missing: List[bool] = []
        for col in KNOWN_COLUMNS:
            active = col in self._cols
            setattr(self, f"np_{col}", np.empty(self._cap) if active else None)
            setattr(self, f"ls_{col}", [] if active else None)
        #: Precomputed attribute names for the hot swap-remove path.
        self._col_attrs: Tuple[Tuple[str, str], ...] = tuple(
            (f"np_{c}", f"ls_{c}") for c in sorted(self._cols)
        )
        #: The list mirrors are stable objects (mutated in place, never
        #: rebound), so the requeue-ticket path can hold direct references;
        #: the numpy twin is rebound on growth (see :meth:`_grow`).
        self._ls_cols: Tuple[list, ...] = tuple(
            getattr(self, ls_name) for _, ls_name in self._col_attrs
        )
        self._np_cols: Tuple[np.ndarray, ...] = tuple(
            getattr(self, np_name) for np_name, _ in self._col_attrs
        )
        # Which progress-dependent columns update_progress must refresh.
        self._up_lre = "last_run_end" in self._cols
        self._up_exec = "executed_time" in self._cols
        self._up_true_rem = "true_remaining" in self._cols
        self._up_est_rem = "est_remaining" in self._cols
        if self._up_lre and not (self._up_exec or self._up_true_rem or self._up_est_rem):
            # Single-column fast path (e.g. Dysta only tracks last_run_end).
            self.update_progress = self._update_progress_lre_only

        self._aux: Dict[str, _AuxColumn] = {}

    # -- Sequence protocol (scalar schedulers see a sequence of requests) ---

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, idx):
        return self._requests[idx]

    def __contains__(self, item) -> bool:
        i = self._pos.get(getattr(item, "rid", -1))
        return i is not None and self._requests[i] is item

    def index_of(self, request: Request) -> int:
        """Slot index of ``request``, or -1 when absent."""
        i = self._pos.get(request.rid)
        if i is not None and self._requests[i] is request:
            return i
        return -1

    @property
    def missing_entries(self) -> int:
        """Live requests whose (model, pattern) key is absent from the LUT.

        When nonzero, the engines fall back to the scalar ``select`` so the
        LUT-driven policies raise the same error they always did.
        """
        return self._missing

    # -- change journal (incremental selection cache) -----------------------

    def enable_journal(self) -> None:
        """Start recording touched rids (idempotent).

        Called by a :class:`~repro.sim.select_cache.SelectionCache` when it
        attaches.  ``_journal_all`` starts True so the first lookup forces a
        full scan.
        """
        if self._journal is None:
            self._journal = set()
        self._journal_all = True

    def journal_clear(self) -> None:
        """Reset the journal after a full re-scan rebuilt the cache."""
        self._journal.clear()
        self._journal_all = False

    # -- aux columns --------------------------------------------------------

    def register_aux(self, name: str, default: float = 0.0) -> None:
        """Create a scheduler-owned per-request column (idempotent)."""
        if name in self._aux:
            return
        arr = np.empty(self._cap)
        arr[: self._n] = default
        self._aux[name] = _AuxColumn(arr, [default] * self._n, default)

    def aux_np(self, name: str) -> np.ndarray:
        """Full-capacity aux array (slice with ``[:len(queue)]``); read-only
        by convention — use :meth:`aux_np_writable` before vector writes."""
        return self._aux[name].arr

    def aux_np_writable(self, name: str) -> np.ndarray:
        """Aux array for vectorized in-place writes; marks the mirror stale."""
        col = self._aux[name]
        col.dirty = True
        # A vector write may touch every row: invalidate the whole journal.
        self._journal_all = True
        return col.arr

    def aux_list(self, name: str) -> List[float]:
        """Plain-list mirror of an aux column (rebuilt if stale).

        The returned list object is stable for the queue's lifetime (synced
        in place), so hot paths may hold on to it as long as the column is
        only ever point-written (never through :meth:`aux_np_writable`).
        """
        col = self._aux[name]
        if col.dirty:
            col.ls[:] = col.arr[: self._n].tolist()
            col.dirty = False
        return col.ls

    def aux_set(self, name: str, i: int, value: float) -> None:
        """Point write to one aux cell (keeps both stores coherent)."""
        col = self._aux[name]
        col.arr[i] = value
        if not col.dirty:
            col.ls[i] = value
        if self._journal is not None:
            self._journal.add(self.ls_rid[i])

    def aux_set_for(self, name: str, request: Request, value: float) -> None:
        """Fused ``aux_set(name, index_of(request), value)``; no-op when the
        request is not in the queue (hot path of the monitor callbacks)."""
        i = self._pos.get(request.rid)
        if i is None or self._requests[i] is not request:
            return
        col = self._aux[name]
        col.arr[i] = value
        if not col.dirty:
            col.ls[i] = value
        if self._journal is not None:
            self._journal.add(request.rid)

    def forget(self, rid: int) -> None:
        """Drop any requeue stash for ``rid`` (call when a request finishes
        outside the queue, so streaming replays stay bounded-memory)."""
        self._stash.pop(rid, None)

    # -- mutation -----------------------------------------------------------

    def _grow(self) -> None:
        new_cap = self._cap * 2
        grown = np.empty(new_cap, dtype=np.int64)
        grown[: self._n] = self.np_rid[: self._n]
        self.np_rid = grown
        for np_name, _ in self._col_attrs:
            old = getattr(self, np_name)
            arr = np.empty(new_cap)
            arr[: self._n] = old[: self._n]
            setattr(self, np_name, arr)
        for col in self._aux.values():
            arr = np.empty(new_cap)
            arr[: self._n] = col.arr[: self._n]
            col.arr = arr
        self._np_cols = tuple(
            getattr(self, np_name) for np_name, _ in self._col_attrs
        )
        self._cap = new_cap

    def add(self, request: Request) -> int:
        """Admit ``request``; fills every active column from its cached state.

        Returns the slot index.  A request re-entering after running a layer
        block (multi-accelerator engines) restores its stashed aux state.
        """
        i = self._n
        if i == self._cap:
            self._grow()
        rid = request.rid
        self._requests.append(request)
        self._pos[rid] = i
        self._n = i + 1
        self.np_rid[i] = rid
        self.ls_rid.append(rid)
        if self._journal is not None:
            self._journal.add(rid)

        ticket = self._stash.pop(rid, None) if self._stash else None
        if ticket is not None:
            return self._readd(request, i, ticket)

        cols = self._cols
        if cols:
            if "arrival" in cols:
                v = request.arrival
                self.np_arrival[i] = v
                self.ls_arrival.append(v)
            if "deadline" in cols:
                v = request.deadline
                self.np_deadline[i] = v
                self.ls_deadline.append(v)
            if "priority" in cols:
                v = request.priority
                self.np_priority[i] = v
                self.ls_priority.append(v)
            if "true_isolated" in cols:
                v = request.isolated_latency
                self.np_true_isolated[i] = v
                self.ls_true_isolated.append(v)
            if "true_remaining" in cols:
                v = request.true_remaining
                self.np_true_remaining[i] = v
                self.ls_true_remaining.append(v)
            if "last_run_end" in cols:
                v = request.last_run_end
                self.np_last_run_end[i] = v
                self.ls_last_run_end.append(v)
            if "executed_time" in cols:
                v = request.executed_time
                self.np_executed_time[i] = v
                self.ls_executed_time.append(v)
            if self._need_entry:
                entry = request.lut_entry(self._lut) if self._lut is not None else None
                missing = entry is None
                self._ls_missing.append(missing)
                if missing:
                    self._missing += 1
                if "est_isolated" in cols:
                    v = np.nan if missing else entry.avg_total_latency
                    self.np_est_isolated[i] = v
                    self.ls_est_isolated.append(v)
                if "est_remaining" in cols:
                    v = np.nan if missing else entry.remaining_suffix_t[request.next_layer]
                    self.np_est_remaining[i] = v
                    self.ls_est_remaining.append(v)

        for col in self._aux.values():
            v = col.default
            col.arr[i] = v
            # A stale mirror still tracks length; contents rebuilt on sync.
            col.ls.append(v)
        return i

    def _readd(self, request: Request, i: int, ticket: tuple) -> int:
        """Re-admit a request that left via ``remove(requeue=True)``.

        Constant columns (arrival, deadline, priority, isolated latencies)
        come back verbatim from the ticket; only the progress-dependent
        columns are recomputed from the request, and the LUT lookup /
        missing-entry bookkeeping is skipped entirely.
        """
        col_vals, aux_vals, missing = ticket
        for arr, ls, v in zip(self._np_cols, self._ls_cols, col_vals):
            arr[i] = v
            ls.append(v)
        if self._need_entry:
            self._ls_missing.append(missing)
            if missing:
                self._missing += 1
        if self._up_lre:
            v = request.last_run_end
            self.np_last_run_end[i] = v
            self.ls_last_run_end[i] = v
        if self._up_exec:
            v = request.executed_time
            self.np_executed_time[i] = v
            self.ls_executed_time[i] = v
        if self._up_true_rem:
            v = request.true_remaining
            self.np_true_remaining[i] = v
            self.ls_true_remaining[i] = v
        if self._up_est_rem and not missing:
            entry = request.lut_entry(self._lut)
            v = entry.remaining_suffix_t[request.next_layer]
            self.np_est_remaining[i] = v
            self.ls_est_remaining[i] = v
        for col, v in zip(self._aux.values(), aux_vals):
            col.arr[i] = v
            col.ls.append(v)
        return i

    #: Engines call ``queue.append(...)`` on both list- and array-backed
    #: queues; alias keeps the call sites uniform.
    append = add

    def remove(self, request: Request, requeue: bool = False) -> None:
        """Swap-remove ``request`` from every column in O(1).

        Args:
            requeue: The request is only leaving to run a layer block and
                will be re-added (multi-accelerator engines); its aux state
                is stashed and restored by the next :meth:`add`.
        """
        i = self._pos.get(request.rid)
        if i is None or self._requests[i] is not request:
            raise SchedulingError(
                f"request {request.rid} is not in the ready queue"
            )
        del self._pos[request.rid]
        if self._journal is not None:
            # A permanent removal needs no mark (dead rids are skipped by
            # liveness checks); a requeue re-add re-marks on the way back in.
            self._journal.discard(request.rid)
        last = self._n - 1
        if requeue:
            self._stash[request.rid] = (
                tuple(ls[i] for ls in self._ls_cols),
                tuple(
                    col.ls[i] if not col.dirty else float(col.arr[i])
                    for col in self._aux.values()
                ),
                self._ls_missing[i] if self._need_entry else False,
            )
        reqs = self._requests
        if i != last:
            moved = reqs[last]
            reqs[i] = moved
            self._pos[moved.rid] = i
            self.np_rid[i] = self.np_rid[last]
            self.ls_rid[i] = self.ls_rid[last]
            for np_name, ls_name in self._col_attrs:
                arr = getattr(self, np_name)
                arr[i] = arr[last]
                ls = getattr(self, ls_name)
                ls[i] = ls[last]
            for col in self._aux.values():
                col.arr[i] = col.arr[last]
                if not col.dirty:
                    col.ls[i] = col.ls[last]
        reqs.pop()
        self.ls_rid.pop()
        for _, ls_name in self._col_attrs:
            getattr(self, ls_name).pop()
        for col in self._aux.values():
            col.ls.pop()
        if self._need_entry:
            if i != last:
                removed_missing = self._ls_missing[i]
                self._ls_missing[i] = self._ls_missing[last]
            else:
                removed_missing = self._ls_missing[i]
            self._ls_missing.pop()
            if removed_missing:
                self._missing -= 1
        self._n = last

    def _update_progress_lre_only(self, request: Request) -> None:
        """update_progress specialization when only last_run_end is live."""
        i = self._pos.get(request.rid)
        if i is not None:
            v = request.last_run_end
            self.np_last_run_end[i] = v
            self.ls_last_run_end[i] = v
            if self._journal is not None:
                self._journal.add(request.rid)

    def update_progress(self, request: Request) -> None:
        """Refresh the row of an in-queue request after a layer advance.

        The engine has already mutated ``next_layer`` / ``executed_time`` /
        ``last_run_end``; this folds the new values into the columns in O(1)
        (the multi-accelerator engines instead remove/re-add, which refreshes
        everything).
        """
        i = self._pos.get(request.rid)
        if i is None:
            return
        if self._journal is not None:
            self._journal.add(request.rid)
        if self._up_lre:
            v = request.last_run_end
            self.np_last_run_end[i] = v
            self.ls_last_run_end[i] = v
        if self._up_exec:
            v = request.executed_time
            self.np_executed_time[i] = v
            self.ls_executed_time[i] = v
        if self._up_true_rem:
            v = request.true_remaining
            self.np_true_remaining[i] = v
            self.ls_true_remaining[i] = v
        if self._up_est_rem and not self._ls_missing[i]:
            entry = request.lut_entry(self._lut)
            v = entry.remaining_suffix_t[request.next_layer]
            self.np_est_remaining[i] = v
            self.ls_est_remaining[i] = v
