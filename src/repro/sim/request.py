"""Inference-request lifecycle state.

A request is one inference task: a model instance (with its weight-sparsity
pattern), one concrete input sample (fixing its true per-layer latencies and
monitored sparsities from the Phase-1 trace), an arrival time and a latency
SLO.  The engine mutates the progress fields; schedulers may read everything
except the *future* entries of ``layer_latencies``/``layer_sparsities`` —
only the Oracle is allowed those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SchedulingError


@dataclass
class Request:
    """One inference request flowing through the scheduler.

    Attributes:
        rid: Unique request id.
        model_name: Zoo model name.
        pattern_key: Weight-sparsity pattern key (LUT lookup component).
        arrival: Arrival time (seconds).
        slo: Relative latency SLO (seconds): deadline = arrival + slo.
        layer_latencies: True per-layer latencies of this sample (engine/
            Oracle ground truth).
        layer_sparsities: Monitored dynamic sparsity per layer, revealed to
            schedulers layer-by-layer as execution progresses.
        priority: Static task priority (PREMA-style priority classes);
            1.0 = normal.  Only priority-aware policies read it.
    """

    rid: int
    model_name: str
    pattern_key: str
    arrival: float
    slo: float
    layer_latencies: List[float]
    layer_sparsities: List[float]
    priority: float = 1.0

    # --- progress state, owned by the engine ---
    next_layer: int = 0
    executed_time: float = 0.0
    finish_time: Optional[float] = None
    first_dispatch_time: Optional[float] = None
    #: Time the request last occupied the accelerator (arrival before any
    #: dispatch) — basis of Dysta's waiting-time penalty term.
    last_run_end: float = field(default=0.0)

    def __post_init__(self) -> None:
        if not self.layer_latencies:
            raise SchedulingError(f"request {self.rid}: empty layer latency trace")
        if len(self.layer_latencies) != len(self.layer_sparsities):
            raise SchedulingError(
                f"request {self.rid}: latency/sparsity trace length mismatch"
            )
        if any(lat <= 0 for lat in self.layer_latencies):
            raise SchedulingError(f"request {self.rid}: non-positive layer latency")
        if self.slo <= 0:
            raise SchedulingError(f"request {self.rid}: SLO must be positive")
        if self.priority <= 0:
            raise SchedulingError(f"request {self.rid}: priority must be positive")
        self.last_run_end = self.arrival

    @property
    def key(self) -> str:
        """Model-info LUT key."""
        return f"{self.model_name}/{self.pattern_key}"

    @property
    def num_layers(self) -> int:
        return len(self.layer_latencies)

    @property
    def is_done(self) -> bool:
        return self.next_layer >= self.num_layers

    @property
    def isolated_latency(self) -> float:
        """Uninterrupted execution time of this exact sample (T^Isol)."""
        return sum(self.layer_latencies)

    @property
    def deadline(self) -> float:
        return self.arrival + self.slo

    @property
    def true_remaining(self) -> float:
        """Ground-truth remaining execution time (Oracle only)."""
        return sum(self.layer_latencies[self.next_layer:])

    @property
    def monitored_sparsities(self) -> List[float]:
        """Sparsities of the already-executed layers (visible to schedulers)."""
        return self.layer_sparsities[: self.next_layer]

    @property
    def turnaround(self) -> float:
        """Multi-tenant turnaround time T^Multi (finish - arrival)."""
        if self.finish_time is None:
            raise SchedulingError(f"request {self.rid} has not finished")
        return self.finish_time - self.arrival

    @property
    def normalized_turnaround(self) -> float:
        """T^Multi / T^Isol — the per-request ANTT contribution."""
        return self.turnaround / self.isolated_latency

    @property
    def violated(self) -> bool:
        """Whether the request missed its latency SLO."""
        return self.turnaround > self.slo
