"""Inference-request lifecycle state.

A request is one inference task: a model instance (with its weight-sparsity
pattern), one concrete input sample (fixing its true per-layer latencies and
monitored sparsities from the Phase-1 trace), an arrival time and a latency
SLO.  The engine mutates the progress fields; schedulers may read everything
except the *future* entries of ``layer_latencies``/``layer_sparsities`` —
only the Oracle is allowed those.

Requests use **identity semantics** (``eq=False``): two distinct request
objects are never equal, membership tests and ``queue.remove`` are pointer
comparisons instead of deep field-by-field trace comparisons, and requests
are hashable (usable as set members / dict keys).  Derived quantities that
the schedulers hammer on every decision — isolated latency, remaining time,
the deadline, the LUT key — are cached at construction (latencies are
immutable once the request exists), so they are O(1) instead of O(L).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.lut import LUTEntry, ModelInfoLUT


@dataclass(eq=False)
class Request:
    """One inference request flowing through the scheduler.

    Attributes:
        rid: Unique request id.
        model_name: Zoo model name.
        pattern_key: Weight-sparsity pattern key (LUT lookup component).
        arrival: Arrival time (seconds).
        slo: Relative latency SLO (seconds): deadline = arrival + slo.
        layer_latencies: True per-layer latencies of this sample (engine/
            Oracle ground truth).
        layer_sparsities: Monitored dynamic sparsity per layer, revealed to
            schedulers layer-by-layer as execution progresses.
        priority: Static task priority (PREMA-style priority classes);
            1.0 = normal.  Only priority-aware policies read it.
    """

    rid: int
    model_name: str
    pattern_key: str
    arrival: float
    slo: float
    layer_latencies: List[float]
    layer_sparsities: List[float]
    priority: float = 1.0

    # --- progress state, owned by the engine ---
    next_layer: int = 0
    executed_time: float = 0.0
    finish_time: Optional[float] = None
    first_dispatch_time: Optional[float] = None
    #: Time the request last occupied the accelerator (arrival before any
    #: dispatch) — basis of Dysta's waiting-time penalty term.
    last_run_end: float = field(default=0.0)
    #: Times an accelerator streamed this request's weights in from DRAM:
    #: dispatches where the resident (model, pattern) *key* differed — same-
    #: key requests share weights, so consecutive ones load nothing; the
    #: first dispatch on a cold accelerator counts.  Counted passively by
    #: every engine (the engine's ``switch_cost`` knob prices per-*instance*
    #: switch time, unchanged) and priced in joules by the energy
    #: accountant (DRAM traffic per load).
    num_weight_loads: int = 0

    def __post_init__(self) -> None:
        if not self.layer_latencies:
            raise SchedulingError(f"request {self.rid}: empty layer latency trace")
        if len(self.layer_latencies) != len(self.layer_sparsities):
            raise SchedulingError(
                f"request {self.rid}: latency/sparsity trace length mismatch"
            )
        if any(lat <= 0 for lat in self.layer_latencies):
            raise SchedulingError(f"request {self.rid}: non-positive layer latency")
        if self.slo <= 0:
            raise SchedulingError(f"request {self.rid}: SLO must be positive")
        if self.priority <= 0:
            raise SchedulingError(f"request {self.rid}: priority must be positive")
        self.last_run_end = self.arrival
        # Immutable derived state, cached once (np.cumsum accumulates
        # sequentially, so the prefix total matches Python's sum() bit for
        # bit).  prefix[j] = latency of layers 0..j-1; prefix[L] = T^Isol.
        lat = np.asarray(self.layer_latencies, dtype=float)
        prefix = np.empty(len(lat) + 1, dtype=float)
        prefix[0] = 0.0
        np.cumsum(lat, out=prefix[1:])
        self._lat_prefix = prefix
        self._num_layers = len(self.layer_latencies)
        self._isolated = float(prefix[-1])
        self._key = f"{self.model_name}/{self.pattern_key}"
        self._deadline = self.arrival + self.slo
        self._sparsity_arr = np.asarray(self.layer_sparsities, dtype=float)
        self._lut_ref: Optional[Tuple[object, Optional["LUTEntry"]]] = None

    @property
    def key(self) -> str:
        """Model-info LUT key (cached)."""
        return self._key

    @property
    def num_layers(self) -> int:
        return self._num_layers

    @property
    def is_done(self) -> bool:
        return self.next_layer >= self._num_layers

    @property
    def isolated_latency(self) -> float:
        """Uninterrupted execution time of this exact sample (T^Isol); O(1)."""
        return self._isolated

    @property
    def deadline(self) -> float:
        return self._deadline

    @property
    def latency_prefix(self) -> np.ndarray:
        """Cached latency prefix sums: prefix[j] = sum of layers 0..j-1."""
        return self._lat_prefix

    @property
    def true_remaining(self) -> float:
        """Ground-truth remaining execution time (Oracle only); O(1)."""
        return self._isolated - float(self._lat_prefix[self.next_layer])

    @property
    def monitored_sparsities(self) -> np.ndarray:
        """Sparsities of the already-executed layers (visible to schedulers).

        Returned as an O(1) read-only view over the cached sparsity array
        rather than a freshly sliced list.
        """
        return self._sparsity_arr[: self.next_layer]

    @property
    def turnaround(self) -> float:
        """Multi-tenant turnaround time T^Multi (finish - arrival)."""
        if self.finish_time is None:
            raise SchedulingError(f"request {self.rid} has not finished")
        return self.finish_time - self.arrival

    @property
    def normalized_turnaround(self) -> float:
        """T^Multi / T^Isol — the per-request ANTT contribution."""
        return self.turnaround / self._isolated

    @property
    def violated(self) -> bool:
        """Whether the request missed its latency SLO."""
        return self.turnaround > self.slo

    def lut_entry(self, lut: "ModelInfoLUT") -> Optional["LUTEntry"]:
        """The interned LUT entry for this request under ``lut``, or None.

        Cached on the request after the first lookup (per LUT instance), so
        schedulers and the ready queue resolve (model, pattern) averages
        without re-hashing the string key on every scheduling decision.
        """
        ref = self._lut_ref
        if ref is not None and ref[0] is lut:
            return ref[1]
        entry = lut.entry_or_none(self._key)
        self._lut_ref = (lut, entry)
        return entry
