"""Layer-granularity preemptive scheduling engine (paper Fig 7, Phase 2).

The engine replays a request stream against a scheduling policy on a single
time-shared accelerator.  Execution is per layer: the scheduler picks a
request, the engine advances simulated time by that request's true latency
for its next layer, then re-invokes the scheduler — giving every policy the
chance to preempt at each layer boundary, exactly as the Dysta hardware
scheduler is triggered (Algorithm 2, line 6).  Arrivals are admitted at layer
boundaries (the hardware scheduler cannot interrupt a running layer).

Two execution paths share these semantics:

* the **scalar path** (``use_batch=False``, and the automatic fallback for
  schedulers without batch support) keeps the ready queue as a plain list
  and calls ``scheduler.select`` at every boundary — the reference
  implementation;
* the **vectorized path** (default for converted schedulers) backs the
  queue with :class:`~repro.sim.ready_queue.ReadyQueue` and dispatches to
  ``select_single`` / ``select_batch``; when a lone request is the only
  work and no arrival is due, drain-safe schedulers run it for consecutive
  blocks without re-entering selection (each skipped boundary still counts
  as a scheduler invocation — the decision is forced).

Both paths produce identical completion schedules for converted policies
(golden equivalence tests), because the batch implementations replicate the
scalar scoring arithmetic bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.obs import Observability
from repro.obs.bus import (
    KIND_ARRIVE,
    KIND_COMPLETE,
    KIND_EXECUTE,
    KIND_PREEMPT,
    KIND_QUEUE,
    KIND_SELECT,
    KIND_SWITCH,
    KIND_VIOLATE,
)
from repro.obs.profile import (
    PHASE_ARRIVALS,
    PHASE_EXECUTE,
    PHASE_QUEUE_UPDATE,
    PHASE_SELECT,
)
from repro.sim.metrics import summarize
from repro.sim.ready_queue import ReadyQueue
from repro.sim.request import Request

if TYPE_CHECKING:  # avoid a runtime circular import with repro.schedulers
    from repro.energy.accounting import EnergyAccountant
    from repro.schedulers.base import Scheduler

_EPS = 1e-12


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    requests: List[Request]
    makespan: float
    num_preemptions: int = 0
    num_scheduler_invocations: int = 0
    #: Largest ready-queue occupancy seen at any scheduling decision — the
    #: quantity the hardware scheduler's FIFO depth must cover (Sec 5.2.1).
    max_queue_length: int = 0
    #: Decisions served by the vectorized fast path (select_single /
    #: select_batch); 0 on the scalar path.  The CI perf smoke asserts this
    #: is nonzero so the fast path cannot silently regress to the fallback.
    num_batch_selects: int = 0
    metrics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.metrics:
            self.metrics = summarize(self.requests)

    @property
    def antt(self) -> float:
        return self.metrics["antt"]

    @property
    def violation_rate(self) -> float:
        return self.metrics["violation_rate"]

    @property
    def stp(self) -> float:
        return self.metrics["stp"]

    @property
    def p50(self) -> float:
        """Median normalized turnaround."""
        return self.metrics["p50"]

    @property
    def p95(self) -> float:
        """95th-percentile normalized turnaround."""
        return self.metrics["p95"]

    @property
    def p99(self) -> float:
        """99th-percentile normalized turnaround (the tail SLOs care about)."""
        return self.metrics["p99"]

    # Energy metrics exist when the run was given an EnergyAccountant.

    @property
    def energy_per_request(self) -> float:
        """Mean joules per completed inference (energy runs only)."""
        return self.metrics["energy_per_request"]

    @property
    def total_joules(self) -> float:
        """Joules drawn by all executed work (energy runs only)."""
        return self.metrics["total_joules"]

    @property
    def edp(self) -> float:
        """Mean per-request energy-delay product, J*s (energy runs only)."""
        return self.metrics["edp"]


def _validate(requests, switch_cost: float, block_size: int) -> None:
    if not requests:
        raise SchedulingError("cannot simulate an empty workload")
    if switch_cost < 0:
        raise SchedulingError(f"switch cost must be >= 0, got {switch_cost}")
    if block_size < 1:
        raise SchedulingError(f"block size must be >= 1, got {block_size}")
    for req in requests:
        if req.next_layer != 0 or req.finish_time is not None:
            raise SchedulingError(f"request {req.rid} was already (partially) executed")


def simulate(
    requests: Sequence[Request],
    scheduler: "Scheduler",
    *,
    switch_cost: float = 0.0,
    block_size: int = 1,
    use_batch: Optional[bool] = None,
    energy: Optional["EnergyAccountant"] = None,
    obs: Optional[Observability] = None,
) -> SimResult:
    """Run the full request stream to completion under ``scheduler``.

    Requests are mutated in place (progress + finish times) and returned in
    completion order inside the result.

    Args:
        energy: Optional :class:`~repro.energy.accounting.EnergyAccountant`;
            when given, the result's metrics additionally carry
            ``energy_per_request`` / ``total_joules`` / ``edp``.  Accounting
            is passive — the schedule is bit-identical with or without it.
        switch_cost: Time charged whenever the accelerator switches to a
            *different model instance* than the one whose weights are
            resident (weight reload from off-chip memory).  The paper's
            evaluation assumes pure time-sharing with negligible swap cost
            (default 0); the knob enables the preemption-cost ablation.
        block_size: Scheduling granularity in layers.  The paper's execution
            is "per-layer or per-layer-block" (Sec 4.2.2); 1 = per layer
            (default).  Larger blocks mean fewer scheduler invocations and
            coarser preemption points.
        use_batch: ``None`` (default) uses the vectorized path when the
            scheduler supports it; ``False`` forces the scalar reference
            path; ``True`` behaves like ``None`` (unconverted schedulers
            still fall back — the fast path is opt-in per policy).
        obs: Optional :class:`~repro.obs.Observability` bundle.  Tracing,
            telemetry and profiling are all passive — the schedule is
            bit-identical with or without them — and a fully-disabled
            bundle is normalized away, so the disabled path is literally
            the ``obs=None`` path.
    """
    _validate(requests, switch_cost, block_size)
    obs = Observability.active(obs)
    pending = sorted(requests, key=lambda r: (r.arrival, r.rid))
    scheduler.reset()
    scheduler.trace_bus = obs.bus if obs is not None else None
    prof = obs.profiler if obs is not None else None
    t_begin = perf_counter() if prof is not None else 0.0
    if use_batch is not False and getattr(scheduler, "supports_batch", False):
        result = _simulate_batch(pending, scheduler, switch_cost, block_size, obs)
    else:
        scheduler.bind_queue(None)
        result = _simulate_scalar(pending, scheduler, switch_cost, block_size, obs)
    if prof is not None:
        prof.wall_s += perf_counter() - t_begin
    if obs is not None and obs.telemetry is not None:
        obs.telemetry.finish(result.makespan)
    if energy is not None:
        # Extend the already-computed latency summary with the energy keys
        # only (no second summarize pass over the request list).
        from repro.energy.accounting import energy_summary

        result.metrics.update(energy_summary(result.requests, energy))
    return result


def _simulate_scalar(pending, scheduler, switch_cost, block_size, obs=None) -> SimResult:
    """Reference scalar path: list-backed queue, ``select`` per boundary."""
    queue: List[Request] = []
    completed: List[Request] = []
    now = 0.0
    i = 0
    n = len(pending)
    preemptions = 0
    invocations = 0
    max_queue = 0
    last_running = None
    resident_request = None  # whose weights currently sit in the accelerator
    resident_key = None  # which (model, pattern) weights are resident

    tracer = obs.bus if obs is not None else None
    telem = obs.telemetry if obs is not None else None
    prof = obs.profiler if obs is not None else None
    c_completed = c_violations = None
    if telem is not None:
        telem.registry.gauge("queue_depth", lambda: len(queue))
        c_completed = telem.registry.counter("completed")
        c_violations = telem.registry.counter("violations")

    while i < n or queue:
        if telem is not None:
            telem.poll(now)
        if prof is not None:
            t0 = perf_counter()
        while i < n and pending[i].arrival <= now + _EPS:
            queue.append(pending[i])
            scheduler.on_arrival(pending[i], now)
            if tracer is not None:
                tracer.emit(KIND_ARRIVE, pending[i].arrival, rid=pending[i].rid)
            i += 1
        if prof is not None:
            prof.add(PHASE_ARRIVALS, perf_counter() - t0)
        if not queue:
            # Accelerator idle: fast-forward to the next arrival.
            now = pending[i].arrival
            continue

        if prof is not None:
            t0 = perf_counter()
        chosen = scheduler.select(queue, now)
        if prof is not None:
            prof.add(PHASE_SELECT, perf_counter() - t0)
        invocations += 1
        max_queue = max(max_queue, len(queue))
        if chosen not in queue:
            raise SchedulingError(
                f"scheduler {scheduler.name!r} selected a request outside the queue"
            )
        if tracer is not None:
            tracer.emit(KIND_SELECT, now, rid=chosen.rid,
                        args={"depth": len(queue)})
        if last_running is not None and chosen is not last_running and not last_running.is_done:
            preemptions += 1
        last_running = chosen

        if chosen.first_dispatch_time is None:
            chosen.first_dispatch_time = now
            if tracer is not None:
                tracer.emit(KIND_QUEUE, chosen.arrival, now - chosen.arrival,
                            rid=chosen.rid)
        elif (tracer is not None and chosen.next_layer > 0
                and now > chosen.last_run_end):
            # Stall span: the gap since this request's previous execute
            # span ended (emitted retroactively — the stall length is only
            # known once the request is re-dispatched).
            tracer.emit(KIND_PREEMPT, chosen.last_run_end,
                        now - chosen.last_run_end, npu=0, rid=chosen.rid)
        if prof is not None:
            t0 = perf_counter()
        exec_start = now
        if chosen is not resident_request:
            if switch_cost > 0.0:
                if tracer is not None:
                    tracer.emit(KIND_SWITCH, now, switch_cost, npu=0,
                                rid=chosen.rid, args={"key": chosen._key})
                now += switch_cost
            resident_request = chosen
            if chosen._key != resident_key:
                chosen.num_weight_loads += 1
                resident_key = chosen._key
        # Execute one scheduling block: up to `block_size` consecutive layers.
        layers = min(block_size, chosen.num_layers - chosen.next_layer)
        for _ in range(layers):
            dt = chosen.layer_latencies[chosen.next_layer]
            now += dt
            chosen.next_layer += 1
            chosen.executed_time += dt
        chosen.last_run_end = now
        if prof is not None:
            prof.add(PHASE_EXECUTE, perf_counter() - t0)
        if tracer is not None:
            tracer.emit(KIND_EXECUTE, exec_start, now - exec_start, npu=0,
                        rid=chosen.rid,
                        args={"layers": layers, "key": chosen._key})
        scheduler.on_layer_complete(chosen, now)
        if chosen.is_done:
            chosen.finish_time = now
            queue.remove(chosen)
            completed.append(chosen)
            scheduler.on_complete(chosen, now)
            if tracer is not None:
                tracer.emit(
                    KIND_VIOLATE if chosen.violated else KIND_COMPLETE,
                    now, rid=chosen.rid,
                )
            if c_completed is not None:
                c_completed.inc()
                if chosen.violated:
                    c_violations.inc()

    return SimResult(
        requests=completed,
        makespan=now,
        num_preemptions=preemptions,
        num_scheduler_invocations=invocations,
        max_queue_length=max_queue,
    )


def _simulate_batch(pending, scheduler, switch_cost, block_size, obs=None) -> SimResult:
    """Vectorized path: array-backed queue, batch scoring, singleton drain."""
    queue = ReadyQueue(scheduler.lut, columns=scheduler.batch_columns)
    scheduler.bind_queue(queue)
    drain_ok = scheduler.single_drain_safe
    trivial_single = scheduler.trivial_single
    has_switch_cost = switch_cost > 0.0
    arrivals = [r.arrival for r in pending]

    completed: List[Request] = []
    now = 0.0
    i = 0
    n = len(pending)
    preemptions = 0
    invocations = 0
    max_queue = 0
    batch_selects = 0
    last_running = None
    resident_request = None
    resident_key = None

    tracer = obs.bus if obs is not None else None
    telem = obs.telemetry if obs is not None else None
    prof = obs.profiler if obs is not None else None
    c_completed = c_violations = None
    if telem is not None:
        telem.registry.gauge("queue_depth", lambda: queue._n)
        c_completed = telem.registry.counter("completed")
        c_violations = telem.registry.counter("violations")

    # Local bindings for the hot loop.
    on_arrival = scheduler.on_arrival
    on_layer_complete = scheduler.on_layer_complete
    on_complete = scheduler.on_complete
    select_scalar = scheduler.select
    select_single = scheduler.select_single
    select_batch = scheduler.select_batch
    q_add = queue.add
    q_update = queue.update_progress

    while i < n or queue._n:
        if telem is not None:
            telem.poll(now)
        if prof is not None:
            t0 = perf_counter()
        while i < n and arrivals[i] <= now + _EPS:
            req = pending[i]
            q_add(req)
            on_arrival(req, now)
            if tracer is not None:
                tracer.emit(KIND_ARRIVE, req.arrival, rid=req.rid)
            i += 1
        if prof is not None:
            prof.add(PHASE_ARRIVALS, perf_counter() - t0)
        nq = queue._n
        if not nq:
            now = arrivals[i]
            continue

        if prof is not None:
            t0 = perf_counter()
        if queue._missing:
            # A request without a LUT entry: estimate-based policies must
            # raise their usual error, so take the scalar path (which also
            # keeps the membership safety check for arbitrary selections).
            chosen = select_scalar(queue, now)
            if chosen not in queue:
                raise SchedulingError(
                    f"scheduler {scheduler.name!r} selected a request outside the queue"
                )
        elif nq == 1:
            chosen = queue._requests[0] if trivial_single else select_single(queue, now)
            batch_selects += 1
        else:
            chosen = select_batch(queue, now)
            batch_selects += 1
        if prof is not None:
            prof.add(PHASE_SELECT, perf_counter() - t0)
        if tracer is not None:
            tracer.emit(KIND_SELECT, now, rid=chosen.rid, args={"depth": nq})
        invocations += 1
        if nq > max_queue:
            max_queue = nq
        if (
            last_running is not None
            and chosen is not last_running
            and last_running.next_layer < last_running._num_layers
        ):
            preemptions += 1
        last_running = chosen

        if chosen.first_dispatch_time is None:
            chosen.first_dispatch_time = now
            if tracer is not None:
                tracer.emit(KIND_QUEUE, chosen.arrival, now - chosen.arrival,
                            rid=chosen.rid)
        elif (tracer is not None and chosen.next_layer > 0
                and now > chosen.last_run_end):
            # Stall span: gap since this rid's previous execute span ended.
            tracer.emit(KIND_PREEMPT, chosen.last_run_end,
                        now - chosen.last_run_end, npu=0, rid=chosen.rid)
        if prof is not None:
            t0 = perf_counter()
        exec_start = now
        if chosen is not resident_request:
            if has_switch_cost:
                if tracer is not None:
                    tracer.emit(KIND_SWITCH, now, switch_cost, npu=0,
                                rid=chosen.rid, args={"key": chosen._key})
                now += switch_cost
            resident_request = chosen
            if chosen._key != resident_key:
                chosen.num_weight_loads += 1
                resident_key = chosen._key

        lats = chosen.layer_latencies
        num_layers = chosen._num_layers
        nl = chosen.next_layer
        nl_start = nl
        et = chosen.executed_time
        if block_size == 1:
            dt = lats[nl]
            now += dt
            nl += 1
            et += dt
        else:
            for _ in range(min(block_size, num_layers - nl)):
                dt = lats[nl]
                now += dt
                nl += 1
                et += dt
        if drain_ok and nl < num_layers and nq == 1:
            # Lone request, nothing else to schedule: keep executing blocks
            # until it finishes or an arrival lands at a boundary.  Each
            # skipped boundary is a forced decision and still counts as an
            # invocation; `on_layer_complete` only needs the final call for
            # drain-safe schedulers (overwrite-only monitor updates).
            if block_size == 1:
                next_arrival = arrivals[i] if i < n else None
                while nl < num_layers and (next_arrival is None or next_arrival > now + _EPS):
                    dt = lats[nl]
                    now += dt
                    nl += 1
                    et += dt
                    invocations += 1
                    batch_selects += 1
            else:
                while nl < num_layers and (i >= n or arrivals[i] > now + _EPS):
                    for _ in range(min(block_size, num_layers - nl)):
                        dt = lats[nl]
                        now += dt
                        nl += 1
                        et += dt
                    invocations += 1
                    batch_selects += 1
        chosen.next_layer = nl
        chosen.executed_time = et
        chosen.last_run_end = now
        if prof is not None:
            prof.add(PHASE_EXECUTE, perf_counter() - t0)
            t0 = perf_counter()
        if tracer is not None:
            # One span per contiguous run on the accelerator (drained
            # blocks included), not per layer — same lanes, fewer events.
            tracer.emit(KIND_EXECUTE, exec_start, now - exec_start, npu=0,
                        rid=chosen.rid,
                        args={"layers": nl - nl_start, "key": chosen._key})
        if nl >= num_layers:
            chosen.finish_time = now
            queue.remove(chosen)
            completed.append(chosen)
            on_layer_complete(chosen, now)
            on_complete(chosen, now)
            if tracer is not None:
                tracer.emit(
                    KIND_VIOLATE if chosen.violated else KIND_COMPLETE,
                    now, rid=chosen.rid,
                )
            if c_completed is not None:
                c_completed.inc()
                if chosen.violated:
                    c_violations.inc()
        else:
            q_update(chosen)
            on_layer_complete(chosen, now)
        if prof is not None:
            prof.add(PHASE_QUEUE_UPDATE, perf_counter() - t0)

    return SimResult(
        requests=completed,
        makespan=now,
        num_preemptions=preemptions,
        num_scheduler_invocations=invocations,
        max_queue_length=max_queue,
        num_batch_selects=batch_selects,
    )
