"""Layer-granularity preemptive scheduling engine (paper Fig 7, Phase 2).

The engine replays a request stream against a scheduling policy on a single
time-shared accelerator.  Execution is per layer: the scheduler picks a
request, the engine advances simulated time by that request's true latency
for its next layer, then re-invokes the scheduler — giving every policy the
chance to preempt at each layer boundary, exactly as the Dysta hardware
scheduler is triggered (Algorithm 2, line 6).  Arrivals are admitted at layer
boundaries (the hardware scheduler cannot interrupt a running layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Sequence

from repro.errors import SchedulingError
from repro.sim.metrics import summarize
from repro.sim.request import Request

if TYPE_CHECKING:  # avoid a runtime circular import with repro.schedulers
    from repro.schedulers.base import Scheduler

_EPS = 1e-12


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    requests: List[Request]
    makespan: float
    num_preemptions: int = 0
    num_scheduler_invocations: int = 0
    #: Largest ready-queue occupancy seen at any scheduling decision — the
    #: quantity the hardware scheduler's FIFO depth must cover (Sec 5.2.1).
    max_queue_length: int = 0
    metrics: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.metrics:
            self.metrics = summarize(self.requests)

    @property
    def antt(self) -> float:
        return self.metrics["antt"]

    @property
    def violation_rate(self) -> float:
        return self.metrics["violation_rate"]

    @property
    def stp(self) -> float:
        return self.metrics["stp"]

    @property
    def p50(self) -> float:
        """Median normalized turnaround."""
        return self.metrics["p50"]

    @property
    def p95(self) -> float:
        """95th-percentile normalized turnaround."""
        return self.metrics["p95"]

    @property
    def p99(self) -> float:
        """99th-percentile normalized turnaround (the tail SLOs care about)."""
        return self.metrics["p99"]


def simulate(
    requests: Sequence[Request],
    scheduler: "Scheduler",
    *,
    switch_cost: float = 0.0,
    block_size: int = 1,
) -> SimResult:
    """Run the full request stream to completion under ``scheduler``.

    Requests are mutated in place (progress + finish times) and returned in
    completion order inside the result.

    Args:
        switch_cost: Time charged whenever the accelerator switches to a
            *different model instance* than the one whose weights are
            resident (weight reload from off-chip memory).  The paper's
            evaluation assumes pure time-sharing with negligible swap cost
            (default 0); the knob enables the preemption-cost ablation.
        block_size: Scheduling granularity in layers.  The paper's execution
            is "per-layer or per-layer-block" (Sec 4.2.2); 1 = per layer
            (default).  Larger blocks mean fewer scheduler invocations and
            coarser preemption points.
    """
    if not requests:
        raise SchedulingError("cannot simulate an empty workload")
    if switch_cost < 0:
        raise SchedulingError(f"switch cost must be >= 0, got {switch_cost}")
    if block_size < 1:
        raise SchedulingError(f"block size must be >= 1, got {block_size}")
    for req in requests:
        if req.next_layer != 0 or req.finish_time is not None:
            raise SchedulingError(f"request {req.rid} was already (partially) executed")

    pending = sorted(requests, key=lambda r: (r.arrival, r.rid))
    scheduler.reset()
    queue: List[Request] = []
    completed: List[Request] = []
    now = 0.0
    i = 0
    n = len(pending)
    preemptions = 0
    invocations = 0
    max_queue = 0
    last_running = None
    resident_request = None  # whose weights currently sit in the accelerator

    while i < n or queue:
        while i < n and pending[i].arrival <= now + _EPS:
            queue.append(pending[i])
            scheduler.on_arrival(pending[i], now)
            i += 1
        if not queue:
            # Accelerator idle: fast-forward to the next arrival.
            now = pending[i].arrival
            continue

        chosen = scheduler.select(queue, now)
        invocations += 1
        max_queue = max(max_queue, len(queue))
        if chosen not in queue:
            raise SchedulingError(
                f"scheduler {scheduler.name!r} selected a request outside the queue"
            )
        if last_running is not None and chosen is not last_running and not last_running.is_done:
            preemptions += 1
        last_running = chosen

        if chosen.first_dispatch_time is None:
            chosen.first_dispatch_time = now
        if switch_cost > 0.0 and chosen is not resident_request:
            now += switch_cost
        resident_request = chosen
        # Execute one scheduling block: up to `block_size` consecutive layers.
        for _ in range(min(block_size, chosen.num_layers - chosen.next_layer)):
            dt = chosen.layer_latencies[chosen.next_layer]
            now += dt
            chosen.next_layer += 1
            chosen.executed_time += dt
        chosen.last_run_end = now
        scheduler.on_layer_complete(chosen, now)
        if chosen.is_done:
            chosen.finish_time = now
            queue.remove(chosen)
            completed.append(chosen)
            scheduler.on_complete(chosen, now)

    return SimResult(
        requests=completed,
        makespan=now,
        num_preemptions=preemptions,
        num_scheduler_invocations=invocations,
        max_queue_length=max_queue,
    )
