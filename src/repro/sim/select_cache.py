"""Incremental selection cache: stop re-scoring the whole queue per event.

Between two consecutive scheduler invocations only O(1) ready-queue rows
change — one arrival, one requeued winner, one monitor refresh — yet the
batch path re-scored every row on every ``select_batch``.  At 100k streamed
requests that is ~4.25M full-queue scans over queues thousands deep, and
``repro perf --profile`` attributed ~62% of cluster wall time to it.

:class:`SelectionCache` maintains the argmin incrementally:

* **Change journal.**  The bound :class:`~repro.sim.ready_queue.ReadyQueue`
  records the rids touched since the cache last rebuilt
  (:meth:`~repro.sim.ready_queue.ReadyQueue.enable_journal`).  Permanent
  removals need no mark (they are discarded from the journal and simply
  stop being live), and a vectorized aux write invalidates wholesale via
  ``_journal_all``.

* **Ladder + bound.**  A full scan (one numpy pass, the same arithmetic as
  before) additionally partitions the per-row primary score: the ``k``
  smallest rows become the *ladder* — the shortlist that survives winner
  removals — and the (k+1)-th smallest score becomes the *bound* ``B``, a
  floor under every non-ladder row's score at scan time ``t0``.

* **Confirmed lookup.**  A lookup at time ``t`` exactly re-scores only the
  live ladder rows plus the journalled rows (the policy's own scalar
  arithmetic with full native tie-breaking) and accepts the best iff::

      best < B - decay*(t - t0) - pen_scale*max(0, 1 - n0/n) - margin

  ``decay`` bounds how fast an *untouched* row's score can fall per unit of
  simulated time: 0 for static-key policies; ``eta`` for the Dysta family,
  whose slack term ``max(deadline - now - rem, -iso)`` decreases at most at
  rate 1 while the waiting penalty only grows with time.  The
  ``pen_scale`` correction covers the one way a Dysta score can fall
  *faster*: the penalty ``eta*(wait/iso)/n`` shrinks when the queue grows,
  but by at most a factor ``n0/n``, so across all rows by at most
  ``max_row(eta*pen) * (1 - n0/n)``.  ``margin`` absorbs float rounding in
  the recomputation (static keys compare stored bits and use 0).  Any
  failure — guard change, journal overflow, bound miss — falls back to the
  full scan, which rebuilds the ladder.  The cache is therefore strictly
  conservative: it can only ever return the request the full scan would.

* **Clearing.**  A journalled row whose *penalty-free* score anchor
  ``a = rem + eta*slack`` (for static keys, the score itself) lands at or
  above ``B - decay*(t - t0)`` can never beat an accepted winner for the
  rest of this scan epoch — the anchor and the acceptance limit decay at
  the same rate and the anchor never over-counts the shrinkable penalty —
  so the policy drops the rid from the journal.  If the row is touched
  again it re-journals itself; otherwise steady-state lookups cost the
  ladder plus only the rows dirtied since the *previous* select.

Policies opt in via ``Scheduler.supports_incremental`` and implement
``inc_best`` / ``inc_full_scan`` / ``inc_guard`` (see
:mod:`repro.schedulers.base`); ``scheduler.incremental = False`` force-
disables the layer (used by the randomized lockstep parity tests and the
A/B benches).
"""

from __future__ import annotations

from typing import List

import numpy as np


class SelectionCache:
    """Per-(scheduler, queue) incremental argmin state."""

    __slots__ = (
        "sched", "queue", "k", "cap", "decay", "margin",
        "ladder", "ladder_set", "bound", "pen_scale", "n_scan", "t_scan",
        "guard", "valid", "num_hits", "num_scans",
    )

    def __init__(self, sched, queue):
        self.sched = sched
        self.queue = queue
        self.k = sched.inc_ladder_k
        self.cap = sched.inc_journal_cap
        self.decay = sched.inc_decay_rate
        self.margin = sched.inc_margin
        self.ladder: List[int] = []
        self.ladder_set = frozenset()
        self.bound = 0.0
        self.pen_scale = 0.0
        self.n_scan = 0
        self.t_scan = 0.0
        self.guard = None
        self.valid = False
        self.num_hits = 0
        self.num_scans = 0
        queue.enable_journal()

    def lookup(self, now: float):
        """Return the policy's argmin request, incrementally when possible."""
        queue = self.queue
        sched = self.sched
        journal = queue._journal
        if (
            self.valid
            and not queue._journal_all
            and len(journal) <= self.cap
            and sched.inc_guard() == self.guard
        ):
            pos = queue._pos
            idxs: List[int] = []
            for rid in self.ladder:
                j = pos.get(rid)
                if j is not None:
                    idxs.append(j)
            if journal:
                lset = self.ladder_set
                # Journalled rids are always live: permanent removals are
                # discarded from the journal at remove() time.
                idxs.extend(pos[rid] for rid in journal if rid not in lset)
            if idxs:
                # clear_at = B - decay*dt: every row whose penalty-free
                # anchor sits at or above it is out of the running for the
                # rest of the epoch.  The acceptance limit additionally
                # subtracts the queue-growth penalty correction and the
                # float-rounding margin.
                clear_at = self.bound
                if self.decay:
                    clear_at -= self.decay * (now - self.t_scan)
                limit = clear_at - self.margin
                ps = self.pen_scale
                if ps:
                    n = queue._n
                    n0 = self.n_scan
                    if n > n0:
                        limit -= ps * (1.0 - n0 / n)
                best_i, best_s = sched.inc_best(queue, idxs, now, clear_at, journal)
                if best_i >= 0 and best_s < limit:
                    self.num_hits += 1
                    return queue._requests[best_i]
        self.num_scans += 1
        return sched.inc_full_scan(queue, now, self)

    def rebuild(self, primary: np.ndarray, now: float, pen_scale: float = 0.0) -> None:
        """Refresh ladder/bound from a full scan's primary-score array.

        Called by the policy's ``inc_full_scan`` with the length-n per-row
        primary scores it just computed (the exact values the winner was
        picked from, so the bound is in the policy's own float arithmetic)
        and, for penalty-bearing scores, the scan-time maximum of the
        shrinkable penalty term.
        """
        queue = self.queue
        n = queue._n
        k = self.k
        if n > k:
            part = np.argpartition(primary, k)
            self.ladder = queue.np_rid[part[:k]].tolist()
            self.bound = float(primary[int(part[k])])
            self.pen_scale = pen_scale
        else:
            self.ladder = list(queue.ls_rid)
            self.bound = float("inf")
            self.pen_scale = 0.0
        self.ladder_set = frozenset(self.ladder)
        self.n_scan = n
        self.t_scan = now
        self.guard = self.sched.inc_guard()
        self.valid = True
        queue.journal_clear()
