"""Evaluation metrics (paper Sec 6.1).

* **ANTT** — average normalized turnaround time,
  ``1/N * sum(T_multi_i / T_isol_i)``;
* **SLO violation rate** — fraction of requests whose turnaround exceeded
  their latency SLO;
* **STP** — system throughput in completed inferences per second.

:func:`summarize` additionally reports the tail of the normalized-turnaround
distribution (p50/p95/p99), the quantity a production SLO budget is written
against, and — when an :class:`~repro.energy.accounting.EnergyAccountant`
is supplied — the energy axis: joules per request, total joules, and the
mean per-request energy-delay product.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.sim.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.energy.accounting import EnergyAccountant


def _check_finished(requests: Sequence[Request]) -> None:
    if not requests:
        raise SchedulingError("metrics over an empty request set are undefined")
    for req in requests:
        if req.finish_time is None:
            raise SchedulingError(f"request {req.rid} never finished")


def antt(requests: Sequence[Request]) -> float:
    """Average normalized turnaround time (lower is better, >= 1)."""
    _check_finished(requests)
    return sum(r.normalized_turnaround for r in requests) / len(requests)


def slo_violation_rate(requests: Sequence[Request]) -> float:
    """Fraction of requests that missed their latency SLO, in [0, 1]."""
    _check_finished(requests)
    return sum(1 for r in requests if r.violated) / len(requests)


def system_throughput(requests: Sequence[Request]) -> float:
    """Completed inferences per second over the busy horizon."""
    _check_finished(requests)
    start = min(r.arrival for r in requests)
    end = max(r.finish_time for r in requests)  # type: ignore[type-var]
    span = end - start
    if span <= 0:
        raise SchedulingError("degenerate horizon: all requests at one instant")
    return len(requests) / span


def summarize(
    requests: Sequence[Request],
    energy: Optional["EnergyAccountant"] = None,
) -> Dict[str, float]:
    """The three paper metrics plus normalized-turnaround tail percentiles.

    With an ``energy`` accountant, the summary additionally carries
    ``energy_per_request`` (mean J), ``total_joules`` and ``edp`` (mean
    per-request joules x turnaround seconds) — computed passively from the
    finished requests, so enabling it never perturbs a schedule.
    """
    _check_finished(requests)
    norm = [r.normalized_turnaround for r in requests]
    p50, p95, p99 = np.percentile(norm, (50, 95, 99))
    out = {
        "antt": sum(norm) / len(norm),
        "violation_rate": sum(1 for r in requests if r.violated) / len(requests),
        "stp": system_throughput(requests),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
    }
    if energy is not None:
        from repro.energy.accounting import energy_summary

        out.update(energy_summary(requests, energy))
    return out
