"""Multi-accelerator scheduling engine.

Extension beyond the paper's single-NPU evaluation: a pool of identical
time-shared accelerators serving one shared ready queue, as in the paper's
data-center scenario (Table 3) where multiple NPUs sit behind one request
stream.  Scheduling semantics are unchanged — whenever an accelerator
finishes a layer block, the scheduler picks the next request for it from the
ready queue (layer-granularity preemption, paper Sec 4.2.2) — so every
policy from the registry works unmodified.

With ``num_accelerators=1`` the simulation is step-for-step identical to
:func:`repro.sim.engine.simulate` (tested), because the single-NPU engine
also re-queues the running request at every layer boundary.  The engine's
``switch_cost`` and ``block_size`` knobs are supported with the same
semantics: each NPU tracks which model instance's weights are resident and
pays the reload cost when it switches to a different request.

Like the single-NPU engine, converted schedulers run on the vectorized
path: the shared queue is a :class:`~repro.sim.ready_queue.ReadyQueue`, a
running request leaves the queue with its aux state stashed and re-enters
with it restored, and selections dispatch to ``select_single`` /
``select_batch``.  ``use_batch=False`` forces the scalar reference path.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.obs import Observability
from repro.obs.bus import (
    KIND_ARRIVE,
    KIND_COMPLETE,
    KIND_EXECUTE,
    KIND_PREEMPT,
    KIND_QUEUE,
    KIND_SELECT,
    KIND_SWITCH,
    KIND_VIOLATE,
)
from repro.obs.profile import (
    PHASE_ARRIVALS,
    PHASE_EVENT_HEAP,
    PHASE_QUEUE_UPDATE,
    PHASE_SELECT,
)
from repro.sim.engine import SimResult
from repro.sim.ready_queue import ReadyQueue
from repro.sim.request import Request

if TYPE_CHECKING:  # avoid a runtime circular import with repro.schedulers
    from repro.energy.accounting import EnergyAccountant
    from repro.schedulers.base import Scheduler

_EPS = 1e-12


def simulate_multi(
    requests: Sequence[Request],
    scheduler: "Scheduler",
    *,
    num_accelerators: int = 2,
    switch_cost: float = 0.0,
    block_size: int = 1,
    use_batch: Optional[bool] = None,
    energy: Optional["EnergyAccountant"] = None,
    obs: Optional[Observability] = None,
) -> SimResult:
    """Run the request stream on a pool of identical accelerators.

    Requests are mutated in place, exactly as in the single-NPU engine.
    A request executes one layer block at a time on one accelerator; at each
    block boundary it returns to the shared queue and any idle accelerator
    may pick it (or anything else) up.

    Args:
        switch_cost: Time charged whenever an accelerator switches to a
            *different model instance* than the one whose weights it holds
            resident (per-NPU tracking; same semantics as the single-NPU
            engine).
        block_size: Scheduling granularity in layers, as in the single-NPU
            engine; 1 = per layer (default).
        use_batch: ``None``/``True`` uses the vectorized path for schedulers
            that support it; ``False`` forces the scalar reference path.
        energy: Optional energy accountant; adds ``energy_per_request`` /
            ``total_joules`` / ``edp`` to the result metrics (passive —
            the schedule is unchanged).
        obs: Optional :class:`~repro.obs.Observability` bundle; execute
            spans carry the accelerator id, so the Chrome-trace export
            shows one lane per NPU.  Passive, like ``energy``.
    """
    if not requests:
        raise SchedulingError("cannot simulate an empty workload")
    if num_accelerators <= 0:
        raise SchedulingError(f"need >= 1 accelerator, got {num_accelerators}")
    if switch_cost < 0:
        raise SchedulingError(f"switch cost must be >= 0, got {switch_cost}")
    if block_size < 1:
        raise SchedulingError(f"block size must be >= 1, got {block_size}")
    for req in requests:
        if req.next_layer != 0 or req.finish_time is not None:
            raise SchedulingError(f"request {req.rid} was already (partially) executed")

    pending = sorted(requests, key=lambda r: (r.arrival, r.rid))
    scheduler.reset()
    obs = Observability.active(obs)
    tracer = obs.bus if obs is not None else None
    telem = obs.telemetry if obs is not None else None
    prof = obs.profiler if obs is not None else None
    scheduler.trace_bus = tracer
    t_begin = perf_counter() if prof is not None else 0.0
    batch_on = use_batch is not False and getattr(scheduler, "supports_batch", False)
    if batch_on:
        queue = ReadyQueue(scheduler.lut, columns=scheduler.batch_columns)
        scheduler.bind_queue(queue)
    else:
        scheduler.bind_queue(None)
        queue = []  # type: ignore[assignment]
    completed: List[Request] = []
    # Block-completion events: (time, tiebreak, npu_id, request, n_layers, dt).
    counter = itertools.count()
    events: List = []
    idle: List[int] = list(range(num_accelerators))  # min-heap of idle NPUs
    heapq.heapify(idle)
    i = 0
    n = len(pending)
    now = 0.0
    preemptions = 0
    invocations = 0
    max_queue = 0
    batch_selects = 0
    last_on_npu: List[Optional[Request]] = [None] * num_accelerators
    # Whose weights currently sit in each accelerator (switch-cost tracking),
    # and which (model, pattern) key they belong to (weight-load counting).
    resident: List[Optional[Request]] = [None] * num_accelerators
    resident_key: List[Optional[str]] = [None] * num_accelerators

    c_completed = c_violations = None
    if telem is not None:
        telem.registry.gauge("queue_depth", lambda: len(queue))
        telem.registry.gauge(
            "busy_npus", lambda: num_accelerators - len(idle)
        )
        c_completed = telem.registry.counter("completed")
        c_violations = telem.registry.counter("violations")

    def admit(now: float) -> None:
        nonlocal i
        if prof is not None:
            t0 = perf_counter()
        while i < n and pending[i].arrival <= now + _EPS:
            queue.append(pending[i])
            scheduler.on_arrival(pending[i], now)
            if tracer is not None:
                tracer.emit(KIND_ARRIVE, pending[i].arrival, rid=pending[i].rid)
            i += 1
        if prof is not None:
            prof.add(PHASE_ARRIVALS, perf_counter() - t0)

    def dispatch(now: float) -> None:
        """Hand queued requests to idle accelerators (lowest NPU id first)."""
        nonlocal preemptions, invocations, max_queue, batch_selects
        while idle and queue:
            npu = heapq.heappop(idle)
            nq = len(queue)
            if prof is not None:
                t0 = perf_counter()
            if not batch_on or queue.missing_entries:
                chosen = scheduler.select(queue, now)
            elif nq == 1:
                chosen = scheduler.select_single(queue, now)
                batch_selects += 1
            else:
                chosen = scheduler.select_batch(queue, now)
                batch_selects += 1
            if prof is not None:
                prof.add(PHASE_SELECT, perf_counter() - t0)
            invocations += 1
            max_queue = max(max_queue, nq)
            if chosen not in queue:
                raise SchedulingError(
                    f"scheduler {scheduler.name!r} selected a request outside the queue"
                )
            if tracer is not None:
                tracer.emit(KIND_SELECT, now, npu=npu, rid=chosen.rid,
                            args={"depth": nq})
            previous = last_on_npu[npu]
            if previous is not None and chosen is not previous and not previous.is_done:
                preemptions += 1
            last_on_npu[npu] = chosen
            if chosen.first_dispatch_time is None:
                chosen.first_dispatch_time = now
                if tracer is not None:
                    tracer.emit(KIND_QUEUE, chosen.arrival,
                                now - chosen.arrival, rid=chosen.rid)
            elif (tracer is not None and chosen.next_layer > 0
                    and now > chosen.last_run_end):
                # Stall span: gap since this rid's previous execute span
                # ended (emitted retroactively at re-dispatch).
                tracer.emit(KIND_PREEMPT, chosen.last_run_end,
                            now - chosen.last_run_end, npu=npu,
                            rid=chosen.rid)
            start = now
            if chosen is not resident[npu]:
                if switch_cost > 0.0:
                    if tracer is not None:
                        tracer.emit(KIND_SWITCH, now, switch_cost, npu=npu,
                                    rid=chosen.rid, args={"key": chosen._key})
                    start += switch_cost
                resident[npu] = chosen
                if chosen._key != resident_key[npu]:
                    chosen.num_weight_loads += 1
                    resident_key[npu] = chosen._key
            if batch_on:
                queue.remove(chosen, requeue=True)
            else:
                queue.remove(chosen)
            nl = chosen.next_layer
            layers = min(block_size, chosen.num_layers - nl)
            if layers == 1:
                dt = chosen.layer_latencies[nl]
            else:
                dt = sum(
                    chosen.layer_latencies[nl + k] for k in range(layers)
                )
            if tracer is not None:
                # Span from decision to block end: switch cost included.
                tracer.emit(KIND_EXECUTE, now, (start + dt) - now, npu=npu,
                            rid=chosen.rid,
                            args={"layers": layers, "key": chosen._key})
            heapq.heappush(events, (start + dt, next(counter), npu, chosen, layers, dt))

    next_wake: Optional[float] = None

    def arm_wake() -> None:
        """Ensure an idle accelerator wakes at the next pending arrival."""
        nonlocal next_wake
        if idle and i < n and (next_wake is None or pending[i].arrival < next_wake):
            next_wake = pending[i].arrival
            heapq.heappush(events, (next_wake, next(counter), -1, None, 0, 0.0))

    if telem is not None:
        telem.poll(0.0)
    admit(0.0)
    dispatch(0.0)
    arm_wake()

    while events:
        if prof is not None:
            t0 = perf_counter()
        now, _, npu, req, layers, dt = heapq.heappop(events)
        if prof is not None:
            prof.add(PHASE_EVENT_HEAP, perf_counter() - t0)
        if telem is not None:
            telem.poll(now)
        if req is None:
            # Wake-up for idle accelerators at an arrival instant.
            next_wake = None
            admit(now)
            dispatch(now)
            arm_wake()
            continue
        if prof is not None:
            t0 = perf_counter()
        req.next_layer += layers
        req.executed_time += dt
        req.last_run_end = now
        if req.is_done:
            if batch_on:
                queue.forget(req.rid)
            scheduler.on_layer_complete(req, now)
            req.finish_time = now
            completed.append(req)
            scheduler.on_complete(req, now)
            if tracer is not None:
                tracer.emit(
                    KIND_VIOLATE if req.violated else KIND_COMPLETE,
                    now, npu=npu, rid=req.rid,
                )
            if c_completed is not None:
                c_completed.inc()
                if req.violated:
                    c_violations.inc()
        else:
            # Re-admit before the monitor callback so batch schedulers can
            # refresh the request's row (aux state was stashed at dispatch).
            queue.append(req)
            scheduler.on_layer_complete(req, now)
        if prof is not None:
            prof.add(PHASE_QUEUE_UPDATE, perf_counter() - t0)
        heapq.heappush(idle, npu)
        admit(now)
        dispatch(now)
        arm_wake()

    if len(completed) != n:
        raise SchedulingError(
            f"simulation ended with {n - len(completed)} unfinished requests"
        )
    if prof is not None:
        prof.wall_s += perf_counter() - t_begin
    if telem is not None:
        telem.finish(now)
    result = SimResult(
        requests=completed,
        makespan=now,
        num_preemptions=preemptions,
        num_scheduler_invocations=invocations,
        max_queue_length=max_queue,
        num_batch_selects=batch_selects if batch_on else 0,
    )
    if energy is not None:
        from repro.energy.accounting import energy_summary

        result.metrics.update(energy_summary(completed, energy))
    return result
