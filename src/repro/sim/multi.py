"""Multi-accelerator scheduling engine.

Extension beyond the paper's single-NPU evaluation: a pool of identical
time-shared accelerators serving one shared ready queue, as in the paper's
data-center scenario (Table 3) where multiple NPUs sit behind one request
stream.  Scheduling semantics are unchanged — whenever an accelerator
finishes a layer block, the scheduler picks the next request for it from the
ready queue (layer-granularity preemption, paper Sec 4.2.2) — so every
policy from the registry works unmodified.

With ``num_accelerators=1`` the simulation is step-for-step identical to
:func:`repro.sim.engine.simulate` (tested), because the single-NPU engine
also re-queues the running request at every layer boundary.  The engine's
``switch_cost`` and ``block_size`` knobs are supported with the same
semantics: each NPU tracks which model instance's weights are resident and
pays the reload cost when it switches to a different request.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.errors import SchedulingError
from repro.sim.engine import SimResult
from repro.sim.request import Request

if TYPE_CHECKING:  # avoid a runtime circular import with repro.schedulers
    from repro.schedulers.base import Scheduler

_EPS = 1e-12


def simulate_multi(
    requests: Sequence[Request],
    scheduler: "Scheduler",
    *,
    num_accelerators: int = 2,
    switch_cost: float = 0.0,
    block_size: int = 1,
) -> SimResult:
    """Run the request stream on a pool of identical accelerators.

    Requests are mutated in place, exactly as in the single-NPU engine.
    A request executes one layer block at a time on one accelerator; at each
    block boundary it returns to the shared queue and any idle accelerator
    may pick it (or anything else) up.

    Args:
        switch_cost: Time charged whenever an accelerator switches to a
            *different model instance* than the one whose weights it holds
            resident (per-NPU tracking; same semantics as the single-NPU
            engine).
        block_size: Scheduling granularity in layers, as in the single-NPU
            engine; 1 = per layer (default).
    """
    if not requests:
        raise SchedulingError("cannot simulate an empty workload")
    if num_accelerators <= 0:
        raise SchedulingError(f"need >= 1 accelerator, got {num_accelerators}")
    if switch_cost < 0:
        raise SchedulingError(f"switch cost must be >= 0, got {switch_cost}")
    if block_size < 1:
        raise SchedulingError(f"block size must be >= 1, got {block_size}")
    for req in requests:
        if req.next_layer != 0 or req.finish_time is not None:
            raise SchedulingError(f"request {req.rid} was already (partially) executed")

    pending = sorted(requests, key=lambda r: (r.arrival, r.rid))
    scheduler.reset()
    queue: List[Request] = []
    completed: List[Request] = []
    # Block-completion events: (time, tiebreak, npu_id, request, n_layers, dt).
    counter = itertools.count()
    events: List = []
    idle: List[int] = list(range(num_accelerators))  # min-heap of idle NPUs
    heapq.heapify(idle)
    i = 0
    n = len(pending)
    now = 0.0
    preemptions = 0
    invocations = 0
    max_queue = 0
    last_on_npu: List[Optional[Request]] = [None] * num_accelerators
    # Whose weights currently sit in each accelerator (switch-cost tracking).
    resident: List[Optional[Request]] = [None] * num_accelerators

    def admit(now: float) -> None:
        nonlocal i
        while i < n and pending[i].arrival <= now + _EPS:
            queue.append(pending[i])
            scheduler.on_arrival(pending[i], now)
            i += 1

    def dispatch(now: float) -> None:
        """Hand queued requests to idle accelerators (lowest NPU id first)."""
        nonlocal preemptions, invocations, max_queue
        while idle and queue:
            npu = heapq.heappop(idle)
            chosen = scheduler.select(queue, now)
            invocations += 1
            max_queue = max(max_queue, len(queue))
            if chosen not in queue:
                raise SchedulingError(
                    f"scheduler {scheduler.name!r} selected a request outside the queue"
                )
            previous = last_on_npu[npu]
            if previous is not None and chosen is not previous and not previous.is_done:
                preemptions += 1
            last_on_npu[npu] = chosen
            if chosen.first_dispatch_time is None:
                chosen.first_dispatch_time = now
            start = now
            if switch_cost > 0.0 and chosen is not resident[npu]:
                start += switch_cost
            resident[npu] = chosen
            queue.remove(chosen)
            layers = min(block_size, chosen.num_layers - chosen.next_layer)
            dt = sum(
                chosen.layer_latencies[chosen.next_layer + k] for k in range(layers)
            )
            heapq.heappush(events, (start + dt, next(counter), npu, chosen, layers, dt))

    next_wake: Optional[float] = None

    def arm_wake() -> None:
        """Ensure an idle accelerator wakes at the next pending arrival."""
        nonlocal next_wake
        if idle and i < n and (next_wake is None or pending[i].arrival < next_wake):
            next_wake = pending[i].arrival
            heapq.heappush(events, (next_wake, next(counter), -1, None, 0, 0.0))

    admit(0.0)
    dispatch(0.0)
    arm_wake()

    while events:
        now, _, npu, req, layers, dt = heapq.heappop(events)
        if req is None:
            # Wake-up for idle accelerators at an arrival instant.
            next_wake = None
            admit(now)
            dispatch(now)
            arm_wake()
            continue
        req.next_layer += layers
        req.executed_time += dt
        req.last_run_end = now
        scheduler.on_layer_complete(req, now)
        if req.is_done:
            req.finish_time = now
            completed.append(req)
            scheduler.on_complete(req, now)
        else:
            queue.append(req)
        heapq.heappush(idle, npu)
        admit(now)
        dispatch(now)
        arm_wake()

    if len(completed) != n:
        raise SchedulingError(
            f"simulation ended with {n - len(completed)} unfinished requests"
        )
    return SimResult(
        requests=completed,
        makespan=now,
        num_preemptions=preemptions,
        num_scheduler_invocations=invocations,
        max_queue_length=max_queue,
    )
