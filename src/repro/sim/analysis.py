"""Post-simulation analysis: tail latency, fairness and per-class breakdowns.

The paper reports workload-level means (ANTT, violation rate, STP); a
production scheduler evaluation also needs tails and fairness.  These helpers
operate on the finished requests of a :class:`~repro.sim.engine.SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import SchedulingError
from repro.sim.request import Request


def _finished(requests: Sequence[Request]) -> Sequence[Request]:
    if not requests:
        raise SchedulingError("analysis over an empty request set is undefined")
    for req in requests:
        if req.finish_time is None:
            raise SchedulingError(f"request {req.rid} never finished")
    return requests


def turnaround_percentile(requests: Sequence[Request], pct: float) -> float:
    """Percentile of the *normalized* turnaround distribution (p50/p95/p99)."""
    _finished(requests)
    if not 0.0 < pct <= 100.0:
        raise SchedulingError(f"percentile must be in (0, 100], got {pct}")
    values = [r.normalized_turnaround for r in requests]
    return float(np.percentile(values, pct))


def jains_fairness(requests: Sequence[Request]) -> float:
    """Jain's fairness index over per-request slowdowns, in (0, 1].

    1.0 means every request experienced the same normalized turnaround; the
    index drops toward 1/N as the scheduler starves a subset.
    """
    _finished(requests)
    x = np.array([r.normalized_turnaround for r in requests])
    return float(x.sum() ** 2 / (len(x) * (x * x).sum()))


@dataclass(frozen=True)
class ClassStats:
    """Per-(model, pattern) class summary."""

    count: int
    antt: float
    violation_rate: float
    p99_turnaround: float


def per_class_breakdown(requests: Sequence[Request]) -> Dict[str, ClassStats]:
    """Metrics split by (model, pattern) class: which tenants suffer?"""
    _finished(requests)
    groups: Dict[str, list] = {}
    for req in requests:
        groups.setdefault(req.key, []).append(req)
    out = {}
    for key, reqs in sorted(groups.items()):
        norm = [r.normalized_turnaround for r in reqs]
        out[key] = ClassStats(
            count=len(reqs),
            antt=float(np.mean(norm)),
            violation_rate=sum(1 for r in reqs if r.violated) / len(reqs),
            p99_turnaround=float(np.percentile(norm, 99)),
        )
    return out


def waiting_time_stats(requests: Sequence[Request]) -> Dict[str, float]:
    """Mean/max queueing delay before the first dispatch."""
    _finished(requests)
    waits = []
    for req in requests:
        if req.first_dispatch_time is None:
            raise SchedulingError(f"request {req.rid} finished without dispatch")
        waits.append(req.first_dispatch_time - req.arrival)
    arr = np.array(waits)
    return {
        "mean_wait": float(arr.mean()),
        "p95_wait": float(np.percentile(arr, 95)),
        "max_wait": float(arr.max()),
    }
