"""Multi-DNN workload generation (paper Sec 6.2).

Requests sample uniformly from the benchmark's (model, pattern) trace sets;
arrival times follow a Poisson process (MLPerf server scenario, the paper's
setting) or a bursty process (MLPerf multi-stream-style: groups of requests
land together); each request's SLO is ``T_isol * slo_multiplier`` as in
PREMA's setup, optionally drawn from a mix of SLO classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.profiling.trace import TraceSet
from repro.sim.request import Request

_TRAFFIC_SHAPES = ("poisson", "bursty")


def check_class_mix(
    label: str, classes: Optional[Tuple[Tuple[float, float], ...]]
) -> None:
    """Validate a (value, weight) class mixture (``None`` is always valid).

    Shared by ``WorkloadSpec`` and the scenario engine's ``Phase`` so the
    mixture semantics cannot diverge between the two workload paths.
    """
    if classes is None:
        return
    if not classes:
        raise SchedulingError(f"{label} must be None or non-empty")
    for value, weight in classes:
        if value <= 0 or weight < 0:
            raise SchedulingError(
                f"invalid {label} entry (value={value}, weight={weight})"
            )
    if sum(w for _, w in classes) <= 0:
        raise SchedulingError(f"{label} weights must not all be zero")


def draw_class_mix(
    classes: Optional[Tuple[Tuple[float, float], ...]],
    default: float,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``n`` values from a weighted class mixture (or the default)."""
    if classes is None:
        return np.full(n, default)
    values = np.array([v for v, _ in classes])
    weights = np.array([w for _, w in classes], dtype=float)
    weights = weights / weights.sum()
    picks = rng.choice(len(values), size=n, p=weights)
    return values[picks]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one generated workload.

    Attributes:
        arrival_rate: Requests per second (mean, whatever the traffic shape).
        n_requests: Total number of requests (paper uses 1000).
        slo_multiplier: M_slo: SLO = isolated latency x multiplier.
        seed: RNG seed (paper averages 5 seeds).
        traffic: "poisson" (paper default) or "bursty" — bursts of
            ``burst_size`` simultaneous requests whose burst inter-arrival
            preserves the mean rate (AR/VR frame-sync or batched traffic).
        burst_size: Requests per burst under bursty traffic.
        slo_classes: Optional mixture of (multiplier, weight) SLO classes;
            each request draws its own multiplier.  Overrides
            ``slo_multiplier`` when set.
        priority_classes: Optional mixture of (priority, weight) classes
            (PREMA-style task priorities); default: every request at 1.0.
        start_time: Offset added to every arrival time.  The arrival
            *process* is unchanged (same gaps, same seed); the whole stream
            is shifted, so phase-stitched scenario generators can place a
            workload segment at any point on the timeline without rebasing
            arrival arrays downstream.
    """

    arrival_rate: float
    n_requests: int = 1000
    slo_multiplier: float = 10.0
    seed: int = 0
    traffic: str = "poisson"
    burst_size: int = 4
    slo_classes: Optional[Tuple[Tuple[float, float], ...]] = None
    priority_classes: Optional[Tuple[Tuple[float, float], ...]] = None
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise SchedulingError(f"arrival rate must be positive, got {self.arrival_rate}")
        if self.start_time < 0:
            raise SchedulingError(f"start time must be >= 0, got {self.start_time}")
        if self.n_requests <= 0:
            raise SchedulingError(f"n_requests must be positive, got {self.n_requests}")
        if self.slo_multiplier <= 0:
            raise SchedulingError(
                f"slo multiplier must be positive, got {self.slo_multiplier}"
            )
        if self.traffic not in _TRAFFIC_SHAPES:
            raise SchedulingError(
                f"traffic must be one of {_TRAFFIC_SHAPES}, got {self.traffic!r}"
            )
        if self.traffic == "bursty" and self.burst_size <= 0:
            raise SchedulingError(f"burst size must be positive, got {self.burst_size}")
        check_class_mix("slo_classes", self.slo_classes)
        check_class_mix("priority_classes", self.priority_classes)


def _arrival_times(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.traffic == "poisson":
        gaps = rng.exponential(1.0 / spec.arrival_rate, size=spec.n_requests)
        return spec.start_time + np.cumsum(gaps)
    # Bursty: bursts of `burst_size` simultaneous requests; burst gaps keep
    # the long-run mean arrival rate equal to `arrival_rate`.
    n_bursts = -(-spec.n_requests // spec.burst_size)  # ceil division
    burst_gap_mean = spec.burst_size / spec.arrival_rate
    burst_times = np.cumsum(rng.exponential(burst_gap_mean, size=n_bursts))
    arrivals = np.repeat(burst_times, spec.burst_size)[: spec.n_requests]
    return spec.start_time + arrivals


def request_from_trace(
    trace: TraceSet,
    row: int,
    *,
    rid: int,
    arrival: float,
    slo_multiplier: float,
    priority: float = 1.0,
) -> Request:
    """Build a request from one profiled input sample of a trace set.

    The single place that turns (trace, sample row) into a ``Request`` —
    per-layer latencies/sparsities copied from the profile, SLO derived as
    ``T_isol x multiplier`` — shared by workload generation, the scenario
    engine and trace replay so the recipe cannot diverge.
    """
    latencies = trace.latencies[row].tolist()
    isolated = float(sum(latencies))
    return Request(
        rid=rid,
        model_name=trace.model_name,
        pattern_key=trace.pattern_key,
        arrival=arrival,
        slo=isolated * slo_multiplier,
        layer_latencies=latencies,
        layer_sparsities=trace.sparsities[row].tolist(),
        priority=priority,
    )


def iter_workload(
    traces: Dict[str, TraceSet], spec: WorkloadSpec
) -> Iterator[Request]:
    """Yield the workload one request at a time, in arrival order.

    Identical stream to :func:`generate_workload` (same spec, same seed, same
    requests), but lazily: only O(n) scalars (arrival times, class draws) are
    precomputed, never n live ``Request`` objects.  Feed this straight into
    :func:`repro.cluster.simulate_cluster` to replay 100k+ request streams
    under streaming metrics with bounded memory.
    """
    if not traces:
        raise SchedulingError("cannot generate a workload from an empty trace dict")
    rng = np.random.default_rng(spec.seed)
    keys: Sequence[str] = sorted(traces)
    arrivals = _arrival_times(spec, rng)
    multipliers = draw_class_mix(spec.slo_classes, spec.slo_multiplier,
                                 spec.n_requests, rng)
    priorities = draw_class_mix(spec.priority_classes, 1.0, spec.n_requests, rng)
    for rid in range(spec.n_requests):
        key = keys[int(rng.integers(len(keys)))]
        trace = traces[key]
        row = int(rng.integers(trace.num_samples))
        yield request_from_trace(
            trace, row,
            rid=rid,
            arrival=float(arrivals[rid]),
            slo_multiplier=float(multipliers[rid]),
            priority=float(priorities[rid]),
        )


def generate_workload(
    traces: Dict[str, TraceSet], spec: WorkloadSpec
) -> List[Request]:
    """Generate a request stream by sampling from profiled trace sets.

    Each request uniformly picks a (model, pattern) trace set, then uniformly
    picks one profiled input sample within it; the request inherits that
    sample's true per-layer latencies and monitored sparsities.
    """
    return list(iter_workload(traces, spec))
