"""Phase-1 "hardware simulation" (paper Fig 7): profile every (model,
sparsity-config, dataset) pair into per-layer latency/sparsity traces."""

from repro.profiling.trace import TraceSet, load_traceset_csv
from repro.profiling.store import TraceStore
from repro.profiling.profiler import (
    DEFAULT_CNN_PATTERNS,
    benchmark_suite,
    default_accelerator,
    profile_model,
)

__all__ = [
    "TraceSet",
    "TraceStore",
    "load_traceset_csv",
    "DEFAULT_CNN_PATTERNS",
    "benchmark_suite",
    "default_accelerator",
    "profile_model",
]
