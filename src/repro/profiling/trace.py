"""Runtime-information traces.

A :class:`TraceSet` is the unit of exchange between the hardware-simulation
phase and the scheduling-evaluation phase (paper Fig 7: "runtime info ...
saved as files"): for one (model, weight-sparsity config, dataset) triple it
holds, per input sample and per layer, the simulated latency and the dynamic
sparsity the hardware monitor would observe.  The CSV round-trip mirrors the
artifact's ``hw_simulator`` CSV files.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ProfilingError


@dataclass(frozen=True)
class TraceSet:
    """Per-sample, per-layer runtime information of one profiled model.

    Attributes:
        model_name: Zoo model name.
        pattern_key: Weight-sparsity config key (``WeightSparsityConfig.key``).
        dataset: Dataset (or mixture) identifier the samples were drawn from.
        latencies: ``(n_samples, num_layers)`` latency matrix, seconds.
        sparsities: ``(n_samples, num_layers)`` monitored dynamic sparsity.
    """

    model_name: str
    pattern_key: str
    dataset: str
    latencies: np.ndarray
    sparsities: np.ndarray
    layer_names: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        lat = np.asarray(self.latencies, dtype=float)
        sp = np.asarray(self.sparsities, dtype=float)
        if lat.ndim != 2 or lat.shape != sp.shape:
            raise ProfilingError(
                f"latencies {lat.shape} and sparsities {sp.shape} must be equal 2-D shapes"
            )
        if lat.shape[0] == 0 or lat.shape[1] == 0:
            raise ProfilingError("trace set must contain at least one sample and layer")
        if (lat <= 0).any():
            raise ProfilingError("all layer latencies must be positive")
        if (sp < 0).any() or (sp > 1).any():
            raise ProfilingError("all sparsities must be in [0, 1]")
        if self.layer_names and len(self.layer_names) != lat.shape[1]:
            raise ProfilingError("layer_names length must match the layer dimension")
        object.__setattr__(self, "latencies", lat)
        object.__setattr__(self, "sparsities", sp)

    @property
    def key(self) -> str:
        """LUT key for this (model, pattern) pair."""
        return f"{self.model_name}/{self.pattern_key}"

    @property
    def num_samples(self) -> int:
        return int(self.latencies.shape[0])

    @property
    def num_layers(self) -> int:
        return int(self.latencies.shape[1])

    @property
    def isolated_latencies(self) -> np.ndarray:
        """Uninterrupted end-to-end latency per sample (sum over layers)."""
        return self.latencies.sum(axis=1)

    @property
    def avg_total_latency(self) -> float:
        """Average isolated latency — the static scheduler's LUT entry."""
        return float(self.isolated_latencies.mean())

    @property
    def avg_layer_latencies(self) -> np.ndarray:
        return self.latencies.mean(axis=0)

    @property
    def avg_layer_sparsities(self) -> np.ndarray:
        return self.sparsities.mean(axis=0)

    @property
    def network_sparsities(self) -> np.ndarray:
        """Per-sample network sparsity (mean over layers, Table 2)."""
        return self.sparsities.mean(axis=1)

    def save_csv(self, path: Union[str, Path]) -> None:
        """Write one row per (sample, layer): mirrors the artifact CSVs."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["model", "pattern", "dataset", "sample", "layer",
                             "latency_s", "sparsity"])
            for i in range(self.num_samples):
                for j in range(self.num_layers):
                    writer.writerow([
                        self.model_name, self.pattern_key, self.dataset, i, j,
                        repr(float(self.latencies[i, j])),
                        repr(float(self.sparsities[i, j])),
                    ])


def load_traceset_csv(path: Union[str, Path]) -> TraceSet:
    """Load a :class:`TraceSet` written by :meth:`TraceSet.save_csv`."""
    path = Path(path)
    rows = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            rows.append(row)
    if not rows:
        raise ProfilingError(f"{path}: empty trace file")
    model = rows[0]["model"]
    pattern = rows[0]["pattern"]
    dataset = rows[0]["dataset"]
    n_samples = max(int(r["sample"]) for r in rows) + 1
    n_layers = max(int(r["layer"]) for r in rows) + 1
    if len(rows) != n_samples * n_layers:
        raise ProfilingError(
            f"{path}: expected {n_samples * n_layers} rows, found {len(rows)}"
        )
    lat = np.empty((n_samples, n_layers))
    sp = np.empty((n_samples, n_layers))
    for r in rows:
        if r["model"] != model or r["pattern"] != pattern:
            raise ProfilingError(f"{path}: mixed models/patterns in one trace file")
        i, j = int(r["sample"]), int(r["layer"])
        lat[i, j] = float(r["latency_s"])
        sp[i, j] = float(r["sparsity"])
    return TraceSet(
        model_name=model, pattern_key=pattern, dataset=dataset,
        latencies=lat, sparsities=sp,
    )
