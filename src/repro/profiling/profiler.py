"""Phase-1 profiler: run each sparse model over its dataset on the target
accelerator model and record per-layer runtime information (paper Fig 7).

The equivalent of the paper's PyTorch-hook workflow: for every input sample we
draw the model's per-layer dynamic sparsity from the dataset profile, evaluate
the accelerator cost model on every layer, and store the resulting
``(latency, sparsity)`` matrices in a :class:`TraceSet`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.accel.base import Accelerator
from repro.accel.eyeriss import EyerissV2
from repro.accel.sanger import Sanger
from repro.errors import ProfilingError
from repro.models.graph import ModelFamily, ModelGraph
from repro.models.registry import ALL_ATTNN_MODELS, ALL_CNN_MODELS, build_model
from repro.profiling.trace import TraceSet
from repro.sparsity.datasets import activation_model_for, dataset_for, vision_mixture_for
from repro.sparsity.dynamic import mixture_sample
from repro.sparsity.patterns import DENSE, SparsityPattern, WeightSparsityConfig

#: The three weight-sparsity patterns applied to benchmark CNNs (Sec 3.2),
#: with rates representative of SparseZoo recipes.
DEFAULT_CNN_PATTERNS: Tuple[WeightSparsityConfig, ...] = (
    WeightSparsityConfig(SparsityPattern.RANDOM, rate=0.80),
    WeightSparsityConfig(SparsityPattern.NM_BLOCK, nm=(2, 8)),
    WeightSparsityConfig(SparsityPattern.CHANNEL, rate=0.60),
)

#: AttNNs are sparsified dynamically (attention threshold pruning), so their
#: weights stay dense (Sec 3.2).
DEFAULT_ATTNN_PATTERNS: Tuple[WeightSparsityConfig, ...] = (DENSE,)


def default_accelerator(family: ModelFamily) -> Accelerator:
    """The paper's accelerator choice per model family (Sec 3.3.2)."""
    if family is ModelFamily.CNN:
        return EyerissV2()
    return Sanger()


def profile_model(
    model: ModelGraph,
    weights: WeightSparsityConfig,
    accelerator: Optional[Accelerator] = None,
    *,
    dataset: Optional[str] = None,
    use_vision_mixture: bool = True,
    n_samples: int = 400,
    seed: int = 0,
) -> TraceSet:
    """Profile one (model, weight config) pair into a :class:`TraceSet`.

    Args:
        model: Zoo (or user-defined) model graph.
        weights: Static weight-sparsity configuration.
        accelerator: Cost model; defaults to the family's paper choice.
        dataset: Dataset name; defaults to the model's Table 3 binding.
        use_vision_mixture: For CNNs, mix in low-light ExDark/DarkFace inputs
            as in Sec 2.3.1 (ignored for language datasets).
        n_samples: Number of input samples to profile.
        seed: RNG seed; traces are deterministic given (model, weights, seed).
    """
    if n_samples <= 0:
        raise ProfilingError(f"n_samples must be positive, got {n_samples}")
    accelerator = accelerator or default_accelerator(model.family)
    rng = np.random.default_rng(seed)
    if dataset is None:
        dataset = dataset_for(model.name)
    if model.family is ModelFamily.CNN and use_vision_mixture:
        components, mix_weights = vision_mixture_for(model)
        sparsities = mixture_sample(components, mix_weights, n_samples, rng)
        dataset_label = f"{dataset}+lowlight"
    else:
        sparsities = activation_model_for(model, dataset).sample(n_samples, rng)
        dataset_label = dataset
    latencies = accelerator.model_latencies(model, weights, sparsities)
    return TraceSet(
        model_name=model.name,
        pattern_key=weights.key,
        dataset=dataset_label,
        latencies=latencies,
        sparsities=sparsities,
        layer_names=tuple(layer.name for layer in model.layers),
    )


def _patterns_for(family: ModelFamily) -> Tuple[WeightSparsityConfig, ...]:
    if family is ModelFamily.CNN:
        return DEFAULT_CNN_PATTERNS
    return DEFAULT_ATTNN_PATTERNS


@lru_cache(maxsize=8)
def benchmark_suite(
    family: str, n_samples: int = 400, seed: int = 0
) -> Dict[str, TraceSet]:
    """Profile the full sparse multi-DNN benchmark of one family.

    Args:
        family: ``"cnn"`` or ``"attnn"``.

    Returns:
        Mapping from trace key (``model/pattern``) to its :class:`TraceSet`.
        Cached: the suite backs every scheduling experiment of Sec 6.
    """
    fam = ModelFamily(family)
    names: Sequence[str] = ALL_CNN_MODELS if fam is ModelFamily.CNN else ALL_ATTNN_MODELS
    accelerator = default_accelerator(fam)
    suite: Dict[str, TraceSet] = {}
    for offset, name in enumerate(names):
        model = build_model(name)
        for p_idx, pattern in enumerate(_patterns_for(fam)):
            trace = profile_model(
                model,
                pattern,
                accelerator,
                n_samples=n_samples,
                seed=seed * 7919 + offset * 101 + p_idx,
            )
            suite[trace.key] = trace
    return suite
