"""Directory-based trace store.

The paper's evaluation pipeline materializes Phase-1 runtime information as
files consumed by Phase 2 (Fig 7: "saved as files"); the artifact ships them
as CSVs under ``hw_simulator``.  :class:`TraceStore` reproduces that
workflow: a directory of one CSV per (model, pattern) pair with an index,
usable both as an offline cache for the profiler and as the exchange format
between machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.errors import ProfilingError
from repro.profiling.trace import TraceSet, load_traceset_csv

_INDEX_NAME = "index.json"


class TraceStore:
    """A directory of trace-set CSVs with a JSON index.

    Layout::

        store_dir/
          index.json                 {"traces": {"bert/dense": "bert_dense.csv", ...}}
          bert_dense.csv
          resnet50_random0.80.csv
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- index handling ------------------------------------------------------

    def _index_path(self) -> Path:
        return self.root / _INDEX_NAME

    def _read_index(self) -> Dict[str, str]:
        path = self._index_path()
        if not path.exists():
            return {}
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ProfilingError(f"corrupt trace-store index at {path}: {exc}") from exc
        traces = payload.get("traces")
        if not isinstance(traces, dict):
            raise ProfilingError(f"malformed trace-store index at {path}")
        return traces

    def _write_index(self, index: Dict[str, str]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        self._index_path().write_text(
            json.dumps({"traces": dict(sorted(index.items()))}, indent=1)
        )

    # -- public API -----------------------------------------------------------

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._read_index()))

    def __contains__(self, key: str) -> bool:
        return key in self._read_index()

    def __len__(self) -> int:
        return len(self._read_index())

    def save(self, trace: TraceSet) -> Path:
        """Persist one trace set; returns the CSV path."""
        index = self._read_index()
        filename = f"{trace.key.replace('/', '_')}.csv"
        trace.save_csv(self.root / filename)
        index[trace.key] = filename
        self._write_index(index)
        return self.root / filename

    def save_suite(self, traces: Dict[str, TraceSet]) -> None:
        """Persist a whole benchmark suite."""
        for trace in traces.values():
            self.save(trace)

    def load(self, key: str) -> TraceSet:
        """Load one trace set by its ``model/pattern`` key."""
        index = self._read_index()
        if key not in index:
            raise ProfilingError(
                f"trace {key!r} not in store {self.root} "
                f"(available: {sorted(index)})"
            )
        trace = load_traceset_csv(self.root / index[key])
        if trace.key != key:
            raise ProfilingError(
                f"store corruption: {index[key]} contains {trace.key!r}, "
                f"index says {key!r}"
            )
        return trace

    def load_suite(self, keys: Optional[Iterator[str]] = None) -> Dict[str, TraceSet]:
        """Load several (default: all) trace sets as a suite dict."""
        wanted = list(keys) if keys is not None else list(self.keys())
        return {key: self.load(key) for key in wanted}
