"""CNN model zoo: ResNet-50, VGG-16, MobileNet(V1) and SSD300 (Table 3).

Layer shapes follow the original architectures at 224x224 (300x300 for SSD)
input resolution, so dense MAC totals match the published operation counts:
ResNet-50 ~4.1 GMACs, VGG-16 ~15.5 GMACs, MobileNetV1 ~0.57 GMACs and
SSD300-VGG ~15.6 GMACs.
"""

from __future__ import annotations

from typing import List

from repro.models.graph import (
    DynamicKind,
    Layer,
    ModelFamily,
    ModelGraph,
    conv_layer,
    fc_layer,
)


def build_vgg16() -> ModelGraph:
    """VGG-16: 13 conv layers (all ReLU-activated) + 3 FC layers."""
    cfg = [
        # (name, cin, cout, out_hw)
        ("conv1_1", 3, 64, 224),
        ("conv1_2", 64, 64, 224),
        ("conv2_1", 64, 128, 112),
        ("conv2_2", 128, 128, 112),
        ("conv3_1", 128, 256, 56),
        ("conv3_2", 256, 256, 56),
        ("conv3_3", 256, 256, 56),
        ("conv4_1", 256, 512, 28),
        ("conv4_2", 512, 512, 28),
        ("conv4_3", 512, 512, 28),
        ("conv5_1", 512, 512, 14),
        ("conv5_2", 512, 512, 14),
        ("conv5_3", 512, 512, 14),
    ]
    layers: List[Layer] = [
        conv_layer(name, cin, cout, 3, hw) for name, cin, cout, hw in cfg
    ]
    layers.append(fc_layer("fc6", 512 * 7 * 7, 4096))
    layers.append(fc_layer("fc7", 4096, 4096))
    layers.append(fc_layer("fc8", 4096, 1000, dynamic=DynamicKind.NONE))
    return ModelGraph(name="vgg16", family=ModelFamily.CNN, layers=tuple(layers))


def _bottleneck(
    layers: List[Layer], stage: str, idx: int, cin: int, mid: int, out_hw: int
) -> int:
    """Append a ResNet bottleneck (1x1 -> 3x3 -> 1x1); returns new channel count."""
    cout = mid * 4
    layers.append(conv_layer(f"{stage}_{idx}_conv1", cin, mid, 1, out_hw))
    layers.append(conv_layer(f"{stage}_{idx}_conv2", mid, mid, 3, out_hw))
    layers.append(conv_layer(f"{stage}_{idx}_conv3", mid, cout, 1, out_hw))
    if cin != cout:
        layers.append(
            conv_layer(f"{stage}_{idx}_down", cin, cout, 1, out_hw, dynamic=DynamicKind.NONE)
        )
    return cout


def build_resnet50() -> ModelGraph:
    """ResNet-50: stem + 4 stages of bottlenecks (3/4/6/3) + FC."""
    layers: List[Layer] = [conv_layer("stem", 3, 64, 7, 112)]
    stages = [
        # (stage name, blocks, mid channels, output spatial size)
        ("stage1", 3, 64, 56),
        ("stage2", 4, 128, 28),
        ("stage3", 6, 256, 14),
        ("stage4", 3, 512, 7),
    ]
    cin = 64
    for stage, blocks, mid, hw in stages:
        for b in range(blocks):
            cin = _bottleneck(layers, stage, b, cin, mid, hw)
    layers.append(fc_layer("fc", 2048, 1000, dynamic=DynamicKind.NONE))
    return ModelGraph(name="resnet50", family=ModelFamily.CNN, layers=tuple(layers))


def build_mobilenet() -> ModelGraph:
    """MobileNetV1 (1.0x, 224): 1 conv + 13 depthwise-separable blocks + FC."""
    layers: List[Layer] = [conv_layer("conv0", 3, 32, 3, 112)]
    blocks = [
        # (cin, cout, out_hw of the block output)
        (32, 64, 112),
        (64, 128, 56),
        (128, 128, 56),
        (128, 256, 28),
        (256, 256, 28),
        (256, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 1024, 7),
        (1024, 1024, 7),
    ]
    for i, (cin, cout, hw) in enumerate(blocks):
        layers.append(conv_layer(f"dw{i}", cin, cout, 3, hw, depthwise=True))
        layers.append(conv_layer(f"pw{i}", cin, cout, 1, hw))
    layers.append(fc_layer("fc", 1024, 1000, dynamic=DynamicKind.NONE))
    return ModelGraph(name="mobilenet", family=ModelFamily.CNN, layers=tuple(layers))


def build_ssd() -> ModelGraph:
    """SSD300 with VGG-16 backbone: base conv1-5 at 300x300, fc6/fc7 as
    dilated convs, extras conv8-11 and per-scale loc/conf heads."""
    base = [
        ("conv1_1", 3, 64, 300),
        ("conv1_2", 64, 64, 300),
        ("conv2_1", 64, 128, 150),
        ("conv2_2", 128, 128, 150),
        ("conv3_1", 128, 256, 75),
        ("conv3_2", 256, 256, 75),
        ("conv3_3", 256, 256, 75),
        ("conv4_1", 256, 512, 38),
        ("conv4_2", 512, 512, 38),
        ("conv4_3", 512, 512, 38),
        ("conv5_1", 512, 512, 19),
        ("conv5_2", 512, 512, 19),
        ("conv5_3", 512, 512, 19),
    ]
    layers: List[Layer] = [conv_layer(n, ci, co, 3, hw) for n, ci, co, hw in base]
    layers.append(conv_layer("fc6", 512, 1024, 3, 19))
    layers.append(conv_layer("fc7", 1024, 1024, 1, 19))
    extras = [
        ("conv8_1", 1024, 256, 1, 19),
        ("conv8_2", 256, 512, 3, 10),
        ("conv9_1", 512, 128, 1, 10),
        ("conv9_2", 128, 256, 3, 5),
        ("conv10_1", 256, 128, 1, 5),
        ("conv10_2", 128, 256, 3, 3),
        ("conv11_1", 256, 128, 1, 3),
        ("conv11_2", 128, 256, 3, 1),
    ]
    layers.extend(conv_layer(n, ci, co, k, hw) for n, ci, co, k, hw in extras)
    # Detection heads: (source channels, spatial size, default boxes per cell).
    heads = [
        (512, 38, 4),
        (1024, 19, 6),
        (512, 10, 6),
        (256, 5, 6),
        (256, 3, 4),
        (256, 1, 4),
    ]
    num_classes = 21
    for i, (cin, hw, boxes) in enumerate(heads):
        layers.append(
            conv_layer(f"loc{i}", cin, boxes * 4, 3, hw, dynamic=DynamicKind.NONE)
        )
        layers.append(
            conv_layer(f"conf{i}", cin, boxes * num_classes, 3, hw, dynamic=DynamicKind.NONE)
        )
    return ModelGraph(name="ssd", family=ModelFamily.CNN, layers=tuple(layers))
