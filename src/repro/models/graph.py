"""Layer-level intermediate representation of DNN models.

The paper's evaluation never touches activations or weights numerically: the
hardware simulators consume, per layer, the MAC count, the parameter count and
the sparsity acting on that layer.  This IR captures exactly that — each model
is a linear sequence of compute layers (the "layer-wise processing manner" of
Section 2.1), annotated with which kind of *dynamic* sparsity applies to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

from repro.errors import ModelError


class LayerKind(enum.Enum):
    """Compute-layer taxonomy used by the accelerator cost models."""

    CONV = "conv"
    DWCONV = "dwconv"  # depthwise convolution
    FC = "fc"
    ATTN_QKV = "attn_qkv"  # Q/K/V projections
    ATTN_SCORE = "attn_score"  # Q @ K^T
    ATTN_CONTEXT = "attn_context"  # softmax(S) @ V
    ATTN_OUT = "attn_out"  # output projection
    FFN = "ffn"  # transformer feed-forward matmul


class DynamicKind(enum.Enum):
    """Which source of input-dependent sparsity affects a layer (Sec 2.3.1)."""

    NONE = "none"
    RELU = "relu"  # ReLU-induced activation sparsity (CNNs)
    ATTENTION = "attention"  # dynamic attention pruning (AttNNs)


class ModelFamily(enum.Enum):
    """Benchmark model family; selects the target accelerator (Sec 3.3.2)."""

    CNN = "cnn"
    ATTNN = "attnn"


@dataclass(frozen=True)
class Layer:
    """One schedulable compute layer.

    Attributes:
        name: Unique layer name within the model.
        kind: Compute taxonomy entry; drives the accelerator cost model.
        macs: Dense multiply-accumulate count of the layer.
        params: Weight-parameter count (0 for weight-less ops like QK^T).
        dynamic: Which kind of runtime sparsity modulates this layer.
        prunable: Whether static weight-pruning patterns apply to the layer.
        kernel / cin / cout / out_hw: Optional shape metadata (0 = unknown),
            populated by the conv/fc builders and consumed by the detailed
            dataflow-mapping accelerator modes.
    """

    name: str
    kind: LayerKind
    macs: int
    params: int
    dynamic: DynamicKind = DynamicKind.NONE
    prunable: bool = True
    kernel: int = 0
    cin: int = 0
    cout: int = 0
    out_hw: int = 0

    def __post_init__(self) -> None:
        if self.macs <= 0:
            raise ModelError(f"layer {self.name!r}: macs must be positive, got {self.macs}")
        if self.params < 0:
            raise ModelError(f"layer {self.name!r}: params must be >= 0, got {self.params}")
        for field_name in ("kernel", "cin", "cout", "out_hw"):
            if getattr(self, field_name) < 0:
                raise ModelError(f"layer {self.name!r}: {field_name} must be >= 0")

    @property
    def has_shape(self) -> bool:
        """Whether conv-style shape metadata is available."""
        return self.kernel > 0 and self.cin > 0 and self.cout > 0 and self.out_hw > 0


@dataclass(frozen=True)
class ModelGraph:
    """A model as an ordered sequence of compute layers.

    The execution/scheduling granularity of the whole system is one entry of
    ``layers`` (paper Sec 4.2.2: the dynamic scheduler is invoked whenever one
    layer or layer block completes).
    """

    name: str
    family: ModelFamily
    layers: Tuple[Layer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ModelError(f"model {self.name!r} has no layers")
        seen = set()
        for layer in self.layers:
            if layer.name in seen:
                raise ModelError(f"model {self.name!r}: duplicate layer name {layer.name!r}")
            seen.add(layer.name)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.params for layer in self.layers)

    @property
    def dynamic_layer_indices(self) -> Tuple[int, ...]:
        """Indices of layers carrying input-dependent sparsity."""
        return tuple(
            i for i, layer in enumerate(self.layers) if layer.dynamic is not DynamicKind.NONE
        )

    def layer_macs(self) -> Sequence[int]:
        return [layer.macs for layer in self.layers]


def conv_layer(
    name: str,
    cin: int,
    cout: int,
    kernel: int,
    out_hw: int,
    *,
    depthwise: bool = False,
    dynamic: DynamicKind = DynamicKind.RELU,
) -> Layer:
    """Build a convolution layer from its shape.

    MACs are ``K*K*Cin*Cout*OH*OW`` (``K*K*C*OH*OW`` for depthwise) — the
    standard dense operation count the paper normalizes against in Fig 4.
    """
    if depthwise:
        macs = kernel * kernel * cin * out_hw * out_hw
        params = kernel * kernel * cin
        kind = LayerKind.DWCONV
    else:
        macs = kernel * kernel * cin * cout * out_hw * out_hw
        params = kernel * kernel * cin * cout
        kind = LayerKind.CONV
    return Layer(
        name=name, kind=kind, macs=macs, params=params, dynamic=dynamic,
        kernel=kernel, cin=cin, cout=cout, out_hw=out_hw,
    )


def fc_layer(name: str, cin: int, cout: int, *, dynamic: DynamicKind = DynamicKind.RELU) -> Layer:
    return Layer(
        name=name, kind=LayerKind.FC, macs=cin * cout, params=cin * cout,
        dynamic=dynamic, kernel=1, cin=cin, cout=cout, out_hw=1,
    )
