"""Inception-family models: GoogLeNet (Inception-v1) and Inception-V3.

These two models appear in the paper's *profiling* study (Table 2: relative
range of network sparsity) rather than the scheduling workloads of Table 3,
so they live in their own module and are excluded from the scheduling
line-up but available through the registry for profiling experiments.
"""

from __future__ import annotations

from typing import List

from repro.models.graph import Layer, ModelFamily, ModelGraph, conv_layer, fc_layer
from repro.models.graph import DynamicKind


def _inception_v1_module(
    layers: List[Layer], name: str, cin: int, hw: int,
    b1: int, b2r: int, b2: int, b3r: int, b3: int, b4: int,
) -> int:
    """GoogLeNet inception module: 1x1 | 1x1->3x3 | 1x1->5x5 | pool->1x1."""
    layers.append(conv_layer(f"{name}_b1", cin, b1, 1, hw))
    layers.append(conv_layer(f"{name}_b2_reduce", cin, b2r, 1, hw))
    layers.append(conv_layer(f"{name}_b2", b2r, b2, 3, hw))
    layers.append(conv_layer(f"{name}_b3_reduce", cin, b3r, 1, hw))
    layers.append(conv_layer(f"{name}_b3", b3r, b3, 5, hw))
    layers.append(conv_layer(f"{name}_b4_proj", cin, b4, 1, hw))
    return b1 + b2 + b3 + b4


def build_googlenet() -> ModelGraph:
    """GoogLeNet (Inception-v1) at 224x224: stem + 9 inception modules + FC."""
    layers: List[Layer] = [
        conv_layer("conv1", 3, 64, 7, 112),
        conv_layer("conv2_reduce", 64, 64, 1, 56),
        conv_layer("conv2", 64, 192, 3, 56),
    ]
    modules = [
        # (name, hw, b1, b2r, b2, b3r, b3, b4)
        ("inc3a", 28, 64, 96, 128, 16, 32, 32),
        ("inc3b", 28, 128, 128, 192, 32, 96, 64),
        ("inc4a", 14, 192, 96, 208, 16, 48, 64),
        ("inc4b", 14, 160, 112, 224, 24, 64, 64),
        ("inc4c", 14, 128, 128, 256, 24, 64, 64),
        ("inc4d", 14, 112, 144, 288, 32, 64, 64),
        ("inc4e", 14, 256, 160, 320, 32, 128, 128),
        ("inc5a", 7, 256, 160, 320, 32, 128, 128),
        ("inc5b", 7, 384, 192, 384, 48, 128, 128),
    ]
    cin = 192
    for name, hw, b1, b2r, b2, b3r, b3, b4 in modules:
        cin = _inception_v1_module(layers, name, cin, hw, b1, b2r, b2, b3r, b3, b4)
    layers.append(fc_layer("fc", 1024, 1000, dynamic=DynamicKind.NONE))
    return ModelGraph(name="googlenet", family=ModelFamily.CNN, layers=tuple(layers))


def _inception_a(layers: List[Layer], name: str, cin: int, hw: int, pool_proj: int) -> int:
    """Inception-V3 module A (35x35): 1x1 | 1x1->5x5 | 1x1->3x3->3x3 | pool->1x1."""
    layers.append(conv_layer(f"{name}_b1", cin, 64, 1, hw))
    layers.append(conv_layer(f"{name}_b5_reduce", cin, 48, 1, hw))
    layers.append(conv_layer(f"{name}_b5", 48, 64, 5, hw))
    layers.append(conv_layer(f"{name}_b3_reduce", cin, 64, 1, hw))
    layers.append(conv_layer(f"{name}_b3a", 64, 96, 3, hw))
    layers.append(conv_layer(f"{name}_b3b", 96, 96, 3, hw))
    layers.append(conv_layer(f"{name}_pool_proj", cin, pool_proj, 1, hw))
    return 64 + 64 + 96 + pool_proj


def _inception_b(layers: List[Layer], name: str, cin: int, hw: int, mid: int) -> int:
    """Inception-V3 module B (17x17): factorized 7x7 branches (as 1x7 + 7x1,
    modeled as two 7-tap convs with k*1 cost via kernel=7 on one axis)."""
    # A 1x7 convolution has K*Cin*Cout*OH*OW MACs with K=7: model it as a
    # kernel-7 conv at 1/7th the k*k cost by folding into cin scaling.
    def conv1x7(tag: str, ci: int, co: int) -> Layer:
        layer = conv_layer(f"{name}_{tag}", ci, co, 1, hw)
        # conv_layer gives 1x1 cost ci*co*hw^2; a 1x7 costs 7x that.
        return Layer(
            name=layer.name, kind=layer.kind, macs=layer.macs * 7,
            params=layer.params * 7, dynamic=layer.dynamic,
        )

    layers.append(conv_layer(f"{name}_b1", cin, 192, 1, hw))
    layers.append(conv_layer(f"{name}_b7_reduce", cin, mid, 1, hw))
    layers.append(conv1x7("b7_a", mid, mid))
    layers.append(conv1x7("b7_b", mid, 192))
    layers.append(conv_layer(f"{name}_b77_reduce", cin, mid, 1, hw))
    layers.append(conv1x7("b77_a", mid, mid))
    layers.append(conv1x7("b77_b", mid, mid))
    layers.append(conv1x7("b77_c", mid, mid))
    layers.append(conv1x7("b77_d", mid, 192))
    layers.append(conv_layer(f"{name}_pool_proj", cin, 192, 1, hw))
    return 192 * 4


def _inception_c(layers: List[Layer], name: str, cin: int, hw: int) -> int:
    """Inception-V3 module C (8x8): expanded 3x3 branches."""
    layers.append(conv_layer(f"{name}_b1", cin, 320, 1, hw))
    layers.append(conv_layer(f"{name}_b3_reduce", cin, 384, 1, hw))
    layers.append(conv_layer(f"{name}_b3_a", 384, 384, 3, hw))
    layers.append(conv_layer(f"{name}_b3_b", 384, 384, 3, hw))
    layers.append(conv_layer(f"{name}_b33_reduce", cin, 448, 1, hw))
    layers.append(conv_layer(f"{name}_b33_a", 448, 384, 3, hw))
    layers.append(conv_layer(f"{name}_b33_b", 384, 384, 3, hw))
    layers.append(conv_layer(f"{name}_b33_c", 384, 384, 3, hw))
    layers.append(conv_layer(f"{name}_pool_proj", cin, 192, 1, hw))
    return 320 + 768 + 768 + 192


def build_inception_v3() -> ModelGraph:
    """Inception-V3 at 299x299: stem + 3xA + reduction + 4xB + reduction +
    2xC + FC (auxiliary head omitted: inference-time graph)."""
    layers: List[Layer] = [
        conv_layer("stem_conv1", 3, 32, 3, 149),
        conv_layer("stem_conv2", 32, 32, 3, 147),
        conv_layer("stem_conv3", 32, 64, 3, 147),
        conv_layer("stem_conv4", 64, 80, 1, 73),
        conv_layer("stem_conv5", 80, 192, 3, 71),
    ]
    cin = 192
    for i, pool_proj in enumerate((32, 64, 64)):
        cin = _inception_a(layers, f"mixA{i}", cin, 35, pool_proj)
    # Reduction A (grid 35 -> 17).
    layers.append(conv_layer("redA_b3", cin, 384, 3, 17))
    layers.append(conv_layer("redA_b33_reduce", cin, 64, 1, 35))
    layers.append(conv_layer("redA_b33_a", 64, 96, 3, 35))
    layers.append(conv_layer("redA_b33_b", 96, 96, 3, 17))
    cin = 384 + 96 + cin  # concat with pooled input
    for i, mid in enumerate((128, 160, 160, 192)):
        cin = _inception_b(layers, f"mixB{i}", cin, 17, mid)
    # Reduction B (grid 17 -> 8).
    layers.append(conv_layer("redB_b3_reduce", cin, 192, 1, 17))
    layers.append(conv_layer("redB_b3", 192, 320, 3, 8))
    layers.append(conv_layer("redB_b7_reduce", cin, 192, 1, 17))
    layers.append(conv_layer("redB_b7_a", 192, 192, 3, 17))
    layers.append(conv_layer("redB_b7_b", 192, 192, 3, 8))
    cin = 320 + 192 + cin
    for i in range(2):
        cin = _inception_c(layers, f"mixC{i}", cin, 8)
    layers.append(fc_layer("fc", 2048, 1000, dynamic=DynamicKind.NONE))
    return ModelGraph(name="inception_v3", family=ModelFamily.CNN, layers=tuple(layers))
