"""Name -> builder registry for the benchmark model zoo."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ModelError
from repro.models.attnn_zoo import build_bart, build_bert, build_gpt2
from repro.models.cnn_zoo import build_mobilenet, build_resnet50, build_ssd, build_vgg16
from repro.models.graph import ModelGraph
from repro.models.inception_zoo import build_googlenet, build_inception_v3

_BUILDERS: Dict[str, Callable[[], ModelGraph]] = {
    "resnet50": build_resnet50,
    "vgg16": build_vgg16,
    "mobilenet": build_mobilenet,
    "ssd": build_ssd,
    "googlenet": build_googlenet,
    "inception_v3": build_inception_v3,
    "bert": build_bert,
    "gpt2": build_gpt2,
    "bart": build_bart,
}

#: Scheduling-workload line-ups (paper Table 3).
ALL_CNN_MODELS = ("ssd", "resnet50", "vgg16", "mobilenet")
ALL_ATTNN_MODELS = ("bert", "bart", "gpt2")

#: Profiling-study line-up of Table 2 (network-sparsity relative range).
TABLE2_MODELS = ("googlenet", "vgg16", "inception_v3", "resnet50")

_CACHE: Dict[str, ModelGraph] = {}


def list_models() -> List[str]:
    """Names of every model in the benchmark zoo."""
    return sorted(_BUILDERS)


def build_model(name: str) -> ModelGraph:
    """Build (and memoize — graphs are immutable) a zoo model by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ModelError(f"unknown model {name!r}; available: {list_models()}") from None
    if name not in _CACHE:
        _CACHE[name] = builder()
    return _CACHE[name]
