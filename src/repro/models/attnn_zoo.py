"""Attention-based model zoo: BERT-base, GPT-2 (small) and BART-base (Table 3).

Each transformer block is expanded into its schedulable matmul layers:
QKV projections, the attention score (Q @ K^T) and context (P @ V) matmuls,
the output projection and the two FFN matmuls.  All of them carry *dynamic
attention sparsity* (paper Fig 1(c)): threshold pruning a la Sanger/SpAtten
removes attention elements (score/context scale with attention density) and
cascades token pruning into the surrounding projections/FFNs — which is why
the paper observes whole-model latency swinging 0.6x-1.8x across inputs
(Fig 2).  How strongly each layer kind responds to the sparsity is decided by
the accelerator model (:class:`repro.accel.sanger.Sanger`).

Sequence lengths follow the paper's evaluation datasets: 384 for BERT (SQuAD),
256 for GPT-2 (GLUE-style prompts) and 512 for BART (machine translation).
"""

from __future__ import annotations

from typing import List

from repro.models.graph import DynamicKind, Layer, LayerKind, ModelFamily, ModelGraph


def _attention_block(
    layers: List[Layer], prefix: str, hidden: int, seq: int, *, cross: bool = False
) -> None:
    """Append one multi-head self- (or cross-) attention sub-block."""
    tag = "xattn" if cross else "attn"
    layers.append(
        Layer(
            name=f"{prefix}_{tag}_qkv",
            kind=LayerKind.ATTN_QKV,
            macs=3 * hidden * hidden * seq,
            params=3 * hidden * hidden,
            dynamic=DynamicKind.ATTENTION,
        )
    )
    layers.append(
        Layer(
            name=f"{prefix}_{tag}_score",
            kind=LayerKind.ATTN_SCORE,
            macs=seq * seq * hidden,
            params=0,
            dynamic=DynamicKind.ATTENTION,
            prunable=False,
        )
    )
    layers.append(
        Layer(
            name=f"{prefix}_{tag}_context",
            kind=LayerKind.ATTN_CONTEXT,
            macs=seq * seq * hidden,
            params=0,
            dynamic=DynamicKind.ATTENTION,
            prunable=False,
        )
    )
    layers.append(
        Layer(
            name=f"{prefix}_{tag}_out",
            kind=LayerKind.ATTN_OUT,
            macs=hidden * hidden * seq,
            params=hidden * hidden,
            dynamic=DynamicKind.ATTENTION,
        )
    )


def _ffn_block(layers: List[Layer], prefix: str, hidden: int, seq: int, ratio: int = 4) -> None:
    inner = hidden * ratio
    layers.append(
        Layer(
            name=f"{prefix}_ffn1",
            kind=LayerKind.FFN,
            macs=hidden * inner * seq,
            params=hidden * inner,
            dynamic=DynamicKind.ATTENTION,
        )
    )
    layers.append(
        Layer(
            name=f"{prefix}_ffn2",
            kind=LayerKind.FFN,
            macs=inner * hidden * seq,
            params=inner * hidden,
            dynamic=DynamicKind.ATTENTION,
        )
    )


def _encoder_stack(name: str, blocks: int, hidden: int, seq: int) -> List[Layer]:
    layers: List[Layer] = []
    for b in range(blocks):
        prefix = f"{name}{b}"
        _attention_block(layers, prefix, hidden, seq)
        _ffn_block(layers, prefix, hidden, seq)
    return layers


def _variant_name(base: str, seq: int, default_seq: int) -> str:
    """Default-seq builds keep the canonical name (Table 3 identity)."""
    return base if seq == default_seq else f"{base}_s{seq}"


def build_bert(seq: int = 384) -> ModelGraph:
    """BERT-base: 12 encoder blocks, hidden 768, default seq 384 (SQuAD).

    ``seq`` parameterizes the padded sequence length: attention layers scale
    quadratically and projections linearly, so shorter prompts are genuinely
    cheaper — the workload-heterogeneity extension of
    ``bench_ext_seq_length.py``.
    """
    layers = _encoder_stack("enc", blocks=12, hidden=768, seq=seq)
    return ModelGraph(name=_variant_name("bert", seq, 384),
                      family=ModelFamily.ATTNN, layers=tuple(layers))


def build_gpt2(seq: int = 256) -> ModelGraph:
    """GPT-2 small: 12 decoder blocks, hidden 768, default seq 256 (GLUE)."""
    layers = _encoder_stack("dec", blocks=12, hidden=768, seq=seq)
    return ModelGraph(name=_variant_name("gpt2", seq, 256),
                      family=ModelFamily.ATTNN, layers=tuple(layers))


def build_bart(seq: int = 512) -> ModelGraph:
    """BART-base: 6 encoder + 6 decoder blocks (decoder adds cross-attention),
    hidden 768, default seq 512 (machine translation)."""
    hidden = 768
    layers = _encoder_stack("enc", blocks=6, hidden=hidden, seq=seq)
    for b in range(6):
        prefix = f"dec{b}"
        _attention_block(layers, prefix, hidden, seq)
        _attention_block(layers, prefix, hidden, seq, cross=True)
        _ffn_block(layers, prefix, hidden, seq)
    return ModelGraph(name=_variant_name("bart", seq, 512),
                      family=ModelFamily.ATTNN, layers=tuple(layers))
