"""Layer-level DNN model IR and the benchmark model zoo (Table 3 of the paper)."""

from repro.models.graph import DynamicKind, Layer, LayerKind, ModelFamily, ModelGraph
from repro.models.registry import ALL_ATTNN_MODELS, ALL_CNN_MODELS, build_model, list_models

__all__ = [
    "DynamicKind",
    "Layer",
    "LayerKind",
    "ModelFamily",
    "ModelGraph",
    "ALL_ATTNN_MODELS",
    "ALL_CNN_MODELS",
    "build_model",
    "list_models",
]
