"""Sparse-DySta reproduction: sparsity-aware dynamic & static scheduling for
sparse multi-DNN workloads (Fan et al., MICRO 2023).

Typical usage — profile the benchmark, generate a workload, schedule it::

    from repro import (
        ModelInfoLUT, WorkloadSpec, benchmark_suite, generate_workload,
        make_scheduler, simulate,
    )

    traces = benchmark_suite("attnn", n_samples=200, seed=0)
    lut = ModelInfoLUT(traces)
    requests = generate_workload(traces, WorkloadSpec(arrival_rate=30.0,
                                                      n_requests=500, seed=1))
    result = simulate(requests, make_scheduler("dysta", lut))
    print(result.antt, result.violation_rate)

Beyond the paper, :mod:`repro.cluster` serves the same workloads on
heterogeneous accelerator pools (routing, admission control, autoscaling
with cost accounting, streaming metrics) and :mod:`repro.scenarios` shapes
the traffic (diurnal/flash-crowd curves, trace replay, parallel sweeps) —
see ``docs/architecture.md`` for the layer map.
"""

from repro.errors import (
    HardwareModelError,
    ModelError,
    ProfilingError,
    ReproError,
    SchedulingError,
    SparsityError,
)
from repro.models import ModelGraph, build_model, list_models
from repro.sparsity import SparsityPattern, WeightSparsityConfig
from repro.accel import EyerissV2, Sanger
from repro.profiling import TraceSet, benchmark_suite, profile_model
from repro.core import DystaScheduler, ModelInfoLUT, PredictorStrategy, SparseLatencyPredictor
from repro.schedulers import available_schedulers, make_scheduler
from repro.sim import SimResult, WorkloadSpec, generate_workload, iter_workload, simulate
from repro.cluster import (
    AdmissionController,
    ClusterResult,
    Pool,
    StreamingMetrics,
    make_router,
    simulate_cluster,
)
from repro.scenarios import (
    Phase,
    ScenarioSpec,
    SweepConfig,
    build_scenario,
    generate_scenario,
    iter_scenario,
    replay_trace,
    run_sweep,
)

__version__ = "0.1.0"

__all__ = [
    "ReproError",
    "ModelError",
    "SparsityError",
    "ProfilingError",
    "SchedulingError",
    "HardwareModelError",
    "ModelGraph",
    "build_model",
    "list_models",
    "SparsityPattern",
    "WeightSparsityConfig",
    "EyerissV2",
    "Sanger",
    "TraceSet",
    "benchmark_suite",
    "profile_model",
    "DystaScheduler",
    "ModelInfoLUT",
    "PredictorStrategy",
    "SparseLatencyPredictor",
    "available_schedulers",
    "make_scheduler",
    "SimResult",
    "WorkloadSpec",
    "generate_workload",
    "iter_workload",
    "simulate",
    "AdmissionController",
    "ClusterResult",
    "Pool",
    "StreamingMetrics",
    "make_router",
    "simulate_cluster",
    "Phase",
    "ScenarioSpec",
    "SweepConfig",
    "build_scenario",
    "generate_scenario",
    "iter_scenario",
    "replay_trace",
    "run_sweep",
    "__version__",
]
