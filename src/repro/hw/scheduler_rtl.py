"""Composable designs of the Dysta hardware scheduler (paper Sec 5.2).

Three variants reproduce the optimization ladder of Fig 16:

* **NON_OPT_FP32** — naive implementation: separate compute units for the
  sparsity coefficient (Fig 11(a): Div + Mult) and the score update
  (Fig 11(b): 2x Sub, Div, 2x Mult, 2x Add), all FP32 with real dividers.
* **OPT_FP32** — the shared *reconfigurable compute unit* (Fig 10, right):
  the two dataflows are time-multiplexed on 3 multipliers, 1 adder and
  1 subtractor steered by muxes/demux; both divisions disappear by
  pre-computing reciprocals offline (Sec 5.2.2) into the LUT memories.
* **OPT_FP16** — the reconfigurable unit in half precision.

Each design also instantiates the per-request FIFOs (tag, score, SLO — depth
= max in-flight requests, a synthesis parameter) and the three model-info LUT
memories (latency, sparsity, shape-reciprocal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.errors import HardwareModelError
from repro.hw.components import (
    DataType,
    ResourceCost,
    ZERO_COST,
    control_cost,
    fifo_cost,
    lut_memory_cost,
    mux_cost,
    primitive_cost,
)

#: Model-info LUT entries: one per (model, pattern) pair; the benchmark has
#: 4 CNNs x 3 patterns + 3 AttNNs = 15; leave headroom for 32.
DEFAULT_LUT_ENTRIES = 32

#: Tag width: request id + model-pattern index.
TAG_BITS = 16


class DesignVariant(enum.Enum):
    """The three design points of the Fig 16 optimization ladder."""

    NON_OPT_FP32 = "Non_Opt_FP32"
    OPT_FP32 = "Opt_FP32"
    OPT_FP16 = "Opt_FP16"

    @property
    def dtype(self) -> DataType:
        return DataType.FP16 if self is DesignVariant.OPT_FP16 else DataType.FP32

    @property
    def shared_compute_unit(self) -> bool:
        return self is not DesignVariant.NON_OPT_FP32


@dataclass(frozen=True)
class SchedulerDesign:
    """One synthesizable configuration of the hardware scheduler."""

    variant: DesignVariant
    fifo_depth: int
    lut_entries: int = DEFAULT_LUT_ENTRIES

    def __post_init__(self) -> None:
        if self.fifo_depth <= 0:
            raise HardwareModelError(f"FIFO depth must be positive, got {self.fifo_depth}")
        if self.lut_entries <= 0:
            raise HardwareModelError(f"LUT entries must be positive, got {self.lut_entries}")

    # -- compute units -------------------------------------------------------

    def _compute_unit(self) -> ResourceCost:
        dtype = self.variant.dtype
        if not self.variant.shared_compute_unit:
            # Separate units, real dividers (Fig 11 (a)+(b) instantiated).
            coef_unit = primitive_cost("div", dtype) + primitive_cost("mult", dtype)
            score_unit = (
                primitive_cost("sub", dtype).scaled(2)
                + primitive_cost("div", dtype)
                + primitive_cost("mult", dtype).scaled(2)
                + primitive_cost("add", dtype).scaled(2)
            )
            return coef_unit + score_unit
        # Shared reconfigurable unit: 3 mults (divisions become multiplies by
        # offline reciprocals), 1 add, 1 sub, steering muxes + demux.
        unit = (
            primitive_cost("mult", dtype).scaled(3)
            + primitive_cost("add", dtype)
            + primitive_cost("sub", dtype)
        )
        steering = mux_cost(dtype).scaled(5) + mux_cost(dtype)  # 5 muxes + demux
        return unit + steering

    # -- storage --------------------------------------------------------------

    def _fifos(self) -> ResourceCost:
        dtype = self.variant.dtype
        tags = fifo_cost(self.fifo_depth, TAG_BITS)
        scores = fifo_cost(self.fifo_depth, dtype.bits)
        slos = fifo_cost(self.fifo_depth, dtype.bits)
        return tags + scores + slos

    def _lut_memories(self) -> ResourceCost:
        dtype = self.variant.dtype
        total = ZERO_COST
        for _table in ("latency", "sparsity", "shape_reciprocal"):
            total = total + lut_memory_cost(self.lut_entries, dtype.bits)
        return total

    # -- totals ---------------------------------------------------------------

    def resources(self) -> ResourceCost:
        """Synthesized resource vector of the full scheduler module."""
        return (
            self._compute_unit()
            + self._fifos()
            + self._lut_memories()
            + control_cost(self.variant.dtype)
        )

    def breakdown(self) -> Dict[str, ResourceCost]:
        """Per-component resource map (compute / fifos / luts / control)."""
        return {
            "compute_unit": self._compute_unit(),
            "fifos": self._fifos(),
            "lut_memories": self._lut_memories(),
            "control": control_cost(self.variant.dtype),
        }


def build_design(variant: DesignVariant, fifo_depth: int = 64) -> SchedulerDesign:
    """Convenience constructor used by the Fig 16 / Table 6 benches."""
    return SchedulerDesign(variant=variant, fifo_depth=fifo_depth)
