"""Functional, cycle-counted model of the Dysta hardware scheduler datapath.

This module models what the SystemVerilog design of Sec 5.2 *does* (Figs 10
and 11), complementing :mod:`repro.hw.scheduler_rtl` (what it *costs*) and
:mod:`repro.hw.timing` (how long it takes):

* request FIFOs track tag / score / SLO words;
* LUT memories hold, per (model, pattern) entry, the offline averages —
  including every division pre-computed as a reciprocal, which is exactly
  how the Opt designs eliminate their dividers (Sec 5.2.2);
* a reconfigurable compute unit executes the two dataflows of Fig 11:
  (a) sparsity coefficient from the zero-counting monitor, and
  (b) score update, with every arithmetic step rounded to the scheduler's
  FP16 word and counted as one pipelined cycle;
* the controller scans the queue, keeps the running argmin, and dispatches.

The selection this model produces is tested for equivalence against the
software :class:`repro.core.dysta.DystaScheduler` — the hardware is a
faithful implementation of Algorithm 2/3, not a separate policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.errors import HardwareModelError
from repro.sim.request import Request


def fp16(value: float) -> float:
    """Round to the scheduler's half-precision word."""
    return float(np.float16(value))


class HardwareFIFO:
    """Bounded FIFO of (tag, payload) words."""

    def __init__(self, depth: int):
        if depth <= 0:
            raise HardwareModelError(f"FIFO depth must be positive, got {depth}")
        self.depth = depth
        self._entries: List[Tuple[int, float]] = []

    def push(self, tag: int, payload: float) -> None:
        if len(self._entries) >= self.depth:
            raise HardwareModelError("FIFO overflow: more requests than FIFO depth")
        self._entries.append((tag, payload))

    def pop_tag(self, tag: int) -> None:
        for i, (t, _) in enumerate(self._entries):
            if t == tag:
                del self._entries[i]
                return
        raise HardwareModelError(f"tag {tag} not present in FIFO")

    def __len__(self) -> int:
        return len(self._entries)

    def tags(self) -> List[int]:
        return [t for t, _ in self._entries]


@dataclass
class ModelInfoEntry:
    """One LUT-memory entry: offline averages with pre-computed reciprocals.

    All stored words are FP16, as cached by the hardware LUTs.
    """

    avg_total_latency: float
    remaining_suffix: Tuple[float, ...]  # per-layer remaining avg latency
    avg_density_reciprocal: Tuple[float, ...]  # 1/(1 - avg sparsity) per layer
    isolated_reciprocal: float  # 1 / avg isolated latency
    density_slope: float


def build_lut_memories(lut: ModelInfoLUT) -> Dict[str, ModelInfoEntry]:
    """Populate the hardware LUT memories from the software model-info LUT.

    This is the static scheduler's "Model Info Update" path in Fig 8: every
    divider operand is inverted offline so the datapath only multiplies.
    """
    entries = {}
    for key in lut.keys:
        layers = lut.num_layers(key)
        avg_sp = lut.avg_layer_sparsities(key)
        entries[key] = ModelInfoEntry(
            avg_total_latency=fp16(lut.avg_total_latency(key)),
            remaining_suffix=tuple(
                fp16(lut.static_remaining(key, j)) for j in range(layers + 1)
            ),
            avg_density_reciprocal=tuple(
                fp16(1.0 / max(1.0 - float(s), 1e-3)) for s in avg_sp
            ),
            isolated_reciprocal=fp16(1.0 / max(lut.avg_total_latency(key), 1e-9)),
            density_slope=fp16(lut.density_slope(key)),
        )
    return entries


@dataclass
class ComputeUnitTrace:
    """Cycle accounting of the reconfigurable compute unit."""

    coef_ops: int = 0
    score_ops: int = 0

    @property
    def total_cycles(self) -> int:
        # Fully pipelined: one op issues per cycle.
        return self.coef_ops + self.score_ops


class ReconfigurableComputeUnit:
    """The shared mult/add/sub unit of Fig 10 (right) with its two modes."""

    def __init__(self) -> None:
        self.trace = ComputeUnitTrace()

    # -- Fig 11 (a)/(c): sparsity coefficient ------------------------------

    def sparsity_coefficient(
        self,
        num_zeros: float,
        shape_reciprocal: float,
        avg_density_reciprocal: float,
        density_slope: float,
    ) -> float:
        """gamma_eff from the monitor's zero count.

        Dataflow: sparsity = num_zeros * (1/shape); density = 1 - sparsity;
        gamma_raw = density * (1/avg_density); gamma_eff folds the
        hardware-effectiveness slope: 1 + slope * (gamma_raw - 1).
        """
        sparsity = fp16(num_zeros * shape_reciprocal)  # Mult
        density = fp16(1.0 - sparsity)  # Sub
        gamma_raw = fp16(density * avg_density_reciprocal)  # Mult
        delta = fp16(gamma_raw - 1.0)  # Sub
        gamma_eff = fp16(1.0 + fp16(density_slope * delta))  # Mult + Add
        self.trace.coef_ops += 6
        return max(gamma_eff, 1e-3)

    # -- Fig 11 (b)/(d): score update ---------------------------------------

    def score(
        self,
        gamma_eff: float,
        remaining_avg: float,
        deadline: float,
        now: float,
        isolated: float,
        isolated_reciprocal: float,
        wait: float,
        queue_reciprocal: float,
        eta: float,
    ) -> Tuple[float, float]:
        """(score, predicted remaining) for one queued request."""
        remaining = fp16(gamma_eff * remaining_avg)  # Mult
        slack = fp16(fp16(deadline - now) - remaining)  # Sub, Sub
        slack = max(slack, fp16(-isolated))  # bounded-urgency clamp
        norm_wait = fp16(wait * isolated_reciprocal)  # Mult (recip offline)
        penalty = fp16(norm_wait * queue_reciprocal)  # Mult (recip ROM)
        weighted = fp16(eta * fp16(slack + penalty))  # Add, Mult
        score = fp16(remaining + weighted)  # Add
        self.trace.score_ops += 8
        return score, remaining


@dataclass
class HardwareDystaScheduler:
    """Controller + FIFOs + LUTs + compute unit: the full Fig 10 module.

    Functional mirror of ``DystaScheduler`` (Algorithm 2) in FP16 hardware
    arithmetic; `select` returns the dispatched request plus the decision's
    cycle count.
    """

    lut: ModelInfoLUT
    fifo_depth: int = 64
    eta: float = 0.02
    #: Reciprocal ROM for 1/|Q| (the Fig 11(b) Div folded into a lookup).
    _queue_reciprocal_rom: Tuple[float, ...] = field(init=False)

    def __post_init__(self) -> None:
        self.entries = build_lut_memories(self.lut)
        self.tags = HardwareFIFO(self.fifo_depth)
        self.unit = ReconfigurableComputeUnit()
        self._queue_reciprocal_rom = tuple(
            fp16(1.0 / max(q, 1)) for q in range(self.fifo_depth + 1)
        )
        self._gamma: Dict[int, float] = {}

    # -- request / monitor interface -----------------------------------------

    def enqueue(self, request: Request) -> None:
        """Static scheduler forwards a request (Fig 8: Request/Info Sent)."""
        if request.key not in self.entries:
            raise HardwareModelError(f"no LUT entry for {request.key!r}")
        self.tags.push(request.rid, 0.0)
        self._gamma[request.rid] = fp16(1.0)

    def retire(self, request: Request) -> None:
        self.tags.pop_tag(request.rid)
        self._gamma.pop(request.rid, None)

    def monitor_layer(self, request: Request, layer_index: int) -> None:
        """Zero-counting monitor reports the just-executed layer.

        The monitor hands the controller a raw zero count; the compute unit
        turns it into the sparsity coefficient (last-one strategy).
        """
        entry = self.entries[request.key]
        sparsity = request.layer_sparsities[layer_index]
        # The monitor counts zeros over a known activation shape; model a
        # 4096-element layer output (shape reciprocal pre-computed).
        shape = 4096.0
        num_zeros = round(sparsity * shape)
        self._gamma[request.rid] = self.unit.sparsity_coefficient(
            num_zeros,
            fp16(1.0 / shape),
            entry.avg_density_reciprocal[layer_index],
            entry.density_slope,
        )

    # -- dispatch decision -----------------------------------------------------

    def select(self, queue: Sequence[Request], now: float) -> Tuple[Request, int]:
        """Re-score every queued request and pick the argmin (Algorithm 2)."""
        if not queue:
            raise HardwareModelError("select on an empty queue")
        if len(queue) > self.fifo_depth:
            raise HardwareModelError("queue exceeds FIFO depth")
        cycles_before = self.unit.trace.total_cycles
        q_recip = self._queue_reciprocal_rom[len(queue)]
        best: Optional[Request] = None
        best_score = float("inf")
        for req in sorted(queue, key=lambda r: r.rid):
            entry = self.entries[req.key]
            gamma = self._gamma.get(req.rid, fp16(1.0))
            if req.next_layer == 0:
                gamma = fp16(1.0)  # nothing monitored yet
            score, _ = self.unit.score(
                gamma_eff=gamma,
                remaining_avg=entry.remaining_suffix[req.next_layer],
                deadline=req.deadline,
                now=now,
                isolated=entry.avg_total_latency,
                isolated_reciprocal=entry.isolated_reciprocal,
                wait=max(now - req.last_run_end, 0.0),
                queue_reciprocal=q_recip,
                eta=self.eta,
            )
            if score < best_score:
                best_score = score
                best = req
        decision_cycles = self.unit.trace.total_cycles - cycles_before
        assert best is not None
        return best, decision_cycles
