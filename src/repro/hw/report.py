"""Resource reports: Fig 16 (normalized usage per optimization) and Table 6
(scheduler overhead relative to Eyeriss-V2)."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import HardwareModelError
from repro.hw.components import ResourceCost
from repro.hw.scheduler_rtl import DesignVariant, SchedulerDesign

#: Eyeriss-V2 FPGA implementation the paper compares against (Table 6,
#: third-party design on the Xilinx Zynq ZU7EV at 200 MHz).
EYERISS_V2_RESOURCES = ResourceCost(
    luts=99168, ffs=87210, dsps=194, bram_bits=140 * 1024 * 8
)


def resource_table(fifo_depth: int = 64) -> Dict[str, ResourceCost]:
    """Absolute resources of the three design variants at one FIFO depth."""
    return {
        variant.value: SchedulerDesign(variant, fifo_depth).resources()
        for variant in DesignVariant
    }


def normalized_usage(fifo_depth: int) -> Dict[str, Dict[str, float]]:
    """Fig 16: LUT/FF/DSP usage normalized to the Non_Opt_FP32 design."""
    table = resource_table(fifo_depth)
    base = table[DesignVariant.NON_OPT_FP32.value]
    if base.luts <= 0 or base.ffs <= 0 or base.dsps <= 0:
        raise HardwareModelError("degenerate baseline design")
    out: Dict[str, Dict[str, float]] = {}
    for name, cost in table.items():
        out[name] = {
            "LUT": cost.luts / base.luts,
            "FF": cost.ffs / base.ffs,
            "DSP": cost.dsps / base.dsps,
        }
    return out


def overhead_table(
    fifo_depth: int = 64,
    variant: DesignVariant = DesignVariant.OPT_FP16,
) -> Dict[str, Tuple[float, float, float]]:
    """Table 6: (LUTs, DSPs, on-chip RAM KB) for Eyeriss-V2, the scheduler,
    the combined system, and the relative overhead row (fractions)."""
    sched = SchedulerDesign(variant, fifo_depth).resources()
    eyeriss = EYERISS_V2_RESOURCES
    combined = eyeriss + sched
    return {
        "Eyeriss-V2": (eyeriss.luts, eyeriss.dsps, eyeriss.bram_kilobytes),
        "Scheduler": (sched.luts, sched.dsps, sched.bram_kilobytes),
        "Dysta-Eyeriss-V2": (combined.luts, combined.dsps, combined.bram_kilobytes),
        "Total Overhead": (
            sched.luts / combined.luts,
            sched.dsps / combined.dsps,
            sched.bram_kilobytes / combined.bram_kilobytes,
        ),
    }
