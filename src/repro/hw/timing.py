"""Timing model of the hardware scheduler's decision path.

The Dysta hardware scheduler is invoked at every layer boundary
(Algorithm 2); for the "negligible overhead" claim to hold, its decision
latency — update the running request's sparsity coefficient, re-score every
queued request, select the argmin — must be orders of magnitude below a
layer's execution time.  This model counts cycles through the reconfigurable
compute unit (Fig 10/11) and lets benches verify the claim quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class SchedulerTiming:
    """Cycle-level timing of one scheduling decision.

    Attributes:
        clock_hz: Scheduler clock (paper: 200 MHz).
        coefficient_pipeline: Latency of the sparsity-coefficient dataflow
            (Fig 11(a)(c)): two chained FP multipliers, pipelined.
        score_pipeline: Latency of the score dataflow (Fig 11(b)(d)).
        scan_ii: Initiation interval of the score-update/argmin scan — one
            queued request enters the pipeline per cycle (FIFO streaming).
        control_overhead: Fixed controller cycles (FIFO pops, LUT reads,
            result writeback).
    """

    clock_hz: float = 200e6
    coefficient_pipeline: int = 8
    score_pipeline: int = 12
    scan_ii: int = 1
    control_overhead: int = 6

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise HardwareModelError("clock must be positive")
        if min(self.coefficient_pipeline, self.score_pipeline, self.scan_ii) <= 0:
            raise HardwareModelError("pipeline parameters must be positive")

    def decision_cycles(self, queue_len: int) -> int:
        """Cycles from layer-completion interrupt to the next dispatch."""
        if queue_len < 0:
            raise HardwareModelError(f"queue length must be >= 0, got {queue_len}")
        if queue_len == 0:
            return self.control_overhead
        # Coefficient update for the running request, then a pipelined scan
        # over the queue (fill + one entry per II), argmin folded into the
        # scan's drain.
        scan = self.score_pipeline + (queue_len - 1) * self.scan_ii
        return self.coefficient_pipeline + scan + self.control_overhead

    def decision_latency(self, queue_len: int) -> float:
        """Decision latency in seconds."""
        return self.decision_cycles(queue_len) / self.clock_hz

    def relative_overhead(self, queue_len: int, layer_latency: float) -> float:
        """Decision latency as a fraction of one layer's execution time."""
        if layer_latency <= 0:
            raise HardwareModelError("layer latency must be positive")
        return self.decision_latency(queue_len) / layer_latency
