"""FPGA resource model of the Dysta hardware scheduler (paper Sec 5.2,
Fig 16 and Table 6)."""

from repro.hw.components import DataType, ResourceCost, primitive_cost
from repro.hw.scheduler_rtl import (
    DesignVariant,
    SchedulerDesign,
    build_design,
)
from repro.hw.report import (
    EYERISS_V2_RESOURCES,
    normalized_usage,
    overhead_table,
    resource_table,
)
from repro.hw.timing import SchedulerTiming

__all__ = [
    "SchedulerTiming",
    "DataType",
    "ResourceCost",
    "primitive_cost",
    "DesignVariant",
    "SchedulerDesign",
    "build_design",
    "EYERISS_V2_RESOURCES",
    "normalized_usage",
    "overhead_table",
    "resource_table",
]
