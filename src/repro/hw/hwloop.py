"""Hardware-in-the-loop Dysta: drive the scheduling engine with the
functional FP16 datapath model instead of the software scheduler.

This closes the loop between Sec 4 (algorithm) and Sec 5 (hardware): the
engine's every decision goes through :class:`HardwareDystaScheduler`'s FIFOs,
LUT memories and reconfigurable compute unit, and the run accumulates the
total decision-cycle count — turning the "negligible overhead" claim into a
measured number for a concrete workload.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.lut import ModelInfoLUT
from repro.hw.microarch import HardwareDystaScheduler
from repro.hw.timing import SchedulerTiming
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("dysta_hw")
class HardwareInLoopDysta(Scheduler):
    """Dysta whose decisions come from the FP16 hardware datapath model.

    Args:
        lut: Offline model-information LUT.
        eta: Dynamic-score weight, as in software Dysta.
        fifo_depth: Hardware FIFO depth (max in-flight requests).

    After a run, ``total_decision_cycles`` holds the accumulated compute-unit
    activity and ``decision_time(timing)`` converts it to seconds.
    """

    def __init__(self, lut: ModelInfoLUT, eta: float = 0.02, fifo_depth: int = 256):
        super().__init__(lut)
        self.eta = eta
        self.fifo_depth = fifo_depth
        self.reset()

    def reset(self) -> None:
        self.hw = HardwareDystaScheduler(
            self.lut, fifo_depth=self.fifo_depth, eta=self.eta
        )
        self.total_decision_cycles = 0
        self.num_decisions = 0

    def on_arrival(self, request: Request, now: float) -> None:
        self.hw.enqueue(request)

    def on_layer_complete(self, request: Request, now: float) -> None:
        self.hw.monitor_layer(request, request.next_layer - 1)

    def on_complete(self, request: Request, now: float) -> None:
        self.hw.retire(request)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        chosen, cycles = self.hw.select(queue, now)
        self.total_decision_cycles += cycles
        self.num_decisions += 1
        return chosen

    def decision_time(self, timing: SchedulerTiming) -> float:
        """Total wall time the hardware spent deciding, in seconds."""
        return self.total_decision_cycles / timing.clock_hz
