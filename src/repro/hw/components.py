"""FPGA primitive resource costs.

Per-primitive LUT/FF/DSP figures follow Xilinx 7-series / UltraScale floating
point operator characterizations (pipelined, moderate latency settings) at the
granularity the paper's Fig 16 needs: the *relative* savings of sharing a
reconfigurable compute unit and of moving from FP32 to FP16.  Dividers are
implemented with DSP-assisted Newton-Raphson (hence their DSP footprint in
the non-optimized design); muxes and control are fabric-only.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import HardwareModelError


class DataType(enum.Enum):
    """Arithmetic word width of the hardware scheduler datapath."""

    FP32 = "fp32"
    FP16 = "fp16"

    @property
    def bits(self) -> int:
        return 32 if self is DataType.FP32 else 16


@dataclass(frozen=True)
class ResourceCost:
    """FPGA resource vector: LUTs, flip-flops, DSP slices, block-RAM bits."""

    luts: float = 0.0
    ffs: float = 0.0
    dsps: float = 0.0
    bram_bits: float = 0.0

    def __add__(self, other: "ResourceCost") -> "ResourceCost":
        return ResourceCost(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.dsps + other.dsps,
            self.bram_bits + other.bram_bits,
        )

    def scaled(self, factor: float) -> "ResourceCost":
        if factor < 0:
            raise HardwareModelError(f"negative scale factor {factor}")
        return ResourceCost(
            self.luts * factor,
            self.ffs * factor,
            self.dsps * factor,
            self.bram_bits * factor,
        )

    @property
    def bram_kilobytes(self) -> float:
        return self.bram_bits / 8.0 / 1024.0


ZERO_COST = ResourceCost()

_ARITHMETIC = {
    # (op, dtype) -> cost per instance
    ("mult", DataType.FP32): ResourceCost(luts=135, ffs=230, dsps=3),
    ("mult", DataType.FP16): ResourceCost(luts=60, ffs=110, dsps=1),
    ("add", DataType.FP32): ResourceCost(luts=240, ffs=360, dsps=2),
    ("add", DataType.FP16): ResourceCost(luts=100, ffs=150, dsps=0),
    ("sub", DataType.FP32): ResourceCost(luts=240, ffs=360, dsps=2),
    ("sub", DataType.FP16): ResourceCost(luts=100, ffs=150, dsps=0),
    ("div", DataType.FP32): ResourceCost(luts=820, ffs=1150, dsps=4),
    ("div", DataType.FP16): ResourceCost(luts=340, ffs=480, dsps=2),
}


def primitive_cost(op: str, dtype: DataType) -> ResourceCost:
    """Resource cost of one arithmetic primitive."""
    try:
        return _ARITHMETIC[(op, dtype)]
    except KeyError:
        ops = sorted({o for o, _ in _ARITHMETIC})
        raise HardwareModelError(f"unknown primitive {op!r}; available: {ops}") from None


def mux_cost(dtype: DataType, ways: int = 2) -> ResourceCost:
    """N-way word-wide multiplexer: ~bits/2 LUTs per 2-way stage."""
    if ways < 2:
        raise HardwareModelError(f"mux needs >= 2 ways, got {ways}")
    stages = math.ceil(math.log2(ways))
    return ResourceCost(luts=dtype.bits / 2 * stages)


def fifo_cost(depth: int, width_bits: int) -> ResourceCost:
    """FIFO: storage in (block/LUT) RAM bits + pointer/flag control logic."""
    if depth <= 0 or width_bits <= 0:
        raise HardwareModelError("FIFO depth and width must be positive")
    addr_bits = max(1, math.ceil(math.log2(depth)))
    control = ResourceCost(luts=14 + 2 * addr_bits, ffs=2 * addr_bits + 6)
    return control + ResourceCost(bram_bits=depth * width_bits)


def lut_memory_cost(entries: int, width_bits: int) -> ResourceCost:
    """Distributed (LUT-RAM backed) lookup table: 64 bits per LUT."""
    if entries <= 0 or width_bits <= 0:
        raise HardwareModelError("LUT memory entries and width must be positive")
    bits = entries * width_bits
    return ResourceCost(luts=math.ceil(bits / 64.0), bram_bits=bits)


def control_cost(dtype: DataType) -> ResourceCost:
    """Controller FSM + zero-counting monitor + argmin scan logic."""
    return ResourceCost(luts=70, ffs=90 + dtype.bits)
