"""Accelerator pools: the unit of placement in the cluster tier.

A pool is N accelerators of one type behind one ready queue with its own
scheduler instance (any policy from :mod:`repro.schedulers` — the
``Scheduler`` interface is reused unmodified).  Within a pool, scheduling
semantics are exactly those of :func:`repro.sim.multi.simulate_multi`:
layer-block-granularity preemption, per-NPU resident-weights switch cost.

Heterogeneity is expressed through service speed: ``speed`` scales the whole
pool relative to the latencies recorded in the request traces, and
``affinity`` maps model names to per-model factors (e.g. an Eyeriss pool
runs CNNs at native speed but pays a penalty hosting an AttNN whose trace
was profiled on Sanger).  Effective execution time of a layer is
``true_latency / (speed * affinity[model])``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Mapping, Optional

from repro.errors import SchedulingError
from repro.sim.request import Request

if TYPE_CHECKING:  # avoid a runtime circular import with repro.schedulers
    from repro.schedulers.base import Scheduler


class Pool:
    """One homogeneous accelerator pool with its own queue and scheduler.

    Args:
        name: Unique pool name (e.g. ``"eyeriss"``).
        scheduler: Per-pool scheduling policy instance (not shared between
            pools — schedulers carry per-run state).
        num_accelerators: Number of identical accelerators in the pool.
        speed: Pool-wide service-speed factor relative to the trace
            latencies (2.0 = twice as fast).
        affinity: Optional per-model speed factors multiplied with ``speed``;
            models absent from the mapping run at factor 1.0.
        switch_cost: Weight-reload cost on a model switch, per accelerator.
        block_size: Scheduling granularity in layers.
    """

    def __init__(
        self,
        name: str,
        scheduler: "Scheduler",
        num_accelerators: int = 1,
        *,
        speed: float = 1.0,
        affinity: Optional[Mapping[str, float]] = None,
        switch_cost: float = 0.0,
        block_size: int = 1,
    ):
        if not name:
            raise SchedulingError("pool name must be non-empty")
        if num_accelerators <= 0:
            raise SchedulingError(
                f"pool {name!r}: need >= 1 accelerator, got {num_accelerators}"
            )
        if speed <= 0:
            raise SchedulingError(f"pool {name!r}: speed must be positive, got {speed}")
        if switch_cost < 0:
            raise SchedulingError(
                f"pool {name!r}: switch cost must be >= 0, got {switch_cost}"
            )
        if block_size < 1:
            raise SchedulingError(
                f"pool {name!r}: block size must be >= 1, got {block_size}"
            )
        self.name = name
        self.scheduler = scheduler
        self.num_accelerators = num_accelerators
        self.speed = speed
        self.affinity: Dict[str, float] = dict(affinity or {})
        for model, factor in self.affinity.items():
            if factor <= 0:
                raise SchedulingError(
                    f"pool {name!r}: affinity factor for {model!r} must be "
                    f"positive, got {factor}"
                )
        self.switch_cost = switch_cost
        self.block_size = block_size
        self.reset()

    # -- run state ----------------------------------------------------------

    def reset(self) -> None:
        """Clear all per-run state; called by the cluster engine."""
        self.scheduler.reset()
        self.queue: List[Request] = []
        self.idle: List[int] = list(range(self.num_accelerators))
        heapq.heapify(self.idle)
        self.running: Dict[int, Request] = {}  # npu -> in-flight request
        self._last_on_npu: List[Optional[Request]] = [None] * self.num_accelerators
        self._resident: List[Optional[Request]] = [None] * self.num_accelerators
        self.preemptions = 0
        self.invocations = 0
        self.max_queue_length = 0
        self.dispatched = 0  # requests first-dispatched in this pool
        self.completed = 0
        self.shed = 0
        self.busy_time = 0.0

    # -- placement-visible state (read by routers / admission) --------------

    def service_speed(self, request: Request) -> float:
        """Effective speed factor this pool serves ``request`` at."""
        return self.speed * self.affinity.get(request.model_name, 1.0)

    def backlog(self) -> int:
        """Outstanding (queued + in-flight) requests in the pool."""
        return len(self.queue) + len(self.running)

    def pending(self) -> Iterator[Request]:
        """Queued plus in-flight requests (router/admission work estimates)."""
        yield from self.queue
        yield from self.running.values()

    # -- engine hooks -------------------------------------------------------

    def enqueue(self, request: Request, now: float) -> None:
        """Admit one routed request into the pool's ready queue."""
        self.queue.append(request)
        self.scheduler.on_arrival(request, now)

    def dispatch(self, now: float, push_event: Callable[..., None]) -> None:
        """Hand queued requests to idle accelerators (lowest NPU id first).

        ``push_event(end_time, pool, npu, request, n_layers, dt)`` schedules
        the block-completion event on the cluster-wide event heap.
        """
        while self.idle and self.queue:
            npu = heapq.heappop(self.idle)
            chosen = self.scheduler.select(self.queue, now)
            self.invocations += 1
            self.max_queue_length = max(self.max_queue_length, len(self.queue))
            if chosen not in self.queue:
                raise SchedulingError(
                    f"scheduler {self.scheduler.name!r} (pool {self.name!r}) "
                    "selected a request outside the queue"
                )
            previous = self._last_on_npu[npu]
            if previous is not None and chosen is not previous and not previous.is_done:
                self.preemptions += 1
            self._last_on_npu[npu] = chosen
            if chosen.first_dispatch_time is None:
                chosen.first_dispatch_time = now
                self.dispatched += 1
            start = now
            if self.switch_cost > 0.0 and chosen is not self._resident[npu]:
                start += self.switch_cost
            self._resident[npu] = chosen
            self.queue.remove(chosen)
            layers = min(self.block_size, chosen.num_layers - chosen.next_layer)
            speed = self.service_speed(chosen)
            dt = sum(
                chosen.layer_latencies[chosen.next_layer + k] for k in range(layers)
            ) / speed
            self.running[npu] = chosen
            self.busy_time += (start - now) + dt
            push_event(start + dt, self, npu, chosen, layers, dt)

    def complete_block(self, now: float, npu: int, request: Request,
                       layers: int, dt: float) -> bool:
        """Fold one finished layer block back into the pool.

        Returns True when the request finished all its layers (the caller
        owns completion accounting); otherwise the request rejoins the queue.
        """
        del self.running[npu]
        heapq.heappush(self.idle, npu)
        request.next_layer += layers
        request.executed_time += dt
        request.last_run_end = now
        self.scheduler.on_layer_complete(request, now)
        if request.is_done:
            request.finish_time = now
            self.completed += 1
            self.scheduler.on_complete(request, now)
            return True
        self.queue.append(request)
        return False


def check_unique_names(pools: List[Pool]) -> None:
    """Validate a pool list for the cluster engine."""
    if not pools:
        raise SchedulingError("cannot simulate a cluster without pools")
    names = [p.name for p in pools]
    if len(set(names)) != len(names):
        raise SchedulingError(f"pool names must be unique, got {names}")
