"""Accelerator pools: the unit of placement in the cluster tier.

A pool is N accelerators of one type behind one ready queue with its own
scheduler instance (any policy from :mod:`repro.schedulers` — the
``Scheduler`` interface is reused unmodified).  Within a pool, scheduling
semantics are exactly those of :func:`repro.sim.multi.simulate_multi`:
layer-block-granularity preemption, per-NPU resident-weights switch cost.

Heterogeneity is expressed through service speed: ``speed`` scales the whole
pool relative to the latencies recorded in the request traces, and
``affinity`` maps model names to per-model factors (e.g. an Eyeriss pool
runs CNNs at native speed but pays a penalty hosting an AttNN whose trace
was profiled on Sanger).  Effective execution time of a layer is
``true_latency / (speed * affinity[model])``.

Pools share the vectorized scheduling core: a pool whose scheduler supports
batch selection backs its queue with an array-backed
:class:`~repro.sim.ready_queue.ReadyQueue` and dispatches through
``select_single`` / ``select_batch``, which is what keeps 100k-request
streaming replays fast — per-decision work stays O(queue) arithmetic in
numpy (or a tight loop at small depths) instead of O(queue) Python
property/dict traffic.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Mapping, Optional

from repro.errors import SchedulingError
from repro.sim.ready_queue import ReadyQueue
from repro.sim.request import Request

if TYPE_CHECKING:  # avoid a runtime circular import with repro.schedulers
    from repro.schedulers.base import Scheduler


class Pool:
    """One homogeneous accelerator pool with its own queue and scheduler.

    Args:
        name: Unique pool name (e.g. ``"eyeriss"``).
        scheduler: Per-pool scheduling policy instance (not shared between
            pools — schedulers carry per-run state).
        num_accelerators: Number of identical accelerators in the pool.
        speed: Pool-wide service-speed factor relative to the trace
            latencies (2.0 = twice as fast).
        affinity: Optional per-model speed factors multiplied with ``speed``;
            models absent from the mapping run at factor 1.0.
        switch_cost: Weight-reload cost on a model switch, per accelerator.
        block_size: Scheduling granularity in layers.
        use_batch: ``None``/``True`` uses the vectorized selection path when
            the scheduler supports it; ``False`` forces the scalar path.
    """

    def __init__(
        self,
        name: str,
        scheduler: "Scheduler",
        num_accelerators: int = 1,
        *,
        speed: float = 1.0,
        affinity: Optional[Mapping[str, float]] = None,
        switch_cost: float = 0.0,
        block_size: int = 1,
        use_batch: Optional[bool] = None,
    ):
        if not name:
            raise SchedulingError("pool name must be non-empty")
        if num_accelerators <= 0:
            raise SchedulingError(
                f"pool {name!r}: need >= 1 accelerator, got {num_accelerators}"
            )
        if speed <= 0:
            raise SchedulingError(f"pool {name!r}: speed must be positive, got {speed}")
        if switch_cost < 0:
            raise SchedulingError(
                f"pool {name!r}: switch cost must be >= 0, got {switch_cost}"
            )
        if block_size < 1:
            raise SchedulingError(
                f"pool {name!r}: block size must be >= 1, got {block_size}"
            )
        self.name = name
        self.scheduler = scheduler
        self.num_accelerators = num_accelerators
        self.speed = speed
        self.affinity: Dict[str, float] = dict(affinity or {})
        for model, factor in self.affinity.items():
            if factor <= 0:
                raise SchedulingError(
                    f"pool {name!r}: affinity factor for {model!r} must be "
                    f"positive, got {factor}"
                )
        self.switch_cost = switch_cost
        self.block_size = block_size
        self._batch = use_batch is not False and getattr(
            scheduler, "supports_batch", False
        )
        self.reset()

    # -- run state ----------------------------------------------------------

    def reset(self) -> None:
        """Clear all per-run state; called by the cluster engine."""
        self.scheduler.reset()
        if self._batch:
            self.queue = ReadyQueue(
                self.scheduler.lut, columns=self.scheduler.batch_columns
            )
            self.scheduler.bind_queue(self.queue)
        else:
            self.scheduler.bind_queue(None)
            self.queue = []  # type: ignore[assignment]
        self.idle: List[int] = list(range(self.num_accelerators))
        heapq.heapify(self.idle)
        self.running: Dict[int, Request] = {}  # npu -> in-flight request
        self._last_on_npu: List[Optional[Request]] = [None] * self.num_accelerators
        self._resident: List[Optional[Request]] = [None] * self.num_accelerators
        self.preemptions = 0
        self.invocations = 0
        self.batch_selects = 0
        self.max_queue_length = 0
        self.dispatched = 0  # requests first-dispatched in this pool
        self.completed = 0
        self.shed = 0
        self.busy_time = 0.0

    # -- placement-visible state (read by routers / admission) --------------

    def service_speed(self, request: Request) -> float:
        """Effective speed factor this pool serves ``request`` at."""
        return self.speed * self.affinity.get(request.model_name, 1.0)

    def backlog(self) -> int:
        """Outstanding (queued + in-flight) requests in the pool."""
        return len(self.queue) + len(self.running)

    def pending(self) -> Iterator[Request]:
        """Queued plus in-flight requests (router/admission work estimates)."""
        yield from self.queue
        yield from self.running.values()

    # -- engine hooks -------------------------------------------------------

    def enqueue(self, request: Request, now: float) -> None:
        """Admit one routed request into the pool's ready queue."""
        self.queue.append(request)
        self.scheduler.on_arrival(request, now)

    def dispatch(self, now: float, push_event: Callable[..., None]) -> None:
        """Hand queued requests to idle accelerators (lowest NPU id first).

        ``push_event(end_time, pool, npu, request, n_layers, dt)`` schedules
        the block-completion event on the cluster-wide event heap.
        """
        scheduler = self.scheduler
        queue = self.queue
        batch_on = self._batch
        while self.idle and queue:
            npu = heapq.heappop(self.idle)
            nq = len(queue)
            if not batch_on or queue.missing_entries:
                chosen = scheduler.select(queue, now)
            elif nq == 1:
                chosen = scheduler.select_single(queue, now)
                self.batch_selects += 1
            else:
                chosen = scheduler.select_batch(queue, now)
                self.batch_selects += 1
            self.invocations += 1
            if nq > self.max_queue_length:
                self.max_queue_length = nq
            if chosen not in queue:
                raise SchedulingError(
                    f"scheduler {scheduler.name!r} (pool {self.name!r}) "
                    "selected a request outside the queue"
                )
            previous = self._last_on_npu[npu]
            if previous is not None and chosen is not previous and not previous.is_done:
                self.preemptions += 1
            self._last_on_npu[npu] = chosen
            if chosen.first_dispatch_time is None:
                chosen.first_dispatch_time = now
                self.dispatched += 1
            start = now
            if self.switch_cost > 0.0 and chosen is not self._resident[npu]:
                start += self.switch_cost
            self._resident[npu] = chosen
            if batch_on:
                queue.remove(chosen, requeue=True)
            else:
                queue.remove(chosen)
            nl = chosen.next_layer
            layers = min(self.block_size, chosen.num_layers - nl)
            speed = self.service_speed(chosen)
            if layers == 1:
                dt = chosen.layer_latencies[nl] / speed
            else:
                dt = sum(
                    chosen.layer_latencies[nl + k] for k in range(layers)
                ) / speed
            self.running[npu] = chosen
            self.busy_time += (start - now) + dt
            push_event(start + dt, self, npu, chosen, layers, dt)

    def complete_block(self, now: float, npu: int, request: Request,
                       layers: int, dt: float) -> bool:
        """Fold one finished layer block back into the pool.

        Returns True when the request finished all its layers (the caller
        owns completion accounting); otherwise the request rejoins the queue.
        """
        del self.running[npu]
        heapq.heappush(self.idle, npu)
        request.next_layer += layers
        request.executed_time += dt
        request.last_run_end = now
        if request.is_done:
            if self._batch:
                self.queue.forget(request.rid)
            self.scheduler.on_layer_complete(request, now)
            request.finish_time = now
            self.completed += 1
            self.scheduler.on_complete(request, now)
            return True
        # Re-admit before the monitor callback so batch schedulers can
        # refresh the request's row (aux state was stashed at dispatch).
        self.queue.append(request)
        self.scheduler.on_layer_complete(request, now)
        return False


def check_unique_names(pools: List[Pool]) -> None:
    """Validate a pool list for the cluster engine."""
    if not pools:
        raise SchedulingError("cannot simulate a cluster without pools")
    names = [p.name for p in pools]
    if len(set(names)) != len(names):
        raise SchedulingError(f"pool names must be unique, got {names}")
    # Schedulers carry per-run state (and, in batch mode, a binding to one
    # pool's ready queue), so instances must not be shared between pools —
    # a shared instance would score one pool's queue with another pool's
    # cached state.
    seen: Dict[int, str] = {}
    for pool in pools:
        owner = seen.setdefault(id(pool.scheduler), pool.name)
        if owner != pool.name:
            raise SchedulingError(
                f"pools {owner!r} and {pool.name!r} share one scheduler "
                "instance; construct a separate scheduler per pool"
            )
