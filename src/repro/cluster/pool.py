"""Accelerator pools: the unit of placement in the cluster tier.

A pool is N accelerators of one type behind one ready queue with its own
scheduler instance (any policy from :mod:`repro.schedulers` — the
``Scheduler`` interface is reused unmodified).  Within a pool, scheduling
semantics are exactly those of :func:`repro.sim.multi.simulate_multi`:
layer-block-granularity preemption, per-NPU resident-weights switch cost.

Capacity is **elastic**: :meth:`Pool.add_accelerators` provisions new
accelerators that become schedulable only after a warm-up delay (cold
capacity is provisioned — and paid for — but cannot serve), and
:meth:`Pool.remove_accelerators` retires capacity with drain-before-remove
semantics: warming capacity is cancelled first, then idle accelerators
retire instantly, and busy accelerators are marked draining and retire at
their next layer-block boundary — the in-flight request re-enters the ready
queue (or finishes) and is never killed.  The pool integrates provisioned
accelerator-seconds over time (``acc_seconds_provisioned``) so the cost of
elasticity is a first-class metric next to ``busy_time`` (used seconds).

Heterogeneity is expressed through service speed: ``speed`` scales the whole
pool relative to the latencies recorded in the request traces, and
``affinity`` maps model names to per-model factors (e.g. an Eyeriss pool
runs CNNs at native speed but pays a penalty hosting an AttNN whose trace
was profiled on Sanger).  Effective execution time of a layer is
``true_latency / (speed * affinity[model])``.

Pools share the vectorized scheduling core: a pool whose scheduler supports
batch selection backs its queue with an array-backed
:class:`~repro.sim.ready_queue.ReadyQueue` and dispatches through
``select_single`` / ``select_batch``, which is what keeps 100k-request
streaming replays fast — per-decision work stays O(queue) arithmetic in
numpy (or a tight loop at small depths) instead of O(queue) Python
property/dict traffic.
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from time import perf_counter

from repro.errors import SchedulingError
from repro.obs.bus import (
    KIND_COMPLETE,
    KIND_EXECUTE,
    KIND_PREEMPT,
    KIND_QUEUE,
    KIND_SELECT,
    KIND_SWITCH,
    KIND_VIOLATE,
)
from repro.obs.profile import (
    PHASE_DISPATCH,
    PHASE_EVENT_HEAP,
    PHASE_EXECUTE,
    PHASE_QUEUE_UPDATE,
    PHASE_SELECT,
)
from repro.sim.ready_queue import ReadyQueue
from repro.sim.request import Request

if TYPE_CHECKING:  # avoid a runtime circular import with repro.schedulers
    from repro.schedulers.base import Scheduler


class Pool:
    """One homogeneous accelerator pool with its own queue and scheduler.

    Args:
        name: Unique pool name (e.g. ``"eyeriss"``).
        scheduler: Per-pool scheduling policy instance (not shared between
            pools — schedulers carry per-run state).
        num_accelerators: Initial number of identical accelerators; an
            autoscaler may grow or shrink the pool during a run.
        speed: Pool-wide service-speed factor relative to the trace
            latencies (2.0 = twice as fast).
        affinity: Optional per-model speed factors multiplied with ``speed``;
            models absent from the mapping run at factor 1.0.
        switch_cost: Weight-reload cost on a model switch, per accelerator.
        block_size: Scheduling granularity in layers.
        use_batch: ``None``/``True`` uses the vectorized selection path when
            the scheduler supports it; ``False`` forces the scalar path.
    """

    def __init__(
        self,
        name: str,
        scheduler: "Scheduler",
        num_accelerators: int = 1,
        *,
        speed: float = 1.0,
        affinity: Optional[Mapping[str, float]] = None,
        switch_cost: float = 0.0,
        block_size: int = 1,
        use_batch: Optional[bool] = None,
    ):
        if not name:
            raise SchedulingError("pool name must be non-empty")
        if num_accelerators <= 0:
            raise SchedulingError(
                f"pool {name!r}: need >= 1 accelerator, got {num_accelerators}"
            )
        if speed <= 0:
            raise SchedulingError(f"pool {name!r}: speed must be positive, got {speed}")
        if switch_cost < 0:
            raise SchedulingError(
                f"pool {name!r}: switch cost must be >= 0, got {switch_cost}"
            )
        if block_size < 1:
            raise SchedulingError(
                f"pool {name!r}: block size must be >= 1, got {block_size}"
            )
        self.name = name
        self.scheduler = scheduler
        self._initial_accelerators = num_accelerators
        self.speed = speed
        self.affinity: Dict[str, float] = dict(affinity or {})
        for model, factor in self.affinity.items():
            if factor <= 0:
                raise SchedulingError(
                    f"pool {name!r}: affinity factor for {model!r} must be "
                    f"positive, got {factor}"
                )
        self.switch_cost = switch_cost
        self.block_size = block_size
        self._batch = use_batch is not False and getattr(
            scheduler, "supports_batch", False
        )
        #: Energy accountant bound by the cluster engine for this run
        #: (survives reset(); ``None`` disables joule accounting).
        self._energy = None
        #: Trace bus / phase profiler bound by the cluster engine for this
        #: run (survive reset(); ``None`` disables emission).
        self._tracer = None
        self._prof = None
        self.reset()

    # -- run state ----------------------------------------------------------

    def reset(self) -> None:
        """Clear all per-run state; called by the cluster engine."""
        self.scheduler.reset()
        if self._batch:
            self.queue = ReadyQueue(
                self.scheduler.lut, columns=self.scheduler.batch_columns
            )
            self.scheduler.bind_queue(self.queue)
        else:
            self.scheduler.bind_queue(None)
            self.queue = []  # type: ignore[assignment]
        n = self._initial_accelerators
        self.idle: List[int] = list(range(n))
        heapq.heapify(self.idle)
        self.running: Dict[int, Request] = {}  # npu -> in-flight request
        self._last_on_npu: Dict[int, Optional[Request]] = {i: None for i in range(n)}
        self._resident: Dict[int, Optional[Request]] = {i: None for i in range(n)}
        # Which (model, pattern) weights each NPU holds (weight-load counting).
        self._resident_key: Dict[int, Optional[str]] = {i: None for i in range(n)}
        self._next_npu = n
        self._warming: List[Tuple[float, int]] = []  # (ready_at, npu)
        self._draining: Set[int] = set()
        self.preemptions = 0
        self.invocations = 0
        self.batch_selects = 0
        self.max_queue_length = 0
        self.dispatched = 0  # requests first-dispatched in this pool
        self.completed = 0
        self.shed = 0
        self.enqueued = 0  # requests admitted into the pool (policy rate signal)
        self.busy_time = 0.0
        # -- cost accounting: integral of provisioned capacity over time ----
        self._provisioned = n  # warm (incl. draining-busy) + warming
        self._cost_clock = 0.0
        self.acc_seconds_provisioned = 0.0
        self.peak_accelerators = n
        self.scale_ups = 0
        self.scale_downs = 0
        self.shed_during_scale_lag = 0
        #: Joules drawn by executed work (per-block dynamic + static energy,
        #: plus weight reloads); 0.0 unless an accountant is bound.
        self.joules_busy = 0.0
        # -- fault injection (armed by FaultInjector.reset) ------------------
        # All of this is inert on fault-free runs: _fault_mode stays False,
        # _slowdown stays 1.0, and the dicts stay empty.
        self._fault_mode = False
        self._slowdowns: List[float] = []
        self._slowdown = 1.0
        self._block_epoch: Dict[int, int] = {}
        self._inflight_charge: Dict[int, float] = {}
        self._failed: Dict[int, float] = {}  # npu -> time it went down
        self.fault_kills = 0  # in-flight blocks killed by outages
        self.acc_seconds_lost = 0.0  # integral of failed capacity over time

    def bind_energy(self, accountant) -> None:
        """Attach (or detach, with ``None``) an
        :class:`~repro.energy.accounting.EnergyAccountant` for this run."""
        self._energy = accountant

    def bind_obs(self, tracer, prof) -> None:
        """Attach (or detach, with ``None``) the cluster run's trace bus and
        phase profiler.  The scheduler gets the bus too, so policy-level
        events (powercap deferrals) land in the same trace."""
        self._tracer = tracer
        self._prof = prof
        self.scheduler.trace_bus = tracer
        # Per-phase accumulators flushed once per run (flush_profile):
        # folding per-decision deltas into ``PhaseProfiler.add`` from the hot
        # loops would cost more than the phases being measured.
        self._p_select_s = self._p_dispatch_s = self._p_heap_s = 0.0
        self._p_execute_s = self._p_queue_s = 0.0
        self._p_select_c = self._p_dispatch_c = self._p_heap_c = 0
        self._p_execute_c = self._p_queue_c = 0

    def flush_profile(self) -> None:
        """Fold the accumulated phase deltas into the bound profiler."""
        prof = self._prof
        if prof is None:
            return
        if self._p_select_c:
            prof.add(PHASE_SELECT, self._p_select_s, self._p_select_c)
        if self._p_dispatch_c:
            prof.add(PHASE_DISPATCH, self._p_dispatch_s, self._p_dispatch_c)
        if self._p_heap_c:
            prof.add(PHASE_EVENT_HEAP, self._p_heap_s, self._p_heap_c)
        if self._p_execute_c:
            prof.add(PHASE_EXECUTE, self._p_execute_s, self._p_execute_c)
        if self._p_queue_c:
            prof.add(PHASE_QUEUE_UPDATE, self._p_queue_s, self._p_queue_c)
        self._p_select_s = self._p_dispatch_s = self._p_heap_s = 0.0
        self._p_execute_s = self._p_queue_s = 0.0
        self._p_select_c = self._p_dispatch_c = self._p_heap_c = 0
        self._p_execute_c = self._p_queue_c = 0

    # -- elastic capacity (driven by the autoscaler) -------------------------

    @property
    def num_accelerators(self) -> int:
        """Warm (schedulable or serving) accelerators, including draining
        ones that are still finishing their current layer block."""
        return len(self.idle) + len(self.running)

    @property
    def num_warming(self) -> int:
        """Provisioned accelerators still inside their warm-up delay."""
        return len(self._warming)

    @property
    def num_draining(self) -> int:
        """Busy accelerators marked for removal at their next block boundary."""
        return len(self._draining)

    @property
    def provision_target(self) -> int:
        """Capacity the pool is converging to: warm - draining + warming."""
        return self.num_accelerators - len(self._draining) + len(self._warming)

    def _accrue_cost(self, now: float) -> None:
        """Advance the provisioned accelerator-seconds integral to ``now``."""
        if now > self._cost_clock:
            self.acc_seconds_provisioned += self._provisioned * (now - self._cost_clock)
            self._cost_clock = now

    def add_accelerators(self, n: int, now: float, ready_at: float) -> int:
        """Provision ``n`` accelerators; they serve only from ``ready_at``.

        Draining accelerators are rescued first (cancelling a decommission
        is instant warm capacity); the rest enter warm-up.  Cost accrues for
        the full warm-up — provisioned-but-cold capacity is paid for.
        Returns the number that actually entered warm-up (0 when every slot
        was covered by rescued drains, in which case no warm-up event is
        needed).
        """
        if n <= 0:
            raise SchedulingError(f"pool {self.name!r}: add {n} accelerators")
        if ready_at < now:
            raise SchedulingError(
                f"pool {self.name!r}: capacity cannot be ready in the past"
            )
        self._accrue_cost(now)
        # Deterministic rescue order: highest npu id first, the inverse of
        # the drain-marking order in remove_accelerators.
        while n > 0 and self._draining:
            self._draining.remove(max(self._draining))
            n -= 1
        for _ in range(n):
            npu = self._next_npu
            self._next_npu += 1
            self._warming.append((ready_at, npu))
        self._provisioned += n
        self.scale_ups += 1
        if self._provisioned > self.peak_accelerators:
            self.peak_accelerators = self._provisioned
        return n

    def remove_accelerators(self, n: int, now: float) -> None:
        """Retire ``n`` accelerators without killing in-flight work.

        Preference order: cancel warming capacity (latest-ready first — the
        least sunk cost), retire idle accelerators instantly, then mark busy
        accelerators draining — they finish their current layer block, the
        request rejoins the queue (or completes), and only then does the
        accelerator leave the pool.  The pool never shrinks its target below
        one accelerator.
        """
        if n <= 0:
            raise SchedulingError(f"pool {self.name!r}: remove {n} accelerators")
        n = min(n, self.provision_target - 1)
        if n <= 0:
            return
        self._accrue_cost(now)
        while n > 0 and self._warming:
            self._warming.sort()
            _, npu = self._warming.pop()
            self._provisioned -= 1
            n -= 1
        while n > 0 and self.idle:
            npu = heapq.heappop(self.idle)
            self._last_on_npu.pop(npu, None)
            self._resident.pop(npu, None)
            self._resident_key.pop(npu, None)
            self._provisioned -= 1
            n -= 1
        if n > 0:
            candidates = sorted(
                (npu for npu in self.running if npu not in self._draining),
                reverse=True,
            )
            self._draining.update(candidates[:n])
        self.scale_downs += 1

    def activate_ready(self, now: float) -> int:
        """Move warm-up capacity whose ready time has passed into service."""
        due = [(t, npu) for t, npu in self._warming if t <= now + 1e-12]
        if not due:
            return 0
        self._warming = [(t, npu) for t, npu in self._warming if t > now + 1e-12]
        for _, npu in sorted(due, key=lambda pair: pair[1]):
            self._last_on_npu[npu] = None
            self._resident[npu] = None
            self._resident_key[npu] = None
            heapq.heappush(self.idle, npu)
        return len(due)

    def finalize_cost(self, now: float) -> None:
        """Close the provisioned-capacity integral at the end of a run."""
        self._accrue_cost(now)
        # Close the downtime integral for accelerators still failed at the
        # end of the run (their outage window outlived the workload).
        for failed_at in self._failed.values():
            self.acc_seconds_lost += now - failed_at
        self._failed.clear()

    # -- fault injection (driven by repro.faults.FaultInjector) --------------

    def enable_fault_mode(self) -> None:
        """Arm the per-dispatch bookkeeping kills and slowdowns need.

        Called by the injector after reset; fault-free runs never pay for
        it (the flag gates one dict write per dispatch).
        """
        self._fault_mode = True

    @property
    def num_failed(self) -> int:
        """Accelerators currently down from an injected outage."""
        return len(self._failed)

    def block_epoch(self, npu: int) -> int:
        """Kill-generation of one accelerator (stamped into block events)."""
        return self._block_epoch.get(npu, 0)

    def block_live(self, npu: int, epoch: int) -> bool:
        """Whether a block event stamped at ``epoch`` is still valid — a
        mid-block kill bumps the epoch so the stale completion event is
        discarded when it pops."""
        return self._block_epoch.get(npu, 0) == epoch

    def push_slowdown(self, factor: float) -> None:
        """Enter a straggler window: service time multiplied by ``factor``
        for blocks dispatched while it is active (windows stack)."""
        self._slowdowns.append(factor)
        self._recompute_slowdown()

    def pop_slowdown(self, factor: float) -> None:
        """Leave a straggler window (in-flight blocks keep their speed)."""
        self._slowdowns.remove(factor)
        self._recompute_slowdown()

    def _recompute_slowdown(self) -> None:
        combined = 1.0
        for factor in self._slowdowns:
            combined *= factor
        self._slowdown = combined

    def fail_accelerators(
        self, now: float, count: Optional[int] = None
    ) -> Tuple[List[int], List[Tuple[int, Request]]]:
        """Take warm accelerators down hard (injected outage).

        Unlike :meth:`remove_accelerators` (graceful drain), a failure
        kills the in-flight layer block: the request re-enters the ready
        queue ticket-preserving (its scheduler row was stashed at dispatch
        and is restored by the re-append; no completion callbacks fire),
        the optimistic ``busy_time`` charge is rolled back, and the stale
        block event is invalidated via the kill epoch.  Failed capacity
        stays provisioned — the bill keeps running — but is invisible to
        dispatch and to :meth:`remove_accelerators` until recovery.

        Victims are the highest-id warm accelerators (deterministic, and
        the inverse of NPU allocation order).  Draining victims retire
        permanently instead of entering the failed set.  Returns
        ``(failed_npus, killed)`` where ``failed_npus`` lists accelerators
        to hand back to :meth:`recover_accelerators` and ``killed`` pairs
        each killed npu with the request it was serving.
        """
        warm = sorted(set(self.idle) | set(self.running), reverse=True)
        if count is not None:
            warm = warm[:count]
        if not warm:
            return [], []
        self._accrue_cost(now)
        victims = set(warm)
        self.idle = [npu for npu in self.idle if npu not in victims]
        heapq.heapify(self.idle)
        failed: List[int] = []
        killed: List[Tuple[int, Request]] = []
        for npu in warm:
            request = self.running.pop(npu, None)
            if request is not None:
                self._block_epoch[npu] = self._block_epoch.get(npu, 0) + 1
                self.busy_time -= self._inflight_charge.pop(npu, 0.0)
                self.queue.append(request)
                self.fault_kills += 1
                killed.append((npu, request))
            self._last_on_npu.pop(npu, None)
            self._resident.pop(npu, None)
            self._resident_key.pop(npu, None)
            if npu in self._draining:
                # The drain completes by dying: the accelerator leaves the
                # pool for good and never enters the failed set.
                self._draining.discard(npu)
                self._provisioned -= 1
            else:
                self._failed[npu] = now
                failed.append(npu)
        return failed, killed

    def recover_accelerators(self, npus: Sequence[int], now: float) -> int:
        """Bring failed accelerators back into service (outage ended).

        Recovered accelerators come back cold (no resident weights) and
        idle; the downtime integral ``acc_seconds_lost`` absorbs their
        outage.  Returns how many actually came back (an npu may have
        left the failed set, e.g. via a run that ended first).
        """
        restored = 0
        for npu in sorted(npus):
            failed_at = self._failed.pop(npu, None)
            if failed_at is None:
                continue
            self.acc_seconds_lost += now - failed_at
            self._last_on_npu[npu] = None
            self._resident[npu] = None
            self._resident_key[npu] = None
            heapq.heappush(self.idle, npu)
            restored += 1
        return restored

    # -- placement-visible state (read by routers / admission) --------------

    def service_speed(self, request: Request) -> float:
        """Effective speed factor this pool serves ``request`` at."""
        return self.speed * self.affinity.get(request.model_name, 1.0)

    def backlog(self) -> int:
        """Outstanding (queued + in-flight) requests in the pool."""
        return len(self.queue) + len(self.running)

    def pending(self) -> Iterator[Request]:
        """Queued plus in-flight requests (router/admission work estimates)."""
        yield from self.queue
        yield from self.running.values()

    # -- engine hooks -------------------------------------------------------

    def enqueue(self, request: Request, now: float) -> None:
        """Admit one routed request into the pool's ready queue."""
        self.queue.append(request)
        self.enqueued += 1
        self.scheduler.on_arrival(request, now)

    def dispatch(self, now: float, push_event: Callable[..., None]) -> None:
        """Hand queued requests to idle accelerators (lowest NPU id first).

        ``push_event(end_time, pool, npu, request, n_layers, dt)`` schedules
        the block-completion event on the cluster-wide event heap.
        """
        # Chained timestamps (each stamp closes one segment and opens the
        # next) attribute the whole call gap-free: placement bookkeeping and
        # entry/loop-check overhead land in ``dispatch``, scoring in
        # ``select``, the completion-event push in ``event_heap``.
        prof = self._prof
        if prof is not None:
            t_seg = perf_counter()
            sel_s = disp_s = heap_s = 0.0
            iters = 0
        scheduler = self.scheduler
        queue = self.queue
        batch_on = self._batch
        tracer = self._tracer
        while self.idle and queue:
            npu = heapq.heappop(self.idle)
            nq = len(queue)
            if prof is not None:
                t1 = perf_counter()
            if not batch_on or queue.missing_entries:
                chosen = scheduler.select(queue, now)
            elif nq == 1:
                chosen = scheduler.select_single(queue, now)
                self.batch_selects += 1
            else:
                chosen = scheduler.select_batch(queue, now)
                self.batch_selects += 1
            if prof is not None:
                t2 = perf_counter()
                sel_s += t2 - t1
            self.invocations += 1
            if nq > self.max_queue_length:
                self.max_queue_length = nq
            if chosen not in queue:
                raise SchedulingError(
                    f"scheduler {scheduler.name!r} (pool {self.name!r}) "
                    "selected a request outside the queue"
                )
            if tracer is not None:
                tracer.emit(KIND_SELECT, now, pool=self.name, npu=npu,
                            rid=chosen.rid, args={"depth": nq})
            previous = self._last_on_npu[npu]
            if previous is not None and chosen is not previous and not previous.is_done:
                self.preemptions += 1
            self._last_on_npu[npu] = chosen
            if chosen.first_dispatch_time is None:
                chosen.first_dispatch_time = now
                self.dispatched += 1
                if tracer is not None:
                    tracer.emit(KIND_QUEUE, chosen.arrival,
                                now - chosen.arrival, pool=self.name,
                                rid=chosen.rid)
            elif (tracer is not None and chosen.next_layer > 0
                    and now > chosen.last_run_end):
                # Stall span: gap since this rid's previous execute span
                # ended (emitted retroactively at re-dispatch).
                tracer.emit(KIND_PREEMPT, chosen.last_run_end,
                            now - chosen.last_run_end, pool=self.name,
                            npu=npu, rid=chosen.rid)
            start = now
            if chosen is not self._resident[npu]:
                if self.switch_cost > 0.0:
                    if tracer is not None:
                        tracer.emit(KIND_SWITCH, now, self.switch_cost,
                                    pool=self.name, npu=npu, rid=chosen.rid,
                                    args={"key": chosen._key})
                    start += self.switch_cost
                self._resident[npu] = chosen
                if chosen.key != self._resident_key[npu]:
                    chosen.num_weight_loads += 1
                    self._resident_key[npu] = chosen.key
                    if self._energy is not None:
                        self.joules_busy += self._energy.switch_energy(chosen.key)
            if batch_on:
                queue.remove(chosen, requeue=True)
            else:
                queue.remove(chosen)
            nl = chosen.next_layer
            layers = min(self.block_size, chosen.num_layers - nl)
            speed = self.service_speed(chosen)
            if self._slowdown != 1.0:
                # Straggler window: multiplicative service-*time* factor.
                speed /= self._slowdown
            if layers == 1:
                dt = chosen.layer_latencies[nl] / speed
            else:
                dt = sum(
                    chosen.layer_latencies[nl + k] for k in range(layers)
                ) / speed
            self.running[npu] = chosen
            self.busy_time += (start - now) + dt
            if self._fault_mode:
                # Remember the optimistic charge so a mid-block kill can
                # subtract the work that never happened.
                self._inflight_charge[npu] = (start - now) + dt
            if tracer is not None:
                # Span from decision to block end: switch cost included.
                tracer.emit(KIND_EXECUTE, now, (start + dt) - now,
                            pool=self.name, npu=npu, rid=chosen.rid,
                            args={"layers": layers, "key": chosen._key})
            if prof is not None:
                t3 = perf_counter()
                disp_s += (t1 - t_seg) + (t3 - t2)
            push_event(start + dt, self, npu, chosen, layers, dt)
            if prof is not None:
                t_seg = perf_counter()
                heap_s += t_seg - t3
                iters += 1
        if prof is not None:
            self._p_dispatch_s += disp_s + (perf_counter() - t_seg)
            self._p_dispatch_c += 1
            if iters:
                self._p_select_s += sel_s
                self._p_select_c += iters
                self._p_heap_s += heap_s
                self._p_heap_c += iters

    def complete_block(self, now: float, npu: int, request: Request,
                       layers: int, dt: float,
                       t_entry: Optional[float] = None) -> bool:
        """Fold one finished layer block back into the pool.

        Returns True when the request finished all its layers (the caller
        owns completion accounting); otherwise the request rejoins the queue.
        ``t_entry`` lets a profiling caller hand over its last clock read so
        the call transition is attributed instead of falling between
        brackets.
        """
        prof = self._prof
        if prof is not None:
            t_ex = t_entry if t_entry is not None else perf_counter()
        del self.running[npu]
        if npu in self._draining:
            # Drain-before-remove: the block finished, the request lives on
            # (requeued or complete below); only the accelerator retires.
            self._draining.discard(npu)
            self._accrue_cost(now)
            self._provisioned -= 1
            self._last_on_npu.pop(npu, None)
            self._resident.pop(npu, None)
            self._resident_key.pop(npu, None)
        else:
            heapq.heappush(self.idle, npu)
        if self._energy is not None:
            self.joules_busy += self._energy.block_energy(
                request, request.next_layer, layers, dt
            )
        request.next_layer += layers
        request.executed_time += dt
        request.last_run_end = now
        if prof is not None:
            t0 = perf_counter()
            self._p_execute_s += t0 - t_ex
            self._p_execute_c += 1
        if request.is_done:
            if self._batch:
                self.queue.forget(request.rid)
            self.scheduler.on_layer_complete(request, now)
            request.finish_time = now
            self.completed += 1
            self.scheduler.on_complete(request, now)
            if prof is not None:
                self._p_queue_s += perf_counter() - t0
                self._p_queue_c += 1
            if self._tracer is not None:
                self._tracer.emit(
                    KIND_VIOLATE if request.violated else KIND_COMPLETE,
                    now, pool=self.name, npu=npu, rid=request.rid,
                )
            return True
        # Re-admit before the monitor callback so batch schedulers can
        # refresh the request's row (aux state was stashed at dispatch).
        self.queue.append(request)
        self.scheduler.on_layer_complete(request, now)
        if prof is not None:
            self._p_queue_s += perf_counter() - t0
            self._p_queue_c += 1
        return False


def check_unique_names(pools: List[Pool]) -> None:
    """Validate a pool list for the cluster engine."""
    if not pools:
        raise SchedulingError("cannot simulate a cluster without pools")
    names = [p.name for p in pools]
    if len(set(names)) != len(names):
        raise SchedulingError(f"pool names must be unique, got {names}")
    # Schedulers carry per-run state (and, in batch mode, a binding to one
    # pool's ready queue), so instances must not be shared between pools —
    # a shared instance would score one pool's queue with another pool's
    # cached state.
    seen: Dict[int, str] = {}
    for pool in pools:
        owner = seen.setdefault(id(pool.scheduler), pool.name)
        if owner != pool.name:
            raise SchedulingError(
                f"pools {owner!r} and {pool.name!r} share one scheduler "
                "instance; construct a separate scheduler per pool"
            )
