"""Request routing: which pool serves an incoming request.

Router objects mirror the scheduler registry idiom: a small ABC, a
``@register_router`` decorator, and ``make_router(name, **kwargs)``.  The
router sees the pools' placement-visible state (queue depths, in-flight
requests, per-model service speeds) but never a request's ground-truth
latencies — the same information boundary the schedulers obey.

Three built-in policies:

* **round-robin** — cycle over pools regardless of state; the baseline every
  load balancer starts from.
* **jsq** (join-shortest-queue, alias ``least-loaded``) — pick the pool with
  the fewest outstanding requests per accelerator.  Optimal for homogeneous
  pools, blind to heterogeneity: it happily sends an AttNN to a CNN pool
  that serves it 4x slower.
* **predictive** — sparsity-aware latency routing via
  :class:`~repro.core.predictor.SparseLatencyPredictor`: estimate each
  pool's outstanding work from the predictor's remaining-latency estimates
  (which sharpen as in-flight requests reveal monitored sparsity), add the
  new request's predicted service time at that pool's effective speed, and
  join the pool with the earliest predicted finish.
"""

from __future__ import annotations

import abc
import itertools
from typing import Callable, Dict, List, Sequence

from repro.core.lut import ModelInfoLUT
from repro.core.predictor import (
    _MIN_DENSITY,
    PredictorStrategy,
    SparseLatencyPredictor,
)
from repro.errors import SchedulingError
from repro.sim.request import Request

from repro.cluster.pool import Pool


def predicted_remaining(
    predictor: SparseLatencyPredictor, request: Request
) -> float:
    """Sparsity-corrected remaining-latency estimate for one request.

    For the LAST_ONE strategy this inlines the Algorithm-3 estimate over the
    request's cached LUT entry — the same arithmetic as
    ``predictor.predict_remaining``, term for term, without the per-call
    string-key lookups.  The predictive router evaluates it for every
    queued + in-flight request of every pool on every arrival (and the
    predictive autoscale policy on every tick), so it dominates
    streaming-replay cost.  Requests whose (model, pattern) is missing from
    the LUT fall back to a neutral estimate of zero.
    """
    entry = request.lut_entry(predictor.lut)
    if entry is None:
        return 0.0
    j = request.next_layer
    if predictor.strategy is PredictorStrategy.LAST_ONE:
        if j == 0:
            gamma = 1.0
        else:
            mon_density = 1.0 - request.layer_sparsities[j - 1]
            avg_density = 1.0 - entry.avg_layer_sparsities_t[j - 1]
            if mon_density < _MIN_DENSITY:
                mon_density = _MIN_DENSITY
            if avg_density < _MIN_DENSITY:
                avg_density = _MIN_DENSITY
            gamma = 1.0 + entry.density_slope * (mon_density / avg_density - 1.0)
            if gamma < _MIN_DENSITY:
                gamma = _MIN_DENSITY
        return predictor.alpha * gamma * entry.remaining_suffix_t[j]
    return predictor.predict_remaining(request.key, j, request.monitored_sparsities)


class Router(abc.ABC):
    """Base class for cluster routing policies."""

    #: Registry / display name; subclasses override via ``@register_router``.
    name: str = "base"

    #: Routers that maintain incremental per-pool work estimates set this
    #: True; the cluster engine then calls the ``note_*`` observer hooks on
    #: every pool-membership / progress transition.  Stateless routers keep
    #: the default and pay zero hook overhead (the engine skips the calls).
    tracks_work: bool = False

    def reset(self, pools: Sequence[Pool]) -> None:
        """Clear per-run state; called by the cluster engine before a run."""

    # -- engine observer hooks (called only when ``tracks_work``) ------------

    def note_enqueue(self, pool: Pool, request: Request) -> None:
        """``request`` was admitted into ``pool``'s ready queue."""

    def note_progress(self, pool: Pool, request: Request) -> None:
        """``request`` finished a layer block in ``pool`` but is not done."""

    def note_complete(self, pool: Pool, request: Request) -> None:
        """``request`` finished its last layer and left ``pool``."""

    @abc.abstractmethod
    def route(self, request: Request, pools: Sequence[Pool], now: float) -> Pool:
        """Pick the pool that will serve ``request``.  ``pools`` is the
        non-empty pool list in construction order."""


_REGISTRY: Dict[str, Callable[..., Router]] = {}
_ALIASES = {"rr": "round-robin", "least-loaded": "jsq"}


def register_router(name: str) -> Callable[[type], type]:
    """Class decorator adding a router to the registry under ``name``."""

    def deco(cls: type) -> type:
        if name in _REGISTRY:
            raise SchedulingError(f"router {name!r} registered twice")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def available_routers() -> List[str]:
    """Registered router names (aliases excluded)."""
    return sorted(_REGISTRY)


def make_router(name: str, **kwargs) -> Router:
    """Instantiate a registered router by name (aliases accepted)."""
    canonical = _ALIASES.get(name, name)
    try:
        factory = _REGISTRY[canonical]
    except KeyError:
        raise SchedulingError(
            f"unknown router {name!r}; available: {available_routers()}"
        ) from None
    return factory(**kwargs)


@register_router("round-robin")
class RoundRobinRouter(Router):
    """Cycle over pools in construction order, ignoring their state."""

    def __init__(self):
        self._cycle = itertools.count()

    def reset(self, pools: Sequence[Pool]) -> None:
        self._cycle = itertools.count()

    def route(self, request: Request, pools: Sequence[Pool], now: float) -> Pool:
        return pools[next(self._cycle) % len(pools)]


@register_router("jsq")
class JoinShortestQueueRouter(Router):
    """Join the pool with the fewest outstanding requests per accelerator."""

    def route(self, request: Request, pools: Sequence[Pool], now: float) -> Pool:
        # min() keeps the first pool on ties: deterministic tie-breaking in
        # construction order.  max(.., 1) guards the instant where an
        # autoscaled pool's last drain retired while replacements still warm.
        return min(pools, key=lambda p: p.backlog() / max(p.num_accelerators, 1))


@register_router("predictive")
class PredictiveRouter(Router):
    """Join the pool with the earliest predicted completion for the request.

    For each pool: predicted outstanding work (sum of sparsity-corrected
    remaining-latency estimates of queued + in-flight requests, at each
    request's effective service speed) spread over the pool's accelerators,
    plus the incoming request's predicted service time there.  Requests whose
    (model, pattern) is missing from the LUT fall back to a neutral estimate
    of zero — the router then degrades toward least-loaded behaviour.

    A request's remaining-latency estimate changes only when a layer block
    completes, so the per-pool outstanding-work sums are maintained
    *incrementally* through the engine observer hooks (``tracks_work``):
    enqueue adds a request's contribution, each block completion replaces
    it, and request completion retires it.  ``route`` is then O(pools)
    instead of O(total pending requests) — the arrival-rate term that
    dominated streaming-replay cost.  The incremental sums equal the fresh
    per-arrival sums up to float addition order.

    The incoming request's own service estimate is memoized by its
    (model, pattern) key: on arrival ``next_layer == 0``, so the estimate
    is ``alpha * remaining_suffix_t[0]`` — a pure function of the key.
    """

    tracks_work = True

    def __init__(
        self,
        lut: ModelInfoLUT,
        *,
        strategy: PredictorStrategy = PredictorStrategy.LAST_ONE,
        alpha: float = 1.0,
        n: int = 3,
    ):
        self.predictor = SparseLatencyPredictor(lut, strategy, alpha=alpha, n=n)
        self.reset(())

    def reset(self, pools: Sequence[Pool]) -> None:
        #: id(pool) -> incrementally maintained outstanding-work sum.
        self._work: Dict[int, float] = {id(p): 0.0 for p in pools}
        #: rid -> its current contribution to the owning pool's work sum.
        self._contrib: Dict[int, float] = {}
        #: (model, pattern) key -> memoized arrival-time service estimate.
        self._svc0: Dict[str, float] = {}

    def _contribution(self, pool: Pool, request: Request) -> float:
        return predicted_remaining(self.predictor, request) / pool.service_speed(request)

    def note_enqueue(self, pool: Pool, request: Request) -> None:
        c = self._contribution(pool, request)
        self._contrib[request.rid] = c
        self._work[id(pool)] = self._work.get(id(pool), 0.0) + c

    def note_progress(self, pool: Pool, request: Request) -> None:
        c = self._contribution(pool, request)
        pid = id(pool)
        self._work[pid] = self._work.get(pid, 0.0) - self._contrib[request.rid] + c
        self._contrib[request.rid] = c

    def note_complete(self, pool: Pool, request: Request) -> None:
        pid = id(pool)
        self._work[pid] = self._work.get(pid, 0.0) - self._contrib.pop(request.rid)

    def predicted_finish(self, request: Request, pool: Pool) -> float:
        """Predicted completion delay of ``request`` if routed to ``pool``.

        Reference (fresh-sum) form — also used by tooling that probes a
        hypothetical placement outside an engine run.
        """
        predictor = self.predictor
        outstanding = sum(
            predicted_remaining(predictor, r) / pool.service_speed(r)
            for r in pool.pending()
        )
        service = predicted_remaining(predictor, request) / pool.service_speed(request)
        return outstanding / max(pool.num_accelerators, 1) + service

    def route(self, request: Request, pools: Sequence[Pool], now: float) -> Pool:
        svc0 = self._svc0
        key = request.key
        service = svc0.get(key)
        if service is None:
            service = predicted_remaining(self.predictor, request)
            svc0[key] = service
        work = self._work
        best = None
        best_finish = float("inf")
        for pool in pools:
            w = work.get(id(pool))
            if w is None:
                # Pool unseen by the hooks (direct route() probe): fall back
                # to the reference sum for it.
                finish = self.predicted_finish(request, pool)
            else:
                if w < 0.0:  # float cancellation slop on an empty pool
                    w = 0.0
                finish = (w / max(pool.num_accelerators, 1)
                          + service / pool.service_speed(request))
            if finish < best_finish:
                best, best_finish = pool, finish
        return best
