"""Autoscaler tier: elastic pool capacity against load, with cost accounting.

The scenario engine drives diurnal and flash-crowd load curves, but a
fixed-size cluster must be provisioned for the peak — paying for idle
accelerators all night — or for the mean — shedding the crowd.  The
:class:`Autoscaler` closes that gap: at a fixed tick interval it asks an
:class:`~repro.cluster.policies.AutoscalePolicy` for each pool's desired
capacity and applies the difference through the pools' elastic-capacity
API, with two pieces of realism every production autoscaler faces:

* **provisioning latency** — scale-ups become schedulable only after a
  warm-up delay (instance boot, weight loading), so a reactive policy is
  always one provisioning horizon behind a surge; requests shed while
  capacity warms are tracked separately (``shed_under_scale_lag``);
* **drain-before-remove** — scale-downs never kill in-flight work: busy
  accelerators finish their current layer block and the request continues
  elsewhere (see :meth:`~repro.cluster.pool.Pool.remove_accelerators`).

Per-direction **cooldowns** rate-limit capacity changes on top of whatever
hysteresis the policy itself applies, the classic two-level flap guard.

Cost is accounted in accelerator-seconds: ``provisioned`` (the integral of
capacity over the run, warm-up and drain included — what the bill says)
vs ``used`` (busy time — what the work needed).  :func:`cost_summary`
folds both plus the scale-event and shed-under-lag counts into the metric
dictionaries of :class:`~repro.cluster.engine.ClusterResult`, the streaming
metrics path, and the scenario sweep runner's per-cell JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError

from repro.cluster.pool import Pool
from repro.cluster.policies import (
    AutoscalePolicy,
    available_autoscale_policies,
    make_autoscale_policy,
)

#: Policies whose constructor needs the offline model-information LUT.
_LUT_POLICIES = {"predictive"}


@dataclass(frozen=True)
class ScaleEvent:
    """One applied capacity change on one pool.

    Attributes:
        time: Simulation time the decision was applied.
        pool: Pool name.
        delta: Signed accelerator count change (+up / -down).
        capacity_after: The pool's provision target after the change.
        ready_at: When scaled-up capacity becomes schedulable (``None`` for
            scale-downs and for scale-ups fully covered by rescued drains).
    """

    time: float
    pool: str
    delta: int
    capacity_after: int
    ready_at: Optional[float] = None


class Autoscaler:
    """Tick-driven elastic capacity controller for a cluster of pools.

    Args:
        policy: An :class:`AutoscalePolicy` instance, or a registry name
            (``"reactive"``, ``"target-utilization"``, ``"predictive"``)
            for a policy with default parameters.
        interval: Seconds between autoscaling decisions.
        provision_latency: Warm-up delay before scaled-up capacity serves.
        cooldown_up: Minimum seconds between scale-ups of one pool.
        cooldown_down: Minimum seconds after *any* capacity change of one
            pool before it may scale down (defaults to ``2 * interval``) —
            scale-downs are the risky direction, so they wait out the
            consequences of the last change first.
    """

    def __init__(
        self,
        policy: Union[AutoscalePolicy, str],
        *,
        interval: float = 1.0,
        provision_latency: float = 2.0,
        cooldown_up: float = 0.0,
        cooldown_down: Optional[float] = None,
    ):
        if isinstance(policy, str):
            policy = make_autoscale_policy(policy)
        if interval <= 0.0:
            raise SchedulingError(f"tick interval must be positive, got {interval}")
        if provision_latency < 0.0:
            raise SchedulingError(
                f"provision latency must be >= 0, got {provision_latency}"
            )
        if cooldown_down is None:
            cooldown_down = 2.0 * interval
        if cooldown_up < 0.0 or cooldown_down < 0.0:
            raise SchedulingError("cooldowns must be >= 0")
        self.policy = policy
        self.interval = interval
        self.provision_latency = provision_latency
        self.cooldown_up = cooldown_up
        self.cooldown_down = cooldown_down
        self._last_up: Dict[str, float] = {}
        self._last_change: Dict[str, float] = {}

    def reset(self, pools: Sequence[Pool]) -> None:
        """Clear per-run state; called by the cluster engine before a run."""
        self.policy.reset(list(pools))
        self._last_up = {}
        self._last_change = {}

    def tick(self, pools: Sequence[Pool], now: float) -> List[ScaleEvent]:
        """Apply one autoscaling decision per pool; returns applied events."""
        events: List[ScaleEvent] = []
        for pool in pools:
            current = pool.provision_target
            desired = self.policy.clamp(
                self.policy.desired_capacity(pool, now, self.provision_latency)
            )
            if desired > current:
                last = self._last_up.get(pool.name)
                if last is not None and now - last < self.cooldown_up:
                    continue
                n = desired - current
                warming = pool.add_accelerators(
                    n, now, now + self.provision_latency
                )
                self._last_up[pool.name] = now
                self._last_change[pool.name] = now
                events.append(ScaleEvent(
                    time=now, pool=pool.name, delta=n, capacity_after=desired,
                    ready_at=now + self.provision_latency if warming else None,
                ))
            elif desired < current:
                last = self._last_change.get(pool.name)
                if last is not None and now - last < self.cooldown_down:
                    continue
                pool.remove_accelerators(current - desired, now)
                self._last_change[pool.name] = now
                events.append(ScaleEvent(
                    time=now, pool=pool.name, delta=desired - current,
                    capacity_after=desired,
                ))
        return events


def make_autoscaler(
    policy: str,
    *,
    lut: Optional[ModelInfoLUT] = None,
    min_accelerators: int = 1,
    max_accelerators: int = 8,
    interval: float = 1.0,
    provision_latency: float = 2.0,
    cooldown_up: float = 0.0,
    cooldown_down: Optional[float] = None,
    **policy_kwargs,
) -> Autoscaler:
    """Build an :class:`Autoscaler` from a policy name, supplying the LUT
    to the policies that need one (mirrors ``presets.build_router``)."""
    if policy in _LUT_POLICIES:
        if lut is None:
            raise SchedulingError(
                f"autoscale policy {policy!r} needs a ModelInfoLUT"
            )
        policy_kwargs["lut"] = lut
    instance = make_autoscale_policy(
        policy,
        min_accelerators=min_accelerators,
        max_accelerators=max_accelerators,
        **policy_kwargs,
    )
    return Autoscaler(
        instance,
        interval=interval,
        provision_latency=provision_latency,
        cooldown_up=cooldown_up,
        cooldown_down=cooldown_down,
    )


def cost_summary(
    pools: Sequence[Pool], scale_events: Sequence[ScaleEvent]
) -> Dict[str, float]:
    """Cluster-wide cost metrics merged into every result summary.

    ``acc_seconds_provisioned`` is the integral of provisioned capacity over
    the run (what a bill charges); ``acc_seconds_used`` is accelerator busy
    time (what the work needed); their ratio is the provisioned-capacity
    utilization.  ``shed_under_scale_lag`` counts requests shed while the
    target pool had capacity warming — load a zero-latency scaler would
    have absorbed.  ``acc_seconds_lost`` is downtime under fault injection:
    capacity that stayed on the bill while an injected outage kept it from
    serving (0.0 on fault-free runs).
    """
    provisioned = sum(p.acc_seconds_provisioned for p in pools)
    used = sum(p.busy_time for p in pools)
    return {
        "acc_seconds_provisioned": provisioned,
        "acc_seconds_used": used,
        "provisioned_utilization": used / provisioned if provisioned > 0 else 0.0,
        "num_scale_events": float(len(scale_events)),
        "shed_under_scale_lag": float(
            sum(p.shed_during_scale_lag for p in pools)
        ),
        "acc_seconds_lost": sum(p.acc_seconds_lost for p in pools),
    }


__all__ = [
    "Autoscaler",
    "ScaleEvent",
    "available_autoscale_policies",
    "cost_summary",
    "make_autoscaler",
]
