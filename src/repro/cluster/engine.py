"""Event-driven cluster simulator: router → pools → per-pool schedulers.

The cluster tier generalizes :func:`repro.sim.multi.simulate_multi` from one
flat pool to named heterogeneous pools behind a routing policy with optional
admission control.  Per-pool scheduling semantics are unchanged (the
``Scheduler`` interface is reused unmodified), so with one pool of one
accelerator and an always-admit controller the simulation is step-for-step
identical to :func:`repro.sim.engine.simulate` (tested).

Requests may be a list or any iterator sorted by arrival time; combined with
``retain_requests=False`` and :func:`repro.sim.workload.iter_workload`, the
engine replays 100k+ request streams in bounded memory — every finished
request is folded into :class:`~repro.cluster.metrics.StreamingMetrics` and
dropped.

With an :class:`~repro.cluster.autoscale.Autoscaler` the cluster is
elastic: the engine fires a policy tick at a fixed interval, applies the
resulting capacity changes (scale-ups serve only after their warm-up
delay; scale-downs drain before removing), and accounts the cost —
accelerator-seconds provisioned vs used, scale events, and sheds that
happened while capacity was still warming — into the result summary.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.errors import SchedulingError
from repro.obs import Observability
from repro.obs.bus import KIND_ARRIVE, KIND_ROUTE, KIND_SCALE, KIND_SHED
from repro.obs.profile import (
    PHASE_ARRIVALS,
    PHASE_EVENT_HEAP,
    PHASE_METRICS,
    PHASE_ROUTE,
)
from repro.sim.metrics import summarize
from repro.sim.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.energy.accounting import EnergyAccountant
    from repro.faults.spec import FaultSpec

from repro.cluster.admission import AdmissionController
from repro.cluster.autoscale import Autoscaler, ScaleEvent, cost_summary
from repro.cluster.metrics import StreamingMetrics
from repro.cluster.pool import Pool, check_unique_names
from repro.cluster.routing import Router, make_router

_EPS = 1e-12

# Event kinds on the cluster-wide heap (tiebroken by a unique counter, so
# the kind itself is never compared).
_BLOCK = 0   # a layer block finished on (pool, npu)
_WAKE = 1    # an idle accelerator wakes for a pending arrival
_TICK = 2    # autoscaler decision point
_WARM = 3    # scaled-up capacity finished warming in a pool
_FAULT = 4   # an injected-fault boundary is due (FaultInjector.advance)


@dataclass(frozen=True)
class PoolStats:
    """Per-pool accounting of one cluster run."""

    name: str
    #: Warm accelerators at the end of the run (the initial size for fixed
    #: pools; whatever the autoscaler converged to for elastic ones).
    num_accelerators: int
    dispatched: int
    completed: int
    shed: int
    preemptions: int
    invocations: int
    max_queue_length: int
    busy_time: float
    #: Fraction of provisioned accelerator-seconds spent serving.
    utilization: float
    #: Decisions served by the vectorized fast path (0 on the scalar path).
    batch_selects: int = 0
    #: Highest provisioned capacity reached during the run.
    peak_accelerators: int = 0
    #: Integral of provisioned capacity over the run, in accelerator-seconds.
    acc_seconds_provisioned: float = 0.0
    scale_ups: int = 0
    scale_downs: int = 0
    #: Requests shed from this pool while it had capacity warming.
    shed_during_scale_lag: int = 0
    #: Joules drawn by executed work in this pool (0.0 without an
    #: energy accountant).
    joules_busy: float = 0.0
    #: Idle-power joules over provisioned-but-unused accelerator-seconds.
    joules_idle: float = 0.0
    #: In-flight layer blocks killed by injected outages (work redone).
    fault_kills: int = 0
    #: Integral of failed capacity over time — provisioned, paid for, and
    #: serving nothing (0.0 without fault injection).
    acc_seconds_lost: float = 0.0

    @property
    def joules_total(self) -> float:
        """What this pool's meter would read: busy plus idle joules."""
        return self.joules_busy + self.joules_idle


@dataclass
class ClusterResult:
    """Outcome of one cluster run.

    ``requests``/``shed_requests`` hold the finished/shed request objects
    when the run retained them; under streaming replay they stay empty and
    ``metrics`` (computed incrementally) is the only record of the stream.
    """

    requests: List[Request]
    shed_requests: List[Request]
    makespan: float
    num_completed: int
    num_shed: int
    shed_reasons: Dict[str, int]
    num_preemptions: int
    num_scheduler_invocations: int
    max_queue_length: int
    pool_stats: Dict[str, PoolStats]
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Decisions served by the vectorized fast path across all pools.
    num_batch_selects: int = 0
    #: Applied capacity changes, in time order (empty without an autoscaler).
    scale_events: List[ScaleEvent] = field(default_factory=list)

    @property
    def num_offered(self) -> int:
        return self.num_completed + self.num_shed

    @property
    def antt(self) -> float:
        return self.metrics["antt"]

    @property
    def violation_rate(self) -> float:
        return self.metrics["violation_rate"]

    @property
    def stp(self) -> float:
        return self.metrics["stp"]

    @property
    def shed_rate(self) -> float:
        return self.metrics["shed_rate"]

    @property
    def p50(self) -> float:
        return self.metrics["p50"]

    @property
    def p95(self) -> float:
        return self.metrics["p95"]

    @property
    def p99(self) -> float:
        return self.metrics["p99"]

    @property
    def acc_seconds_provisioned(self) -> float:
        return self.metrics["acc_seconds_provisioned"]

    @property
    def acc_seconds_used(self) -> float:
        return self.metrics["acc_seconds_used"]

    @property
    def provisioned_utilization(self) -> float:
        return self.metrics["provisioned_utilization"]

    @property
    def shed_under_scale_lag(self) -> int:
        return int(self.metrics["shed_under_scale_lag"])

    # Energy metrics exist when the run was given an EnergyAccountant.

    @property
    def energy_per_request(self) -> float:
        """Mean joules per completed inference (energy runs only)."""
        return self.metrics["energy_per_request"]

    @property
    def total_joules(self) -> float:
        """Joules drawn by all completed work (energy runs only)."""
        return self.metrics["total_joules"]

    @property
    def edp(self) -> float:
        """Mean per-request energy-delay product, J*s (energy runs only)."""
        return self.metrics["edp"]

    @property
    def joules_used(self) -> float:
        """Busy joules across all pools — the twin of acc_seconds_used."""
        return self.metrics["joules_used"]

    @property
    def joules_provisioned(self) -> float:
        """Busy plus idle joules — the twin of acc_seconds_provisioned."""
        return self.metrics["joules_provisioned"]


def _request_stream(requests: Union[Sequence[Request], Iterable[Request]]) -> Iterator[Request]:
    """Arrival-ordered request iterator; sorts sequences, checks iterators."""
    if isinstance(requests, Sequence):
        yield from sorted(requests, key=lambda r: (r.arrival, r.rid))
        return
    last_arrival = -float("inf")
    for req in requests:
        if req.arrival < last_arrival - _EPS:
            raise SchedulingError(
                f"streamed requests must arrive in order: request {req.rid} "
                f"at {req.arrival} after {last_arrival}"
            )
        last_arrival = req.arrival
        yield req


def simulate_cluster(
    requests: Union[Sequence[Request], Iterable[Request]],
    pools: Sequence[Pool],
    router: Union[Router, str] = "round-robin",
    *,
    admission: Optional[AdmissionController] = None,
    autoscaler: Optional[Autoscaler] = None,
    retain_requests: bool = True,
    energy: Optional["EnergyAccountant"] = None,
    obs: Optional[Observability] = None,
    faults: Optional["FaultSpec"] = None,
) -> ClusterResult:
    """Replay a request stream against a cluster of accelerator pools.

    Args:
        requests: The stream, as a list (sorted internally) or an iterator
            already ordered by arrival (consumed lazily — pair with
            :func:`repro.sim.workload.iter_workload` for bounded memory).
        pools: Pools in router-visible order; names must be unique.
        router: A :class:`Router` instance, or a registry name for routers
            without constructor arguments (``"round-robin"``, ``"jsq"``).
        admission: Optional load-shedding policy; default admits everything.
        autoscaler: Optional elastic-capacity controller; its policy is
            ticked at a fixed interval and pool sizes follow its decisions
            (subject to warm-up latency and drain-before-remove).  ``None``
            keeps every pool at its constructed size.
        retain_requests: Keep finished/shed request objects on the result.
            ``False`` drops each request after folding it into the streaming
            metrics, so arbitrarily long replays use bounded memory.
        energy: Optional :class:`~repro.energy.accounting.EnergyAccountant`.
            Pools then integrate busy joules per executed block (plus weight
            reloads), the result metrics gain ``energy_per_request`` /
            ``total_joules`` / ``edp`` and the joule-denominated capacity
            cost (``joules_used`` / ``joules_idle`` / ``joules_provisioned``
            — idle power charged for provisioned-but-unused seconds), and
            every ``PoolStats`` carries its per-pool joules.  Accounting is
            passive: schedules are bit-identical with or without it.
        obs: Optional :class:`~repro.obs.Observability` bundle.  Trace
            spans carry (pool, npu) lanes; routing, shedding and autoscaler
            scale decisions appear as instants; telemetry samples per-pool
            queue depth / occupancy (and metered joules under ``energy``).
            Passive, like ``energy``.
        faults: Optional :class:`~repro.faults.spec.FaultSpec` timeline.
            Its boundaries fire as first-class events: outages kill the
            in-flight blocks of failed accelerators (the requests re-enter
            the ready queue ticket-preserving), slowdown windows stretch
            service time, blackout windows shed arrivals at admission
            (reason ``fault_blackout``), and revocations remove capacity
            via the graceful drain path.  The result metrics gain
            ``num_faults`` / ``requests_requeued_by_fault`` /
            ``requests_shed_by_blackout``, and ``fault``/``recover`` spans
            land on the trace bus.  Faults fire only while the workload is
            live — boundaries after the last completion are discarded, so
            a timeline never stretches the makespan.
    """
    pools = list(pools)
    check_unique_names(pools)
    if isinstance(router, str):
        router = make_router(router)
    obs = Observability.active(obs)
    tracer = obs.bus if obs is not None else None
    telem = obs.telemetry if obs is not None else None
    prof = obs.profiler if obs is not None else None
    t_begin = perf_counter() if prof is not None else 0.0
    for pool in pools:
        pool.reset()
        pool.bind_energy(energy)
        pool.bind_obs(tracer, prof)
    router.reset(pools)
    track_work = router.tracks_work
    if autoscaler is not None:
        autoscaler.reset(pools)
    injector = None
    blackout_reason = None
    if faults is not None and len(faults):
        from repro.faults.inject import SHED_FAULT_BLACKOUT, FaultInjector

        injector = FaultInjector(faults)
        injector.reset(pools, tracer)
        blackout_reason = SHED_FAULT_BLACKOUT

    c_completed = c_violations = c_shed = None
    if telem is not None:
        for pool in pools:
            telem.registry.gauge(
                f"{pool.name}_queue_depth",
                (lambda p: lambda: len(p.queue))(pool),
            )
            telem.registry.gauge(
                f"{pool.name}_busy_npus",
                (lambda p: lambda: len(p.running))(pool),
            )
            telem.registry.gauge(
                f"{pool.name}_provisioned",
                (lambda p: lambda: p.provision_target)(pool),
            )
            if energy is not None:
                telem.registry.gauge(
                    f"{pool.name}_joules_busy",
                    (lambda p: lambda: p.joules_busy)(pool),
                )
            if injector is not None:
                telem.registry.gauge(
                    f"{pool.name}_failed",
                    (lambda p: lambda: p.num_failed)(pool),
                )
        c_completed = telem.registry.counter("completed")
        c_violations = telem.registry.counter("violations")
        c_shed = telem.registry.counter("shed")

    metrics = StreamingMetrics()
    completed: List[Request] = []
    shed: List[Request] = []
    scale_events: List[ScaleEvent] = []
    events: List = []  # (time, tiebreak, kind, pool, npu, request, layers, dt, epoch)
    counter = itertools.count()
    stream = _request_stream(requests)
    now = 0.0

    def fetch() -> Optional[Request]:
        req = next(stream, None)
        if req is not None and (req.next_layer != 0 or req.finish_time is not None):
            raise SchedulingError(
                f"request {req.rid} was already (partially) executed"
            )
        return req

    next_req = fetch()
    if next_req is None:
        raise SchedulingError("cannot simulate an empty workload")

    if injector is None:
        def push_event(time: float, pool: Pool, npu: int, req: Request,
                       layers: int, dt: float) -> None:
            heapq.heappush(
                events, (time, next(counter), _BLOCK, pool, npu, req, layers, dt, 0)
            )
    else:
        # Block events carry the dispatch-time kill epoch so a completion
        # whose accelerator failed mid-block is discarded when it pops.
        def push_event(time: float, pool: Pool, npu: int, req: Request,
                       layers: int, dt: float) -> None:
            heapq.heappush(
                events, (time, next(counter), _BLOCK, pool, npu, req, layers,
                         dt, pool.block_epoch(npu))
            )

    def push_control(time: float, kind: int, pool: Optional[Pool] = None) -> None:
        heapq.heappush(events, (time, next(counter), kind, pool, -1, None, 0, 0.0, 0))

    # Run-level phase accumulators (flushed into the profiler once at the
    # end of the run: per-event ``PhaseProfiler.add`` calls would cost more
    # than the engine scaffolding they measure).
    p_route_s = p_arrive_s = p_heap_s = p_metrics_s = 0.0
    p_route_c = p_arrive_c = p_heap_c = p_metrics_c = 0

    def admit_arrivals(now: float) -> None:
        """Route (and possibly shed) every request that has arrived by now."""
        nonlocal next_req, p_route_s, p_route_c, p_arrive_s, p_arrive_c
        route_s = 0.0
        if prof is not None:
            t_adm = perf_counter()
        while next_req is not None and next_req.arrival <= now + _EPS:
            req, next_req = next_req, fetch()
            if tracer is not None:
                tracer.emit(KIND_ARRIVE, req.arrival, rid=req.rid)
            if prof is not None:
                t0 = perf_counter()
            pool = router.route(req, pools, now)
            if prof is not None:
                route_s += perf_counter() - t0
                p_route_c += 1
            if pool not in pools:
                raise SchedulingError(
                    f"router {router.name!r} returned a pool outside the cluster"
                )
            if tracer is not None:
                tracer.emit(KIND_ROUTE, now, pool=pool.name, rid=req.rid,
                            args={"router": router.name})
            reason = admission.admit(req, pool, now) if admission is not None else None
            if (reason is None and injector is not None
                    and injector.in_blackout(req.arrival, pool.name)):
                # Admission blackout: the decision keys on the *arrival*
                # time (half-open window), so it is independent of which
                # event's admit pass happened to process this request.
                reason = blackout_reason
                injector.note_blackout()
            if reason is not None:
                pool.shed += 1
                if pool.num_warming:
                    pool.shed_during_scale_lag += 1
                metrics.observe_shed(req, reason)
                if tracer is not None:
                    tracer.emit(KIND_SHED, now, pool=pool.name, rid=req.rid,
                                args={"reason": reason})
                if c_shed is not None:
                    c_shed.inc()
                if retain_requests:
                    shed.append(req)
            else:
                pool.enqueue(req, now)
                if track_work:
                    router.note_enqueue(pool, req)
        if prof is not None:
            # Routing is attributed separately; the remainder is admission
            # bookkeeping.
            p_route_s += route_s
            p_arrive_s += (perf_counter() - t_adm) - route_s
            p_arrive_c += 1

    def dispatch_all(now: float) -> None:
        for pool in pools:
            # Guard inline: on a saturated cluster most pools have no idle
            # accelerator at most events, and the no-op call overhead (x
            # pools x events) is measurable.
            if pool.idle and pool.queue:
                pool.dispatch(now, push_event)

    def work_remains() -> bool:
        return next_req is not None or any(
            pool.queue or pool.running for pool in pools
        )

    def run_autoscaler(now: float) -> None:
        """One policy tick: apply decisions, arm warm-ups and the next tick."""
        for event in autoscaler.tick(pools, now):
            scale_events.append(event)
            if tracer is not None:
                tracer.emit(KIND_SCALE, event.time, pool=event.pool,
                            args={
                                "delta": event.delta,
                                "capacity_after": event.capacity_after,
                                "ready_at": event.ready_at,
                            })
            if event.ready_at is not None:
                pool = next(p for p in pools if p.name == event.pool)
                push_control(event.ready_at, _WARM, pool)
        if work_remains():
            push_control(now + autoscaler.interval, _TICK)

    next_wake: Optional[float] = None

    def arm_wake() -> None:
        """Ensure an idle accelerator wakes at the next pending arrival."""
        nonlocal next_wake
        if (
            next_req is not None
            and any(pool.idle for pool in pools)
            and (next_wake is None or next_req.arrival < next_wake)
        ):
            next_wake = next_req.arrival
            push_control(next_wake, _WAKE)

    if telem is not None:
        telem.poll(0.0)
    admit_arrivals(0.0)
    dispatch_all(0.0)
    arm_wake()
    if autoscaler is not None:
        push_control(autoscaler.interval, _TICK)
    if injector is not None:
        for t_fault in injector.boundary_times():
            push_control(t_fault, _FAULT)

    # The loop's brackets are chained: each closing ``perf_counter`` read
    # doubles as the next segment's opening stamp, so profiler bookkeeping
    # between brackets stays attributed instead of leaking into the
    # coverage gap.
    t_heap = perf_counter() if prof is not None else 0.0
    t_seg = 0.0
    skip_admit = False
    while events:
        time, _, kind, pool, npu, req, layers, dt, epoch = heapq.heappop(events)
        if kind in (_TICK, _WARM, _FAULT) and not work_remains():
            # The stream is exhausted and every request served: discard
            # trailing control events instead of stretching the makespan.
            if prof is not None:
                t_seg = perf_counter()
                p_heap_s += t_seg - t_heap
                p_heap_c += 1
                t_heap = t_seg
            continue
        now = time
        if telem is not None:
            telem.poll(now)
        if prof is not None:
            # Pop, unpack and the event-kind dispatch scaffolding.
            t_seg = perf_counter()
            p_heap_s += t_seg - t_heap
            p_heap_c += 1
        if kind == _WAKE:
            next_wake = None
        elif kind == _WARM:
            pool.activate_ready(now)
        elif kind == _TICK:
            admit_arrivals(now)  # measure the queues the tick acts on
            run_autoscaler(now)
        elif kind == _FAULT:
            # A boundary that changed nothing must also skip the trailing
            # admit/dispatch pass: the fault-free run has no event at this
            # timestamp, and admitting arrivals here would perturb
            # admission-controller / work-estimating-router decisions (the
            # instantly-recovered lockstep guarantee).
            skip_admit = not injector.advance(now)
        elif injector is not None and not pool.block_live(npu, epoch):
            # Stale completion: the accelerator failed mid-block and the
            # request was already requeued.  Nothing to fold.
            pass
        else:
            done = pool.complete_block(now, npu, req, layers, dt,
                                       t_entry=t_seg if prof is not None else None)
            if track_work:
                if prof is not None:
                    t_rt = perf_counter()
                if done:
                    router.note_complete(pool, req)
                else:
                    router.note_progress(pool, req)
                if prof is not None:
                    p_route_s += perf_counter() - t_rt
                    p_route_c += 1
            if done:
                if prof is not None:
                    t_met = perf_counter()
                # Per-request joules fold into the streaming aggregates only
                # on the bounded-memory path; with retained requests the
                # batch summary computes them once at the end instead.
                metrics.observe(
                    req,
                    energy_joules=(
                        energy.request_energy(req)
                        if energy is not None and not retain_requests else None
                    ),
                )
                if c_completed is not None:
                    c_completed.inc()
                    if req.violated:
                        c_violations.inc()
                if retain_requests:
                    completed.append(req)
                if prof is not None:
                    p_metrics_s += perf_counter() - t_met
                    p_metrics_c += 1
        if skip_admit:
            # No-op fault boundary: leave queues, admission and wake state
            # exactly as the fault-free run would at this timestamp.
            skip_admit = False
            if prof is not None:
                t_heap = perf_counter()
            continue
        # Same inline guard as dispatch_all: most events have no pending
        # arrival, and the no-op admit pass is pure call overhead.
        if next_req is not None and next_req.arrival <= now + _EPS:
            admit_arrivals(now)
        dispatch_all(now)
        if prof is not None:
            t_aw = perf_counter()
            arm_wake()
            # The closing read opens the next iteration's heap segment.
            t_heap = perf_counter()
            p_heap_s += t_heap - t_aw
            p_heap_c += 1
        else:
            arm_wake()

    if next_req is not None or any(pool.queue or pool.running for pool in pools):
        raise SchedulingError("simulation ended with unserved requests in the cluster")

    makespan = now
    for pool in pools:
        pool.finalize_cost(makespan)
    if prof is not None:
        if p_route_c:
            prof.add(PHASE_ROUTE, p_route_s, p_route_c)
        if p_arrive_c:
            prof.add(PHASE_ARRIVALS, p_arrive_s, p_arrive_c)
        if p_heap_c:
            prof.add(PHASE_EVENT_HEAP, p_heap_s, p_heap_c)
        if p_metrics_c:
            prof.add(PHASE_METRICS, p_metrics_s, p_metrics_c)
        for pool in pools:
            pool.flush_profile()
        prof.wall_s += perf_counter() - t_begin
    if telem is not None:
        telem.finish(makespan)

    if retain_requests and completed:
        # Exact batch metrics when the requests are on hand; the streaming
        # aggregates are identical for ANTT/violations/STP and within the
        # histogram's resolution for the percentiles.
        summary = dict(summarize(completed, energy=energy))
        summary["shed_rate"] = metrics.shed_rate
    else:
        summary = metrics.summary()
    summary.update(cost_summary(pools, scale_events))
    if injector is not None:
        summary.update(injector.summary())
    pool_joules_idle: Dict[str, float] = {p.name: 0.0 for p in pools}
    if energy is not None:
        from repro.energy.accounting import energy_cost_summary, pool_idle_joules

        summary.update(energy_cost_summary(pools, energy))
        pool_joules_idle = {
            p.name: pool_idle_joules(p, energy.idle_power_w) for p in pools
        }

    pool_stats = {
        p.name: PoolStats(
            name=p.name,
            num_accelerators=p.num_accelerators,
            dispatched=p.dispatched,
            completed=p.completed,
            shed=p.shed,
            preemptions=p.preemptions,
            invocations=p.invocations,
            max_queue_length=p.max_queue_length,
            busy_time=p.busy_time,
            utilization=(
                p.busy_time / p.acc_seconds_provisioned
                if p.acc_seconds_provisioned > 0 else 0.0
            ),
            batch_selects=p.batch_selects,
            peak_accelerators=p.peak_accelerators,
            acc_seconds_provisioned=p.acc_seconds_provisioned,
            scale_ups=p.scale_ups,
            scale_downs=p.scale_downs,
            shed_during_scale_lag=p.shed_during_scale_lag,
            joules_busy=p.joules_busy,
            joules_idle=pool_joules_idle[p.name],
            fault_kills=p.fault_kills,
            acc_seconds_lost=p.acc_seconds_lost,
        )
        for p in pools
    }
    return ClusterResult(
        requests=completed,
        shed_requests=shed,
        makespan=makespan,
        num_completed=metrics.completed,
        num_shed=metrics.shed,
        shed_reasons=dict(metrics.shed_reasons),
        num_preemptions=sum(p.preemptions for p in pools),
        num_scheduler_invocations=sum(p.invocations for p in pools),
        max_queue_length=max(p.max_queue_length for p in pools),
        pool_stats=pool_stats,
        metrics=summary,
        num_batch_selects=sum(p.batch_selects for p in pools),
        scale_events=scale_events,
    )
