"""Ready-made heterogeneous-cluster worlds shared by the CLI, examples and
benchmarks.

A "world" is the merged multi-family trace suite, its shared LUT, and the
per-native-family affinity maps that encode the accelerator mismatch: a pool
native to one family serves the other at ``1 / mismatch_penalty`` speed.
:func:`build_router` hides which router classes need the LUT.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError
from repro.profiling.profiler import benchmark_suite
from repro.profiling.trace import TraceSet

from repro.cluster.routing import Router, make_router

#: Routers whose constructor needs the offline model-information LUT.
_LUT_ROUTERS = {"predictive"}


def build_heterogeneous_world(
    families: Sequence[str] = ("attnn", "cnn"),
    *,
    n_samples: int = 300,
    seed: int = 0,
    mismatch_penalty: float = 4.0,
) -> Tuple[Dict[str, TraceSet], ModelInfoLUT, Dict[str, Dict[str, float]]]:
    """Profile and merge the family suites into one cluster world.

    Returns ``(traces, lut, affinity)`` where ``affinity[native_family]`` is
    the model-name → speed-factor map for a pool whose accelerator natively
    serves ``native_family`` (1.0 for native models, ``1/mismatch_penalty``
    for the rest).  Affinity maps are built for both canonical natives
    regardless of ``families``, so a cluster may contain a pool kind whose
    native family is absent from the workload.
    """
    traces: Dict[str, TraceSet] = {}
    family_of: Dict[str, str] = {}
    for family in families:
        for key, trace in benchmark_suite(family, n_samples=n_samples,
                                          seed=seed).items():
            traces[key] = trace
            family_of[trace.model_name] = family
    affinity = {
        native: family_affinity(family_of, native, mismatch_penalty)
        for native in ("attnn", "cnn")
    }
    return traces, ModelInfoLUT(traces), affinity


def family_affinity(
    family_of: Dict[str, str], native: str, mismatch_penalty: float
) -> Dict[str, float]:
    """Per-model speed factors for a pool native to one model family."""
    if mismatch_penalty <= 0:
        raise SchedulingError(
            f"mismatch penalty must be positive, got {mismatch_penalty}"
        )
    return {
        model: 1.0 if family == native else 1.0 / mismatch_penalty
        for model, family in family_of.items()
    }


def build_router(name: str, lut: ModelInfoLUT, **kwargs) -> Router:
    """``make_router`` that supplies the LUT to the routers needing one."""
    if name in _LUT_ROUTERS:
        kwargs["lut"] = lut
    return make_router(name, **kwargs)
