"""Datacenter cluster-serving tier: heterogeneous accelerator pools behind a
request router with admission control and streaming metrics.

The paper evaluates a single time-shared NPU; this package scales that
engine to the serving-cluster shape every production stack has::

    from repro.cluster import Pool, simulate_cluster, make_router
    from repro.schedulers.base import make_scheduler

    pools = [
        Pool("eyeriss", make_scheduler("dysta", lut), 2, affinity=cnn_affinity),
        Pool("sanger", make_scheduler("dysta", lut), 2, affinity=attnn_affinity),
    ]
    result = simulate_cluster(requests, pools, router=make_router("jsq"))
    print(result.antt, result.shed_rate, result.p99)
"""

from repro.cluster.admission import (
    SHED_QUEUE_DEPTH,
    SHED_SLO_INFEASIBLE,
    AdmissionController,
)
from repro.cluster.engine import ClusterResult, PoolStats, simulate_cluster
from repro.cluster.metrics import StreamingHistogram, StreamingMetrics
from repro.cluster.pool import Pool
from repro.cluster.presets import (
    build_heterogeneous_world,
    build_router,
    family_affinity,
)
from repro.cluster.routing import (
    Router,
    available_routers,
    make_router,
    register_router,
)

__all__ = [
    "AdmissionController",
    "SHED_QUEUE_DEPTH",
    "SHED_SLO_INFEASIBLE",
    "ClusterResult",
    "PoolStats",
    "simulate_cluster",
    "StreamingHistogram",
    "StreamingMetrics",
    "Pool",
    "Router",
    "build_heterogeneous_world",
    "build_router",
    "family_affinity",
    "available_routers",
    "make_router",
    "register_router",
]
