"""Datacenter cluster-serving tier: heterogeneous accelerator pools behind a
request router, with admission control, autoscaling and streaming metrics.

The paper evaluates a single time-shared NPU; this package scales that
engine to the serving-cluster shape every production stack has::

    from repro.cluster import Pool, simulate_cluster, make_router
    from repro.schedulers.base import make_scheduler

    pools = [
        Pool("eyeriss", make_scheduler("dysta", lut), 2, affinity=cnn_affinity),
        Pool("sanger", make_scheduler("dysta", lut), 2, affinity=attnn_affinity),
    ]
    result = simulate_cluster(requests, pools, router=make_router("jsq"))
    print(result.antt, result.shed_rate, result.p99)

Pools are elastic: pass ``autoscaler=make_autoscaler("reactive")`` and the
cluster grows and shrinks accelerator capacity against load, subject to a
provisioning warm-up latency and drain-before-remove semantics, with the
cost (accelerator-seconds provisioned vs used, scale events, sheds under
scale lag) accounted in the result metrics.
"""

from repro.cluster.admission import (
    SHED_QUEUE_DEPTH,
    SHED_SLO_INFEASIBLE,
    AdmissionController,
)
from repro.cluster.autoscale import (
    Autoscaler,
    ScaleEvent,
    cost_summary,
    make_autoscaler,
)
from repro.cluster.engine import ClusterResult, PoolStats, simulate_cluster
from repro.cluster.metrics import StreamingHistogram, StreamingMetrics
from repro.cluster.policies import (
    AutoscalePolicy,
    available_autoscale_policies,
    make_autoscale_policy,
    register_autoscale_policy,
)
from repro.cluster.pool import Pool
from repro.cluster.presets import (
    build_heterogeneous_world,
    build_router,
    family_affinity,
)
from repro.cluster.routing import (
    Router,
    available_routers,
    make_router,
    predicted_remaining,
    register_router,
)

__all__ = [
    "AdmissionController",
    "SHED_QUEUE_DEPTH",
    "SHED_SLO_INFEASIBLE",
    "Autoscaler",
    "AutoscalePolicy",
    "ScaleEvent",
    "ClusterResult",
    "PoolStats",
    "simulate_cluster",
    "StreamingHistogram",
    "StreamingMetrics",
    "Pool",
    "Router",
    "available_autoscale_policies",
    "build_heterogeneous_world",
    "build_router",
    "cost_summary",
    "family_affinity",
    "available_routers",
    "make_autoscale_policy",
    "make_autoscaler",
    "make_router",
    "predicted_remaining",
    "register_autoscale_policy",
    "register_router",
]
