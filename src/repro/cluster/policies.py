"""Autoscaling policies: how much capacity a pool should have right now.

An :class:`AutoscalePolicy` is consulted by the
:class:`~repro.cluster.autoscale.Autoscaler` at every tick, once per pool,
and returns the pool's *desired* provision target (warm + warming
accelerators).  The autoscaler handles everything temporal — tick cadence,
per-direction cooldowns, warm-up scheduling — so policies are pure
state → capacity functions over the pool's placement-visible state, the
same information boundary the routers and admission controller obey.

Three built-in policies, mirroring the router registry idiom
(``@register_autoscale_policy`` / ``make_autoscale_policy``):

* **reactive** — queue-depth thresholds with hysteresis: scale up when the
  backlog per provisioned accelerator crosses a high-water mark, down only
  when it falls under a separate low-water mark *and* warm capacity sits
  idle.  The gap between the marks is what keeps an oscillating load from
  flapping capacity up and down.
* **target-utilization** — proportional control on the pool's windowed
  utilization (the busy-time delta since the previous decision):
  ``desired = ceil(current * observed / target)``, with a deadband so
  near-target noise changes nothing.  Saturated pools (utilization pinned
  at 1 with a backlog) grow geometrically by ``1/target`` per tick.
* **predictive** — feeds the predictive router's LUT latency estimates
  forward over the provisioning horizon: size capacity to clear the
  sparsity-corrected outstanding work *plus* the work expected to arrive
  while new accelerators are still warming (EWMA arrival rate × predicted
  mean service time × horizon) within a target drain time.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Dict, List

from repro.core.lut import ModelInfoLUT
from repro.core.predictor import PredictorStrategy, SparseLatencyPredictor
from repro.errors import SchedulingError

from repro.cluster.pool import Pool
from repro.cluster.routing import predicted_remaining


class AutoscalePolicy(abc.ABC):
    """Base class for autoscaling policies.

    Args:
        min_accelerators: Lower clamp on the desired capacity (>= 1 so a
            pool can never scale itself out of existence).
        max_accelerators: Upper clamp on the desired capacity.
    """

    #: Registry / display name; subclasses override via the decorator.
    name: str = "base"

    def __init__(self, min_accelerators: int = 1, max_accelerators: int = 8):
        if min_accelerators < 1:
            raise SchedulingError(
                f"min accelerators must be >= 1, got {min_accelerators}"
            )
        if max_accelerators < min_accelerators:
            raise SchedulingError(
                f"max accelerators ({max_accelerators}) must be >= min "
                f"({min_accelerators})"
            )
        self.min_accelerators = min_accelerators
        self.max_accelerators = max_accelerators

    def reset(self, pools: List[Pool]) -> None:
        """Clear per-run state; called by the autoscaler before a run."""

    def clamp(self, capacity: int) -> int:
        return min(max(capacity, self.min_accelerators), self.max_accelerators)

    @abc.abstractmethod
    def desired_capacity(self, pool: Pool, now: float, horizon: float) -> int:
        """The provision target this policy wants for ``pool`` at ``now``.

        ``horizon`` is the autoscaler's provisioning latency — how long new
        capacity takes to become schedulable — for policies that plan ahead.
        The return value is clamped by the caller; returning
        ``pool.provision_target`` means "no change".
        """


_REGISTRY: Dict[str, Callable[..., AutoscalePolicy]] = {}


def register_autoscale_policy(name: str) -> Callable[[type], type]:
    """Class decorator adding a policy to the registry under ``name``."""

    def deco(cls: type) -> type:
        if name in _REGISTRY:
            raise SchedulingError(f"autoscale policy {name!r} registered twice")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def available_autoscale_policies() -> List[str]:
    """Registered autoscale policy names, sorted."""
    return sorted(_REGISTRY)


def make_autoscale_policy(name: str, **kwargs) -> AutoscalePolicy:
    """Instantiate a registered autoscale policy by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown autoscale policy {name!r}; available: "
            f"{available_autoscale_policies()}"
        ) from None
    return factory(**kwargs)


@register_autoscale_policy("reactive")
class ReactivePolicy(AutoscalePolicy):
    """Queue-depth thresholds with hysteresis.

    Scale up when the backlog per provisioned accelerator exceeds
    ``high_backlog`` — by enough capacity to bring it back under the mark,
    at least ``step``.  Scale down by ``step`` only when the backlog falls
    under ``low_backlog`` *and* at least one warm accelerator is idle (a
    fully-busy pool is never drained).  The ``high``/``low`` gap is the
    hysteresis band; a load oscillating inside it changes nothing.
    """

    def __init__(
        self,
        high_backlog: float = 4.0,
        low_backlog: float = 1.0,
        step: int = 1,
        **limits,
    ):
        super().__init__(**limits)
        if not 0.0 <= low_backlog < high_backlog:
            raise SchedulingError(
                f"need 0 <= low_backlog < high_backlog, got "
                f"low={low_backlog}, high={high_backlog}"
            )
        if step < 1:
            raise SchedulingError(f"step must be >= 1, got {step}")
        self.high_backlog = high_backlog
        self.low_backlog = low_backlog
        self.step = step

    def desired_capacity(self, pool: Pool, now: float, horizon: float) -> int:
        target = pool.provision_target
        per_acc = pool.backlog() / max(target, 1)
        if per_acc > self.high_backlog:
            need = math.ceil(pool.backlog() / self.high_backlog)
            return self.clamp(max(target + self.step, need))
        if per_acc < self.low_backlog and pool.idle:
            return self.clamp(target - self.step)
        return target


@register_autoscale_policy("target-utilization")
class TargetUtilizationPolicy(AutoscalePolicy):
    """Proportional control toward a utilization set-point.

    Observes the pool's utilization over the window since the previous
    decision (busy-time delta over warm capacity × elapsed time) and
    requests ``ceil(current * observed / target)`` accelerators — the
    classic horizontal-autoscaler control law.  A relative ``tolerance``
    deadband around the set-point suppresses noise-driven changes.
    """

    def __init__(self, target: float = 0.7, tolerance: float = 0.15, **limits):
        super().__init__(**limits)
        if not 0.0 < target <= 1.0:
            raise SchedulingError(f"target utilization must be in (0, 1], got {target}")
        if tolerance < 0.0:
            raise SchedulingError(f"tolerance must be >= 0, got {tolerance}")
        self.target = target
        self.tolerance = tolerance
        self._busy: Dict[str, float] = {}
        self._clock: Dict[str, float] = {}

    def reset(self, pools: List[Pool]) -> None:
        self._busy = {pool.name: 0.0 for pool in pools}
        self._clock = {pool.name: 0.0 for pool in pools}

    def desired_capacity(self, pool: Pool, now: float, horizon: float) -> int:
        prev_busy = self._busy.get(pool.name, 0.0)
        prev_now = self._clock.get(pool.name, 0.0)
        self._busy[pool.name] = pool.busy_time
        self._clock[pool.name] = now
        window = now - prev_now
        if window <= 0.0:
            return pool.provision_target
        # Both the utilization measurement and the proportional law are over
        # the *warm* capacity that produced the busy time: scaling the
        # provision target (which counts still-warming accelerators) by a
        # utilization the warming capacity didn't participate in would
        # compound the desired size on every tick of a warm-up window.
        warm = max(pool.num_accelerators, 1)
        observed = (pool.busy_time - prev_busy) / (warm * window)
        if abs(observed - self.target) <= self.tolerance * self.target:
            return pool.provision_target
        return self.clamp(math.ceil(warm * observed / self.target))


@register_autoscale_policy("predictive")
class PredictiveScalePolicy(AutoscalePolicy):
    """Feed LUT latency estimates forward over the provisioning horizon.

    Capacity is sized for the load the pool will face when a scale-up
    decision made *now* actually lands, ``horizon`` seconds later:

    * **offered load** — an EWMA of the pool's arrival rate × the
      LUT-predicted mean service time: the accelerator-seconds per second
      the pool must absorb just to keep up (Erlang offered load);
    * **projected backlog** — the sparsity-corrected outstanding work (the
      predictive router's per-request remaining estimate, at each request's
      effective speed) rolled forward over the horizon: inflow accrues at
      the offered-load rate while the current warm capacity drains it;
    * the projected backlog must clear within ``target_delay`` seconds
      once the new capacity is warm.

    ``desired = ceil(offered + projected_backlog / target_delay)``.
    """

    def __init__(
        self,
        lut: ModelInfoLUT,
        *,
        strategy: PredictorStrategy = PredictorStrategy.LAST_ONE,
        target_delay: float = 1.0,
        smoothing: float = 0.5,
        **limits,
    ):
        super().__init__(**limits)
        if target_delay <= 0.0:
            raise SchedulingError(
                f"target delay must be positive, got {target_delay}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise SchedulingError(f"smoothing must be in (0, 1], got {smoothing}")
        self.lut = lut
        self.predictor = SparseLatencyPredictor(lut, strategy)
        self.target_delay = target_delay
        self.smoothing = smoothing
        self._enqueued: Dict[str, int] = {}
        self._clock: Dict[str, float] = {}
        self._rate: Dict[str, float] = {}
        self._service: Dict[str, float] = {}

    def reset(self, pools: List[Pool]) -> None:
        self._enqueued = {pool.name: 0 for pool in pools}
        self._clock = {pool.name: 0.0 for pool in pools}
        self._rate = {pool.name: 0.0 for pool in pools}
        self._service = {pool.name: 0.0 for pool in pools}

    def desired_capacity(self, pool: Pool, now: float, horizon: float) -> int:
        predictor = self.predictor
        work = 0.0       # sparsity-corrected outstanding accelerator-seconds
        service = 0.0    # LUT-average full service time of the pending mix
        backlog = 0
        for request in pool.pending():
            work += predicted_remaining(predictor, request) / pool.service_speed(request)
            entry = request.lut_entry(self.lut)
            if entry is not None:
                service += entry.remaining_suffix_t[0] / pool.service_speed(request)
            backlog += 1
        window = now - self._clock.get(pool.name, 0.0)
        if window > 0.0:
            arrived = pool.enqueued - self._enqueued.get(pool.name, 0)
            instant = arrived / window
            ewma = self._rate.get(pool.name, 0.0)
            self._rate[pool.name] = (
                self.smoothing * instant + (1.0 - self.smoothing) * ewma
            )
            self._enqueued[pool.name] = pool.enqueued
            self._clock[pool.name] = now
        if backlog:
            self._service[pool.name] = service / backlog
        offered = self._rate.get(pool.name, 0.0) * self._service.get(pool.name, 0.0)
        warm = max(pool.num_accelerators, 1)
        projected = max(0.0, work + (offered - warm) * horizon)
        return self.clamp(math.ceil(offered + projected / self.target_delay))
