"""Admission control: shed load the cluster cannot serve acceptably.

A production serving tier rejects work it cannot finish usefully instead of
letting queues grow without bound — an unserved request that would have
missed its SLO anyway is cheaper refused at the door.  The controller is
consulted once per request, after the router has picked a pool, and either
admits it or sheds it with a reason:

* ``queue_depth`` — the target pool already holds more than
  ``max_queue_depth`` outstanding requests per accelerator;
* ``slo_infeasible`` — the LUT-estimated completion time (queued work spread
  over the pool's accelerators, plus the request's own estimated service
  time at the pool's effective speed) already exceeds the request's
  deadline.  Estimates use only offline LUT averages — the same information
  boundary the schedulers obey.

The default controller admits everything, which keeps the cluster engine a
strict generalization of the single-pool engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError
from repro.sim.request import Request

from repro.cluster.pool import Pool

_EPS = 1e-12

#: Shed-reason labels (values of :meth:`AdmissionController.admit`).
SHED_QUEUE_DEPTH = "queue_depth"
SHED_SLO_INFEASIBLE = "slo_infeasible"


@dataclass
class AdmissionController:
    """Queue-depth and SLO-infeasibility load shedding.

    Attributes:
        max_queue_depth: Maximum outstanding (queued + in-flight) requests
            per accelerator in the target pool; ``None`` disables the check.
        slo_guard: Shed requests whose estimated completion already misses
            their deadline at admission time.  Requires ``lut``.
        lut: Offline model-information LUT used for the SLO-guard estimates.
    """

    max_queue_depth: Optional[int] = None
    slo_guard: bool = False
    lut: Optional[ModelInfoLUT] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise SchedulingError(
                f"max queue depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.slo_guard and self.lut is None:
            raise SchedulingError("the SLO guard needs a ModelInfoLUT for estimates")

    def _estimated_remaining(self, request: Request) -> float:
        """LUT-average remaining latency; 0 for models outside the LUT."""
        assert self.lut is not None
        if request.key not in self.lut:
            return 0.0
        return self.lut.static_remaining(request.key, request.next_layer)

    def admit(self, request: Request, pool: Pool, now: float) -> Optional[str]:
        """Return ``None`` to admit, or the shed-reason label to reject."""
        # max(.., 1) guards the instant where an autoscaled pool's last
        # draining accelerator retired while its replacements still warm.
        if (
            self.max_queue_depth is not None
            and pool.backlog() >= self.max_queue_depth * max(pool.num_accelerators, 1)
        ):
            return SHED_QUEUE_DEPTH
        if self.slo_guard:
            backlog_work = sum(
                self._estimated_remaining(r) / pool.service_speed(r)
                for r in pool.pending()
            )
            service = self._estimated_remaining(request) / pool.service_speed(request)
            estimated_finish = (
                now + backlog_work / max(pool.num_accelerators, 1) + service
            )
            if estimated_finish > request.deadline + _EPS:
                return SHED_SLO_INFEASIBLE
        return None
