"""Streaming (single-pass, bounded-memory) metric aggregation.

The batch metrics in :mod:`repro.sim.metrics` need every finished
:class:`~repro.sim.request.Request` alive at once; replaying a production
trace of 100k+ requests that way retains the whole stream in memory.  The
cluster engine instead folds each request into a :class:`StreamingMetrics`
accumulator the moment it finishes (or is shed) and may then drop it.

ANTT, SLO violation rate, STP and shed rate are exact running aggregates.
Tail percentiles of the normalized-turnaround distribution come from a
fixed-size log-spaced histogram (:class:`StreamingHistogram`): worst-case
relative error is the bucket growth factor (1% by default), memory is a few
thousand counters regardless of stream length.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.errors import SchedulingError
from repro.sim.request import Request


class StreamingHistogram:
    """Log-spaced bucket histogram with bounded-relative-error quantiles.

    Buckets grow geometrically by ``growth`` between ``lo`` and ``hi``;
    values outside the range clamp into the edge buckets.  ``percentile``
    returns the geometric midpoint of the bucket containing the requested
    rank, so the relative error is at most ``sqrt(growth) - 1``.
    """

    def __init__(self, lo: float = 1e-3, hi: float = 1e7, growth: float = 1.02):
        if not (0.0 < lo < hi):
            raise SchedulingError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if growth <= 1.0:
            raise SchedulingError(f"bucket growth must be > 1, got {growth}")
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        self.num_buckets = int(math.ceil(math.log(hi / lo) / self._log_growth)) + 1
        self._counts = np.zeros(self.num_buckets, dtype=np.int64)
        self.count = 0

    def observe(self, value: float) -> None:
        if value <= 0 or math.isnan(value):
            raise SchedulingError(f"histogram values must be positive, got {value}")
        idx = int(math.log(value / self.lo) / self._log_growth) if value > self.lo else 0
        self._counts[min(max(idx, 0), self.num_buckets - 1)] += 1
        self.count += 1

    def percentile(self, pct: float) -> float:
        if not 0.0 < pct <= 100.0:
            raise SchedulingError(f"percentile must be in (0, 100], got {pct}")
        if self.count == 0:
            return float("nan")
        rank = pct / 100.0 * self.count
        cum = np.cumsum(self._counts)
        idx = int(np.searchsorted(cum, rank - 1e-9, side="left"))
        return self.lo * self.growth ** (idx + 0.5)


class StreamingMetrics:
    """Incremental ANTT / violation-rate / STP / shed-rate / tail tracker.

    Mirrors :func:`repro.sim.metrics.summarize` (same keys, plus
    ``shed_rate``) without retaining requests.  Aggregates that are undefined
    on an empty stream come back as ``nan`` rather than raising, so a run
    that shed every request still yields a well-formed summary.
    """

    def __init__(self, histogram: Optional[StreamingHistogram] = None):
        self._hist = histogram or StreamingHistogram()
        self.completed = 0
        self.shed = 0
        self.shed_reasons: Dict[str, int] = {}
        self._norm_sum = 0.0
        self._violations = 0
        self._first_arrival = math.inf
        self._last_finish = -math.inf
        self._joules_sum = 0.0
        self._edp_sum = 0.0
        self._energy_observed = False

    def observe(self, request: Request, energy_joules: Optional[float] = None) -> None:
        """Fold one *finished* request into the aggregates.

        ``energy_joules`` (the accountant's per-request total) extends the
        summary with the energy axis; it is folded exactly — per-request
        energy and EDP means are running sums, not histogram estimates.
        """
        if request.finish_time is None:
            raise SchedulingError(f"request {request.rid} never finished")
        norm = request.normalized_turnaround
        self.completed += 1
        self._norm_sum += norm
        self._violations += int(request.violated)
        self._first_arrival = min(self._first_arrival, request.arrival)
        self._last_finish = max(self._last_finish, request.finish_time)
        self._hist.observe(norm)
        if energy_joules is not None:
            self._energy_observed = True
            self._joules_sum += energy_joules
            self._edp_sum += energy_joules * request.turnaround

    def observe_shed(self, request: Request, reason: str) -> None:
        """Record one load-shed (never-executed) request."""
        self.shed += 1
        self.shed_reasons[reason] = self.shed_reasons.get(reason, 0) + 1

    # -- running aggregates -------------------------------------------------

    @property
    def offered(self) -> int:
        """Total requests that reached the router (completed + shed)."""
        return self.completed + self.shed

    @property
    def antt(self) -> float:
        return self._norm_sum / self.completed if self.completed else float("nan")

    @property
    def violation_rate(self) -> float:
        return self._violations / self.completed if self.completed else float("nan")

    @property
    def stp(self) -> float:
        """Completed inferences per second over the busy horizon."""
        span = self._last_finish - self._first_arrival
        if self.completed == 0 or span <= 0:
            return float("nan")
        return self.completed / span

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else float("nan")

    def percentile(self, pct: float) -> float:
        """Approximate percentile of the normalized-turnaround distribution."""
        return self._hist.percentile(pct)

    @property
    def energy_per_request(self) -> float:
        return self._joules_sum / self.completed if self.completed else float("nan")

    @property
    def total_joules(self) -> float:
        return self._joules_sum

    @property
    def edp(self) -> float:
        return self._edp_sum / self.completed if self.completed else float("nan")

    def summary(self) -> Dict[str, float]:
        """Same shape as :func:`repro.sim.metrics.summarize`, plus shed rate
        (and the energy keys when per-request energy was observed)."""
        out = {
            "antt": self.antt,
            "violation_rate": self.violation_rate,
            "stp": self.stp,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "shed_rate": self.shed_rate,
        }
        if self._energy_observed:
            out["energy_per_request"] = self.energy_per_request
            out["total_joules"] = self.total_joules
            out["edp"] = self.edp
        return out
