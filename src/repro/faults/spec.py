"""Deterministic fault timelines: what breaks, when, and for how long.

A :class:`FaultSpec` is an immutable list of :class:`FaultEvent` entries —
accelerator outages, slowdown stragglers, admission blackouts and spot
revocations — that the cluster engine replays as first-class simulation
events (see :mod:`repro.faults.inject`).  The spec is pure data: it can be
serialized to JSON byte-for-byte (the fuzzer's reproducer format), built
from a seeded RNG stream (:func:`sample_fault_spec`), or taken from the
named preset registry (:func:`build_faults`) that ``SweepConfig(faults=...)``
and the CLI expose.

Window semantics are half-open: a fault with ``time=t`` and ``duration=d``
is active over ``[t, t+d)``.  A zero-duration window is therefore a
semantic no-op — it is still counted and emitted on the trace bus, which
is what makes the lockstep property test possible: injecting a timeline
and instantly recovering it (:meth:`FaultSpec.instantly_recovered`) must be
bit-identical to a fault-free run.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import FaultError

#: Fault kinds, in docs order.
KIND_OUTAGE = "outage"       # warm accelerators go down, then recover
KIND_SLOWDOWN = "slowdown"   # straggler window: service time x factor
KIND_BLACKOUT = "blackout"   # arrivals inside the window are shed
KIND_REVOKE = "revoke"       # spot revocation: permanent graceful removal

FAULT_KINDS = (KIND_OUTAGE, KIND_SLOWDOWN, KIND_BLACKOUT, KIND_REVOKE)

_FIELD_ORDER = ("kind", "time", "duration", "pool", "count", "factor")


@dataclass(frozen=True)
class FaultEvent:
    """One entry of a fault timeline.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        time: Fault start, simulated seconds (>= 0).
        duration: Window length; the fault is active over
            ``[time, time + duration)``.  Must be 0 for ``revoke``
            (revocation is permanent).
        pool: Target pool name; ``None`` targets every pool.
        count: Accelerators affected (``outage``/``revoke``); ``None``
            means every warm accelerator (``outage``) or one (``revoke``).
        factor: Multiplicative service-*time* factor (``slowdown`` only;
            2.0 makes every block dispatched inside the window twice as
            slow).
    """

    kind: str
    time: float
    duration: float = 0.0
    pool: Optional[str] = None
    count: Optional[int] = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not (math.isfinite(self.time) and self.time >= 0):
            raise FaultError(f"fault time must be finite and >= 0, got {self.time}")
        if not (math.isfinite(self.duration) and self.duration >= 0):
            raise FaultError(
                f"fault duration must be finite and >= 0, got {self.duration}"
            )
        if self.count is not None and self.count < 1:
            raise FaultError(f"fault count must be >= 1, got {self.count}")
        if self.kind == KIND_SLOWDOWN:
            if not (math.isfinite(self.factor) and self.factor >= 1.0):
                raise FaultError(
                    f"slowdown factor must be >= 1.0, got {self.factor}"
                )
        elif self.factor != 1.0:
            raise FaultError(f"factor only applies to slowdown faults")
        if self.kind == KIND_REVOKE and self.duration != 0.0:
            raise FaultError(
                "revocation is permanent; duration must be 0, "
                f"got {self.duration}"
            )
        if self.kind in (KIND_SLOWDOWN, KIND_BLACKOUT) and self.count is not None:
            raise FaultError(f"count does not apply to {self.kind} faults")

    @property
    def end(self) -> float:
        return self.time + self.duration

    def to_dict(self) -> Dict:
        """JSON-friendly dict; ``None``/default fields are kept explicit so
        round-trips are byte-stable."""
        return {
            "kind": self.kind,
            "time": self.time,
            "duration": self.duration,
            "pool": self.pool,
            "count": self.count,
            "factor": self.factor,
        }

    @classmethod
    def from_dict(cls, row: Dict) -> "FaultEvent":
        unknown = sorted(set(row) - set(_FIELD_ORDER))
        if unknown:
            raise FaultError(f"unknown fault-event fields {unknown}")
        if "kind" not in row or "time" not in row:
            raise FaultError(f"fault event needs 'kind' and 'time': {row}")
        return cls(
            kind=row["kind"],
            time=float(row["time"]),
            duration=float(row.get("duration", 0.0)),
            pool=row.get("pool"),
            count=None if row.get("count") is None else int(row["count"]),
            factor=float(row.get("factor", 1.0)),
        )


@dataclass(frozen=True)
class FaultSpec:
    """An immutable fault timeline (any order; the injector sorts it)."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise FaultError(
                    f"FaultSpec events must be FaultEvent, got {type(event).__name__}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def instantly_recovered(self) -> "FaultSpec":
        """The same timeline with every window collapsed to zero duration.

        Revocations are dropped (they cannot be recovered).  Because fault
        windows are half-open, the result is a semantic no-op timeline:
        running it must be bit-identical to a fault-free run — the
        property the lockstep tests pin down.
        """
        return FaultSpec(tuple(
            replace(event, duration=0.0)
            for event in self.events
            if event.kind != KIND_REVOKE
        ))

    def to_dicts(self) -> List[Dict]:
        return [event.to_dict() for event in self.events]

    @classmethod
    def from_dicts(cls, rows: Sequence[Dict]) -> "FaultSpec":
        return cls(tuple(FaultEvent.from_dict(row) for row in rows))

    def to_json(self) -> str:
        """Canonical JSON (sorted keys): same timeline => same bytes."""
        return json.dumps(self.to_dicts(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSpec":
        rows = json.loads(text)
        if not isinstance(rows, list):
            raise FaultError(
                f"fault spec JSON must be a list, got {type(rows).__name__}"
            )
        return cls.from_dicts(rows)


# --------------------------------------------------------------------------
# Seeded random timelines (the fuzzer's raw material)
# --------------------------------------------------------------------------


def sample_fault_event(rng: np.random.Generator, duration: float, *,
                       pool: Optional[str] = None,
                       kinds: Sequence[str] = FAULT_KINDS) -> FaultEvent:
    """Draw one random fault event inside a run of length ``duration``."""
    kind = kinds[int(rng.integers(len(kinds)))]
    t = float(rng.uniform(0.05, 0.8) * duration)
    if kind == KIND_OUTAGE:
        return FaultEvent(kind, t, duration=float(rng.uniform(0.05, 0.2) * duration),
                          pool=pool, count=int(rng.integers(1, 3)))
    if kind == KIND_SLOWDOWN:
        return FaultEvent(kind, t, duration=float(rng.uniform(0.1, 0.3) * duration),
                          pool=pool, factor=float(rng.uniform(1.5, 4.0)))
    if kind == KIND_BLACKOUT:
        return FaultEvent(kind, t, duration=float(rng.uniform(0.02, 0.1) * duration),
                          pool=pool)
    return FaultEvent(KIND_REVOKE, t, pool=pool, count=1)


def sample_fault_spec(seed: Union[int, np.random.Generator], duration: float, *,
                      pools: Sequence[Optional[str]] = (None,),
                      kinds: Sequence[str] = FAULT_KINDS,
                      max_events: int = 4) -> FaultSpec:
    """A random timeline of 1..``max_events`` faults from a seeded stream."""
    if duration <= 0:
        raise FaultError(f"duration must be positive, got {duration}")
    if max_events < 1:
        raise FaultError(f"max_events must be >= 1, got {max_events}")
    rng = (seed if isinstance(seed, np.random.Generator)
           else np.random.default_rng(seed))
    n = int(rng.integers(1, max_events + 1))
    events = tuple(
        sample_fault_event(rng, duration,
                           pool=pools[int(rng.integers(len(pools)))],
                           kinds=kinds)
        for _ in range(n)
    )
    return FaultSpec(events)


# --------------------------------------------------------------------------
# Named preset registry (SweepConfig(faults=...) / repro scenario --faults)
# --------------------------------------------------------------------------


def fault_seed(name: str, seed: int) -> int:
    """Stable per-preset seed (CRC-based, never ``hash()`` — that is salted
    per process and would break cross-run sweep resume)."""
    return (zlib.crc32(f"faults:{name}".encode()) + seed) & 0x7FFFFFFF


def _outages(rng: np.random.Generator, duration: float) -> Tuple[FaultEvent, ...]:
    """Two single-accelerator outages, early and late in the run."""
    return (
        FaultEvent(KIND_OUTAGE, float(rng.uniform(0.15, 0.3) * duration),
                   duration=float(rng.uniform(0.1, 0.2) * duration), count=1),
        FaultEvent(KIND_OUTAGE, float(rng.uniform(0.5, 0.65) * duration),
                   duration=float(rng.uniform(0.1, 0.2) * duration), count=1),
    )


def _stragglers(rng: np.random.Generator, duration: float) -> Tuple[FaultEvent, ...]:
    """Two pool-wide slowdown windows (2-4x service time)."""
    return (
        FaultEvent(KIND_SLOWDOWN, float(rng.uniform(0.1, 0.25) * duration),
                   duration=float(rng.uniform(0.15, 0.25) * duration),
                   factor=float(rng.uniform(2.0, 4.0))),
        FaultEvent(KIND_SLOWDOWN, float(rng.uniform(0.55, 0.7) * duration),
                   duration=float(rng.uniform(0.15, 0.25) * duration),
                   factor=float(rng.uniform(2.0, 4.0))),
    )


def _spot(rng: np.random.Generator, duration: float) -> Tuple[FaultEvent, ...]:
    """Two spot revocations (graceful drain, permanent)."""
    return (
        FaultEvent(KIND_REVOKE, float(rng.uniform(0.25, 0.35) * duration), count=1),
        FaultEvent(KIND_REVOKE, float(rng.uniform(0.55, 0.65) * duration), count=1),
    )


def _blackouts(rng: np.random.Generator, duration: float) -> Tuple[FaultEvent, ...]:
    """Two short admission blackouts (arrivals inside them are shed)."""
    return (
        FaultEvent(KIND_BLACKOUT, float(rng.uniform(0.2, 0.3) * duration),
                   duration=float(rng.uniform(0.04, 0.08) * duration)),
        FaultEvent(KIND_BLACKOUT, float(rng.uniform(0.6, 0.7) * duration),
                   duration=float(rng.uniform(0.04, 0.08) * duration)),
    )


def _chaos(rng: np.random.Generator, duration: float) -> Tuple[FaultEvent, ...]:
    """One of everything: outage, straggler, blackout, spot revocation."""
    return (
        FaultEvent(KIND_OUTAGE, float(rng.uniform(0.15, 0.25) * duration),
                   duration=float(rng.uniform(0.1, 0.2) * duration), count=1),
        FaultEvent(KIND_SLOWDOWN, float(rng.uniform(0.35, 0.45) * duration),
                   duration=float(rng.uniform(0.15, 0.25) * duration),
                   factor=float(rng.uniform(2.0, 3.5))),
        FaultEvent(KIND_BLACKOUT, float(rng.uniform(0.55, 0.65) * duration),
                   duration=float(rng.uniform(0.04, 0.08) * duration)),
        FaultEvent(KIND_REVOKE, float(rng.uniform(0.7, 0.8) * duration), count=1),
    )


_PRESETS: Dict[str, Callable[[np.random.Generator, float], Tuple[FaultEvent, ...]]] = {
    "outages": _outages,
    "stragglers": _stragglers,
    "spot": _spot,
    "blackouts": _blackouts,
    "chaos": _chaos,
}


def available_fault_presets() -> List[str]:
    """Registered fault-preset names, sorted."""
    return sorted(_PRESETS)


def fault_preset_descriptions() -> Dict[str, str]:
    """Name → one-line description (the factory docstring's first line)."""
    return {
        name: next(iter((factory.__doc__ or "").strip().splitlines()), "")
        for name, factory in sorted(_PRESETS.items())
    }


def build_faults(name: str, *, duration: float, seed: int = 0) -> FaultSpec:
    """Instantiate a named fault preset over a run of length ``duration``.

    Deterministic: the timeline is a pure function of (name, duration,
    seed), so sweep cells with faults stay bit-identical for any worker
    count.
    """
    if name not in _PRESETS:
        raise FaultError(
            f"unknown fault preset {name!r}; available: {available_fault_presets()}"
        )
    if duration <= 0:
        raise FaultError(f"duration must be positive, got {duration}")
    rng = np.random.default_rng(fault_seed(name, seed))
    return FaultSpec(_PRESETS[name](rng, duration))
