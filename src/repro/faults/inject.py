"""FaultInjector: replay a :class:`~repro.faults.spec.FaultSpec` against a
live cluster.

The injector turns a fault timeline into sorted *boundaries* (an outage
has a start and an end; a revocation is a single permanent boundary; a
zero-duration window collapses to one "observe" boundary that applies
nothing but is still counted and emitted).  The cluster engine pushes one
``_FAULT`` control event per boundary time and calls :meth:`advance` when
it pops; everything the injector does goes through the pools' public
fault hooks (``fail_accelerators`` / ``recover_accelerators`` /
``push_slowdown`` / ``remove_accelerators``), so fault semantics live in
one place.

:meth:`advance` returns whether the boundary *changed* simulator state.
No-op boundaries (zero-duration windows, blackout edges — blackout
shedding is keyed on arrival time, not wall time) return ``False`` and the
engine then skips its post-event admit/dispatch pass: this is what makes
an instantly-recovered timeline bit-identical to a fault-free run (the
lockstep property test) — admitting arrivals at a timestamp the fault-free
run has no event for would perturb admission-controller and
work-estimating-router decisions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import FaultError
from repro.obs.bus import KIND_FAULT, KIND_RECOVER
from repro.faults.spec import (
    FaultEvent,
    FaultSpec,
    KIND_BLACKOUT,
    KIND_OUTAGE,
    KIND_REVOKE,
    KIND_SLOWDOWN,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.cluster.pool import Pool

#: Shed reason recorded for arrivals inside an admission blackout window.
SHED_FAULT_BLACKOUT = "fault_blackout"

_EPS = 1e-12

# Boundary actions, in same-time processing order: ends before starts so a
# window that closes exactly when another opens hands over cleanly.
_END = 0
_START = 1
_OBSERVE = 2
_REVOKE = 3


class FaultInjector:
    """Drives one fault timeline through a cluster run.

    Construct with a spec, then :meth:`reset` with the run's pools and
    trace bus; the engine calls :meth:`advance` at every fault boundary
    and :meth:`in_blackout` per admitted arrival.
    """

    def __init__(self, spec: FaultSpec):
        if not isinstance(spec, FaultSpec):
            raise FaultError(
                f"expected a FaultSpec, got {type(spec).__name__}"
            )
        self.spec = spec
        self._pools: List["Pool"] = []
        self._tracer = None
        self._boundaries: List[Tuple[float, int, int, int, FaultEvent]] = []
        self._cursor = 0
        self._outage_npus: Dict[int, List[Tuple["Pool", List[int]]]] = {}
        self._blackouts: Dict[str, List[Tuple[float, float]]] = {}
        self.num_faults = 0
        self.requests_requeued = 0
        self.blackout_sheds = 0

    # -- run binding ---------------------------------------------------------

    def reset(self, pools: Sequence["Pool"], tracer=None) -> None:
        """Bind to one run: validate pool references, arm the pools' fault
        hooks, and lay out the sorted boundary schedule."""
        self._pools = list(pools)
        self._tracer = tracer
        names = {pool.name for pool in self._pools}
        for event in self.spec.events:
            if event.pool is not None and event.pool not in names:
                raise FaultError(
                    f"fault targets unknown pool {event.pool!r}; "
                    f"cluster has {sorted(names)}"
                )
        for pool in self._pools:
            pool.enable_fault_mode()
        boundaries: List[Tuple[float, int, int, int, FaultEvent]] = []
        self._blackouts = {name: [] for name in names}
        for idx, event in enumerate(self.spec.events):
            if event.kind == KIND_REVOKE:
                boundaries.append((event.time, _REVOKE, idx, idx, event))
            elif event.duration <= 0.0:
                boundaries.append((event.time, _OBSERVE, idx, idx, event))
            else:
                boundaries.append((event.time, _START, idx, idx, event))
                boundaries.append((event.end, _END, idx, idx, event))
                if event.kind == KIND_BLACKOUT:
                    for pool in self._targets(event):
                        self._blackouts[pool.name].append(
                            (event.time, event.end)
                        )
        # Sort by (time, action, index): at equal times, ends run before
        # starts, and equal-action boundaries keep spec order.
        boundaries.sort(key=lambda b: (b[0], b[1], b[2]))
        self._boundaries = boundaries
        self._cursor = 0
        self._outage_npus = {}
        self.num_faults = 0
        self.requests_requeued = 0
        self.blackout_sheds = 0

    def _targets(self, event: FaultEvent) -> List["Pool"]:
        if event.pool is None:
            return self._pools
        return [pool for pool in self._pools if pool.name == event.pool]

    def boundary_times(self) -> List[float]:
        """Distinct boundary timestamps, sorted — one engine control event
        is scheduled per entry."""
        return sorted({b[0] for b in self._boundaries})

    # -- engine hooks --------------------------------------------------------

    def advance(self, now: float) -> bool:
        """Apply every boundary due at ``now``.

        Returns True when simulator state changed (accelerators failed,
        recovered, revoked, or a slowdown window toggled) — the engine only
        runs its post-event admit/dispatch pass in that case, so no-op
        boundaries leave the schedule bit-identical to a fault-free run.
        """
        changed = False
        while (self._cursor < len(self._boundaries)
               and self._boundaries[self._cursor][0] <= now + _EPS):
            _, action, _, idx, event = self._boundaries[self._cursor]
            self._cursor += 1
            if action == _OBSERVE:
                # Zero-duration window: counted and emitted, nothing applied.
                self.num_faults += 1
                self._emit_noop(event, now)
            elif action == _REVOKE:
                self.num_faults += 1
                changed = self._apply_revoke(event, now) or changed
            elif action == _START:
                self.num_faults += 1
                changed = self._apply_start(event, idx, now) or changed
            else:
                changed = self._apply_end(event, idx, now) or changed
        return changed

    def in_blackout(self, arrival: float, pool_name: str) -> bool:
        """Whether an arrival at ``arrival`` routed to ``pool_name`` falls
        inside an admission blackout window (half-open ``[t, t+d)``, so the
        decision depends only on the arrival time — never on when the
        engine got around to admitting it)."""
        for start, end in self._blackouts.get(pool_name, ()):
            if start <= arrival < end:
                return True
        return False

    def note_blackout(self) -> None:
        self.blackout_sheds += 1

    # -- boundary actions ----------------------------------------------------

    def _emit_noop(self, event: FaultEvent, now: float) -> None:
        if self._tracer is None:
            return
        for pool in self._targets(event):
            self._tracer.emit(KIND_FAULT, now, pool=pool.name,
                              args={"fault": event.kind, "noop": True})

    def _apply_start(self, event: FaultEvent, idx: int, now: float) -> bool:
        changed = False
        if event.kind == KIND_OUTAGE:
            per_pool: List[Tuple["Pool", List[int]]] = []
            for pool in self._targets(event):
                failed, killed = pool.fail_accelerators(now, count=event.count)
                if failed:
                    per_pool.append((pool, failed))
                    changed = True
                self.requests_requeued += len(killed)
                if self._tracer is not None:
                    self._tracer.emit(
                        KIND_FAULT, now, event.duration, pool=pool.name,
                        args={"fault": event.kind, "failed": len(failed),
                              "killed": len(killed)},
                    )
                    for npu, req in killed:
                        # rid-carrying kill marker: the attribution ledger
                        # truncates the victim's optimistic execute span here.
                        self._tracer.emit(KIND_FAULT, now, pool=pool.name,
                                          npu=npu, rid=req.rid,
                                          args={"fault": "kill"})
            self._outage_npus[idx] = per_pool
        elif event.kind == KIND_SLOWDOWN:
            for pool in self._targets(event):
                pool.push_slowdown(event.factor)
                changed = True
                if self._tracer is not None:
                    self._tracer.emit(
                        KIND_FAULT, now, event.duration, pool=pool.name,
                        args={"fault": event.kind, "factor": event.factor},
                    )
        else:  # blackout: shedding is keyed on arrival time in the engine
            if self._tracer is not None:
                for pool in self._targets(event):
                    self._tracer.emit(
                        KIND_FAULT, now, event.duration, pool=pool.name,
                        args={"fault": event.kind},
                    )
        return changed

    def _apply_end(self, event: FaultEvent, idx: int, now: float) -> bool:
        changed = False
        if event.kind == KIND_OUTAGE:
            for pool, npus in self._outage_npus.pop(idx, ()):
                restored = pool.recover_accelerators(npus, now)
                if restored:
                    changed = True
                if self._tracer is not None:
                    self._tracer.emit(KIND_RECOVER, now, pool=pool.name,
                                      args={"fault": event.kind,
                                            "restored": restored})
        elif event.kind == KIND_SLOWDOWN:
            for pool in self._targets(event):
                pool.pop_slowdown(event.factor)
                changed = True
                if self._tracer is not None:
                    self._tracer.emit(KIND_RECOVER, now, pool=pool.name,
                                      args={"fault": event.kind})
        else:  # blackout end: bus-only, nothing to undo
            if self._tracer is not None:
                for pool in self._targets(event):
                    self._tracer.emit(KIND_RECOVER, now, pool=pool.name,
                                      args={"fault": event.kind})
        return changed

    def _apply_revoke(self, event: FaultEvent, now: float) -> bool:
        changed = False
        for pool in self._targets(event):
            before = pool.provision_target
            pool.remove_accelerators(event.count or 1, now)
            revoked = before - pool.provision_target
            if revoked:
                changed = True
            if self._tracer is not None:
                self._tracer.emit(KIND_FAULT, now, pool=pool.name,
                                  args={"fault": event.kind,
                                        "revoked": revoked})
        return changed

    # -- result folding ------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Fault counters merged into the cluster result metrics."""
        return {
            "num_faults": float(self.num_faults),
            "requests_requeued_by_fault": float(self.requests_requeued),
            "requests_shed_by_blackout": float(self.blackout_sheds),
        }
