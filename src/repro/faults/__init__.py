"""Deterministic fault injection for the cluster tier.

Public surface:

* :class:`FaultEvent` / :class:`FaultSpec` — immutable fault timelines
  (outages, slowdown stragglers, admission blackouts, spot revocations)
  with canonical JSON serialization;
* :func:`sample_fault_spec` — seeded random timelines (fuzzer raw
  material);
* :func:`build_faults` / :func:`available_fault_presets` — the named
  preset registry behind ``SweepConfig(faults=...)`` and the CLI;
* :class:`FaultInjector` — replays a spec against a live cluster run
  (constructed by :func:`repro.cluster.engine.simulate_cluster` when
  given ``faults=``).
"""

from repro.faults.inject import SHED_FAULT_BLACKOUT, FaultInjector
from repro.faults.spec import (
    FAULT_KINDS,
    FaultEvent,
    FaultSpec,
    available_fault_presets,
    build_faults,
    fault_preset_descriptions,
    fault_seed,
    sample_fault_event,
    sample_fault_spec,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "SHED_FAULT_BLACKOUT",
    "available_fault_presets",
    "build_faults",
    "fault_preset_descriptions",
    "fault_seed",
    "sample_fault_event",
    "sample_fault_spec",
]
