"""Profiling-study experiments: Figs 2/3/4/9 and Table 2."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.bench.figures import render_table
from repro.bench.viz import ascii_histogram
from repro.experiments.config import ExperimentScale
from repro.models.registry import TABLE2_MODELS, build_model
from repro.profiling.profiler import DEFAULT_CNN_PATTERNS, profile_model
from repro.sparsity.datasets import activation_model_for
from repro.sparsity.dynamic import correlation_matrix, relative_range
from repro.sparsity.patterns import (
    DENSE,
    SparsityPattern,
    WeightSparsityConfig,
    valid_mac_fraction,
)


def fig2(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 2: BERT normalized layer-latency distributions on SQuAD."""
    trace = profile_model(build_model("bert"), DENSE,
                          n_samples=scale.n_profile_samples, seed=0)
    rendered = []
    data = {}
    for label, idx in (("second_last", -2), ("last", -1)):
        lat = trace.latencies[:, idx]
        normalized = lat / lat.mean()
        data[label] = {
            "min": float(normalized.min()),
            "max": float(normalized.max()),
            "std": float(normalized.std()),
        }
        rendered.append(ascii_histogram(
            normalized, bins=14, width=40,
            title=f"Fig 2: BERT {label} layer, normalized latency",
        ))
    return rendered, data


def fig3(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 3: last-six-layer activation sparsity of ResNet-50 / VGG-16."""
    rows = {}
    data = {}
    for name in ("resnet50", "vgg16"):
        trace = profile_model(build_model(name), DEFAULT_CNN_PATTERNS[0],
                              n_samples=scale.n_profile_samples, seed=0)
        tail = trace.sparsities[:, -6:]
        rows[f"{name} p10"] = [float(v) for v in np.percentile(tail, 10, axis=0)]
        rows[f"{name} p90"] = [float(v) for v in np.percentile(tail, 90, axis=0)]
        data[name] = {
            "mean": float(tail.mean()),
            "spread": float(
                (np.percentile(tail, 90, axis=0) - np.percentile(tail, 10, axis=0)).max()
            ),
        }
    table = render_table("Fig 3: last-six-layer activation sparsity",
                         [f"L-{6 - i}" for i in range(6)], rows)
    return [table], data


def fig4(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 4: valid-MAC distributions, random vs channel at equal rates."""
    rows = {}
    data = {}
    for name, rate in (("resnet50", 0.95), ("mobilenet", 0.80)):
        model = build_model(name)
        sampler = activation_model_for(model, "imagenet")
        samples = sampler.sample(min(scale.n_profile_samples, 200),
                                 np.random.default_rng(0))
        macs = np.array([layer.macs for layer in model.layers], dtype=float)
        per_pattern = {}
        for pattern in (SparsityPattern.RANDOM, SparsityPattern.CHANNEL):
            cfg = WeightSparsityConfig(pattern, rate=rate)
            fracs = np.array([
                [valid_mac_fraction(cfg, float(s)) for s in row] for row in samples
            ])
            per_pattern[pattern.value] = fracs @ macs
        base = per_pattern["random"].mean()
        for pattern, values in per_pattern.items():
            normalized = values / base
            rows[f"{name}/{pattern}"] = [
                float(normalized.mean()), float(normalized.std()),
            ]
        data[name] = float(per_pattern["channel"].mean() / base)
    table = render_table("Fig 4: normalized valid MACs (vs random mean)",
                         ["mean", "std"], rows)
    return [table], data


def fig9(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 9: layer-sparsity Pearson correlation in BERT and GPT-2."""
    rows = {}
    data = {}
    for name in ("bert", "gpt2"):
        trace = profile_model(build_model(name), DENSE,
                              n_samples=scale.n_profile_samples, seed=0)
        cols = [j for j, lname in enumerate(trace.layer_names)
                if lname.endswith("_attn_score")]
        corr = correlation_matrix(trace.sparsities[:, cols])
        off = corr[np.triu_indices_from(corr, k=1)]
        rows[name] = [float(off.mean()), float(off.min()), float(off.max())]
        data[name] = float(off.mean())
    table = render_table("Fig 9: off-diagonal layer-sparsity correlation",
                         ["mean", "min", "max"], rows)
    return [table], data


def table2(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Table 2: relative range of network sparsity (Table 2 model line-up)."""
    ranges = {}
    for name in TABLE2_MODELS:
        trace = profile_model(build_model(name), DEFAULT_CNN_PATTERNS[0],
                              n_samples=scale.n_profile_samples, seed=0)
        ranges[name] = relative_range(trace.network_sparsities)
    table = render_table(
        "Table 2: relative range of network sparsity",
        ["relative_range_pct"],
        {name: [100.0 * value] for name, value in sorted(ranges.items())},
        float_fmt="{:.1f}",
    )
    return [table], ranges
