"""Hardware-side experiments: Table 4 (predictor), Fig 16 and Table 6."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures import render_table
from repro.core.lut import ModelInfoLUT
from repro.core.predictor import rmse_by_strategy
from repro.experiments.config import ExperimentScale
from repro.hw.report import normalized_usage, overhead_table
from repro.profiling.profiler import benchmark_suite


def table4(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Table 4: sparse-latency-predictor RMSE per strategy, BERT and GPT-2."""
    traces = benchmark_suite("attnn", n_samples=scale.n_profile_samples, seed=0)
    lut = ModelInfoLUT(traces)
    subset = {k: traces[k] for k in ("bert/dense", "gpt2/dense")}
    table = rmse_by_strategy(lut, subset)
    rendered = render_table(
        "Table 4: predictor RMSE (normalized remaining latency)",
        ["Average-All", "Last-N", "Last-One"],
        {
            key.split("/")[0]: [row["average_all"], row["last_n"], row["last_one"]]
            for key, row in table.items()
        },
        float_fmt="{:.5f}",
    )
    return [rendered], table


def fig16(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 16: normalized resource usage per optimization, depths 512 & 64."""
    rendered = []
    data = {}
    for depth in (512, 64):
        usage = normalized_usage(depth)
        rendered.append(render_table(
            f"Fig 16: normalized resource usage (FIFO depth {depth})",
            ["LUT", "FF", "DSP"],
            {n: [r["LUT"], r["FF"], r["DSP"]] for n, r in usage.items()},
        ))
        data[depth] = usage
    return rendered, data


def table6(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Table 6: scheduler resource overhead relative to Eyeriss-V2."""
    table = overhead_table()
    rows = {}
    for name, (luts, dsps, ram_kb) in table.items():
        if name == "Total Overhead":
            rows[name] = [f"{100 * luts:.2f}%", f"{100 * dsps:.2f}%",
                          f"{100 * ram_kb:.2f}%"]
        else:
            rows[name] = [f"{luts:.0f}", f"{dsps:.0f}", f"{ram_kb:.2f} KB"]
    rendered = render_table("Table 6: Dysta scheduler overhead",
                            ["LUTs", "DSPs", "RAM"], rows)
    return [rendered], table
