"""Named, paper-indexed experiments as library functions.

Every table/figure of the paper's evaluation is runnable programmatically:

    from repro.experiments import run_experiment, list_experiments
    result = run_experiment("table5", scale="quick")
    print(result.rendered)

The pytest benchmarks under ``benchmarks/`` are the *assertion* layer (they
encode the reproduction claims); this package is the *access* layer for
scripts, notebooks and the ``repro experiment`` CLI command.  Both are thin
compositions of the same harness/report primitives.
"""

from repro.experiments.registry import (
    ExperimentResultBundle,
    list_experiments,
    run_experiment,
)
from repro.experiments.config import ExperimentScale

__all__ = [
    "ExperimentResultBundle",
    "ExperimentScale",
    "list_experiments",
    "run_experiment",
]
