"""Scheduling experiments: Table 5 and Figs 12/13/14/15."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.figures import render_series, render_table
from repro.bench.viz import ascii_scatter
from repro.bench.harness import PAPER_SCHEDULERS, run_comparison
from repro.experiments.config import ExperimentScale


def _comparison(family, scale, schedulers=PAPER_SCHEDULERS, **kwargs):
    return run_comparison(
        family,
        schedulers=schedulers,
        n_requests=scale.n_requests,
        seeds=scale.seeds,
        n_profile_samples=scale.n_profile_samples,
        **kwargs,
    )


def table5(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Table 5: ANTT + violation rate for both workload families."""
    rendered = []
    data = {}
    for family, rate in (("attnn", 30.0), ("cnn", 3.0)):
        results = _comparison(family, scale, arrival_rate=rate)
        rendered.append(render_table(
            f"Table 5 ({family} @ {rate:g}/s): ANTT / violation rate",
            ["ANTT", "Violation %"],
            {n: [r.antt_mean, r.violation_rate_pct] for n, r in results.items()},
            float_fmt="{:.2f}",
        ))
        data[family] = {
            n: (r.antt_mean, r.violation_rate_mean) for n, r in results.items()
        }
    return rendered, data


def fig12(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 12: the ANTT/violation trade-off scatter, four panels."""
    rendered = []
    data = {}
    for family, rate in (("attnn", 30.0), ("attnn", 40.0), ("cnn", 3.0), ("cnn", 4.0)):
        results = _comparison(family, scale, arrival_rate=rate)
        rendered.append(ascii_scatter(
            {n: (r.violation_rate_pct, r.antt_mean) for n, r in results.items()},
            title=f"Fig 12: {family} @ {rate:g}/s",
            x_label="violation %", y_label="ANTT",
        ))
        data[(family, rate)] = {
            n: (r.violation_rate_mean, r.antt_mean) for n, r in results.items()
        }
    return rendered, data


def fig13(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 13: optimization breakdown (PREMA / static-only / full Dysta)."""
    lineup = ("prema", "dysta_static", "dysta_nosparse", "dysta")
    rendered = []
    data = {}
    for family, rate in (("attnn", 30.0), ("cnn", 3.0)):
        results = _comparison(family, scale, schedulers=lineup, arrival_rate=rate)
        rendered.append(render_table(
            f"Fig 13 ({family}): optimization breakdown",
            ["ANTT", "Violation %"],
            {n: [r.antt_mean, r.violation_rate_pct] for n, r in results.items()},
            float_fmt="{:.2f}",
        ))
        data[family] = {
            n: (r.antt_mean, r.violation_rate_mean) for n, r in results.items()
        }
    return rendered, data


_SWEEP_SCHEDULERS = ("fcfs", "sjf", "prema", "planaria", "oracle", "dysta")


def fig14(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 14: robustness across latency SLO multipliers."""
    rendered = []
    data = {}
    for family, rate in (("attnn", 30.0), ("cnn", 3.0)):
        per_slo = {
            mult: _comparison(family, scale, schedulers=_SWEEP_SCHEDULERS,
                              arrival_rate=rate, slo_multiplier=float(mult))
            for mult in scale.slo_multipliers
        }
        x = list(per_slo)
        rendered.append(render_series(
            f"Fig 14 {family}@{rate:g}/s: violation %", "Mslo", x,
            {s: [per_slo[m][s].violation_rate_pct for m in x]
             for s in _SWEEP_SCHEDULERS},
            float_fmt="{:.1f}",
        ))
        rendered.append(render_series(
            f"Fig 14 {family}@{rate:g}/s: ANTT", "Mslo", x,
            {s: [per_slo[m][s].antt_mean for m in x] for s in _SWEEP_SCHEDULERS},
            float_fmt="{:.2f}",
        ))
        data[family] = {
            m: {s: per_slo[m][s].violation_rate_mean for s in _SWEEP_SCHEDULERS}
            for m in x
        }
    return rendered, data


def fig15(scale: ExperimentScale) -> Tuple[List[str], Dict]:
    """Fig 15: robustness across arrival rates (violations, STP, ANTT)."""
    rendered = []
    data = {}
    for family, rates in (("attnn", scale.attnn_rates), ("cnn", scale.cnn_rates)):
        sweep = {
            rate: _comparison(family, scale, schedulers=_SWEEP_SCHEDULERS,
                              arrival_rate=float(rate))
            for rate in rates
        }
        x = list(sweep)
        for metric, fmt, getter in (
            ("violation %", "{:.1f}", lambda r: r.violation_rate_pct),
            ("STP (inf/s)", "{:.2f}", lambda r: r.stp_mean),
            ("ANTT", "{:.2f}", lambda r: r.antt_mean),
        ):
            rendered.append(render_series(
                f"Fig 15 {family}: {metric}", "rate", x,
                {s: [getter(sweep[r][s]) for r in x] for s in _SWEEP_SCHEDULERS},
                float_fmt=fmt,
            ))
        data[family] = {
            r: {s: sweep[r][s].stp_mean for s in _SWEEP_SCHEDULERS} for r in x
        }
    return rendered, data
