"""Experiment scale presets (quick / default / full-paper)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ReproError

_PRESETS = {
    # (requests, seeds, profile samples, sweep density)
    "quick": (150, (0,), 150, "coarse"),
    "default": (500, (0, 1, 2), 300, "coarse"),
    "full": (1000, (0, 1, 2, 3, 4), 500, "fine"),
}


@dataclass(frozen=True)
class ExperimentScale:
    """How big an experiment run should be.

    The paper's scale is ``full`` (1000 requests, 5 seeds); ``default``
    preserves every qualitative conclusion in a fraction of the time and
    ``quick`` is for smoke runs.
    """

    n_requests: int
    seeds: Tuple[int, ...]
    n_profile_samples: int
    sweep: str  # "coarse" | "fine"

    @classmethod
    def preset(cls, name: str) -> "ExperimentScale":
        try:
            requests, seeds, samples, sweep = _PRESETS[name]
        except KeyError:
            raise ReproError(
                f"unknown scale {name!r}; presets: {sorted(_PRESETS)}"
            ) from None
        return cls(requests, seeds, samples, sweep)

    @property
    def slo_multipliers(self) -> Tuple[float, ...]:
        return (10, 30, 50, 70, 90, 110, 130, 150) if self.sweep == "fine" else (
            10, 50, 100, 150,
        )

    @property
    def attnn_rates(self) -> Tuple[float, ...]:
        return (10, 15, 20, 25, 30, 35, 40) if self.sweep == "fine" else (10, 20, 30, 40)

    @property
    def cnn_rates(self) -> Tuple[float, ...]:
        return (
            (2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0)
            if self.sweep == "fine"
            else (2.0, 3.0, 4.0, 6.0)
        )
