"""Experiment registry: id -> runner, plus the result bundle type."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.errors import ReproError
from repro.experiments import hardware_exps, profiling_exps, scheduling_exps
from repro.experiments.config import ExperimentScale

_RunnerOutput = Tuple[List[str], Dict]

_EXPERIMENTS: Dict[str, Tuple[Callable[[ExperimentScale], _RunnerOutput], str]] = {
    "fig2": (profiling_exps.fig2, "BERT layer-latency distributions (dynamic sparsity)"),
    "fig3": (profiling_exps.fig3, "CNN last-six-layer activation sparsity"),
    "fig4": (profiling_exps.fig4, "valid MACs per weight-sparsity pattern"),
    "fig9": (profiling_exps.fig9, "layer-sparsity correlation (BERT/GPT-2)"),
    "table2": (profiling_exps.table2, "relative range of network sparsity"),
    "table4": (hardware_exps.table4, "sparse latency predictor RMSE"),
    "table5": (scheduling_exps.table5, "end-to-end scheduler comparison"),
    "fig12": (scheduling_exps.fig12, "ANTT / violation trade-off scatter"),
    "fig13": (scheduling_exps.fig13, "optimization breakdown"),
    "fig14": (scheduling_exps.fig14, "robustness across latency SLOs"),
    "fig15": (scheduling_exps.fig15, "robustness across arrival rates"),
    "fig16": (hardware_exps.fig16, "hardware resource optimizations"),
    "table6": (hardware_exps.table6, "scheduler resource overhead"),
}


@dataclass(frozen=True)
class ExperimentResultBundle:
    """Output of one experiment run."""

    experiment: str
    description: str
    scale: ExperimentScale
    rendered: str
    data: Dict


def list_experiments() -> Dict[str, str]:
    """Experiment id -> one-line description, in paper order."""
    return {name: desc for name, (_, desc) in _EXPERIMENTS.items()}


def run_experiment(name: str, scale: str = "default") -> ExperimentResultBundle:
    """Run one paper experiment by id ("table5", "fig14", ...).

    Args:
        scale: "quick" | "default" | "full" (paper scale).
    """
    try:
        runner, description = _EXPERIMENTS[name]
    except KeyError:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(_EXPERIMENTS)}"
        ) from None
    preset = ExperimentScale.preset(scale)
    rendered_parts, data = runner(preset)
    return ExperimentResultBundle(
        experiment=name,
        description=description,
        scale=preset,
        rendered="\n\n".join(rendered_parts),
        data=data,
    )
