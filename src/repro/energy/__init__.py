"""Energy subsystem: sparsity-dependent joule models, accounting, policies.

The joule twin of the latency stack, layer for layer:

* :mod:`repro.energy.model` — per-layer accelerator energy models
  (Eyeriss-V2, Sanger) with dynamic (per-effectual-MAC) and static
  (power x time) components, compiled into per-(model, pattern)
  coefficient tables;
* :mod:`repro.energy.lut` — :class:`EnergyLUT`: offline average energies
  and remaining-energy suffixes derived from a latency
  :class:`~repro.core.lut.ModelInfoLUT`, mirroring its structure;
* :mod:`repro.energy.accounting` — :class:`EnergyAccountant`: integrates
  ground-truth joules per request / per block / per pool during
  simulation (passive — enabling it never changes a schedule), plus the
  cluster's joule-denominated provisioning cost;
* :mod:`repro.energy.schedulers` — ``energy_edp`` (Smith's rule on energy
  weights) and ``energy_powercap`` (EDP under a rolling power cap).

Typical use::

    from repro.energy import EnergyAccountant
    accountant = EnergyAccountant.from_model_lut(lut)
    result = simulate(requests, scheduler, energy=accountant)
    print(result.energy_per_request, result.edp, result.total_joules)
"""

from repro.energy.accounting import (
    EnergyAccountant,
    energy_cost_summary,
    energy_summary,
    pool_idle_joules,
)
from repro.energy.lut import EnergyEntry, EnergyLUT
from repro.energy.model import (
    EnergyModel,
    EyerissEnergy,
    LayerEnergyTable,
    SangerEnergy,
    default_energy_model,
    parse_pattern_key,
    synthetic_table,
)
from repro.energy.schedulers import EnergyEDPScheduler, PowerCappedEDPScheduler

__all__ = [
    "EnergyAccountant",
    "EnergyEDPScheduler",
    "EnergyEntry",
    "EnergyLUT",
    "EnergyModel",
    "EyerissEnergy",
    "LayerEnergyTable",
    "PowerCappedEDPScheduler",
    "SangerEnergy",
    "default_energy_model",
    "energy_cost_summary",
    "energy_summary",
    "parse_pattern_key",
    "pool_idle_joules",
    "synthetic_table",
]
