"""Joule integration during simulation: the :class:`EnergyAccountant`.

Where the :class:`~repro.energy.lut.EnergyLUT` holds offline *averages*
(what schedulers may estimate from), the accountant evaluates the same
compiled per-layer tables at a request's **ground-truth** sparsity trace —
the energy the hardware monitor would have metered — and integrates joules
at three granularities:

* **per request** — dynamic energy of all its layers plus static power
  over its actual executed time (``executed_time`` already reflects pool
  speed, so a 2x-fast pool halves the static share);
* **per block** — the increment a pool accrues when one layer block
  completes, summing to the request total exactly (the conservation
  invariant the tests pin down);
* **per pool / cluster** — busy joules plus *idle* joules: provisioned
  accelerator-seconds that served nothing still draw ``idle_power_w``,
  giving the autoscaler's accelerator-second cost its joule-denominated
  twin (:func:`energy_cost_summary`).

Accounting is strictly passive: no engine consults the accountant before a
scheduling decision, so enabling it cannot change any schedule (golden
parity tests enforce this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Sequence

from repro.core.lut import ModelInfoLUT
from repro.sim.request import Request

from repro.energy.lut import EnergyLUT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.pool import Pool


class EnergyAccountant:
    """Evaluates per-request / per-block joules from compiled energy tables."""

    def __init__(self, energy_lut: EnergyLUT):
        self.energy_lut = energy_lut

    @classmethod
    def from_model_lut(cls, lut: ModelInfoLUT, **kwargs) -> "EnergyAccountant":
        """Accountant over :meth:`EnergyLUT.from_model_lut` of ``lut``."""
        return cls(EnergyLUT.from_model_lut(lut, **kwargs))

    @property
    def idle_power_w(self) -> float:
        """Idle draw per provisioned accelerator (mean over distinct tables).

        Pools serve mixed (model, pattern) keys, so the cluster tier charges
        one cluster-wide idle rating: the mean across the distinct energy
        models behind the LUT (deterministic: keys are sorted).
        """
        seen: Dict[float, None] = {}
        for key in self.energy_lut.keys:
            seen.setdefault(self.energy_lut.entry(key).table.idle_power_w)
        if not seen:
            return 0.0
        return sum(seen) / len(seen)

    def request_dynamic_energy(self, request: Request) -> float:
        """Dynamic joules of every layer at the request's true sparsities."""
        table = self.energy_lut.entry(request.key).table
        return float(table.dynamic(request.layer_sparsities).sum())

    def switch_energy(self, key: str) -> float:
        """DRAM joules of one weight (re)load of the (model, pattern)."""
        return self.energy_lut.entry(key).table.switch_joules

    def request_energy(self, request: Request) -> float:
        """Total joules the request's execution drew.

        Dynamic energy at the true sparsity trace, static power over
        ``executed_time`` (the wall-clock seconds the request actually
        occupied an accelerator, so pool speed and layer blocks are priced
        exactly), plus one DRAM weight stream-in per counted load
        (``num_weight_loads`` — same-key requests share resident weights).
        """
        table = self.energy_lut.entry(request.key).table
        return (
            self.request_dynamic_energy(request)
            + table.static_power_w * request.executed_time
            + table.switch_joules * request.num_weight_loads
        )

    def block_energy(
        self, request: Request, start_layer: int, n_layers: int, dt: float
    ) -> float:
        """Joules of one executed layer block (layers ``start..start+n-1``
        taking ``dt`` seconds of accelerator time)."""
        table = self.energy_lut.entry(request.key).table
        dynamic = float(
            table.dynamic(
                request.layer_sparsities[start_layer:start_layer + n_layers],
                start=start_layer,
            ).sum()
        )
        return dynamic + table.static_power_w * dt


def energy_summary(
    requests: Sequence[Request], energy: EnergyAccountant
) -> Dict[str, float]:
    """Per-request energy aggregates merged into metric summaries.

    * ``energy_per_request`` — mean joules per completed inference;
    * ``total_joules`` — busy joules over the whole request set;
    * ``edp`` — mean per-request energy-delay product (J x s of turnaround):
      the classic joint objective; a scheduler lowers it either by spending
      fewer joules or by finishing energy-hungry work sooner.
    """
    joules = [energy.request_energy(r) for r in requests]
    n = len(requests)
    return {
        "energy_per_request": sum(joules) / n,
        "total_joules": sum(joules),
        "edp": sum(j * r.turnaround for j, r in zip(joules, requests)) / n,
    }


def pool_idle_joules(pool: "Pool", idle_power_w: float) -> float:
    """Idle-power joules over a pool's provisioned-but-unused seconds."""
    return idle_power_w * max(0.0, pool.acc_seconds_provisioned - pool.busy_time)


def energy_cost_summary(
    pools: Iterable["Pool"], energy: EnergyAccountant
) -> Dict[str, float]:
    """Cluster-wide joule cost: the twin of accelerator-second accounting.

    ``joules_used`` is what the executed work drew (per-block busy energy);
    ``joules_idle`` charges ``idle_power_w`` for every provisioned
    accelerator-second that served nothing — warm-up, draining and off-peak
    overprovisioning all show up here; their sum, ``joules_provisioned``,
    is what the meter (and the bill) would read.
    """
    idle_power = energy.idle_power_w
    used = 0.0
    idle = 0.0
    for pool in pools:
        used += pool.joules_busy
        idle += pool_idle_joules(pool, idle_power)
    return {
        "joules_used": used,
        "joules_idle": idle,
        "joules_provisioned": used + idle,
    }
