"""Energy-aware scheduling policies: EDP scoring and a rolling power cap.

**``energy_edp``** — power-weighted, reload-averse shortest-remaining-first.
Per-request energy-delay product ``E_i x T_i`` decomposes into the pieces a
scheduler can actually move: the *delay* term (weighted-completion-time
theory: serve high-draw work sooner) and the *weight-load* term — requests
of the same (model, pattern) share resident weights, so every switch to a
different key re-streams weights from DRAM, joules the schedule directly
controls.  The score folds both into equivalent seconds:

    score_i = (T_remain_i + [key_i not resident] x E_load_i / P_i) x (P_bar / P_i)

``T_remain`` comes from the latency LUT suffix; the load energy ``E_load``
and average draw ``P`` from the :class:`~repro.energy.lut.EnergyLUT` —
offline averages only, like every non-Oracle policy.  With uniform per-key
power the score reduces to reload-averse SJF, which *batches by model*:
once a key's weights are hot, its queued requests run back to back
(shortest first) until another key's remaining time undercuts the reload
penalty.  Against sjf and fcfs — which interleave keys obliviously — this
wins EDP by eliminating most DRAM weight traffic while the SJF backbone
keeps SLO violations at baseline level; across keys of different draw the
``P_bar/P`` weighting additionally serves energy-hungry requests first.

**``energy_powercap``** — the same rule under a rolling power cap: the
scheduler meters every completed layer's energy (monitored sparsity x the
compiled energy table — runtime-visible information only) into a sliding
window; while the window's mean draw exceeds ``power_cap_w``, selection
flips to *lowest estimated draw first*, deferring energy-hungry requests
until the window cools.  The cap is work-conserving — the accelerator
never idles while work is queued; it reorders rather than throttles,
trading tail latency on hot windows for a bounded draw.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.obs.bus import KIND_POWERCAP
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request

from repro.energy.lut import EnergyLUT

_AUX_BASE = "edp_base"  # est_remaining x (P_bar / P_key), cached per event
_AUX_PENALTY = "edp_pen"  # weight-load penalty in weighted seconds (per key)
_AUX_KID = "edp_kid"      # small-integer id of the request's key
_MIN_POWER = 1e-12

#: Registry names that accept an ``energy_lut`` kwarg — callers holding a
#: compiled :class:`EnergyLUT` pass it through ``make_scheduler`` instead
#: of letting each instance recompile its own.
ENERGY_SCHEDULERS = ("energy_edp", "energy_powercap")


@register_scheduler("energy_edp")
class EnergyEDPScheduler(Scheduler):
    """Power-weighted, reload-averse SRPT on offline energy estimates.

    Args:
        lut: Offline latency LUT (remaining-time estimates).
        energy_lut: Offline energy LUT; derived from ``lut`` when omitted.
            Keys outside the model zoo get constant-power proxy entries
            (zero load energy), under which the policy reduces to plain
            SJF.
    """

    supports_batch = True
    batch_columns = ("arrival",)
    single_drain_safe = True
    trivial_single = False  # select_single updates the resident-weights key
    # Static selection key *given* the resident key id: scores only change
    # when the resident kid does, and the inc_guard forces a re-scan then.
    supports_incremental = True

    def __init__(self, lut: ModelInfoLUT, energy_lut: Optional[EnergyLUT] = None):
        super().__init__(lut)
        self.energy_lut = (
            energy_lut if energy_lut is not None else EnergyLUT.from_model_lut(lut)
        )
        powers = [
            max(self.energy_lut.avg_power(key), _MIN_POWER)
            for key in self.energy_lut.keys
        ]
        self._mean_power = sum(powers) / len(powers) if powers else 1.0
        #: key -> (P_bar / P_key, load penalty in weighted seconds, key id).
        self._key_cache: Dict[str, Tuple[float, float, int]] = {}
        self._resident_kid: Optional[int] = None

    def reset(self) -> None:
        self._resident_kid = None

    def _key_terms(self, key: str) -> Tuple[float, float, int]:
        terms = self._key_cache.get(key)
        if terms is None:
            entry = self.energy_lut.entry(key)
            power = max(entry.avg_power_w, _MIN_POWER)
            scale = self._mean_power / power
            penalty = (entry.table.switch_joules / power) * scale
            terms = (scale, penalty, len(self._key_cache))
            self._key_cache[key] = terms
        return terms

    def base_score(self, request: Request) -> float:
        """Power-weighted remaining seconds (the hot-weights score)."""
        return self.estimated_remaining(request) * self._key_terms(request.key)[0]

    def edp_score(self, request: Request) -> float:
        """Full score: base plus the weight-load penalty for cold keys."""
        scale, penalty, kid = self._key_terms(request.key)
        score = self.estimated_remaining(request) * scale
        if kid != self._resident_kid:
            score += penalty
        return score

    def select(self, queue: Sequence[Request], now: float) -> Request:
        chosen = min(queue, key=lambda r: (self.edp_score(r), r.arrival, r.rid))
        self._resident_kid = self._key_terms(chosen.key)[2]
        return chosen

    # -- vectorized fast path ----------------------------------------------
    # The base term only changes when a layer of that request completes, so
    # it is cached in an aux column with the same arithmetic as
    # `edp_score`, making batch decisions bit-identical to scalar ones; the
    # load penalty and key id are constant per request and applied at
    # selection.

    def bind_queue(self, queue: Optional[ReadyQueue]) -> None:
        super().bind_queue(queue)
        if queue is not None:
            queue.register_aux(_AUX_BASE, 0.0)
            queue.register_aux(_AUX_PENALTY, 0.0)
            queue.register_aux(_AUX_KID, -1.0)

    def on_arrival(self, request: Request, now: float) -> None:
        queue = self._bound
        if queue is not None:
            i = queue.index_of(request)
            if i >= 0:
                scale, penalty, kid = self._key_terms(request.key)
                queue.aux_set(_AUX_BASE, i, self.estimated_remaining(request) * scale)
                queue.aux_set(_AUX_PENALTY, i, penalty)
                queue.aux_set(_AUX_KID, i, float(kid))

    def on_layer_complete(self, request: Request, now: float) -> None:
        queue = self._bound
        if queue is not None:
            queue.aux_set_for(_AUX_BASE, request, self.base_score(request))

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        chosen = queue._requests[0]
        self._resident_kid = self._key_terms(chosen.key)[2]
        return chosen

    def inc_guard(self):
        return self._resident_kid

    def inc_best(self, queue: "ReadyQueue", idxs, now: float,
                 clear_at: float, journal: set):
        base_l = queue.aux_list(_AUX_BASE)
        pen_l = queue.aux_list(_AUX_PENALTY)
        kid_l = queue.aux_list(_AUX_KID)
        arr_l = queue.ls_arrival
        rid_l = queue.ls_rid
        res_f = -1.0 if self._resident_kid is None else float(self._resident_kid)
        best = -1
        b_sc = b_arr = b_rid = float("inf")
        for i in idxs:
            sc = base_l[i]
            if kid_l[i] != res_f:
                sc = sc + pen_l[i]
            if sc > b_sc:
                if sc >= clear_at:
                    journal.discard(rid_l[i])
                continue
            arr = arr_l[i]
            rid = rid_l[i]
            if sc < b_sc or arr < b_arr or (arr == b_arr and rid < b_rid):
                best, b_sc, b_arr, b_rid = i, sc, arr, rid
        return best, b_sc

    def inc_full_scan(self, queue: "ReadyQueue", now: float, cache) -> Request:
        n = queue._n
        res = self._resident_kid
        kid = queue.aux_np(_AUX_KID)[:n]
        score = queue.aux_np(_AUX_BASE)[:n] + np.where(
            kid != (-1.0 if res is None else float(res)),
            queue.aux_np(_AUX_PENALTY)[:n],
            0.0,
        )
        chosen = queue[np_lexmin(score, queue.np_arrival[:n], queue.np_rid[:n])]
        cache.rebuild(score, now)
        return chosen

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        cache = self._cache
        n = queue._n
        if cache is not None and n >= self.inc_min_queue:
            chosen = cache.lookup(now)
            self._resident_kid = self._key_terms(chosen.key)[2]
            return chosen
        res = self._resident_kid
        if n >= self.numpy_min_queue:
            kid = queue.aux_np(_AUX_KID)[:n]
            score = queue.aux_np(_AUX_BASE)[:n] + np.where(
                kid != (-1.0 if res is None else float(res)),
                queue.aux_np(_AUX_PENALTY)[:n],
                0.0,
            )
            chosen = queue[np_lexmin(score, queue.np_arrival[:n], queue.np_rid[:n])]
        else:
            base_l = queue.aux_list(_AUX_BASE)
            pen_l = queue.aux_list(_AUX_PENALTY)
            kid_l = queue.aux_list(_AUX_KID)
            arr_l = queue.ls_arrival
            rid_l = queue.ls_rid
            res_f = -1.0 if res is None else float(res)
            best = 0
            b_sc = None
            b_arr = 0.0
            b_rid = 0
            for i in range(n):
                sc = base_l[i]
                if kid_l[i] != res_f:
                    sc = sc + pen_l[i]
                if b_sc is None or sc < b_sc:
                    best, b_sc, b_arr, b_rid = i, sc, arr_l[i], rid_l[i]
                elif sc == b_sc:
                    arr = arr_l[i]
                    if arr < b_arr or (arr == b_arr and rid_l[i] < b_rid):
                        best, b_arr, b_rid = i, arr, rid_l[i]
            chosen = queue._requests[best]
        self._resident_kid = self._key_terms(chosen.key)[2]
        return chosen


@register_scheduler("energy_powercap")
class PowerCappedEDPScheduler(EnergyEDPScheduler):
    """EDP scheduling under a rolling power cap (work-conserving).

    Args:
        power_cap_w: Mean-draw ceiling over the sliding window, watts.
        window_s: Sliding-window length, seconds.
    """

    # The rolling-window meter accumulates on every layer completion and the
    # selection rule depends on it, so the vectorized shortcuts (cached
    # scores, singleton drain, incremental selection) are disabled: the
    # scalar reference path is the implementation.
    supports_batch = False
    single_drain_safe = False
    supports_incremental = False

    def __init__(
        self,
        lut: ModelInfoLUT,
        energy_lut: Optional[EnergyLUT] = None,
        power_cap_w: float = 1.0,
        window_s: float = 0.25,
    ):
        super().__init__(lut, energy_lut)
        if power_cap_w <= 0:
            raise ValueError(f"power cap must be positive, got {power_cap_w}")
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.power_cap_w = power_cap_w
        self.window_s = window_s
        self._events: Deque[Tuple[float, float]] = deque()
        self._window_joules = 0.0
        #: rid -> layers already metered (the engines call the monitor hook
        #: once per *block*, so a hook may have several layers to meter).
        self._metered: Dict[int, int] = {}

    def reset(self) -> None:
        super().reset()
        self._events.clear()
        self._window_joules = 0.0
        self._metered = {}

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        events = self._events
        while events and events[0][0] < horizon:
            self._window_joules -= events.popleft()[1]

    def rolling_power(self, now: float) -> float:
        """Mean metered draw over the trailing window, watts."""
        self._evict(now)
        return self._window_joules / self.window_s

    def on_layer_complete(self, request: Request, now: float) -> None:
        done = request.next_layer
        start = self._metered.get(request.rid, 0)
        if done > start:
            # Meter every layer the block finished, from runtime-visible
            # state only: monitored sparsities through the compiled energy
            # table, LUT-average layer latencies for the static share.
            table = self.energy_lut.entry(request.key).table
            lat_entry = request.lut_entry(self.lut)
            joules = 0.0
            for j in range(start, done):
                joules += table.dynamic_at(j, request.layer_sparsities[j])
                if lat_entry is not None:
                    joules += table.static_power_w * float(
                        lat_entry.avg_layer_latencies[j]
                    )
            self._metered[request.rid] = done
            self._events.append((now, joules))
            self._window_joules += joules

    def on_complete(self, request: Request, now: float) -> None:
        self._metered.pop(request.rid, None)

    def draw_estimate(self, request: Request) -> float:
        """Estimated mean draw of the request: avg joules / avg seconds."""
        return self.energy_lut.avg_power(request.key)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        self._evict(now)
        if self._window_joules / self.window_s > self.power_cap_w:
            # Over cap: defer energy-hungry work — run the coolest request.
            chosen = min(
                queue, key=lambda r: (self.draw_estimate(r), r.arrival, r.rid)
            )
            self._resident_kid = self._key_terms(chosen.key)[2]
            if self.trace_bus is not None:
                self.trace_bus.emit(
                    KIND_POWERCAP, now, rid=chosen.rid,
                    args={
                        "watts": self._window_joules / self.window_s,
                        "cap_w": self.power_cap_w,
                        "deferred": len(queue) - 1,
                    },
                )
            return chosen
        return super().select(queue, now)
