"""Per-layer accelerator energy models (sparsity-dependent, like latency).

The latency models in :mod:`repro.accel` already make per-layer cost a
function of the weight pattern and the input's dynamic sparsity; this module
gives the same two accelerator families the *other* axis every multi-DNN
accelerator paper reports: joules.  A layer's energy splits into

* **dynamic energy** — charged per operation, so it scales with the number
  of *effectual* MACs (the same weight-density x activation-density
  interplay that drives the latency models; skipped positions still pay a
  small clock-gating cost) plus, for Eyeriss, the DRAM traffic of streaming
  compressed weights;
* **static energy** — leakage and clock-tree power drawn for as long as the
  layer *occupies* the accelerator, i.e. ``static_power_w x latency``.  A
  slower schedule therefore burns more static energy for identical work,
  which is what makes energy a scheduling objective at all.

Because every family's dynamic term is (piecewise-)affine in activation
density, a model compiles per (model graph, weight config) into a
:class:`LayerEnergyTable` of coefficients

    E_dyn[j](s) = c0[j] + c1[j] * min(1, (1 - s) * k[j])          [joules]

that both the offline :class:`~repro.energy.lut.EnergyLUT` averages and the
runtime :class:`~repro.energy.accounting.EnergyAccountant` evaluate — one
formula, so estimates and ground-truth accounting can never diverge
structurally.  An ``idle_power_w`` below the active static power models a
provisioned-but-idle accelerator (power-gated PE array, DRAM in self
refresh); the cluster tier charges it for unused provisioned capacity.

Absolute joules are calibrated to public figures only loosely (pJ/MAC-class
dynamic energy, DRAM ~160 pJ/byte, sub-watt Eyeriss vs watt-class Sanger);
as with the latency models, scheduling conclusions depend only on relative
scale.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ProfilingError, SparsityError
from repro.models.graph import Layer, LayerKind, ModelFamily, ModelGraph
from repro.sparsity.patterns import (
    SparsityPattern,
    WeightSparsityConfig,
    pattern_overlap_gain,
)

_PJ = 1e-12  # picojoules -> joules

_PATTERN_KEY_RE = re.compile(r"^(random|channel)(\d+(?:\.\d+)?)$")
_NM_KEY_RE = re.compile(r"^nm(\d+):(\d+)$")


def parse_pattern_key(key: str) -> WeightSparsityConfig:
    """Invert :attr:`WeightSparsityConfig.key` (``dense``, ``nm2:8``,
    ``random0.80``, ``channel0.60``) back into a config.

    The energy layer is built *after* profiling, from LUT keys alone, so it
    must recover the weight configuration from the key string.
    """
    if key == "dense":
        return WeightSparsityConfig(SparsityPattern.DENSE)
    m = _NM_KEY_RE.match(key)
    if m:
        return WeightSparsityConfig(
            SparsityPattern.NM_BLOCK, nm=(int(m.group(1)), int(m.group(2)))
        )
    m = _PATTERN_KEY_RE.match(key)
    if m:
        return WeightSparsityConfig(SparsityPattern(m.group(1)), rate=float(m.group(2)))
    raise SparsityError(f"unparseable weight-pattern key {key!r}")


@dataclass(frozen=True)
class LayerEnergyTable:
    """Compiled per-layer energy coefficients of one (model, pattern) pair.

    ``dynamic(s)[j] = c0[j] + c1[j] * min(1, (1 - s[j]) * k[j])`` joules;
    static energy is ``static_power_w`` times however long the layer actually
    took (so it prices pool speed, preemption stalls and switch overheads
    exactly as the wall clock saw them).
    """

    c0: np.ndarray
    c1: np.ndarray
    k: np.ndarray
    static_power_w: float
    idle_power_w: float
    #: Joules of one weight (re)load from DRAM — charged per model switch
    #: (the engines count switches; ``switch_cost`` prices their *time*).
    switch_joules: float = 0.0
    #: True for proxy tables synthesized from latency averages alone (key
    #: outside the model zoo); see :meth:`EnergyLUT.from_model_lut`.
    synthetic: bool = False

    def __post_init__(self) -> None:
        c0 = np.asarray(self.c0, dtype=float)
        c1 = np.asarray(self.c1, dtype=float)
        k = np.asarray(self.k, dtype=float)
        if not (c0.shape == c1.shape == k.shape) or c0.ndim != 1 or c0.size == 0:
            raise ProfilingError("energy table columns must be equal-length 1-D arrays")
        if (c0 < 0).any() or (c1 < 0).any() or (k <= 0).any():
            raise ProfilingError("energy coefficients must be >= 0 (k > 0)")
        if self.static_power_w < 0 or self.idle_power_w < 0:
            raise ProfilingError("power ratings must be >= 0")
        if self.switch_joules < 0:
            raise ProfilingError("switch energy must be >= 0")
        object.__setattr__(self, "c0", c0)
        object.__setattr__(self, "c1", c1)
        object.__setattr__(self, "k", k)

    @property
    def num_layers(self) -> int:
        return int(self.c0.size)

    def dynamic(self, sparsities, start: int = 0) -> np.ndarray:
        """Per-layer dynamic joules for layers ``start..start+len(s)-1``."""
        s = np.asarray(sparsities, dtype=float)
        end = start + s.shape[-1]
        density = np.minimum(1.0, (1.0 - s) * self.k[start:end])
        return self.c0[start:end] + self.c1[start:end] * density

    def dynamic_at(self, j: int, sparsity: float) -> float:
        """Dynamic joules of layer ``j`` at one observed sparsity (O(1))."""
        density = (1.0 - sparsity) * self.k[j]
        if density > 1.0:
            density = 1.0
        return float(self.c0[j] + self.c1[j] * density)

    def total(self, sparsities, latencies) -> np.ndarray:
        """Per-layer joules including static energy over ``latencies``."""
        return self.dynamic(sparsities) + self.static_power_w * np.asarray(
            latencies, dtype=float
        )


class EnergyModel(abc.ABC):
    """Analytic per-layer accelerator energy model (one per family)."""

    #: Human-readable model name.
    name: str = "energy"
    #: Active leakage + clock power while executing, watts.
    static_power_w: float = 0.0
    #: Power drawn by a provisioned-but-idle accelerator, watts.
    idle_power_w: float = 0.0

    @abc.abstractmethod
    def layer_coefficients(
        self, layer: Layer, weights: WeightSparsityConfig
    ) -> tuple:
        """``(c0, c1, k)`` joules-vs-density coefficients of one layer."""

    def switch_energy_joules(
        self, model: ModelGraph, weights: WeightSparsityConfig
    ) -> float:
        """DRAM joules of (re)loading the model's weights on a switch."""
        return 0.0

    def layer_table(
        self, model: ModelGraph, weights: WeightSparsityConfig
    ) -> LayerEnergyTable:
        """Compile the whole model into a :class:`LayerEnergyTable`."""
        coeffs = [self.layer_coefficients(layer, weights) for layer in model.layers]
        return LayerEnergyTable(
            c0=np.array([c[0] for c in coeffs]),
            c1=np.array([c[1] for c in coeffs]),
            k=np.array([c[2] for c in coeffs]),
            static_power_w=self.static_power_w,
            idle_power_w=self.idle_power_w,
            switch_joules=self.switch_energy_joules(model, weights),
        )

    def model_energies(
        self,
        model: ModelGraph,
        weights: WeightSparsityConfig,
        activation_sparsities: np.ndarray,
        latencies: np.ndarray,
    ) -> np.ndarray:
        """Per-layer joules for a batch of samples (mirrors
        :meth:`~repro.accel.base.Accelerator.model_latencies`).

        Args:
            activation_sparsities: ``(n_samples, num_layers)`` matrix.
            latencies: matching per-layer execution times in seconds.

        Returns:
            ``(n_samples, num_layers)`` joule matrix.
        """
        s = np.asarray(activation_sparsities, dtype=float)
        lat = np.asarray(latencies, dtype=float)
        if s.ndim != 2 or s.shape[1] != model.num_layers or s.shape != lat.shape:
            raise ProfilingError(
                f"expected matching (n, {model.num_layers}) sparsity/latency "
                f"matrices, got {s.shape} and {lat.shape}"
            )
        table = self.layer_table(model, weights)
        return table.dynamic(s) + table.static_power_w * lat


@dataclass
class EyerissEnergy(EnergyModel):
    """Eyeriss-V2 energy model (CSC zero-skipping CNN accelerator).

    The PE array iterates only the *nonzero weights* (CSC compression), so
    per-position cost applies to ``macs x w_density`` slots; of those, the
    activation-density fraction is effectual (full MAC + operand movement)
    and the rest pay only the clock-gating cost.  Weight streaming from
    DRAM adds a per-byte term on the compressed footprint — charged per
    layer *execution*, matching the latency model's per-layer memory phase:
    Eyeriss holds no whole-model weights resident, so a key switch costs no
    extra DRAM traffic (``switch_energy_joules`` stays 0; contrast Sanger).
    PE-array *utilization* (load imbalance under random patterns) stretches
    time, not per-op energy, so it appears in the static term only — via
    the latency the static power multiplies.
    """

    name: str = "eyeriss_v2"
    #: Energy per effectual 8-bit MAC incl. on-chip operand movement, pJ.
    e_mac_pj: float = 3.2
    #: Clock-gating cost of a skipped (ineffectual) position, pJ.
    e_skip_pj: float = 0.32
    #: DRAM energy per streamed compressed-weight byte, pJ.
    e_dram_pj_per_byte: float = 160.0
    #: Bytes per weight including CSC index overhead (matches the latency
    #: model's streaming-footprint assumption).
    weight_bytes: float = 1.25
    static_power_w: float = 0.275
    idle_power_w: float = 0.11

    def layer_coefficients(
        self, layer: Layer, weights: WeightSparsityConfig
    ) -> tuple:
        if layer.kind not in (LayerKind.CONV, LayerKind.DWCONV, LayerKind.FC):
            raise ProfilingError(
                f"Eyeriss-V2 energy model cannot execute layer kind {layer.kind}"
            )
        w_density = 1.0 - weights.effective_rate
        positions = layer.macs * w_density
        dram = layer.params * w_density * self.weight_bytes * self.e_dram_pj_per_byte
        c0 = (positions * self.e_skip_pj + dram) * _PJ
        c1 = positions * (self.e_mac_pj - self.e_skip_pj) * _PJ
        return c0, c1, 1.0 + pattern_overlap_gain(weights)


@dataclass
class SangerEnergy(EnergyModel):
    """Sanger energy model (dynamic sparse-attention accelerator).

    Attention score/context MACs scale with attention density; the
    load-balance inefficiency of pack-and-split costs *cycles*, not energy
    per op, so (as with Eyeriss utilization) it shows up through the static
    term.  The low-precision sparsity-prediction pass charges a small
    per-score-MAC energy on ``ATTN_SCORE`` layers.  Dense projections/FFNs
    shrink with the token-pruned share, mirroring the latency model.
    """

    name: str = "sanger"
    #: Energy per effectual MAC on the reconfigurable array, pJ.
    e_mac_pj: float = 1.1
    #: Low-precision prediction-pass energy per dense score MAC, pJ.
    e_pred_pj: float = 0.15
    #: Share of dynamic sparsity cascading into token pruning (must match
    #: the latency model so energy and time see the same effectual work).
    token_prune_share: float = 0.6
    #: DRAM energy per weight byte on a model (re)load, pJ.  Sanger keeps
    #: weights resident between layers, so this is charged per switch only.
    e_dram_pj_per_byte: float = 160.0
    #: Bytes per (8-bit) resident weight.
    weight_bytes: float = 1.0
    static_power_w: float = 1.6
    idle_power_w: float = 0.55

    def layer_coefficients(
        self, layer: Layer, weights: WeightSparsityConfig
    ) -> tuple:
        if layer.kind in (LayerKind.ATTN_SCORE, LayerKind.ATTN_CONTEXT):
            pred = (
                layer.macs * self.e_pred_pj * _PJ
                if layer.kind is LayerKind.ATTN_SCORE
                else 0.0
            )
            return pred, layer.macs * self.e_mac_pj * _PJ, 1.0
        if layer.kind in (LayerKind.ATTN_QKV, LayerKind.ATTN_OUT,
                          LayerKind.FFN, LayerKind.FC):
            full = layer.macs * self.e_mac_pj * _PJ
            return (
                full * (1.0 - self.token_prune_share),
                full * self.token_prune_share,
                1.0,
            )
        raise ProfilingError(
            f"Sanger energy model cannot execute layer kind {layer.kind}"
        )

    def switch_energy_joules(
        self, model: ModelGraph, weights: WeightSparsityConfig
    ) -> float:
        """One full weight load into the resident buffers."""
        total_params = sum(layer.params for layer in model.layers)
        return total_params * self.weight_bytes * self.e_dram_pj_per_byte * _PJ


def default_energy_model(family: ModelFamily) -> EnergyModel:
    """The family's energy model, matching the latency-model pairing of
    :func:`repro.profiling.profiler.default_accelerator`."""
    if family is ModelFamily.CNN:
        return EyerissEnergy()
    return SangerEnergy()


def synthetic_table(
    avg_layer_latencies: np.ndarray,
    nominal_power_w: float = 1.0,
    *,
    idle_power_w: float = 0.0,
) -> LayerEnergyTable:
    """A sparsity-blind proxy table: ``E[j] = P_nom x avg latency[j]``.

    Used for LUT keys whose model is outside the zoo registry (synthetic
    unit-test traces, user-defined models): energy degrades to a constant-
    power proxy so every energy API stays total, and the entry is flagged
    ``synthetic`` so reports can call it out.
    """
    lat = np.asarray(avg_layer_latencies, dtype=float)
    if nominal_power_w <= 0:
        raise ProfilingError(
            f"nominal power must be positive, got {nominal_power_w}"
        )
    return LayerEnergyTable(
        c0=nominal_power_w * lat,
        c1=np.zeros_like(lat),
        k=np.ones_like(lat),
        static_power_w=0.0,
        idle_power_w=idle_power_w,
        synthetic=True,
    )
