"""Model-information energy LUT (the joule twin of :mod:`repro.core.lut`).

The latency :class:`~repro.core.lut.ModelInfoLUT` stores, per (model,
pattern) key, offline-average per-layer latencies and a remaining-latency
suffix; this module mirrors that structure for energy, so energy-aware
schedulers estimate joules exactly the way every other policy estimates
seconds — through offline averages, never a request's ground-truth trace.

An :class:`EnergyLUT` is *derived* from an existing ``ModelInfoLUT``: for
each key it rebuilds the model graph from the zoo registry, re-parses the
weight pattern from the key, compiles the family's
:class:`~repro.energy.model.EnergyModel` into a
:class:`~repro.energy.model.LayerEnergyTable`, and evaluates it at the
latency LUT's average layer sparsities and latencies.  Keys whose model is
not in the registry (synthetic test traces, user models) fall back to a
constant-power proxy table flagged ``synthetic`` — every energy API stays
total, and reports can call the proxy out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.errors import ModelError, SchedulingError, SparsityError
from repro.models.graph import ModelFamily
from repro.models.registry import ALL_CNN_MODELS, build_model

from repro.energy.model import (
    EnergyModel,
    LayerEnergyTable,
    default_energy_model,
    parse_pattern_key,
    synthetic_table,
)


@dataclass(frozen=True)
class EnergyEntry:
    """Offline energy averages of one (model, pattern) pair."""

    avg_total_energy: float
    avg_layer_energies: np.ndarray
    #: suffix[j] = expected joules of layers j..L-1 (suffix[L] = 0).
    remaining_suffix: np.ndarray
    #: Average draw while executing: avg_total_energy / avg_total_latency.
    avg_power_w: float
    table: LayerEnergyTable

    @property
    def synthetic(self) -> bool:
        return self.table.synthetic


def _family_for(model_name: str) -> ModelFamily:
    return ModelFamily.CNN if model_name in ALL_CNN_MODELS else ModelFamily.ATTNN


class EnergyLUT:
    """Per-(model, pattern) offline energy averages over a latency LUT.

    Args:
        lut: The latency LUT whose keys (and average layer sparsities/
            latencies) anchor the energy entries.
        tables: Per-key compiled energy tables.  Keys of ``lut`` absent
            here get a constant-power proxy (``nominal_power_w``) so the
            LUT is total over the latency LUT's key set.
        nominal_power_w: Draw assumed for proxy entries.
    """

    def __init__(
        self,
        lut: ModelInfoLUT,
        tables: Mapping[str, LayerEnergyTable],
        *,
        nominal_power_w: float = 1.0,
    ):
        self.lut = lut
        self._entries: Dict[str, EnergyEntry] = {}
        for key in lut.keys:
            latency_entry = lut.entry_or_none(key)
            table = tables.get(key)
            if table is None:
                table = synthetic_table(
                    latency_entry.avg_layer_latencies, nominal_power_w
                )
            elif table.num_layers != len(latency_entry.avg_layer_latencies):
                raise SchedulingError(
                    f"energy table for {key!r} has {table.num_layers} layers, "
                    f"latency LUT has {len(latency_entry.avg_layer_latencies)}"
                )
            layer_energies = table.total(
                latency_entry.avg_layer_sparsities,
                latency_entry.avg_layer_latencies,
            )
            suffix = np.concatenate(
                [np.cumsum(layer_energies[::-1])[::-1], [0.0]]
            )
            total = float(layer_energies.sum())
            self._entries[key] = EnergyEntry(
                avg_total_energy=total,
                avg_layer_energies=layer_energies,
                remaining_suffix=suffix,
                avg_power_w=total / latency_entry.avg_total_latency,
                table=table,
            )

    @classmethod
    def from_model_lut(
        cls,
        lut: ModelInfoLUT,
        *,
        models: Optional[Mapping[str, EnergyModel]] = None,
        nominal_power_w: float = 1.0,
    ) -> "EnergyLUT":
        """Compile energy tables for every resolvable key of ``lut``.

        Args:
            models: Optional per-family overrides keyed ``"cnn"``/
                ``"attnn"``; defaults to the family's paper accelerator
                energy model.
        """
        tables: Dict[str, LayerEnergyTable] = {}
        for key in lut.keys:
            model_name, _, pattern_key = key.partition("/")
            try:
                graph = build_model(model_name)
                weights = parse_pattern_key(pattern_key)
            except (ModelError, SparsityError):
                continue  # proxy entry (synthetic trace / user model)
            family = _family_for(model_name)
            em = (models or {}).get(family.value) or default_energy_model(family)
            if graph.num_layers != lut.num_layers(key):
                continue  # trace profiled on a different graph: proxy entry
            tables[key] = em.layer_table(graph, weights)
        return cls(lut, tables, nominal_power_w=nominal_power_w)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    @property
    def num_synthetic(self) -> int:
        """Entries backed by the constant-power proxy (no real model)."""
        return sum(1 for e in self._entries.values() if e.synthetic)

    def entry(self, key: str) -> EnergyEntry:
        try:
            return self._entries[key]
        except KeyError:
            raise SchedulingError(f"no energy LUT entry for {key!r}") from None

    def entry_or_none(self, key: str) -> Optional[EnergyEntry]:
        return self._entries.get(key)

    def avg_total_energy(self, key: str) -> float:
        """Average joules of one isolated inference of the pair."""
        return self.entry(key).avg_total_energy

    def avg_power(self, key: str) -> float:
        """Average draw (W) of one isolated inference of the pair."""
        return self.entry(key).avg_power_w

    def static_remaining_energy(self, key: str, next_layer: int) -> float:
        """Expected joules of layers ``next_layer..L-1`` (offline averages)."""
        entry = self.entry(key)
        if not 0 <= next_layer <= len(entry.avg_layer_energies):
            raise SchedulingError(
                f"{key}: layer index {next_layer} outside "
                f"[0, {len(entry.avg_layer_energies)}]"
            )
        return float(entry.remaining_suffix[next_layer])
