"""Common accelerator interface.

An accelerator model maps ``(layer, weight-sparsity config, activation
sparsity)`` to a latency.  This is the contract the profiling phase consumes:
the scheduler never sees the accelerator directly, only the per-layer latency
and sparsity traces it produced (paper Fig 7).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError
from repro.models.graph import Layer, ModelGraph
from repro.sparsity.patterns import WeightSparsityConfig


@dataclass(frozen=True)
class LayerCost:
    """Cost breakdown of one layer execution."""

    compute_cycles: float
    memory_cycles: float
    overhead_cycles: float

    @property
    def total_cycles(self) -> float:
        # Compute and memory are double-buffered/overlapped; the slower one
        # bounds the layer, plus a fixed dispatch overhead.
        return max(self.compute_cycles, self.memory_cycles) + self.overhead_cycles


class Accelerator(abc.ABC):
    """Analytic accelerator performance model."""

    #: Human-readable accelerator name.
    name: str = "accelerator"
    #: Clock frequency in Hz.
    clock_hz: float = 200e6

    @abc.abstractmethod
    def layer_cost(
        self, layer: Layer, weights: WeightSparsityConfig, activation_sparsity: float
    ) -> LayerCost:
        """Cycle-level cost of one layer under the given sparsity."""

    def layer_latency(
        self, layer: Layer, weights: WeightSparsityConfig, activation_sparsity: float
    ) -> float:
        """Latency of one layer in seconds."""
        return self.layer_cost(layer, weights, activation_sparsity).total_cycles / self.clock_hz

    def model_latencies(
        self,
        model: ModelGraph,
        weights: WeightSparsityConfig,
        activation_sparsities: np.ndarray,
    ) -> np.ndarray:
        """Per-layer latencies for a batch of sparsity samples.

        Args:
            activation_sparsities: ``(n_samples, num_layers)`` matrix.

        Returns:
            ``(n_samples, num_layers)`` latency matrix in seconds.
        """
        sparsities = np.asarray(activation_sparsities, dtype=float)
        if sparsities.ndim != 2 or sparsities.shape[1] != model.num_layers:
            raise ProfilingError(
                f"expected sparsity matrix of shape (n, {model.num_layers}), "
                f"got {sparsities.shape}"
            )
        out = np.empty_like(sparsities)
        for j, layer in enumerate(model.layers):
            # Latency is monotone in sparsity; evaluate per unique-ish value
            # would over-engineer: direct evaluation is vectorized per layer.
            out[:, j] = [
                self.layer_latency(layer, weights, float(s)) for s in sparsities[:, j]
            ]
        return out
