"""Row-stationary dataflow mapping model for Eyeriss-V2.

The analytic :class:`repro.accel.eyeriss.EyerissV2` model uses a constant
base PE utilization.  This module computes the *mapping* utilization of the
row-stationary (RS) dataflow per layer shape — how full the physical PE array
is once a convolution's filter rows and output rows are spatially mapped —
so the cost model can be layer-shape aware:

* each logical RS processing set occupies ``R`` PE rows (filter height) by
  ``E'`` PE columns (a strip of output rows, up to the array width);
* sets are replicated vertically ``floor(rows / R)`` times across different
  filters/channels;
* the leftover ``rows mod R`` PE rows idle — the classic RS fragmentation
  (e.g. a 7x7 stem on a 12-row array strands 5 rows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProfilingError
from repro.models.graph import Layer

#: Eyeriss-V2 organizes 16 clusters of 12 PEs; the effective RS mapping grid
#: per cluster group is modeled as a 12 x 14 array (as in Eyeriss-v1's
#: mapping studies, which the third-party implementations follow).
DEFAULT_ARRAY_ROWS = 12
DEFAULT_ARRAY_COLS = 14


@dataclass(frozen=True)
class RowStationaryMapping:
    """Spatial mapping of one conv layer on the PE array."""

    filter_rows_mapped: int
    replication: int
    cols_used: int
    array_rows: int
    array_cols: int
    passes_per_set: int

    @property
    def utilization(self) -> float:
        """Fraction of PEs doing useful work under this mapping."""
        used = self.filter_rows_mapped * self.replication * self.cols_used
        return used / (self.array_rows * self.array_cols * self.passes_per_set)


def map_conv_rs(
    kernel: int,
    out_hw: int,
    array_rows: int = DEFAULT_ARRAY_ROWS,
    array_cols: int = DEFAULT_ARRAY_COLS,
) -> RowStationaryMapping:
    """Map a (kernel x kernel, out_hw x out_hw) convolution row-stationary."""
    if kernel <= 0 or out_hw <= 0:
        raise ProfilingError("kernel and output size must be positive")
    if array_rows <= 0 or array_cols <= 0:
        raise ProfilingError("array dimensions must be positive")
    if kernel <= array_rows:
        replication = array_rows // kernel
        rows_mapped = kernel
        passes = 1
    else:
        # Filter taller than the array: fold over multiple passes.
        passes = -(-kernel // array_rows)  # ceil
        rows_mapped = array_rows
        replication = 1
    cols_used = min(out_hw, array_cols)
    return RowStationaryMapping(
        filter_rows_mapped=rows_mapped,
        replication=replication,
        cols_used=cols_used,
        array_rows=array_rows,
        array_cols=array_cols,
        passes_per_set=passes,
    )


def rs_layer_utilization(
    layer: Layer,
    array_rows: int = DEFAULT_ARRAY_ROWS,
    array_cols: int = DEFAULT_ARRAY_COLS,
) -> float:
    """Mapping utilization for a layer with shape metadata (1.0 if unknown).

    Only the spatial-fragmentation component is modeled here; the sparsity
    load-balance component comes from the weight pattern
    (:func:`repro.sparsity.patterns.pattern_pe_utilization`).
    """
    from repro.models.graph import LayerKind  # local import avoids cycles

    if not layer.has_shape or layer.kind is LayerKind.FC:
        # FC layers map as 1-D dot products across the array, not RS grids.
        return 1.0
    mapping = map_conv_rs(layer.kernel, layer.out_hw, array_rows, array_cols)
    return max(mapping.utilization, 0.05)
