"""Mask-level Sanger pack-and-split simulation.

The analytic :class:`repro.accel.sanger.Sanger` model charges sparse
attention ``macs x density / load_balance_efficiency`` cycles.  This module
implements Sanger's actual *pack-and-split* dataflow on concrete binary
attention masks and measures the achieved efficiency, validating (and
allowing recalibration of) the analytic constant:

1. **Pack**: each row of the (seq x seq) attention mask keeps only its
   non-zeros; rows are chopped into sub-rows of at most ``pe_cols`` entries.
2. **Split/schedule**: sub-rows are issued to the ``pe_rows``-deep array in
   waves of up to ``pe_rows`` sub-rows; a wave costs one array beat
   (``pe_rows x pe_cols`` MAC slots) regardless of how full its sub-rows are
   — that padding is exactly the load-imbalance loss the analytic model's
   ``load_balance_efficiency`` constant summarizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError


@dataclass
class SangerPackSimulator:
    """Pack-and-split scheduler of Sanger's reconfigurable PE array."""

    pe_rows: int = 16
    pe_cols: int = 64

    def __post_init__(self) -> None:
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            raise ProfilingError("PE array dimensions must be positive")

    def pack(self, mask: np.ndarray) -> "PackedMask":
        """Pack a binary attention mask; returns per-mask statistics."""
        if mask.ndim != 2:
            raise ProfilingError(f"attention mask must be 2-D, got shape {mask.shape}")
        nnz_per_row = np.count_nonzero(mask, axis=1)
        sub_rows = int(np.ceil(nnz_per_row / self.pe_cols).sum())
        # Fully-empty rows still need one (bubble) sub-row for the softmax row.
        sub_rows += int((nnz_per_row == 0).sum())
        waves = math.ceil(sub_rows / self.pe_rows)
        # One wave = one array beat of pe_rows x pe_cols MAC slots.
        cycles = waves
        return PackedMask(
            seq_len=int(mask.shape[0]),
            nnz=int(nnz_per_row.sum()),
            sub_rows=sub_rows,
            waves=waves,
            cycles=cycles,
            array_size=self.pe_rows * self.pe_cols,
        )

    def random_mask(self, seq_len: int, sparsity: float, rng: np.random.Generator) -> np.ndarray:
        """Random attention mask at the requested sparsity (element-wise)."""
        if not 0.0 <= sparsity <= 1.0:
            raise ProfilingError(f"sparsity must be in [0, 1], got {sparsity}")
        return rng.random((seq_len, seq_len)) >= sparsity

    def measured_efficiency(
        self, seq_len: int, sparsity: float, rng: np.random.Generator
    ) -> float:
        """Load-balance efficiency achieved on a random mask.

        Efficiency = ideal cycles (nnz / array size) over actual cycles.
        """
        packed = self.pack(self.random_mask(seq_len, sparsity, rng))
        return packed.efficiency


@dataclass(frozen=True)
class PackedMask:
    """Statistics of one packed attention mask."""

    seq_len: int
    nnz: int
    sub_rows: int
    waves: int
    cycles: int  # array beats (each offering array_size MAC slots)
    array_size: int

    @property
    def efficiency(self) -> float:
        """Ideal balanced beats over achieved beats, in (0, 1]."""
        if self.nnz == 0:
            return 1.0
        ideal = self.nnz / self.array_size
        return min(ideal / self.cycles, 1.0)
