"""Analytic Eyeriss-V2 performance model for sparse CNNs.

Eyeriss-V2 (Chen et al., JETCAS'19) processes convolutions on a PE array with
a hierarchical-mesh NoC and supports *both* weight and activation sparsity by
skipping ineffectual MACs on CSC-compressed operands.  We model a layer's
execution as the max of a compute phase and a (double-buffered)
weight-streaming phase:

* compute cycles = effectual MACs / (effective PE throughput x utilization),
  where effectual MACs follow from the weight pattern x activation sparsity
  interplay (:func:`repro.sparsity.patterns.valid_mac_fraction`) and
  utilization is pattern-dependent (random point-wise sparsity load-imbalances
  the array; structured patterns keep it busy);
* memory cycles = compressed weight bytes / off-chip bandwidth;
* a fixed per-layer dispatch overhead.

Calibration: ``effective_pe_throughput`` is the sustained MACs/cycle of the
FPGA implementation the paper evaluates against (place-and-route derate and
NoC stalls included).  It is set so the multi-CNN workload saturates at
~3.3 inf/s, matching the paper's Fig 15(b) STP curve; all scheduling results
depend only on this relative scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.base import Accelerator, LayerCost
from repro.errors import ProfilingError
from repro.models.graph import Layer, LayerKind, ModelGraph
from repro.sparsity.patterns import (
    WeightSparsityConfig,
    pattern_overlap_gain,
    pattern_pe_utilization,
)


@dataclass
class EyerissV2(Accelerator):
    """Eyeriss-V2 cost model (paper Sec 3.3.2, FPGA variant at 200 MHz)."""

    name: str = "eyeriss_v2"
    clock_hz: float = 200e6
    #: Sustained MACs/cycle after place-and-route derate and NoC stalls.
    effective_pe_throughput: float = 48.0
    #: Off-chip bandwidth in bytes/cycle for streaming compressed weights.
    bytes_per_cycle: float = 16.0
    #: Bytes per (8-bit) weight including CSC index overhead.
    weight_bytes: float = 1.25
    #: Fixed per-layer dispatch/configuration overhead in cycles.
    layer_overhead_cycles: float = 2000.0
    #: Depthwise convolutions have poor input reuse on the array.
    depthwise_utilization_factor: float = 0.55
    #: Replace the constant base utilization with the per-layer-shape
    #: row-stationary mapping model (repro.accel.eyeriss_detail).  Off by
    #: default: the constant model is what the capacity calibration targets.
    detailed_mapping: bool = False

    def _utilization(self, layer: Layer, weights: WeightSparsityConfig) -> float:
        util = pattern_pe_utilization(weights.pattern)
        if layer.kind is LayerKind.DWCONV:
            util *= self.depthwise_utilization_factor
        if self.detailed_mapping:
            from repro.accel.eyeriss_detail import rs_layer_utilization  # noqa: PLC0415

            util *= rs_layer_utilization(layer)
        return util

    def _layer_cycles(
        self, layer: Layer, weights: WeightSparsityConfig, activation_sparsity
    ):
        """Total cycles; ``activation_sparsity`` may be a scalar or ndarray."""
        w_density = 1.0 - weights.effective_rate
        gain = pattern_overlap_gain(weights)
        a_density = np.minimum(1.0, (1.0 - activation_sparsity) * (1.0 + gain))
        util = self._utilization(layer, weights)
        compute = layer.macs * w_density * a_density / (
            self.effective_pe_throughput * util
        )
        memory = layer.params * w_density * self.weight_bytes / self.bytes_per_cycle
        return compute, memory

    def layer_cost(
        self, layer: Layer, weights: WeightSparsityConfig, activation_sparsity: float
    ) -> LayerCost:
        if layer.kind not in (LayerKind.CONV, LayerKind.DWCONV, LayerKind.FC):
            raise ProfilingError(f"Eyeriss-V2 model cannot execute layer kind {layer.kind}")
        if not 0.0 <= activation_sparsity <= 1.0:
            raise ProfilingError(
                f"activation sparsity must be in [0, 1], got {activation_sparsity}"
            )
        compute, memory = self._layer_cycles(layer, weights, activation_sparsity)
        return LayerCost(
            compute_cycles=float(compute),
            memory_cycles=float(memory),
            overhead_cycles=self.layer_overhead_cycles,
        )

    def model_latencies(
        self,
        model: ModelGraph,
        weights: WeightSparsityConfig,
        activation_sparsities: np.ndarray,
    ) -> np.ndarray:
        """Vectorized per-layer latencies, seconds, shape (n, num_layers)."""
        s = np.asarray(activation_sparsities, dtype=float)
        if s.ndim != 2 or s.shape[1] != model.num_layers:
            raise ProfilingError(
                f"expected sparsity matrix of shape (n, {model.num_layers}), got {s.shape}"
            )
        out = np.empty_like(s)
        for j, layer in enumerate(model.layers):
            compute, memory = self._layer_cycles(layer, weights, s[:, j])
            cycles = np.maximum(compute, memory) + self.layer_overhead_cycles
            out[:, j] = cycles / self.clock_hz
        return out
