"""Accelerator performance models: Eyeriss-V2 (sparse CNNs) and Sanger
(sparse attention), per paper Sec 3.3.2."""

from repro.accel.base import Accelerator, LayerCost
from repro.accel.eyeriss import EyerissV2
from repro.accel.sanger import Sanger

__all__ = ["Accelerator", "LayerCost", "EyerissV2", "Sanger"]
