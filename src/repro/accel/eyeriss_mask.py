"""Mask-level validation of the Eyeriss-V2 sparsity model.

The analytic CNN cost model rests on two per-pattern constants: the
effectual-MAC fraction (pattern x activation overlap,
:func:`repro.sparsity.patterns.valid_mac_fraction`) and the PE-array
load-balance utilization (:func:`~repro.sparsity.patterns.pattern_pe_utilization`).
This module computes both *exactly* on concrete weight/activation masks:

* a conv layer is viewed as a GEMM — weights ``(cout, cin*k*k)`` against a
  sampled batch of im2col activation columns;
* effectual MACs are the AND of the two masks, counted exactly;
* load balance follows Eyeriss-V2's output-channel partitioning: output
  channels are dealt round-robin across PE groups, and the array's time is
  set by the most-loaded group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError
from repro.sparsity.patterns import (
    SparsityPattern,
    WeightSparsityConfig,
    channel_mask,
    nm_block_mask,
    random_mask,
)


@dataclass(frozen=True)
class MaskSimReport:
    """Exact counts from one mask-level simulation."""

    dense_macs: int
    effectual_macs: int
    pe_groups: int
    max_group_macs: int

    @property
    def valid_mac_fraction(self) -> float:
        return self.effectual_macs / self.dense_macs if self.dense_macs else 0.0

    @property
    def load_balance_utilization(self) -> float:
        """sum(work) / (groups x max(work)): 1.0 = perfectly balanced."""
        if self.max_group_macs == 0:
            return 1.0
        return self.effectual_macs / (self.pe_groups * self.max_group_macs)


def _weight_mask(
    cfg: WeightSparsityConfig, cout: int, k_elems: int, rng: np.random.Generator
) -> np.ndarray:
    shape = (cout, k_elems)
    if cfg.pattern is SparsityPattern.DENSE:
        return np.ones(shape, dtype=bool)
    if cfg.pattern is SparsityPattern.RANDOM:
        return random_mask(shape, cfg.rate, rng)
    if cfg.pattern is SparsityPattern.NM_BLOCK:
        n, m = cfg.nm  # type: ignore[misc]
        return nm_block_mask(shape, n, m, rng)
    if cfg.pattern is SparsityPattern.CHANNEL:
        return channel_mask(shape, cfg.rate, rng)
    raise ProfilingError(f"unknown pattern {cfg.pattern}")


def simulate_conv_masks(
    cfg: WeightSparsityConfig,
    activation_sparsity: float,
    *,
    cout: int = 64,
    k_elems: int = 288,  # cin * k * k, e.g. 32 x 3 x 3
    n_columns: int = 64,  # sampled im2col output positions
    pe_groups: int = 16,
    seed: int = 0,
    activation_bias: float = 0.0,
) -> MaskSimReport:
    """Exact effectual-MAC and load-balance counts for one sparse conv.

    Args:
        activation_bias: Correlation knob between weight importance and
            activation liveliness — channel pruning removes weak channels
            whose inputs are also often zero.  0 = independent masks.
    """
    if not 0.0 <= activation_sparsity <= 1.0:
        raise ProfilingError("activation sparsity must be in [0, 1]")
    if pe_groups <= 0 or cout <= 0 or k_elems <= 0 or n_columns <= 0:
        raise ProfilingError("all dimensions must be positive")
    rng = np.random.default_rng(seed)
    w_mask = _weight_mask(cfg, cout, k_elems, rng)
    # Activation mask per (input element, output column).  The bias makes
    # input elements feeding *surviving* weights more likely to be non-zero
    # (the importance-correlation argument behind channel pruning).
    keep_prob = np.full(k_elems, 1.0 - activation_sparsity)
    if activation_bias > 0.0:
        column_live = w_mask.any(axis=0)
        keep_prob = np.where(
            column_live,
            np.minimum(1.0, keep_prob * (1.0 + activation_bias)),
            np.maximum(0.0, keep_prob * (1.0 - activation_bias)),
        )
    a_mask = rng.random((k_elems, n_columns)) < keep_prob[:, None]

    effectual_per_oc = (w_mask.astype(np.int64) @ a_mask.astype(np.int64)).sum(axis=1)
    dense = cout * k_elems * n_columns
    # Channel pruning is structurally removable: entirely-dead output
    # channels are compacted away before mapping, so only live channels are
    # dealt across the PE groups.
    live = np.flatnonzero(w_mask.any(axis=1))
    group_load = np.zeros(pe_groups, dtype=np.int64)
    for slot, oc in enumerate(live):
        group_load[slot % pe_groups] += effectual_per_oc[oc]
    return MaskSimReport(
        dense_macs=dense,
        effectual_macs=int(effectual_per_oc.sum()),
        pe_groups=pe_groups,
        max_group_macs=int(group_load.max()),
    )
