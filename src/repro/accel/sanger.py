"""Analytic Sanger performance model for sparse attention NNs.

Sanger (Lu et al., MICRO'21) prunes attention matrices dynamically via a
low-precision prediction + binary threshold, then executes the surviving
score/context computations on a reconfigurable array with *load-balanced*
pack-and-split dataflow.  Consequences captured by this model:

* ``ATTN_SCORE`` / ``ATTN_CONTEXT`` layers scale with attention *density*
  (1 - dynamic sparsity) divided by a load-balance efficiency (<1);
* projections (QKV/out) and FFN matmuls shrink with *token-level* cascade
  pruning (SpAtten-style): a fraction ``token_prune_share`` of the dynamic
  sparsity translates into skipped rows of the dense matmuls.  Together these
  give the whole-model 0.6x-1.8x latency dynamicity of paper Fig 2 and the
  "90% sparsity -> 1 ms vs 30% -> 4 ms" behaviour of Fig 1(c);
* a per-layer overhead covers the sparsity-prediction pass and dispatch.

Calibration: ``peak_macs_per_second`` is set so the multi-AttNN workload
saturates at ~27 inf/s, matching the paper's Fig 15(a) STP curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accel.base import Accelerator, LayerCost
from repro.errors import ProfilingError
from repro.models.graph import Layer, LayerKind, ModelGraph
from repro.sparsity.patterns import WeightSparsityConfig

_ATTENTION_KINDS = (LayerKind.ATTN_SCORE, LayerKind.ATTN_CONTEXT)
_DENSE_KINDS = (LayerKind.ATTN_QKV, LayerKind.ATTN_OUT, LayerKind.FFN, LayerKind.FC)


@dataclass
class Sanger(Accelerator):
    """Sanger cost model (paper Sec 3.3.2)."""

    name: str = "sanger"
    clock_hz: float = 1e9
    #: Sustained dense matmul throughput (MACs/s) of the PE array.
    peak_macs_per_second: float = 0.74e12
    #: Pack-and-split load-balance efficiency on sparse attention.
    load_balance_efficiency: float = 0.85
    #: Share of dynamic sparsity that cascades into token pruning of the
    #: dense projections and FFNs (SpAtten-style).
    token_prune_share: float = 0.6
    #: Per-layer overhead (sparsity prediction + dispatch) in cycles.
    layer_overhead_cycles: float = 5000.0

    @property
    def _macs_per_cycle(self) -> float:
        return self.peak_macs_per_second / self.clock_hz

    def _layer_cycles(self, layer: Layer, activation_sparsity):
        """Compute cycles; ``activation_sparsity`` may be scalar or ndarray."""
        s = np.asarray(activation_sparsity, dtype=float)
        if layer.kind in _ATTENTION_KINDS:
            effectual = layer.macs * (1.0 - s) / self.load_balance_efficiency
        elif layer.kind in _DENSE_KINDS:
            effectual = layer.macs * (1.0 - self.token_prune_share * s)
        else:
            raise ProfilingError(f"Sanger model cannot execute layer kind {layer.kind}")
        return effectual / self._macs_per_cycle

    def layer_cost(
        self, layer: Layer, weights: WeightSparsityConfig, activation_sparsity: float
    ) -> LayerCost:
        if not 0.0 <= activation_sparsity <= 1.0:
            raise ProfilingError(
                f"activation sparsity must be in [0, 1], got {activation_sparsity}"
            )
        compute = self._layer_cycles(layer, activation_sparsity)
        return LayerCost(
            compute_cycles=float(compute),
            memory_cycles=0.0,
            overhead_cycles=self.layer_overhead_cycles,
        )

    def model_latencies(
        self,
        model: ModelGraph,
        weights: WeightSparsityConfig,
        activation_sparsities: np.ndarray,
    ) -> np.ndarray:
        """Vectorized per-layer latencies, seconds, shape (n, num_layers)."""
        s = np.asarray(activation_sparsities, dtype=float)
        if s.ndim != 2 or s.shape[1] != model.num_layers:
            raise ProfilingError(
                f"expected sparsity matrix of shape (n, {model.num_layers}), got {s.shape}"
            )
        out = np.empty_like(s)
        for j, layer in enumerate(model.layers):
            cycles = self._layer_cycles(layer, s[:, j]) + self.layer_overhead_cycles
            out[:, j] = cycles / self.clock_hz
        return out
