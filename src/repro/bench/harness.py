"""Experiment harness: run scheduler comparisons over seeds and grids.

All of Sec 6's experiments reduce to the same recipe: profile the family's
benchmark (cached), build the LUT, generate a seeded Poisson workload, run
each scheduler, aggregate metrics over seeds.  The paper uses 1000 requests
and 5 seeds; benchmarks default to a lighter configuration that preserves
every qualitative conclusion and can be scaled back up via arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError
from repro.profiling.profiler import benchmark_suite
from repro.schedulers.base import make_scheduler
from repro.sim.engine import simulate
from repro.sim.workload import WorkloadSpec, generate_workload

#: Scheduler line-up of Table 5 / Figs 12-15, in the paper's display order.
PAPER_SCHEDULERS: Tuple[str, ...] = (
    "fcfs",
    "sjf",
    "sdrm3",
    "prema",
    "planaria",
    "oracle",
    "dysta",
)

#: Paper arrival-rate operating points (samples/s) per family (Sec 6.2).
BASE_ARRIVAL_RATE = {"attnn": 30.0, "cnn": 3.0}


@dataclass
class ExperimentResult:
    """Aggregated metrics of one (scheduler, workload-config) cell."""

    scheduler: str
    family: str
    arrival_rate: float
    slo_multiplier: float
    antt_mean: float
    violation_rate_mean: float
    stp_mean: float
    antt_std: float = 0.0
    violation_rate_std: float = 0.0
    seeds: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def violation_rate_pct(self) -> float:
        return 100.0 * self.violation_rate_mean


def run_single(
    scheduler_name: str,
    family: str,
    *,
    arrival_rate: Optional[float] = None,
    slo_multiplier: float = 10.0,
    n_requests: int = 300,
    seeds: Sequence[int] = (0, 1),
    n_profile_samples: int = 300,
    scheduler_kwargs: Optional[dict] = None,
    traces: Optional[dict] = None,
    engine_kwargs: Optional[dict] = None,
) -> ExperimentResult:
    """Run one scheduler on one workload configuration, averaged over seeds.

    Args:
        traces: Pre-profiled trace suite (e.g. from a
            :class:`~repro.profiling.store.TraceStore`); profiled on the fly
            when omitted.
        engine_kwargs: Extra :func:`~repro.sim.engine.simulate` options
            (``switch_cost``, ``block_size``).
    """
    if family not in BASE_ARRIVAL_RATE:
        raise SchedulingError(f"family must be one of {sorted(BASE_ARRIVAL_RATE)}")
    if not seeds:
        raise SchedulingError("at least one seed is required")
    rate = arrival_rate if arrival_rate is not None else BASE_ARRIVAL_RATE[family]
    if traces is None:
        traces = benchmark_suite(family, n_samples=n_profile_samples, seed=0)
    lut = ModelInfoLUT(traces)
    antts: List[float] = []
    viols: List[float] = []
    stps: List[float] = []
    for seed in seeds:
        spec = WorkloadSpec(
            arrival_rate=rate,
            n_requests=n_requests,
            slo_multiplier=slo_multiplier,
            seed=seed,
        )
        requests = generate_workload(traces, spec)
        scheduler = make_scheduler(scheduler_name, lut, **(scheduler_kwargs or {}))
        result = simulate(requests, scheduler, **(engine_kwargs or {}))
        antts.append(result.antt)
        viols.append(result.violation_rate)
        stps.append(result.stp)
    return ExperimentResult(
        scheduler=scheduler_name,
        family=family,
        arrival_rate=rate,
        slo_multiplier=slo_multiplier,
        antt_mean=float(np.mean(antts)),
        violation_rate_mean=float(np.mean(viols)),
        stp_mean=float(np.mean(stps)),
        antt_std=float(np.std(antts)),
        violation_rate_std=float(np.std(viols)),
        seeds=tuple(seeds),
    )


def run_comparison(
    family: str,
    schedulers: Iterable[str] = PAPER_SCHEDULERS,
    **kwargs,
) -> Dict[str, ExperimentResult]:
    """Run several schedulers on the same workload configuration.

    Workloads are regenerated per scheduler from identical seeds, so every
    policy sees the exact same request stream.
    """
    return {name: run_single(name, family, **kwargs) for name in schedulers}
