"""Experiment harness and ASCII figure/table rendering for the paper's
evaluation section."""

from repro.bench.harness import (
    ExperimentResult,
    PAPER_SCHEDULERS,
    run_comparison,
    run_single,
)
from repro.bench.figures import render_series, render_table

__all__ = [
    "ExperimentResult",
    "PAPER_SCHEDULERS",
    "run_comparison",
    "run_single",
    "render_series",
    "render_table",
]
