"""Performance-trajectory runner behind the ``repro perf`` CLI subcommand.

Times the simulator's hot paths — the single-NPU engine per scheduler on
both the scalar reference path and the vectorized fast path, the deep-queue
overload regime, and the streaming cluster replay — and emits a
``BENCH_perf.json`` snapshot.  The JSON is the repo's measured perf
baseline: every optimisation PR re-runs it and compares against the
committed numbers instead of hand-waving.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import Pool, build_heterogeneous_world, build_router, simulate_cluster
from repro.core.lut import ModelInfoLUT
from repro.obs.hostmem import peak_rss_mb, reset_peak_rss
from repro.profiling.profiler import benchmark_suite
from repro.schedulers.base import make_scheduler
from repro.sim.engine import simulate
from repro.sim.workload import WorkloadSpec, generate_workload, iter_workload

ENGINE_SCHEDULERS = ("dysta", "fcfs", "sjf", "prema", "sdrm3", "oracle")


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# Shared with the sweep runner's per-cell cost columns; see
# repro.obs.hostmem for the clear_refs/VmHWM technique.
_reset_peak_rss = reset_peak_rss
_rss_mb = peak_rss_mb


def time_engine_suite(
    schedulers: Sequence[str] = ENGINE_SCHEDULERS,
    *,
    n_requests: int = 200,
    arrival_rate: float = 30.0,
    n_samples: int = 100,
    rounds: int = 3,
    progress=None,
) -> Dict[str, Dict[str, float]]:
    """Scalar vs vectorized wall-clock per scheduler on one workload.

    Matches ``bench_perf_engine_dysta``'s workload (attnn suite, 200
    requests @ 30 req/s) so the numbers line up with the pytest-benchmark
    suite.
    """
    traces = benchmark_suite("attnn", n_samples=n_samples, seed=0)
    lut = ModelInfoLUT(traces)
    spec = WorkloadSpec(arrival_rate, n_requests=n_requests,
                        slo_multiplier=10.0, seed=0)
    out: Dict[str, Dict[str, float]] = {}
    for name in schedulers:
        row: Dict[str, float] = {}
        for label, use_batch in (("scalar_s", False), ("vectorized_s", None)):
            def run(use_batch=use_batch):
                reqs = generate_workload(traces, spec)
                result = simulate(reqs, make_scheduler(name, lut),
                                  use_batch=use_batch)
                assert len(result.requests) == n_requests
            row[label] = _best_of(run, rounds)
        row["speedup"] = row["scalar_s"] / row["vectorized_s"]
        out[name] = row
        if progress:
            progress(f"engine/{name}: scalar {1e3 * row['scalar_s']:.1f} ms, "
                     f"vectorized {1e3 * row['vectorized_s']:.1f} ms "
                     f"({row['speedup']:.1f}x)")
    return out


def time_deep_queue(
    *,
    n_requests: int = 400,
    arrival_rate: float = 120.0,
    n_samples: int = 100,
    rounds: int = 2,
    progress=None,
) -> Dict[str, float]:
    """Overload regime: hundreds-deep queues exercise the numpy path."""
    traces = benchmark_suite("attnn", n_samples=n_samples, seed=0)
    lut = ModelInfoLUT(traces)
    spec = WorkloadSpec(arrival_rate, n_requests=n_requests,
                        slo_multiplier=10.0, seed=1)
    row: Dict[str, float] = {}
    max_queue = 0
    for label, use_batch in (("scalar_s", False), ("vectorized_s", None)):
        def run(use_batch=use_batch):
            nonlocal max_queue
            reqs = generate_workload(traces, spec)
            result = simulate(reqs, make_scheduler("dysta", lut),
                              use_batch=use_batch)
            max_queue = max(max_queue, result.max_queue_length)
        row[label] = _best_of(run, rounds)
    row["speedup"] = row["scalar_s"] / row["vectorized_s"]
    row["max_queue_length"] = max_queue
    if progress:
        progress(f"deep-queue dysta (queue depth {max_queue}): scalar "
                 f"{row['scalar_s']:.2f} s, vectorized {row['vectorized_s']:.2f} s "
                 f"({row['speedup']:.1f}x)")
    return row


def time_cluster_stream(
    *,
    n_requests: int = 100_000,
    arrival_rate: float = 12.0,
    n_samples: int = 200,
    scheduler: str = "dysta",
    routers: Sequence[str] = ("jsq", "predictive"),
    progress=None,
) -> Dict[str, Dict[str, float]]:
    """Streaming bounded-memory replay through the heterogeneous cluster.

    Uses ``iter_workload`` + ``retain_requests=False``: no request list is
    ever materialized, so the replay's memory stays flat regardless of
    stream length.  Reports wall-clock, throughput and the peak-RSS delta
    across the replay as the bounded-memory evidence.
    """
    traces, lut, affinity = build_heterogeneous_world(n_samples=n_samples)
    out: Dict[str, Dict[str, float]] = {}
    for router_name in routers:
        pools = [
            Pool("eyeriss", make_scheduler(scheduler, lut), 2,
                 affinity=affinity["cnn"]),
            Pool("sanger", make_scheduler(scheduler, lut), 2,
                 affinity=affinity["attnn"]),
        ]
        spec = WorkloadSpec(arrival_rate, n_requests=n_requests,
                            slo_multiplier=10.0, seed=0)
        # Without the reset, every replay after the first reports a 0.0
        # delta: the lifetime high-water mark was already set by its
        # predecessor.
        _reset_peak_rss()
        rss_before = _rss_mb()
        t0 = time.perf_counter()
        result = simulate_cluster(
            iter_workload(traces, spec),
            pools,
            build_router(router_name, lut),
            retain_requests=False,
        )
        wall = time.perf_counter() - t0
        assert result.num_completed == n_requests
        assert result.requests == [] and result.shed_requests == []
        out[router_name] = {
            "requests": n_requests,
            "wall_s": wall,
            "requests_per_s": n_requests / wall,
            "scheduler_invocations": result.num_scheduler_invocations,
            "batch_selects": result.num_batch_selects,
            "max_queue_length": result.max_queue_length,
            "antt": result.antt,
            "violation_rate": result.violation_rate,
            "p99": result.p99,
            "peak_rss_delta_mb": _rss_mb() - rss_before,
        }
        if progress:
            progress(f"cluster/{router_name}: {n_requests} requests in "
                     f"{wall:.1f} s ({n_requests / wall:,.0f} req/s, "
                     f"{result.num_scheduler_invocations:,} decisions, "
                     f"peak-RSS delta {out[router_name]['peak_rss_delta_mb']:.0f} MiB)")
    return out


def profile_engine_phases(
    *,
    n_requests: int = 200,
    arrival_rate: float = 30.0,
    n_samples: int = 100,
    cluster_requests: int = 5_000,
    progress=None,
) -> Dict[str, Dict]:
    """Self-profiled runs: wall-clock attributed to engine phases.

    One instrumented pass per engine tier (single-NPU, multi-NPU, streaming
    cluster) with :class:`~repro.obs.Observability` profiling on.  The
    breakdown — event-heap ops, ready-queue update, batch scoring, router
    predict, arrivals — lands in ``BENCH_perf.json`` under ``profile`` so
    optimisation work knows which phase to attack first.
    """
    from repro.obs import Observability
    from repro.sim.multi import simulate_multi

    traces = benchmark_suite("attnn", n_samples=n_samples, seed=0)
    lut = ModelInfoLUT(traces)
    spec = WorkloadSpec(arrival_rate, n_requests=n_requests,
                        slo_multiplier=10.0, seed=0)
    out: Dict[str, Dict] = {}

    obs = Observability(profile=True)
    simulate(generate_workload(traces, spec), make_scheduler("dysta", lut),
             obs=obs)
    out["engine_single"] = obs.profiler.summary()

    obs = Observability(profile=True)
    simulate_multi(generate_workload(traces, spec),
                   make_scheduler("dysta", lut), num_accelerators=4, obs=obs)
    out["engine_multi"] = obs.profiler.summary()

    ctraces, clut, affinity = build_heterogeneous_world(n_samples=n_samples)
    pools = [
        Pool("eyeriss", make_scheduler("dysta", clut), 2,
             affinity=affinity["cnn"]),
        Pool("sanger", make_scheduler("dysta", clut), 2,
             affinity=affinity["attnn"]),
    ]
    cspec = WorkloadSpec(12.0, n_requests=cluster_requests,
                         slo_multiplier=10.0, seed=0)
    obs = Observability(profile=True)
    simulate_cluster(iter_workload(ctraces, cspec), pools,
                     build_router("predictive", clut),
                     retain_requests=False, obs=obs)
    out["engine_cluster"] = obs.profiler.summary()

    if progress:
        for tier, summary in out.items():
            top = next(iter(summary["phases"]), "-")
            progress(f"profile/{tier}: {1e3 * summary['wall_s']:.1f} ms wall, "
                     f"{100 * summary['coverage']:.0f}% attributed, "
                     f"hottest phase {top!r}")
    return out


def load_baseline(path: str) -> Optional[Dict]:
    """Load the most recent perf entry committed at ``path``.

    Understands both snapshot formats: schema 1 (one flat report per file)
    and schema 2 (``{"schema": 2, "entries": [...]}`` — the append-only
    trajectory, newest entry last).  Returns ``None`` when the file is
    missing or unreadable.
    """
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    if payload.get("schema") == 2:
        entries = payload.get("entries") or []
        return entries[-1] if entries else None
    return payload


def compare_reports(current: Dict, baseline: Dict,
                    threshold: float = 0.20) -> Tuple[List[str], List[str]]:
    """Per-benchmark deltas of ``current`` vs ``baseline``.

    Only host-portable figures are gated: the vectorized-vs-scalar speedup
    ratios (engine suite + deep queue) always, and the cluster replay's
    ``requests_per_s`` only when both reports carry it (a CI runner never
    compares its cluster throughput against the committed baseline host's).
    Returns ``(lines, regressions)`` where ``lines`` is the full printable
    delta table and ``regressions`` the subset worse than ``threshold``.
    """
    lines: List[str] = []
    regressions: List[str] = []

    def check(label: str, cur: float, base: float) -> None:
        if base <= 0:
            return
        delta = cur / base - 1.0
        line = f"{label:<28} {base:9.2f} -> {cur:9.2f}  ({delta:+7.1%})"
        lines.append(line)
        if delta < -threshold:
            regressions.append(line)

    cur_eng = current.get("engine_200req_rate30", {})
    base_eng = baseline.get("engine_200req_rate30", {})
    for sched in sorted(set(cur_eng) & set(base_eng)):
        check(f"engine/{sched} speedup",
              cur_eng[sched]["speedup"], base_eng[sched]["speedup"])
    cur_deep = current.get("deep_queue_400req_rate120")
    base_deep = baseline.get("deep_queue_400req_rate120")
    if cur_deep and base_deep:
        check("deep_queue speedup", cur_deep["speedup"], base_deep["speedup"])
    cur_cluster = current.get("cluster_stream", {})
    base_cluster = baseline.get("cluster_stream", {})
    for router in sorted(set(cur_cluster) & set(base_cluster)):
        check(f"cluster/{router} req/s",
              cur_cluster[router]["requests_per_s"],
              base_cluster[router]["requests_per_s"])
    return lines, regressions


def _append_entry(out_path: str, entry: Dict) -> None:
    """Append ``entry`` to the schema-2 trajectory at ``out_path``.

    An existing schema-1 snapshot is upgraded in place: it becomes entry #1
    of the trajectory so the perf history is preserved across the format
    change.
    """
    entries: List[Dict] = []
    try:
        with open(out_path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        payload = None
    if payload is not None:
        if payload.get("schema") == 2:
            entries = list(payload.get("entries") or [])
        else:
            prior = dict(payload)
            prior.pop("schema", None)
            entries = [prior]
    entries.append(entry)
    with open(out_path, "w") as fh:
        json.dump({"schema": 2, "entries": entries}, fh,
                  indent=2, sort_keys=True)
        fh.write("\n")


def run_perf_suite(
    *,
    cluster_requests: int = 100_000,
    rounds: int = 3,
    include_cluster: bool = True,
    profile: bool = False,
    out_path: Optional[str] = None,
    progress=None,
) -> Dict:
    """Run every perf bench and optionally write the JSON snapshot.

    Returns the new measurement entry.  With ``out_path``, the entry is
    *appended* to the schema-2 trajectory file (creating it, or upgrading a
    schema-1 snapshot into entry #1), so the committed history records every
    optimisation PR's numbers side by side.

    Args:
        profile: Additionally run self-profiled passes per engine tier and
            record the per-phase wall-clock breakdown under ``profile``.
    """
    entry: Dict = {
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "hostname": platform.node(),
        },
        "engine_200req_rate30": time_engine_suite(rounds=rounds, progress=progress),
        "deep_queue_400req_rate120": time_deep_queue(progress=progress),
    }
    if include_cluster:
        entry["cluster_stream"] = time_cluster_stream(
            n_requests=cluster_requests, progress=progress
        )
    if profile:
        entry["profile"] = profile_engine_phases(progress=progress)
    if out_path:
        _append_entry(out_path, entry)
    return entry
