"""ASCII rendering of the paper's tables and figure series.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep that output consistent and testable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.errors import ReproError


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Mapping[str, Sequence[object]],
    *,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a right-aligned ASCII table with a left row-label column."""
    if not rows:
        raise ReproError(f"table {title!r} has no rows")
    widths = [max(len(c), 10) for c in columns]
    label_w = max([len(title)] + [len(k) for k in rows])

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    lines = []
    header = title.ljust(label_w) + " | " + " | ".join(
        c.rjust(w) for c, w in zip(columns, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        if len(values) != len(columns):
            raise ReproError(
                f"row {label!r}: {len(values)} values for {len(columns)} columns"
            )
        cells = " | ".join(fmt(v).rjust(w) for v, w in zip(values, widths))
        lines.append(label.ljust(label_w) + " | " + cells)
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render figure data as one row per series over swept x values."""
    columns = [f"{x_label}={x:g}" for x in x_values]
    rows = {}
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ReproError(f"series {name!r} length mismatch with x values")
        rows[name] = list(ys)
    return render_table(title, columns, rows, float_fmt=float_fmt)
