"""ASCII visualization: histograms, line charts and scatter plots for the
benchmark output.

The paper's figures are plots; the benchmarks print their data as tables
plus these lightweight renderings, so a terminal run shows the *shape* of
each figure (distribution spread, curve crossings, Pareto corners) at a
glance.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import ReproError

_BARS = " .:-=+*#%@"


def ascii_histogram(
    values: Sequence[float],
    *,
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal-bar histogram of a 1-D sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ReproError("histogram of an empty sample")
    if bins <= 0 or width <= 0:
        raise ReproError("bins and width must be positive")
    counts, edges = np.histogram(arr, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{edges[i]:>10.3g} | {bar} {count}")
    return "\n".join(lines)


def ascii_line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    height: int = 12,
    title: str = "",
) -> str:
    """Multi-series line chart; one letter per series, collisions show '*'."""
    if not series:
        raise ReproError("line chart needs at least one series")
    if height < 3:
        raise ReproError("chart height must be >= 3")
    xs = list(x_values)
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ReproError(f"series {name!r} length mismatch with x values")
    all_y = np.array([y for ys in series.values() for y in ys], dtype=float)
    lo, hi = float(all_y.min()), float(all_y.max())
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * len(xs) for _ in range(height)]
    markers = {}
    for idx, (name, ys) in enumerate(sorted(series.items())):
        marker = chr(ord("a") + idx % 26)
        markers[name] = marker
        for col, y in enumerate(ys):
            row = height - 1 - int(round((float(y) - lo) / (hi - lo) * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = marker if cell == " " else "*"
    lines = [title] if title else []
    for r, row in enumerate(grid):
        level = hi - (hi - lo) * r / (height - 1)
        lines.append(f"{level:>10.3g} | " + " ".join(row))
    lines.append(" " * 13 + "-" * (2 * len(xs) - 1))
    lines.append(" " * 13 + " ".join(f"{x:g}"[0] for x in xs))
    legend = "  ".join(f"{m}={n}" for n, m in sorted(markers.items(), key=lambda kv: kv[1]))
    lines.append(f"x: {', '.join(f'{x:g}' for x in xs)}")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def ascii_scatter(
    points: Dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Labelled scatter plot: each entry is one (x, y) point (Fig 12 style)."""
    if not points:
        raise ReproError("scatter needs at least one point")
    if width < 10 or height < 5:
        raise ReproError("scatter canvas too small")
    names = sorted(points)
    xs = np.array([points[n][0] for n in names], dtype=float)
    ys = np.array([points[n][1] for n in names], dtype=float)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = {}
    for idx, name in enumerate(names):
        marker = chr(ord("A") + idx % 26)
        markers[name] = marker
        col = int(round((xs[idx] - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = height - 1 - int(round((ys[idx] - y_lo) / (y_hi - y_lo) * (height - 1)))
        cell = grid[row][col]
        grid[row][col] = marker if cell == " " else "*"
    lines = [title] if title else []
    lines.append(f"{y_label} ({y_lo:.3g} .. {y_hi:.3g})")
    for row in grid:
        lines.append("| " + "".join(row))
    lines.append("+" + "-" * (width + 1))
    lines.append(f"{x_label} ({x_lo:.3g} .. {x_hi:.3g})")
    legend = "  ".join(f"{markers[n]}={n}" for n in names)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
