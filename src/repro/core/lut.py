"""Model-information lookup table (paper Sec 4.1, Fig 8).

The static scheduler populates a LUT with per-(model, sparsity-pattern)
information: the sparsity pattern, the average per-layer sparsity and the
average latency on the target hardware, all "obtained by profiling
representative requests offline".  Both Dysta levels — and every baseline
scheduler that needs a latency estimate — read from this LUT, never from a
request's ground-truth trace (that privilege is the Oracle's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.profiling.trace import TraceSet


@dataclass(frozen=True)
class LUTEntry:
    """Offline-profiled averages of one (model, pattern) pair."""

    avg_total_latency: float
    avg_layer_latencies: np.ndarray
    avg_layer_sparsities: np.ndarray
    #: suffix[j] = expected latency of layers j..L-1 (suffix[L] = 0).
    remaining_suffix: np.ndarray
    network_avg_sparsity: float
    #: Slope of (normalized latency) vs (normalized density): the paper's
    #: alpha — "how effectively sparsity can deliver real latency reduction"
    #: on the target hardware — calibrated from the offline profile.
    density_slope: float
    #: Plain-tuple mirrors of the arrays above (bit-identical values via
    #: tolist); scalar hot paths index these to skip numpy boxing.
    avg_layer_sparsities_t: Tuple[float, ...] = ()
    remaining_suffix_t: Tuple[float, ...] = ()


def _calibrate_density_slope(trace: TraceSet) -> float:
    """Regress normalized isolated latency on normalized network density.

    The sparse latency predictor multiplies the average latency by a sparsity
    coefficient gamma (Algorithm 3).  How much a density excursion actually
    moves latency depends on the hardware: an accelerator that fully skips
    every zero has slope ~1; one that only partially exploits sparsity (e.g.
    token-cascade pruning of dense matmuls) has slope < 1.  The paper's alpha
    term captures exactly this ("the value of alpha depends on the underlying
    hardware"); we calibrate it from the same offline profile that fills the
    LUT, per (model, pattern) pair.
    """
    density = 1.0 - trace.sparsities.mean(axis=1)
    mean_density = float(density.mean())
    latency = trace.isolated_latencies
    x = density / mean_density - 1.0 if mean_density > 0 else density * 0.0
    y = latency / float(latency.mean()) - 1.0
    var = float(np.dot(x, x))
    if var < 1e-12:
        return 1.0  # no density variation observed: fall back to unit slope
    slope = float(np.dot(x, y) / var)
    # Clamp to a sane physical range (latency rises with density).
    return min(max(slope, 0.0), 2.0)


class ModelInfoLUT:
    """Per-(model, pattern) offline averages, keyed by ``"model/pattern"``."""

    def __init__(self, traces: Mapping[str, TraceSet]):
        if not traces:
            raise SchedulingError("LUT requires at least one profiled trace set")
        self._entries: Dict[str, LUTEntry] = {}
        for key, trace in traces.items():
            layer_lat = trace.avg_layer_latencies
            suffix = np.concatenate([np.cumsum(layer_lat[::-1])[::-1], [0.0]])
            self._entries[key] = LUTEntry(
                avg_total_latency=trace.avg_total_latency,
                avg_layer_latencies=layer_lat,
                avg_layer_sparsities=trace.avg_layer_sparsities,
                remaining_suffix=suffix,
                network_avg_sparsity=float(trace.avg_layer_sparsities.mean()),
                density_slope=_calibrate_density_slope(trace),
                avg_layer_sparsities_t=tuple(trace.avg_layer_sparsities.tolist()),
                remaining_suffix_t=tuple(suffix.tolist()),
            )

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def _entry(self, key: str) -> LUTEntry:
        try:
            return self._entries[key]
        except KeyError:
            raise SchedulingError(f"no LUT entry for {key!r}") from None

    def entry_or_none(self, key: str) -> Optional[LUTEntry]:
        """The interned :class:`LUTEntry` for ``key``, or None if absent."""
        return self._entries.get(key)

    def avg_total_latency(self, key: str) -> float:
        """Average isolated latency of the (model, pattern) pair."""
        return self._entry(key).avg_total_latency

    def static_remaining(self, key: str, next_layer: int) -> float:
        """Expected latency of layers ``next_layer..L-1`` (offline averages)."""
        entry = self._entry(key)
        if not 0 <= next_layer <= len(entry.avg_layer_latencies):
            raise SchedulingError(
                f"{key}: layer index {next_layer} outside "
                f"[0, {len(entry.avg_layer_latencies)}]"
            )
        return float(entry.remaining_suffix[next_layer])

    def avg_layer_sparsities(self, key: str) -> np.ndarray:
        return self._entry(key).avg_layer_sparsities

    def network_avg_sparsity(self, key: str) -> float:
        """Network-level (layer-mean) average sparsity."""
        return self._entry(key).network_avg_sparsity

    def density_slope(self, key: str) -> float:
        """Calibrated latency-vs-density slope (the paper's alpha term)."""
        return self._entry(key).density_slope

    def num_layers(self, key: str) -> int:
        return int(len(self._entry(key).avg_layer_latencies))
