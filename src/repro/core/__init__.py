"""The paper's primary contribution: the Dysta bi-level scheduler, its
model-info LUT and the sparse latency predictor."""

from repro.core.lut import ModelInfoLUT
from repro.core.predictor import PredictorStrategy, SparseLatencyPredictor, predictor_rmse
from repro.core.dysta import DystaScheduler

__all__ = [
    "ModelInfoLUT",
    "PredictorStrategy",
    "SparseLatencyPredictor",
    "predictor_rmse",
    "DystaScheduler",
]
