"""Dysta: bi-level dynamic and static scheduler (paper Sec 4).

**Static level (Algorithm 1, software).**  On arrival of request
``<Model, Pattern, input, SLO>`` the static scheduler reads the (model,
pattern) LUT entry, estimates latency from the pattern-aware average, and
assigns an initial score ``Score = Lat + beta * T_slack`` that orders
requests before any runtime information exists.

**Dynamic level (Algorithm 2, hardware).**  Whenever a layer completes, the
hardware monitor reveals that layer's measured sparsity; the sparse latency
predictor (Algorithm 3) refines the request's remaining-time estimate, and
every queued request is re-scored:

    Score_i = T_remain_i + eta * (T_slack_i + T_penalty_i)
    T_slack_i = SLO_i - t - T_remain_i
    T_penalty_i = (T_wait_i / T_isol_i) / |Q|

The request with the *lowest* score runs next.  The remaining-time term
favours short jobs (ANTT), the slack term favours tight deadlines (SLO
violations), and the waiting-time penalty discourages excessive preemption —
the currently-running request has zero waiting time, hence the lowest
penalty.

``DystaScheduler(predictor=None)`` (registry name ``dysta_nosparse``) is the
Fig 13 ablation: the dynamic hardware monitor and sparsity support are
disabled, so remaining times fall back to the static LUT averages.

**Vectorized fast path.**  The sparsity-refined remaining estimate only
changes when a layer of that request completes, so in batch mode it is
computed once per monitor event (``on_layer_complete``) and cached in the
ready queue's ``dysta_rem`` aux column instead of being re-derived for every
queued request at every decision.  ``select_batch`` then scores the whole
queue in one pass — a tight scalar loop over the column mirrors at small
depths, one numpy expression at large depths — replicating the scalar
arithmetic operation-for-operation so decisions are bit-identical.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.core.predictor import (
    _MIN_DENSITY,
    PredictorStrategy,
    SparseLatencyPredictor,
)
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request

_AUX_REM = "dysta_rem"
#: Clamped isolated latency max(Lat_avg, 1e-12) and its negation, fixed per
#: request: precomputed at arrival so the per-decision loop skips the clamp.
_AUX_ISO = "dysta_iso"
_AUX_NEG_ISO = "dysta_neg_iso"


class DystaScheduler(Scheduler):
    """Dysta bi-level scheduler (full version when sparsity-aware).

    Args:
        lut: Offline model-information LUT (populated by the static level).
        beta: Static-score slack weight (Algorithm 1, line 7).
        eta: Dynamic-score weight of slack + penalty (Algorithm 2, line 11).
        sparsity_aware: Enable the hardware monitor + sparse latency
            predictor.  Disabled reproduces the Dysta-w/o-sparse ablation.
        strategy: Sparsity-coefficient strategy (paper ships last-one).
        score_dtype: "fp32" or "fp16" — the hardware scheduler computes
            scores in FP16 (Sec 5.2.2); quantizing here verifies that the
            reduced precision does not change scheduling decisions.
    """

    name = "dysta"
    supports_batch = True
    batch_columns = ("deadline", "last_run_end")
    single_drain_safe = True
    trivial_single = True  # select_single is queue[0] (no resident tracking)
    supports_incremental = True

    #: Switch-cost extension hooks (see :class:`DystaSwitchAware`); the base
    #: policy charges nothing and tracks nothing.
    _track_resident = False
    switch_cost = 0.0
    _resident: Optional[int] = None

    def __init__(
        self,
        lut: ModelInfoLUT,
        beta: float = 0.5,
        eta: float = 0.02,
        sparsity_aware: bool = True,
        strategy: PredictorStrategy = PredictorStrategy.LAST_ONE,
        alpha: float = 1.0,
        score_dtype: str = "fp32",
    ):
        super().__init__(lut)
        if score_dtype not in ("fp32", "fp16"):
            raise ValueError(f"score_dtype must be fp32|fp16, got {score_dtype!r}")
        self.beta = beta
        self.eta = eta
        self.sparsity_aware = sparsity_aware
        self.score_dtype = score_dtype
        self.predictor: Optional[SparseLatencyPredictor] = (
            SparseLatencyPredictor(lut, strategy, alpha=alpha) if sparsity_aware else None
        )
        # Hoisted monitor-hook constants (hot path: once per layer event).
        self._fast_last_one = (
            self.predictor is not None
            and self.predictor.strategy is PredictorStrategy.LAST_ONE
        )
        self._pred_alpha = self.predictor.alpha if self.predictor is not None else 1.0
        # Incremental selection: an untouched row's score decays at most at
        # eta per simulated second (the slack term falls at rate <= 1, the
        # waiting penalty only grows with time); the margin absorbs float
        # rounding in the per-lookup recomputation.  FP16 quantization snaps
        # scores to a coarse grid, breaking the smooth-decay bound, so the
        # fp16 mode keeps the full-scan path.
        self.inc_decay_rate = eta
        self.inc_margin = 1e-9
        if score_dtype == "fp16":
            self.incremental = False

    def _quantize(self, value: float) -> float:
        """Round a score-path value to the configured hardware precision."""
        if self.score_dtype == "fp16":
            return float(np.float16(value))
        return value

    # -- static level (Algorithm 1) ----------------------------------------

    def static_score(self, request: Request, now: float) -> float:
        """Initial score assigned before execution: Lat + beta * T_slack."""
        lat = self.estimated_isolated(request)
        slack = request.slo - lat
        return lat + self.beta * slack

    def on_arrival(self, request: Request, now: float) -> None:
        # The static level computes the initial score and forwards the model
        # info to the hardware level; the LUT is shared state here.
        self.static_score(request, now)
        queue = self._bound
        if queue is not None:
            i = queue.index_of(request)
            if i >= 0:
                queue.aux_set(_AUX_REM, i, self.remaining_estimate(request))
                isolated = max(self.estimated_isolated(request), 1e-12)
                queue.aux_set(_AUX_ISO, i, isolated)
                queue.aux_set(_AUX_NEG_ISO, i, -isolated)

    # -- dynamic level (Algorithm 2) ----------------------------------------

    def remaining_estimate(self, request: Request) -> float:
        """b_T_Remain: sparsity-refined when monitoring is enabled."""
        if self.predictor is None or request.next_layer == 0:
            return self.estimated_remaining(request)
        return self.predictor.predict_remaining(
            request.key, request.next_layer, request.monitored_sparsities
        )

    def on_layer_complete(self, request: Request, now: float) -> None:
        # Monitor event: refresh the cached remaining estimate.  The scalar
        # path recomputes the estimate at every decision instead, but the
        # value only changes here, so caching is decision-equivalent.
        queue = self._bound
        if queue is None:
            return
        j = request.next_layer
        if j > 0 and self._fast_last_one:
            # Inlined Algorithm-3 last-one update over the cached LUT entry:
            # the same arithmetic as SparseLatencyPredictor.predict_remaining,
            # term for term, without the per-call key lookups.
            entry = request.lut_entry(self.lut)
            mon_density = 1.0 - request.layer_sparsities[j - 1]
            avg_density = 1.0 - entry.avg_layer_sparsities_t[j - 1]
            if mon_density < _MIN_DENSITY:
                mon_density = _MIN_DENSITY
            if avg_density < _MIN_DENSITY:
                avg_density = _MIN_DENSITY
            gamma = 1.0 + entry.density_slope * (mon_density / avg_density - 1.0)
            if gamma < _MIN_DENSITY:
                gamma = _MIN_DENSITY
            value = self._pred_alpha * gamma * entry.remaining_suffix_t[j]
        else:
            value = self.remaining_estimate(request)
        queue.aux_set_for(_AUX_REM, request, value)

    def bind_queue(self, queue: Optional[ReadyQueue]) -> None:
        super().bind_queue(queue)
        if queue is None:
            self._t_rem = None
            return
        queue.register_aux(_AUX_REM, 0.0)
        queue.register_aux(_AUX_ISO, 1e-12)
        queue.register_aux(_AUX_NEG_ISO, -1e-12)
        # The queue's list mirrors are stable objects (mutated in place,
        # never rebound), so bind them once instead of re-fetching per
        # decision.  Safe because Dysta never writes its aux columns through
        # the vectorized (dirty-marking) interface — point writes only.
        self._t_rem = queue.aux_list(_AUX_REM)
        self._t_iso = queue.aux_list(_AUX_ISO)
        self._t_ni = queue.aux_list(_AUX_NEG_ISO)
        self._t_dl = queue.ls_deadline
        self._t_lre = queue.ls_last_run_end
        self._t_rid = queue.ls_rid

    def dynamic_score(self, request: Request, now: float, queue_len: int) -> float:
        remaining = self._quantize(self.remaining_estimate(request))
        isolated = max(self.estimated_isolated(request), 1e-12)
        # A request whose deadline already passed cannot be saved; clamping
        # its (very negative) slack keeps hopeless jobs from monopolizing the
        # accelerator and wrecking every other request's turnaround.
        slack = max(request.deadline - now - remaining, -isolated)
        wait = max(now - request.last_run_end, 0.0)
        penalty = (wait / isolated) / max(queue_len, 1)
        return self._quantize(remaining + self.eta * (slack + penalty))

    def select(self, queue: Sequence[Request], now: float) -> Request:
        n_queue = len(queue)
        chosen = min(queue, key=lambda r: (self.dynamic_score(r, now, n_queue), r.rid))
        if self._track_resident:
            self._resident = chosen.rid
        return chosen

    # -- vectorized fast path ----------------------------------------------

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        chosen = queue._requests[0]
        if self._track_resident:
            self._resident = chosen.rid
        return chosen

    # -- incremental selection ---------------------------------------------

    def inc_guard(self):
        # Switch-aware scores depend on which request is resident; the base
        # policy never tracks one, so the guard is constantly None.
        return self._resident

    def inc_best(self, queue: "ReadyQueue", idxs, now: float,
                 clear_at: float, journal: set):
        """Exact Algorithm-2 scores for the candidate rows (same arithmetic
        as the tight loop in :meth:`select_batch`, term for term)."""
        eta = self.eta
        res = self._resident
        swc = self.switch_cost if res is not None else 0.0
        rem_l = self._t_rem
        iso_l = self._t_iso
        ni_l = self._t_ni
        dl_l = self._t_dl
        lre_l = self._t_lre
        rid_l = self._t_rid
        n = queue._n
        best = -1
        b_score = b_rid = float("inf")
        for i in idxs:
            rem = rem_l[i]
            slack = dl_l[i] - now - rem
            neg_iso = ni_l[i]
            if slack < neg_iso:
                slack = neg_iso
            wait = now - lre_l[i]
            if wait < 0.0:
                wait = 0.0
            score = rem + eta * (slack + (wait / iso_l[i]) / n)
            rid = rid_l[i]
            if swc and rid != res:
                score += swc
            if score < b_score or (score == b_score and rid < b_rid):
                best, b_score, b_rid = i, score, rid
            elif score >= clear_at and rem + eta * slack >= clear_at:
                # The penalty-free anchor already clears the epoch bound:
                # this row cannot win again before the next full scan.
                journal.discard(rid)
        return best, b_score

    def inc_full_scan(self, queue: "ReadyQueue", now: float, cache) -> Request:
        # Same expression tree as _select_np (fp16 never reaches here), plus
        # the ladder rebuild and the scan-time max of the shrinkable
        # penalty term for the cache's queue-growth correction.
        n = queue._n
        rem = queue.aux_np(_AUX_REM)[:n]
        iso = queue.aux_np(_AUX_ISO)[:n]
        slack = np.maximum(queue.np_deadline[:n] - now - rem,
                           queue.aux_np(_AUX_NEG_ISO)[:n])
        wait = np.maximum(now - queue.np_last_run_end[:n], 0.0)
        pen = (wait / iso) / n
        score = rem + self.eta * (slack + pen)
        rid = queue.np_rid[:n]
        if self.switch_cost and self._resident is not None:
            score = np.where(rid != self._resident, score + self.switch_cost, score)
        chosen = queue[np_lexmin(score, rid)]
        cache.rebuild(score, now, pen_scale=self.eta * float(pen.max()))
        return chosen

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        cache = self._cache
        n = queue._n
        if cache is not None and n >= self.inc_min_queue:
            chosen = cache.lookup(now)
            if self._track_resident:
                self._resident = chosen.rid
            return chosen
        if self.score_dtype == "fp16" or n >= self.numpy_min_queue:
            chosen = self._select_np(queue, now, n)
        else:
            # Tight scalar loop over the list mirrors; same arithmetic as
            # `dynamic_score`, term for term.
            eta = self.eta
            res = self._resident
            swc = self.switch_cost if res is not None else 0.0
            rem_l = self._t_rem
            iso_l = self._t_iso
            ni_l = self._t_ni
            dl_l = self._t_dl
            lre_l = self._t_lre
            rid_l = self._t_rid
            best = 0
            best_score = None
            if swc:
                best_rid = 0
                for i in range(n):
                    rem = rem_l[i]
                    slack = dl_l[i] - now - rem
                    neg_iso = ni_l[i]
                    if slack < neg_iso:
                        slack = neg_iso
                    wait = now - lre_l[i]
                    if wait < 0.0:
                        wait = 0.0
                    score = rem + eta * (slack + (wait / iso_l[i]) / n)
                    rid = rid_l[i]
                    if rid != res:
                        score += swc
                    if best_score is None or score < best_score or (
                        score == best_score and rid < best_rid
                    ):
                        best_score = score
                        best_rid = rid
                        best = i
            else:
                # Common case (no switch-cost term): rids only matter on
                # ties, so skip the per-element rid read.
                for i in range(n):
                    rem = rem_l[i]
                    slack = dl_l[i] - now - rem
                    neg_iso = ni_l[i]
                    if slack < neg_iso:
                        slack = neg_iso
                    wait = now - lre_l[i]
                    if wait < 0.0:
                        wait = 0.0
                    score = rem + eta * (slack + (wait / iso_l[i]) / n)
                    if best_score is None or score < best_score:
                        best_score = score
                        best = i
                    elif score == best_score and rid_l[i] < rid_l[best]:
                        best = i
            chosen = queue._requests[best]
        if self._track_resident:
            self._resident = chosen.rid
        return chosen

    def _select_np(self, queue: "ReadyQueue", now: float, n: int) -> Request:
        rem = queue.aux_np(_AUX_REM)[:n]
        iso = queue.aux_np(_AUX_ISO)[:n]
        if self.score_dtype == "fp16":
            rem = rem.astype(np.float16).astype(np.float64)
        slack = np.maximum(queue.np_deadline[:n] - now - rem,
                           queue.aux_np(_AUX_NEG_ISO)[:n])
        wait = np.maximum(now - queue.np_last_run_end[:n], 0.0)
        score = rem + self.eta * (slack + (wait / iso) / n)
        if self.score_dtype == "fp16":
            score = score.astype(np.float16).astype(np.float64)
        rid = queue.np_rid[:n]
        if self.switch_cost and self._resident is not None:
            score = np.where(rid != self._resident, score + self.switch_cost, score)
        return queue[np_lexmin(score, rid)]


@register_scheduler("dysta")
class _DystaFull(DystaScheduler):
    """Registry entry for the full sparsity-aware Dysta."""

    def __init__(self, lut: ModelInfoLUT, **kwargs):
        kwargs.setdefault("sparsity_aware", True)
        super().__init__(lut, **kwargs)


@register_scheduler("dysta_nosparse")
class _DystaNoSparse(DystaScheduler):
    """Fig 13 ablation: static scoring only, no sparsity monitor."""

    def __init__(self, lut: ModelInfoLUT, **kwargs):
        kwargs["sparsity_aware"] = False
        super().__init__(lut, **kwargs)


@register_scheduler("dysta_switchaware")
class DystaSwitchAware(DystaScheduler):
    """Dysta extended with an explicit weight-reload cost term.

    When the deployment charges a model-switch cost (engine ``switch_cost``),
    the dynamic score can account for it directly: every candidate that is
    not the currently-resident request carries the reload cost on top of its
    remaining time.  The waiting-time penalty already damps preemption
    statistically; this term makes the damping proportional to the actual
    hardware cost.
    """

    _track_resident = True
    trivial_single = False  # select_single updates the resident-model state

    def __init__(self, lut: ModelInfoLUT, switch_cost: float = 0.0, **kwargs):
        super().__init__(lut, **kwargs)
        if switch_cost < 0:
            raise ValueError(f"switch cost must be >= 0, got {switch_cost}")
        self.switch_cost = switch_cost
        self._resident = None

    def reset(self) -> None:
        self._resident = None

    def dynamic_score(self, request: Request, now: float, queue_len: int) -> float:
        score = super().dynamic_score(request, now, queue_len)
        if self._resident is not None and request.rid != self._resident:
            score += self.switch_cost
        return score


@register_scheduler("dysta_static")
class DystaStaticOnly(Scheduler):
    """Pure Algorithm-1 scheduling: the arrival-time score is final.

    The strictest reading of the static level: ``Score = Lat + beta*T_slack``
    is computed once when the request arrives and never revised — no
    progress-based remaining-time updates, no slack decay, no waiting
    penalty.  `dysta_nosparse` (which re-evaluates the dynamic formula from
    LUT averages) sits between this and full Dysta; having both brackets the
    contribution of the dynamic level.
    """

    supports_batch = True
    batch_columns = ()
    single_drain_safe = True
    trivial_single = True
    supports_incremental = True  # static key: zero decay, exact bounds

    def __init__(self, lut: ModelInfoLUT, beta: float = 0.5):
        super().__init__(lut)
        self.beta = beta
        self.reset()

    def reset(self) -> None:
        self._scores: dict = {}

    def bind_queue(self, queue: Optional[ReadyQueue]) -> None:
        super().bind_queue(queue)
        if queue is not None:
            queue.register_aux("static_score", 0.0)
            self._t_sc = queue.aux_list("static_score")

    def on_arrival(self, request: Request, now: float) -> None:
        lat = self.estimated_isolated(request)
        score = lat + self.beta * (request.slo - lat)
        self._scores[request.rid] = score
        queue = self._bound
        if queue is not None:
            i = queue.index_of(request)
            if i >= 0:
                queue.aux_set("static_score", i, score)

    def on_complete(self, request: Request, now: float) -> None:
        self._scores.pop(request.rid, None)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (self._scores.get(r.rid, 0.0), r.rid))

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        return queue[0]

    def inc_best(self, queue: "ReadyQueue", idxs, now: float,
                 clear_at: float, journal: set):
        sc_l = self._t_sc
        rid_l = queue.ls_rid
        best = -1
        b_score = b_rid = float("inf")
        for i in idxs:
            score = sc_l[i]
            if score > b_score:
                if score >= clear_at:
                    journal.discard(rid_l[i])
                continue
            rid = rid_l[i]
            if score < b_score or rid < b_rid:
                best, b_score, b_rid = i, score, rid
        return best, b_score

    def inc_full_scan(self, queue: "ReadyQueue", now: float, cache) -> Request:
        n = queue._n
        sc = queue.aux_np("static_score")[:n]
        chosen = queue[np_lexmin(sc, queue.np_rid[:n])]
        cache.rebuild(sc, now)
        return chosen

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        cache = self._cache
        n = len(queue)
        if cache is not None and n >= self.inc_min_queue:
            return cache.lookup(now)
        if n >= self.numpy_min_queue:
            return queue[np_lexmin(queue.aux_np("static_score")[:n], queue.np_rid[:n])]
        sc_l = queue.aux_list("static_score")
        rid_l = queue.ls_rid
        best = 0
        best_score = sc_l[0]
        best_rid = rid_l[0]
        for i in range(1, n):
            score = sc_l[i]
            if score < best_score or (score == best_score and rid_l[i] < best_rid):
                best_score = score
                best_rid = rid_l[i]
                best = i
        return queue[best]
