"""Dysta: bi-level dynamic and static scheduler (paper Sec 4).

**Static level (Algorithm 1, software).**  On arrival of request
``<Model, Pattern, input, SLO>`` the static scheduler reads the (model,
pattern) LUT entry, estimates latency from the pattern-aware average, and
assigns an initial score ``Score = Lat + beta * T_slack`` that orders
requests before any runtime information exists.

**Dynamic level (Algorithm 2, hardware).**  Whenever a layer completes, the
hardware monitor reveals that layer's measured sparsity; the sparse latency
predictor (Algorithm 3) refines the request's remaining-time estimate, and
every queued request is re-scored:

    Score_i = T_remain_i + eta * (T_slack_i + T_penalty_i)
    T_slack_i = SLO_i - t - T_remain_i
    T_penalty_i = (T_wait_i / T_isol_i) / |Q|

The request with the *lowest* score runs next.  The remaining-time term
favours short jobs (ANTT), the slack term favours tight deadlines (SLO
violations), and the waiting-time penalty discourages excessive preemption —
the currently-running request has zero waiting time, hence the lowest
penalty.

``DystaScheduler(predictor=None)`` (registry name ``dysta_nosparse``) is the
Fig 13 ablation: the dynamic hardware monitor and sparsity support are
disabled, so remaining times fall back to the static LUT averages.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.lut import ModelInfoLUT
from repro.core.predictor import PredictorStrategy, SparseLatencyPredictor
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


class DystaScheduler(Scheduler):
    """Dysta bi-level scheduler (full version when sparsity-aware).

    Args:
        lut: Offline model-information LUT (populated by the static level).
        beta: Static-score slack weight (Algorithm 1, line 7).
        eta: Dynamic-score weight of slack + penalty (Algorithm 2, line 11).
        sparsity_aware: Enable the hardware monitor + sparse latency
            predictor.  Disabled reproduces the Dysta-w/o-sparse ablation.
        strategy: Sparsity-coefficient strategy (paper ships last-one).
        score_dtype: "fp32" or "fp16" — the hardware scheduler computes
            scores in FP16 (Sec 5.2.2); quantizing here verifies that the
            reduced precision does not change scheduling decisions.
    """

    name = "dysta"

    def __init__(
        self,
        lut: ModelInfoLUT,
        beta: float = 0.5,
        eta: float = 0.02,
        sparsity_aware: bool = True,
        strategy: PredictorStrategy = PredictorStrategy.LAST_ONE,
        alpha: float = 1.0,
        score_dtype: str = "fp32",
    ):
        super().__init__(lut)
        if score_dtype not in ("fp32", "fp16"):
            raise ValueError(f"score_dtype must be fp32|fp16, got {score_dtype!r}")
        self.beta = beta
        self.eta = eta
        self.sparsity_aware = sparsity_aware
        self.score_dtype = score_dtype
        self.predictor: Optional[SparseLatencyPredictor] = (
            SparseLatencyPredictor(lut, strategy, alpha=alpha) if sparsity_aware else None
        )

    def _quantize(self, value: float) -> float:
        """Round a score-path value to the configured hardware precision."""
        if self.score_dtype == "fp16":
            import numpy as np  # noqa: PLC0415

            return float(np.float16(value))
        return value

    # -- static level (Algorithm 1) ----------------------------------------

    def static_score(self, request: Request, now: float) -> float:
        """Initial score assigned before execution: Lat + beta * T_slack."""
        lat = self.estimated_isolated(request)
        slack = request.slo - lat
        return lat + self.beta * slack

    def on_arrival(self, request: Request, now: float) -> None:
        # The static level computes the initial score and forwards the model
        # info to the hardware level; the LUT is shared state here.
        self.static_score(request, now)

    # -- dynamic level (Algorithm 2) ----------------------------------------

    def remaining_estimate(self, request: Request) -> float:
        """b_T_Remain: sparsity-refined when monitoring is enabled."""
        if self.predictor is None or request.next_layer == 0:
            return self.estimated_remaining(request)
        return self.predictor.predict_remaining(
            request.key, request.next_layer, request.monitored_sparsities
        )

    def dynamic_score(self, request: Request, now: float, queue_len: int) -> float:
        remaining = self._quantize(self.remaining_estimate(request))
        isolated = max(self.estimated_isolated(request), 1e-12)
        # A request whose deadline already passed cannot be saved; clamping
        # its (very negative) slack keeps hopeless jobs from monopolizing the
        # accelerator and wrecking every other request's turnaround.
        slack = max(request.deadline - now - remaining, -isolated)
        wait = max(now - request.last_run_end, 0.0)
        penalty = (wait / isolated) / max(queue_len, 1)
        return self._quantize(remaining + self.eta * (slack + penalty))

    def select(self, queue: Sequence[Request], now: float) -> Request:
        n_queue = len(queue)
        return min(queue, key=lambda r: (self.dynamic_score(r, now, n_queue), r.rid))


@register_scheduler("dysta")
class _DystaFull(DystaScheduler):
    """Registry entry for the full sparsity-aware Dysta."""

    def __init__(self, lut: ModelInfoLUT, **kwargs):
        kwargs.setdefault("sparsity_aware", True)
        super().__init__(lut, **kwargs)


@register_scheduler("dysta_nosparse")
class _DystaNoSparse(DystaScheduler):
    """Fig 13 ablation: static scoring only, no sparsity monitor."""

    def __init__(self, lut: ModelInfoLUT, **kwargs):
        kwargs["sparsity_aware"] = False
        super().__init__(lut, **kwargs)


@register_scheduler("dysta_switchaware")
class DystaSwitchAware(DystaScheduler):
    """Dysta extended with an explicit weight-reload cost term.

    When the deployment charges a model-switch cost (engine ``switch_cost``),
    the dynamic score can account for it directly: every candidate that is
    not the currently-resident request carries the reload cost on top of its
    remaining time.  The waiting-time penalty already damps preemption
    statistically; this term makes the damping proportional to the actual
    hardware cost.
    """

    def __init__(self, lut: ModelInfoLUT, switch_cost: float = 0.0, **kwargs):
        super().__init__(lut, **kwargs)
        if switch_cost < 0:
            raise ValueError(f"switch cost must be >= 0, got {switch_cost}")
        self.switch_cost = switch_cost
        self._resident: Optional[int] = None

    def reset(self) -> None:
        self._resident = None

    def dynamic_score(self, request: Request, now: float, queue_len: int) -> float:
        score = super().dynamic_score(request, now, queue_len)
        if self._resident is not None and request.rid != self._resident:
            score += self.switch_cost
        return score

    def select(self, queue: Sequence[Request], now: float) -> Request:
        chosen = super().select(queue, now)
        self._resident = chosen.rid
        return chosen


@register_scheduler("dysta_static")
class DystaStaticOnly(Scheduler):
    """Pure Algorithm-1 scheduling: the arrival-time score is final.

    The strictest reading of the static level: ``Score = Lat + beta*T_slack``
    is computed once when the request arrives and never revised — no
    progress-based remaining-time updates, no slack decay, no waiting
    penalty.  `dysta_nosparse` (which re-evaluates the dynamic formula from
    LUT averages) sits between this and full Dysta; having both brackets the
    contribution of the dynamic level.
    """

    def __init__(self, lut: ModelInfoLUT, beta: float = 0.5):
        super().__init__(lut)
        self.beta = beta
        self.reset()

    def reset(self) -> None:
        self._scores: dict = {}

    def on_arrival(self, request: Request, now: float) -> None:
        lat = self.estimated_isolated(request)
        self._scores[request.rid] = lat + self.beta * (request.slo - lat)

    def on_complete(self, request: Request, now: float) -> None:
        self._scores.pop(request.rid, None)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (self._scores.get(r.rid, 0.0), r.rid))
