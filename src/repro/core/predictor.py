"""Sparse latency predictor (paper Sec 5.1, Algorithm 3, Table 4).

Layer sparsities of one input are highly linearly correlated (Fig 9), so a
cheap *linear* model suffices: monitor the executed layers' sparsity, form a
sparsity coefficient ``gamma`` relative to the offline averages, and scale
the LUT's average remaining latency:

    Lat_sparse = alpha * gamma * Lat_avg_remaining

``gamma`` is the "linear rate between monitored and average layer
sparsities"; since latency scales with *density* (1 - sparsity), gamma is
implemented as a density ratio — the sign-correct reading of Algorithm 3.

Three monitoring strategies are compared (Table 4):

* **average-all** — average density over every executed layer, normalized by
  the LUT average density over the same layers;
* **last-one** — the last executed layer's density over that layer's LUT
  average (what the hardware implements: one register, one multiply);
* **last-N** — the hardware-friendly variant the paper evaluated and
  rejected: an N-deep shift register averages the last N *raw* sparsities,
  normalized by the single network-average density stored in the LUT.
  Skipping the per-layer normalization biases gamma whenever the last-N
  window's average sparsity differs from the network mean, which is why
  last-N trails both alternatives in Table 4.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError
from repro.profiling.trace import TraceSet

_MIN_DENSITY = 1e-3


class PredictorStrategy(enum.Enum):
    """Sparsity-coefficient monitoring strategies of Table 4."""

    AVERAGE_ALL = "average_all"
    LAST_N = "last_n"
    LAST_ONE = "last_one"


@dataclass
class SparseLatencyPredictor:
    """Linear sparse-latency predictor over LUT averages (Algorithm 3).

    Attributes:
        lut: Offline model-information LUT.
        strategy: Sparsity-coefficient monitoring strategy.
        alpha: Hardware effectiveness of sparsity (paper sets 1 for
            accelerators exploiting both weight and activation sparsity).
        n: Window size for the last-N strategy (paper grid-searched N=3).
    """

    lut: ModelInfoLUT
    strategy: PredictorStrategy = PredictorStrategy.LAST_ONE
    alpha: float = 1.0
    n: int = 3

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise SchedulingError(f"alpha must be positive, got {self.alpha}")
        if self.n <= 0:
            raise SchedulingError(f"last-N window must be positive, got {self.n}")

    def sparsity_coefficient(self, key: str, monitored: Sequence[float]) -> float:
        """gamma: monitored density relative to the offline average density.

        Args:
            key: (model, pattern) LUT key.
            monitored: Sparsities of the executed layers, in execution order.

        Returns:
            1.0 when nothing has executed yet (fall back to the LUT average).
        """
        j = len(monitored)
        if j == 0:
            return 1.0
        avg = self.lut.avg_layer_sparsities(key)
        if j > len(avg):
            raise SchedulingError(
                f"{key}: monitored {j} layers but the model has {len(avg)}"
            )
        if self.strategy is PredictorStrategy.AVERAGE_ALL:
            mon_density = 1.0 - float(np.mean(monitored))
            avg_density = 1.0 - float(np.mean(avg[:j]))
        elif self.strategy is PredictorStrategy.LAST_ONE:
            mon_density = 1.0 - monitored[-1]
            avg_density = 1.0 - float(avg[j - 1])
        else:  # LAST_N: raw window average over the network-average density
            window = monitored[max(0, j - self.n):]
            mon_density = 1.0 - float(np.mean(window))
            avg_density = 1.0 - self.lut.network_avg_sparsity(key)
        return max(mon_density, _MIN_DENSITY) / max(avg_density, _MIN_DENSITY)

    def effective_gamma(self, key: str, monitored: Sequence[float]) -> float:
        """gamma after the hardware-effectiveness correction.

        The raw density ratio is mapped through the LUT's calibrated
        latency-vs-density slope (the paper's alpha: how effectively sparsity
        turns into latency reduction on the target hardware):
        ``gamma_eff = 1 + slope * (gamma_raw - 1)``.
        """
        raw = self.sparsity_coefficient(key, monitored)
        slope = self.lut.density_slope(key)
        return max(1.0 + slope * (raw - 1.0), _MIN_DENSITY)

    def predict_remaining(
        self, key: str, next_layer: int, monitored: Sequence[float]
    ) -> float:
        """Estimated remaining latency b_T_Remain from layer ``next_layer`` on."""
        gamma = self.effective_gamma(key, monitored)
        return self.alpha * gamma * self.lut.static_remaining(key, next_layer)

    def predict_total(self, key: str, monitored: Sequence[float]) -> float:
        """Estimated end-to-end latency given the executed layers' monitor data."""
        j = len(monitored)
        executed_avg = self.lut.static_remaining(key, 0) - self.lut.static_remaining(key, j)
        gamma = self.effective_gamma(key, monitored)
        return self.alpha * gamma * (executed_avg + self.lut.static_remaining(key, j))


def predictor_rmse(
    predictor: SparseLatencyPredictor,
    trace: TraceSet,
    *,
    normalize: bool = True,
) -> float:
    """Table 4 evaluation: RMSE of remaining-latency prediction.

    For every profiled sample and every layer boundary j (one monitor event
    per executed layer), predict the remaining latency and compare with the
    trace's measured remaining latency.  With ``normalize`` the errors are
    expressed relative to the model's average total latency, making values
    comparable across models as in Table 4.
    """
    key = trace.key
    if key not in predictor.lut:
        raise SchedulingError(f"trace {key!r} is not part of the predictor's LUT")
    lat = trace.latencies
    sp = trace.sparsities
    n_samples, n_layers = lat.shape
    if n_layers < 2:
        raise SchedulingError("trace too short to evaluate the predictor")
    scale = trace.avg_total_latency if normalize else 1.0
    avg_sp = predictor.lut.avg_layer_sparsities(key)

    # Vectorized replica of predict_remaining at every boundary j = 1..L-1.
    # gamma per (sample, boundary):
    if predictor.strategy is PredictorStrategy.AVERAGE_ALL:
        cum_sp = np.cumsum(sp, axis=1)[:, :-1]  # sum over executed layers
        counts = np.arange(1, n_layers)
        mon_density = 1.0 - cum_sp / counts
        avg_density = 1.0 - np.cumsum(avg_sp)[:-1] / counts
        avg_density = np.broadcast_to(avg_density, mon_density.shape)
    elif predictor.strategy is PredictorStrategy.LAST_ONE:
        mon_density = 1.0 - sp[:, :-1]
        avg_density = np.broadcast_to(1.0 - avg_sp[:-1], mon_density.shape)
    else:  # LAST_N over the network-average density
        cum = np.concatenate([np.zeros((n_samples, 1)), np.cumsum(sp, axis=1)], axis=1)
        j_idx = np.arange(1, n_layers)
        lo = np.maximum(0, j_idx - predictor.n)
        window = (cum[:, j_idx] - cum[:, lo]) / (j_idx - lo)
        mon_density = 1.0 - window
        net_density = 1.0 - predictor.lut.network_avg_sparsity(key)
        avg_density = np.full_like(mon_density, net_density)
    gamma = np.maximum(mon_density, _MIN_DENSITY) / np.maximum(avg_density, _MIN_DENSITY)
    slope = predictor.lut.density_slope(key)
    gamma = np.maximum(1.0 + slope * (gamma - 1.0), _MIN_DENSITY)

    rem_avg = np.array(
        [predictor.lut.static_remaining(key, j) for j in range(1, n_layers)]
    )
    predicted = predictor.alpha * gamma * rem_avg
    total = lat.sum(axis=1, keepdims=True)
    rem_actual = total - np.cumsum(lat, axis=1)[:, :-1]
    err = (predicted - rem_actual) / scale
    return math.sqrt(float(np.mean(err * err)))


def rmse_by_strategy(
    lut: ModelInfoLUT,
    traces: Dict[str, TraceSet],
    *,
    alpha: float = 1.0,
    n: int = 3,
) -> Dict[str, Dict[str, float]]:
    """RMSE of all three strategies on every trace (Table 4 rows x columns)."""
    table: Dict[str, Dict[str, float]] = {}
    for key, trace in sorted(traces.items()):
        row = {}
        for strategy in PredictorStrategy:
            predictor = SparseLatencyPredictor(lut, strategy, alpha=alpha, n=n)
            row[strategy.value] = predictor_rmse(predictor, trace)
        table[key] = row
    return table
