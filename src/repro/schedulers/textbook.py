"""Textbook scheduling baselines: Round-Robin, EDF and LAS.

These are not part of the paper's comparison (Table 5) but complete the
benchmark suite for scheduling research: classic policies researchers expect
to sanity-check against.  All three are size-oblivious or estimate-free,
which makes them useful contrast points for the LUT-driven policies.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("round_robin")
class RoundRobinScheduler(Scheduler):
    """Cycle through ready requests, one layer(-block) quantum each.

    Fair by construction and estimate-free; under load it behaves like
    processor sharing, inflating everyone's turnaround equally.
    """

    def reset(self) -> None:
        self._last_served: Dict[int, float] = {}

    def on_arrival(self, request: Request, now: float) -> None:
        # New arrivals go to the back of the ring.
        self._last_served[request.rid] = now

    def on_layer_complete(self, request: Request, now: float) -> None:
        self._last_served[request.rid] = now

    def on_complete(self, request: Request, now: float) -> None:
        self._last_served.pop(request.rid, None)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(
            queue,
            key=lambda r: (self._last_served.get(r.rid, r.arrival), r.rid),
        )


@register_scheduler("edf")
class EDFScheduler(Scheduler):
    """Earliest-deadline-first, no feasibility triage.

    The un-triaged cousin of our Planaria reduction: optimal for feasible
    workloads on one machine, prone to domino misses past saturation.
    """

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (r.deadline, r.rid))


@register_scheduler("las")
class LASScheduler(Scheduler):
    """Least-attained-service: run whoever has received the least time.

    Approximates SJF without any latency estimate, at the price of constant
    preemption — the contrast point for Dysta's preemption-damping penalty
    term (see examples/custom_scheduler.py).
    """

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (r.executed_time, r.arrival, r.rid))


@register_scheduler("srpt_oracle")
class SRPTOracleScheduler(Scheduler):
    """Shortest-remaining-processing-time with ground-truth remaining times.

    The ANTT-optimal reference (mean-flow-time optimality of SRPT); unlike
    the paper's Oracle it ignores deadlines entirely, so it bounds what any
    turnaround-only policy could achieve.
    """

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (r.true_remaining, r.rid))
