"""PREMA (Choi & Rhu, HPCA'20): predictive token-based preemptive scheduling.

PREMA accumulates *tokens* on waiting tasks proportional to their priority
and experienced slowdown, then among the tasks whose token count passes a
threshold, dispatches the one with the shortest estimated (remaining) time.
Following the paper's setup (Sec 6.1), the candidate criterion is
``Token_i >= Threshold`` (their modification of PREMA's line 9), and latency
estimates come from the offline profile — PREMA assumes a *static* workload,
which is precisely the limitation Dysta addresses.

In batch mode the token state lives in ready-queue aux columns (stashed and
restored across the remove/re-add cycle of the multi-accelerator engines),
so token accumulation is one array expression instead of a dict crawl; the
scalar path keeps the original dict-based bookkeeping.  Both accumulate at
the same decision instants with the same arithmetic, so token trajectories
— and therefore schedules — are identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request

_AUX_TOKENS = "prema_tokens"
_AUX_LAST_UPDATE = "prema_last_update"


@register_scheduler("prema")
class PREMAScheduler(Scheduler):
    """Token-based preemptive scheduling with SJF among urgent candidates.

    Args:
        threshold: Token level at which a task becomes a dispatch candidate.
        priority: Static priority multiplier per request (uniform by default,
            as the paper's workloads carry no per-task priority classes).
    """

    supports_batch = True
    batch_columns = ("est_isolated", "est_remaining", "arrival", "priority")
    # Token accumulation happens per selection, so skipping singleton
    # boundaries would change the token trajectory: not drain-safe.
    single_drain_safe = False

    def __init__(self, lut: ModelInfoLUT, threshold: float = 3.0, priority: float = 1.0):
        super().__init__(lut)
        self.threshold = threshold
        self.priority = priority

    def reset(self) -> None:
        self._tokens: Dict[int, float] = {}
        self._last_update: Dict[int, float] = {}

    def bind_queue(self, queue: Optional[ReadyQueue]) -> None:
        super().bind_queue(queue)
        if queue is not None:
            queue.register_aux(_AUX_TOKENS, 0.0)
            queue.register_aux(_AUX_LAST_UPDATE, 0.0)

    def on_arrival(self, request: Request, now: float) -> None:
        queue = self._bound
        if queue is not None:
            # Batch mode: the aux columns are the only token store (the
            # scalar dicts would go permanently stale — select_batch never
            # accumulates them).
            i = queue.index_of(request)
            if i >= 0:
                queue.aux_set(_AUX_TOKENS, i, 0.0)
                queue.aux_set(_AUX_LAST_UPDATE, i, now)
            return
        self._tokens[request.rid] = 0.0
        self._last_update[request.rid] = now

    def on_complete(self, request: Request, now: float) -> None:
        if self._bound is not None:
            return
        self._tokens.pop(request.rid, None)
        self._last_update.pop(request.rid, None)

    def _accumulate(self, queue: Sequence[Request], now: float) -> None:
        """Tokens grow with priority x normalized waiting time.

        The per-request ``priority`` field carries PREMA's task priority
        classes (high-priority tasks reach the threshold sooner); the
        scheduler-level ``priority`` scalar is a global multiplier.
        """
        for req in queue:
            elapsed = now - self._last_update.get(req.rid, now)
            if elapsed > 0:
                isolated = max(self.estimated_isolated(req), 1e-12)
                self._tokens[req.rid] = self._tokens.get(req.rid, 0.0) + (
                    self.priority * req.priority * elapsed / isolated
                )
                self._last_update[req.rid] = now

    def select(self, queue: Sequence[Request], now: float) -> Request:
        self._accumulate(queue, now)
        candidates = [r for r in queue if self._tokens.get(r.rid, 0.0) >= self.threshold]
        pool = candidates if candidates else list(queue)
        return min(pool, key=lambda r: (self.estimated_remaining(r), r.arrival, r.rid))

    # -- vectorized fast path ----------------------------------------------

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        req = queue[0]
        lu_l = queue.aux_list(_AUX_LAST_UPDATE)
        elapsed = now - lu_l[0]
        if elapsed > 0:
            tok_l = queue.aux_list(_AUX_TOKENS)
            isolated = queue.ls_est_isolated[0]
            if isolated < 1e-12:
                isolated = 1e-12
            queue.aux_set(
                _AUX_TOKENS, 0,
                tok_l[0] + (self.priority * req.priority * elapsed / isolated),
            )
            queue.aux_set(_AUX_LAST_UPDATE, 0, now)
        return req

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        n = queue._n
        thr = self.threshold
        if n >= self.numpy_min_queue:
            tok = queue.aux_np_writable(_AUX_TOKENS)
            lu = queue.aux_np_writable(_AUX_LAST_UPDATE)
            iso = np.maximum(queue.np_est_isolated[:n], 1e-12)
            elapsed = now - lu[:n]
            tok[:n] += self.priority * queue.np_priority[:n] * elapsed / iso
            lu[:n] = now
            rem = queue.np_est_remaining[:n]
            arr = queue.np_arrival[:n]
            rid = queue.np_rid[:n]
            idx = np.flatnonzero(tok[:n] >= thr)
            if 0 < idx.size < n:
                best = np_lexmin(rem[idx], arr[idx], rid[idx])
                return queue[int(idx[best])]
            return queue[np_lexmin(rem, arr, rid)]

        tok_l = queue.aux_list(_AUX_TOKENS)
        lu_l = queue.aux_list(_AUX_LAST_UPDATE)
        tok_np = queue.aux_np(_AUX_TOKENS)
        lu_np = queue.aux_np(_AUX_LAST_UPDATE)
        iso_l = queue.ls_est_isolated
        pr_l = queue.ls_priority
        rem_l = queue.ls_est_remaining
        arr_l = queue.ls_arrival
        rid_l = queue.ls_rid
        sp = self.priority
        best_c = -1  # best among threshold candidates
        bc_rem = bc_arr = bc_rid = 0.0
        best_a = 0  # best overall (fallback pool)
        ba_rem = ba_arr = ba_rid = None
        for i in range(n):
            elapsed = now - lu_l[i]
            if elapsed > 0:
                iso = iso_l[i]
                if iso < 1e-12:
                    iso = 1e-12
                tokens = tok_l[i] + (sp * pr_l[i] * elapsed / iso)
                tok_l[i] = tokens
                tok_np[i] = tokens
                lu_l[i] = now
                lu_np[i] = now
            else:
                tokens = tok_l[i]
            rem = rem_l[i]
            arr = arr_l[i]
            rid = rid_l[i]
            if ba_rem is None or rem < ba_rem or (
                rem == ba_rem and (arr < ba_arr or (arr == ba_arr and rid < ba_rid))
            ):
                best_a, ba_rem, ba_arr, ba_rid = i, rem, arr, rid
            if tokens >= thr and (
                best_c < 0 or rem < bc_rem or (
                    rem == bc_rem and (arr < bc_arr or (arr == bc_arr and rid < bc_rid))
                )
            ):
                best_c, bc_rem, bc_arr, bc_rid = i, rem, arr, rid
        return queue._requests[best_c if best_c >= 0 else best_a]
