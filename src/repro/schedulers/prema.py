"""PREMA (Choi & Rhu, HPCA'20): predictive token-based preemptive scheduling.

PREMA accumulates *tokens* on waiting tasks proportional to their priority
and experienced slowdown, then among the tasks whose token count passes a
threshold, dispatches the one with the shortest estimated (remaining) time.
Following the paper's setup (Sec 6.1), the candidate criterion is
``Token_i >= Threshold`` (their modification of PREMA's line 9), and latency
estimates come from the offline profile — PREMA assumes a *static* workload,
which is precisely the limitation Dysta addresses.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.core.lut import ModelInfoLUT
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("prema")
class PREMAScheduler(Scheduler):
    """Token-based preemptive scheduling with SJF among urgent candidates.

    Args:
        threshold: Token level at which a task becomes a dispatch candidate.
        priority: Static priority multiplier per request (uniform by default,
            as the paper's workloads carry no per-task priority classes).
    """

    def __init__(self, lut: ModelInfoLUT, threshold: float = 3.0, priority: float = 1.0):
        super().__init__(lut)
        self.threshold = threshold
        self.priority = priority

    def reset(self) -> None:
        self._tokens: Dict[int, float] = {}
        self._last_update: Dict[int, float] = {}

    def on_arrival(self, request: Request, now: float) -> None:
        self._tokens[request.rid] = 0.0
        self._last_update[request.rid] = now

    def on_complete(self, request: Request, now: float) -> None:
        self._tokens.pop(request.rid, None)
        self._last_update.pop(request.rid, None)

    def _accumulate(self, queue: Sequence[Request], now: float) -> None:
        """Tokens grow with priority x normalized waiting time.

        The per-request ``priority`` field carries PREMA's task priority
        classes (high-priority tasks reach the threshold sooner); the
        scheduler-level ``priority`` scalar is a global multiplier.
        """
        for req in queue:
            elapsed = now - self._last_update.get(req.rid, now)
            if elapsed > 0:
                isolated = max(self.estimated_isolated(req), 1e-12)
                self._tokens[req.rid] = self._tokens.get(req.rid, 0.0) + (
                    self.priority * req.priority * elapsed / isolated
                )
                self._last_update[req.rid] = now

    def select(self, queue: Sequence[Request], now: float) -> Request:
        self._accumulate(queue, now)
        candidates = [r for r in queue if self._tokens.get(r.rid, 0.0) >= self.threshold]
        pool = candidates if candidates else list(queue)
        return min(pool, key=lambda r: (self.estimated_remaining(r), r.arrival, r.rid))
