"""Shortest-Job First (paper baseline ii, and the running example of Fig 5).

Preemptive at layer boundaries: picks the request with the smallest
*estimated remaining* time, where the estimate comes from offline per-layer
average latencies (the "without sparsity info" setting of Fig 5(a)) — SJF is
sparsity-oblivious, so a high-sparsity fast sample and a low-sparsity slow
sample of the same model look identical to it.

The vectorized path reads the ready queue's incrementally maintained
``est_remaining`` column (refreshed on layer completion from the cached LUT
suffix array) instead of re-deriving the estimate per request per decision.
"""

from __future__ import annotations

from typing import Sequence

from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request


@register_scheduler("sjf")
class SJFScheduler(Scheduler):
    """Shortest estimated-remaining-time first (static estimates)."""

    supports_batch = True
    batch_columns = ("est_remaining", "arrival")
    single_drain_safe = True
    trivial_single = True

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (self.estimated_remaining(r), r.arrival, r.rid))

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        return queue[0]

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        n = queue._n
        if n >= self.numpy_min_queue:
            return queue[np_lexmin(
                queue.np_est_remaining[:n],
                queue.np_arrival[:n],
                queue.np_rid[:n],
            )]
        rem_l = queue.ls_est_remaining
        arr_l = queue.ls_arrival
        rid_l = queue.ls_rid
        best = 0
        b_rem = rem_l[0]
        b_arr = arr_l[0]
        b_rid = rid_l[0]
        for i in range(1, n):
            rem = rem_l[i]
            if rem > b_rem:
                continue
            if rem < b_rem:
                best, b_rem, b_arr, b_rid = i, rem, arr_l[i], rid_l[i]
                continue
            arr = arr_l[i]
            if arr < b_arr or (arr == b_arr and rid_l[i] < b_rid):
                best, b_arr, b_rid = i, arr, rid_l[i]
        return queue._requests[best]
