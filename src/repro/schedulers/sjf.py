"""Shortest-Job First (paper baseline ii, and the running example of Fig 5).

Preemptive at layer boundaries: picks the request with the smallest
*estimated remaining* time, where the estimate comes from offline per-layer
average latencies (the "without sparsity info" setting of Fig 5(a)) — SJF is
sparsity-oblivious, so a high-sparsity fast sample and a low-sparsity slow
sample of the same model look identical to it.

The vectorized path reads the ready queue's incrementally maintained
``est_remaining`` column (refreshed on layer completion from the cached LUT
suffix array) instead of re-deriving the estimate per request per decision.
The selection key ``(est_remaining, arrival, rid)`` is static — a row's key
never changes while it sits untouched in the queue — so the incremental
selection cache runs with zero decay and exact (stored-bit) bound
comparisons.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request


@register_scheduler("sjf")
class SJFScheduler(Scheduler):
    """Shortest estimated-remaining-time first (static estimates)."""

    supports_batch = True
    batch_columns = ("est_remaining", "arrival")
    single_drain_safe = True
    trivial_single = True
    supports_incremental = True

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (self.estimated_remaining(r), r.arrival, r.rid))

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        return queue[0]

    def inc_best(self, queue: "ReadyQueue", idxs: Sequence[int], now: float,
                 clear_at: float, journal: set) -> Tuple[int, float]:
        rem_l = queue.ls_est_remaining
        arr_l = queue.ls_arrival
        rid_l = queue.ls_rid
        best = -1
        b_rem = b_arr = b_rid = float("inf")
        for i in idxs:
            rem = rem_l[i]
            if rem > b_rem:
                if rem >= clear_at:
                    journal.discard(rid_l[i])
                continue
            arr = arr_l[i]
            rid = rid_l[i]
            if rem < b_rem or arr < b_arr or (arr == b_arr and rid < b_rid):
                best, b_rem, b_arr, b_rid = i, rem, arr, rid
        return best, b_rem

    def inc_full_scan(self, queue: "ReadyQueue", now: float, cache) -> Request:
        n = queue._n
        rem = queue.np_est_remaining[:n]
        chosen = queue[np_lexmin(rem, queue.np_arrival[:n], queue.np_rid[:n])]
        cache.rebuild(rem, now)
        return chosen

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        cache = self._cache
        n = queue._n
        if cache is not None and n >= self.inc_min_queue:
            return cache.lookup(now)
        if n >= self.numpy_min_queue:
            return queue[np_lexmin(
                queue.np_est_remaining[:n],
                queue.np_arrival[:n],
                queue.np_rid[:n],
            )]
        rem_l = queue.ls_est_remaining
        arr_l = queue.ls_arrival
        rid_l = queue.ls_rid
        best = 0
        b_rem = rem_l[0]
        b_arr = arr_l[0]
        b_rid = rid_l[0]
        for i in range(1, n):
            rem = rem_l[i]
            if rem > b_rem:
                continue
            if rem < b_rem:
                best, b_rem, b_arr, b_rid = i, rem, arr_l[i], rid_l[i]
                continue
            arr = arr_l[i]
            if arr < b_arr or (arr == b_arr and rid_l[i] < b_rid):
                best, b_arr, b_rid = i, arr, rid_l[i]
        return queue._requests[best]
