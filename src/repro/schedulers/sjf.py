"""Shortest-Job First (paper baseline ii, and the running example of Fig 5).

Preemptive at layer boundaries: picks the request with the smallest
*estimated remaining* time, where the estimate comes from offline per-layer
average latencies (the "without sparsity info" setting of Fig 5(a)) — SJF is
sparsity-oblivious, so a high-sparsity fast sample and a low-sparsity slow
sample of the same model look identical to it.
"""

from __future__ import annotations

from typing import Sequence

from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("sjf")
class SJFScheduler(Scheduler):
    """Shortest estimated-remaining-time first (static estimates)."""

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (self.estimated_remaining(r), r.arrival, r.rid))
