"""SDRM3 (Kim et al., ASPLOS'24): MapScore = Urgency + alpha x Fairness.

Following the paper's setup (Sec 6.1): MapScore is the weighted sum of
Urgency and Fairness with the accelerator-preference weight Pref fixed to 1
(single accelerator).  Urgency grows as a request's deadline approaches;
Fairness boosts requests that have received less than their fair processing
share.  With fairness in the driving seat the policy approximates processor
sharing, which keeps every request slow under load — the paper measures
SDRM3 at FCFS-level ANTT with *worse* violations (Table 5).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.lut import ModelInfoLUT
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("sdrm3")
class SDRM3Scheduler(Scheduler):
    """Urgency + fairness MapScore scheduling (select the max score).

    Args:
        alpha: Weight of the fairness term relative to urgency (SDRM3's
            tunable alpha; the paper tunes it per SDRM3's methodology).
    """

    def __init__(self, lut: ModelInfoLUT, alpha: float = 2.0):
        super().__init__(lut)
        self.alpha = alpha

    def _urgency(self, req: Request, now: float) -> float:
        """Remaining work over remaining time-to-deadline (clamped)."""
        remaining = self.estimated_remaining(req)
        slack_window = req.deadline - now
        if slack_window <= 0:
            return 10.0  # already violating: maximally urgent, but bounded
        return min(remaining / slack_window, 10.0)

    def _fairness(self, req: Request, now: float) -> float:
        """1 - received processing share since arrival (higher = more starved)."""
        age = now - req.arrival
        if age <= 0:
            return 0.0
        share = req.executed_time / age
        return 1.0 - min(share, 1.0)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return max(
            queue,
            key=lambda r: (
                self._urgency(r, now) + self.alpha * self._fairness(r, now),
                -r.rid,
            ),
        )
