"""SDRM3 (Kim et al., ASPLOS'24): MapScore = Urgency + alpha x Fairness.

Following the paper's setup (Sec 6.1): MapScore is the weighted sum of
Urgency and Fairness with the accelerator-preference weight Pref fixed to 1
(single accelerator).  Urgency grows as a request's deadline approaches;
Fairness boosts requests that have received less than their fair processing
share.  With fairness in the driving seat the policy approximates processor
sharing, which keeps every request slow under load — the paper measures
SDRM3 at FCFS-level ANTT with *worse* violations (Table 5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request


@register_scheduler("sdrm3")
class SDRM3Scheduler(Scheduler):
    """Urgency + fairness MapScore scheduling (select the max score).

    Args:
        alpha: Weight of the fairness term relative to urgency (SDRM3's
            tunable alpha; the paper tunes it per SDRM3's methodology).
    """

    supports_batch = True
    batch_columns = ("est_remaining", "deadline", "arrival", "executed_time")
    single_drain_safe = True
    trivial_single = True

    def __init__(self, lut: ModelInfoLUT, alpha: float = 2.0):
        super().__init__(lut)
        self.alpha = alpha

    def _urgency(self, req: Request, now: float) -> float:
        """Remaining work over remaining time-to-deadline (clamped)."""
        remaining = self.estimated_remaining(req)
        slack_window = req.deadline - now
        if slack_window <= 0:
            return 10.0  # already violating: maximally urgent, but bounded
        return min(remaining / slack_window, 10.0)

    def _fairness(self, req: Request, now: float) -> float:
        """1 - received processing share since arrival (higher = more starved)."""
        age = now - req.arrival
        if age <= 0:
            return 0.0
        share = req.executed_time / age
        return 1.0 - min(share, 1.0)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return max(
            queue,
            key=lambda r: (
                self._urgency(r, now) + self.alpha * self._fairness(r, now),
                -r.rid,
            ),
        )

    # -- vectorized fast path ----------------------------------------------

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        return queue[0]

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        n = queue._n
        alpha = self.alpha
        if n >= self.numpy_min_queue:
            window = queue.np_deadline[:n] - now
            safe_w = np.where(window > 0, window, 1.0)
            urgency = np.where(
                window <= 0, 10.0,
                np.minimum(queue.np_est_remaining[:n] / safe_w, 10.0),
            )
            age = now - queue.np_arrival[:n]
            safe_age = np.where(age > 0, age, 1.0)
            fairness = np.where(
                age <= 0, 0.0,
                1.0 - np.minimum(queue.np_executed_time[:n] / safe_age, 1.0),
            )
            score = urgency + alpha * fairness
            # max score; ties broken towards the smallest rid (scalar uses
            # key (score, -rid) under max).
            return queue[np_lexmin(np.negative(score), queue.np_rid[:n])]
        rem_l = queue.ls_est_remaining
        dl_l = queue.ls_deadline
        arr_l = queue.ls_arrival
        ex_l = queue.ls_executed_time
        rid_l = queue.ls_rid
        best = 0
        best_score = None
        best_rid = 0
        for i in range(n):
            window = dl_l[i] - now
            if window <= 0:
                urgency = 10.0
            else:
                urgency = rem_l[i] / window
                if urgency > 10.0:
                    urgency = 10.0
            age = now - arr_l[i]
            if age <= 0:
                fairness = 0.0
            else:
                share = ex_l[i] / age
                if share > 1.0:
                    share = 1.0
                fairness = 1.0 - share
            score = urgency + alpha * fairness
            rid = rid_l[i]
            if best_score is None or score > best_score or (
                score == best_score and rid < best_rid
            ):
                best, best_score, best_rid = i, score, rid
        return queue._requests[best]
