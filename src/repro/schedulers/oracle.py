"""Oracle scheduler: Dysta's scoring with perfect latency knowledge.

The Oracle reads each request's ground-truth remaining time (including every
not-yet-executed layer's true sparse latency) instead of a prediction.  It
upper-bounds what any monitored-sparsity predictor can achieve and is the
reference curve of Figs 14/15.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.lut import ModelInfoLUT
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("oracle")
class OracleScheduler(Scheduler):
    """Dysta dynamic scoring (Algorithm 2) with exact remaining times.

    Args:
        eta: Weight of the slack + penalty terms, as in Dysta.
    """

    def __init__(self, lut: ModelInfoLUT, eta: float = 0.02):
        super().__init__(lut)
        self.eta = eta

    def select(self, queue: Sequence[Request], now: float) -> Request:
        n_queue = len(queue)

        def score(req: Request) -> float:
            remaining = req.true_remaining
            isolated = max(req.isolated_latency, 1e-12)
            # Same hopeless-job clamp as Dysta: expired deadlines must not
            # monopolize the accelerator.
            slack = max(req.deadline - now - remaining, -isolated)
            penalty = ((now - req.last_run_end) / isolated) / n_queue
            return remaining + self.eta * (slack + penalty)

        return min(queue, key=lambda r: (score(r), r.rid))
