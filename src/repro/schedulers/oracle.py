"""Oracle scheduler: Dysta's scoring with perfect latency knowledge.

The Oracle reads each request's ground-truth remaining time (including every
not-yet-executed layer's true sparse latency) instead of a prediction.  It
upper-bounds what any monitored-sparsity predictor can achieve and is the
reference curve of Figs 14/15.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.lut import ModelInfoLUT
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request


@register_scheduler("oracle")
class OracleScheduler(Scheduler):
    """Dysta dynamic scoring (Algorithm 2) with exact remaining times.

    Args:
        eta: Weight of the slack + penalty terms, as in Dysta.
    """

    supports_batch = True
    batch_columns = ("true_remaining", "true_isolated", "deadline", "last_run_end")
    single_drain_safe = True
    trivial_single = True
    supports_incremental = True

    def __init__(self, lut: ModelInfoLUT, eta: float = 0.02):
        super().__init__(lut)
        self.eta = eta
        # Dysta-shaped score: slack decays at most at rate 1 while the
        # (unclamped, but structurally non-negative: last_run_end <= now)
        # waiting penalty only grows, so eta bounds an untouched row's
        # score decay per simulated second.
        self.inc_decay_rate = eta
        self.inc_margin = 1e-9

    def select(self, queue: Sequence[Request], now: float) -> Request:
        n_queue = len(queue)

        def score(req: Request) -> float:
            remaining = req.true_remaining
            isolated = max(req.isolated_latency, 1e-12)
            # Same hopeless-job clamp as Dysta: expired deadlines must not
            # monopolize the accelerator.
            slack = max(req.deadline - now - remaining, -isolated)
            penalty = ((now - req.last_run_end) / isolated) / n_queue
            return remaining + self.eta * (slack + penalty)

        return min(queue, key=lambda r: (score(r), r.rid))

    # -- vectorized fast path ----------------------------------------------

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        return queue[0]

    def inc_best(self, queue: "ReadyQueue", idxs, now: float,
                 clear_at: float, journal: set):
        eta = self.eta
        rem_l = queue.ls_true_remaining
        iso_l = queue.ls_true_isolated
        dl_l = queue.ls_deadline
        lre_l = queue.ls_last_run_end
        rid_l = queue.ls_rid
        n = queue._n
        best = -1
        b_score = b_rid = float("inf")
        for i in idxs:
            iso = iso_l[i]
            if iso < 1e-12:
                iso = 1e-12
            rem = rem_l[i]
            slack = dl_l[i] - now - rem
            neg_iso = -iso
            if slack < neg_iso:
                slack = neg_iso
            score = rem + eta * (slack + ((now - lre_l[i]) / iso) / n)
            rid = rid_l[i]
            if score < b_score or (score == b_score and rid < b_rid):
                best, b_score, b_rid = i, score, rid
            elif score >= clear_at and rem + eta * slack >= clear_at:
                journal.discard(rid)
        return best, b_score

    def inc_full_scan(self, queue: "ReadyQueue", now: float, cache) -> Request:
        n = queue._n
        eta = self.eta
        rem = queue.np_true_remaining[:n]
        iso = np.maximum(queue.np_true_isolated[:n], 1e-12)
        slack = np.maximum(queue.np_deadline[:n] - now - rem, -iso)
        penalty = ((now - queue.np_last_run_end[:n]) / iso) / n
        score = rem + eta * (slack + penalty)
        chosen = queue[np_lexmin(score, queue.np_rid[:n])]
        pen_max = float(penalty.max())
        cache.rebuild(score, now,
                      pen_scale=eta * pen_max if pen_max > 0.0 else 0.0)
        return chosen

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        cache = self._cache
        n = queue._n
        if cache is not None and n >= self.inc_min_queue:
            return cache.lookup(now)
        eta = self.eta
        if n >= self.numpy_min_queue:
            rem = queue.np_true_remaining[:n]
            iso = np.maximum(queue.np_true_isolated[:n], 1e-12)
            slack = np.maximum(queue.np_deadline[:n] - now - rem, -iso)
            penalty = ((now - queue.np_last_run_end[:n]) / iso) / n
            score = rem + eta * (slack + penalty)
            return queue[np_lexmin(score, queue.np_rid[:n])]
        rem_l = queue.ls_true_remaining
        iso_l = queue.ls_true_isolated
        dl_l = queue.ls_deadline
        lre_l = queue.ls_last_run_end
        rid_l = queue.ls_rid
        best = 0
        best_score = None
        best_rid = 0
        for i in range(n):
            iso = iso_l[i]
            if iso < 1e-12:
                iso = 1e-12
            rem = rem_l[i]
            slack = dl_l[i] - now - rem
            neg_iso = -iso
            if slack < neg_iso:
                slack = neg_iso
            score = rem + eta * (slack + ((now - lre_l[i]) / iso) / n)
            rid = rid_l[i]
            if best_score is None or score < best_score or (
                score == best_score and rid < best_rid
            ):
                best, best_score, best_rid = i, score, rid
        return queue._requests[best]
