"""Multi-DNN schedulers: the paper's baselines (Sec 6.1), the Oracle, and
registry access to Dysta itself."""

from repro.schedulers.base import Scheduler, available_schedulers, make_scheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.sjf import SJFScheduler
from repro.schedulers.prema import PREMAScheduler
from repro.schedulers.planaria import PlanariaScheduler
from repro.schedulers.sdrm3 import SDRM3Scheduler
from repro.schedulers.oracle import OracleScheduler

__all__ = [
    "Scheduler",
    "available_schedulers",
    "make_scheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "PREMAScheduler",
    "PlanariaScheduler",
    "SDRM3Scheduler",
    "OracleScheduler",
]
