"""First-Come First-Served: non-preemptive, arrival order (paper baseline i)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("fcfs")
class FCFSScheduler(Scheduler):
    """Run the earliest-arrived request to completion before the next one."""

    def reset(self) -> None:
        self._current: Optional[Request] = None

    def select(self, queue: Sequence[Request], now: float) -> Request:
        if self._current is not None and not self._current.is_done and self._current in queue:
            return self._current
        self._current = min(queue, key=lambda r: (r.arrival, r.rid))
        return self._current
