"""First-Come First-Served: non-preemptive, arrival order (paper baseline i)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.ready_queue import ReadyQueue, np_lexmin
from repro.sim.request import Request


@register_scheduler("fcfs")
class FCFSScheduler(Scheduler):
    """Run the earliest-arrived request to completion before the next one."""

    supports_batch = True
    batch_columns = ("arrival",)
    single_drain_safe = True
    supports_incremental = True  # static key (arrival, rid): zero decay

    def reset(self) -> None:
        self._current: Optional[Request] = None

    def inc_best(self, queue: "ReadyQueue", idxs, now: float,
                 clear_at: float, journal: set):
        arr_l = queue.ls_arrival
        rid_l = queue.ls_rid
        best = -1
        b_arr = b_rid = float("inf")
        for i in idxs:
            arr = arr_l[i]
            if arr > b_arr:
                if arr >= clear_at:
                    journal.discard(rid_l[i])
                continue
            rid = rid_l[i]
            if arr < b_arr or rid < b_rid:
                best, b_arr, b_rid = i, arr, rid
        return best, b_arr

    def inc_full_scan(self, queue: "ReadyQueue", now: float, cache) -> Request:
        n = queue._n
        arr = queue.np_arrival[:n]
        chosen = queue[np_lexmin(arr, queue.np_rid[:n])]
        cache.rebuild(arr, now)
        return chosen

    def select(self, queue: Sequence[Request], now: float) -> Request:
        if self._current is not None and not self._current.is_done and self._current in queue:
            return self._current
        self._current = min(queue, key=lambda r: (r.arrival, r.rid))
        return self._current

    def select_single(self, queue: "ReadyQueue", now: float) -> Request:
        # A singleton queue: the lone request is both the earliest arrival
        # and (if valid) the current one.
        self._current = queue[0]
        return self._current

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        cur = self._current
        if cur is not None and not cur.is_done and cur in queue:
            return cur
        cache = self._cache
        n = len(queue)
        if cache is not None and n >= self.inc_min_queue:
            self._current = cache.lookup(now)
            return self._current
        if n >= self.numpy_min_queue:
            best = np_lexmin(queue.np_arrival[:n], queue.np_rid[:n])
        else:
            arr_l = queue.ls_arrival
            rid_l = queue.ls_rid
            best = 0
            b_arr = arr_l[0]
            b_rid = rid_l[0]
            for i in range(1, n):
                arr = arr_l[i]
                if arr < b_arr or (arr == b_arr and rid_l[i] < b_rid):
                    best, b_arr, b_rid = i, arr, rid_l[i]
        self._current = queue[best]
        return self._current
