"""Planaria (Ghodrati et al., MICRO'20), temporal-sharing reduction.

Planaria's scheduler is SLO-driven: it estimates whether each task can still
meet its deadline and dispatches the feasible task with the least *slack*
(time to deadline minus remaining work), deprioritizing tasks that are
already lost causes.  On a spatially-fissioned accelerator it also sizes pod
allocations; following the paper's setup (Sec 6.1) the resource requirement
is fixed to 1 (pure time-sharing), which reduces the policy to
feasibility-triaged least-slack-first.

This is exactly why Planaria posts strong violation rates but poor ANTT
(Table 5): slack order ignores job length relative to its own isolated time,
so a long job close to its deadline blocks short newcomers whose deadlines
are comfortably far in *absolute* terms but tight relative to their tiny
isolated latency.
"""

from __future__ import annotations

from typing import Sequence

from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("planaria")
class PlanariaScheduler(Scheduler):
    """Feasibility-triaged least-slack-first under pure time-sharing."""

    def _feasible(self, req: Request, now: float) -> bool:
        """Can the task still meet its SLO if dispatched immediately?

        Uses the offline latency estimate, like the original (Planaria also
        assumes a predictable, profile-driven workload).
        """
        return now + self.estimated_remaining(req) <= req.deadline

    def select(self, queue: Sequence[Request], now: float) -> Request:
        feasible = [r for r in queue if self._feasible(r, now)]
        pool = feasible if feasible else list(queue)
        return min(
            pool,
            key=lambda r: (r.deadline - now - self.estimated_remaining(r), r.rid),
        )
