"""Scheduler interface and registry.

A scheduler is invoked by the engine at every layer boundary (paper
Sec 4.2.2: execution proceeds per layer / layer block) and picks the request
to run next from the ready queue.  Schedulers estimate latencies exclusively
through the offline :class:`~repro.core.lut.ModelInfoLUT` plus whatever
runtime information the engine has revealed (executed layers' monitored
sparsities); only the Oracle may touch ground truth.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, List, Sequence, Tuple

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError
from repro.sim.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.ready_queue import ReadyQueue


class Scheduler(abc.ABC):
    """Base class for all scheduling policies.

    Policies implement the scalar :meth:`select`.  Converted policies
    additionally opt into the vectorized fast path by setting
    ``supports_batch = True`` and implementing :meth:`select_batch` over the
    engines' :class:`~repro.sim.ready_queue.ReadyQueue`; unconverted
    policies transparently keep the scalar path.  Both paths must make
    bit-identical decisions (the golden schedule-equivalence tests enforce
    it), which the converted policies achieve by replicating the scalar
    arithmetic operation-for-operation over the queue's cached columns.
    """

    #: Registry / display name; subclasses override.
    name: str = "base"

    #: Converted policies set True and implement :meth:`select_batch`.
    supports_batch: bool = False

    #: Ready-queue columns the batch path reads (see
    #: :data:`repro.sim.ready_queue.KNOWN_COLUMNS`).
    batch_columns: Tuple[str, ...] = ()

    #: True when (a) ``select`` on a singleton queue is stateless or
    #: idempotent and (b) ``on_layer_complete`` only overwrites per-request
    #: state (never accumulates).  The engine may then run a lone request
    #: for several consecutive layer blocks without re-invoking selection.
    single_drain_safe: bool = False

    #: Queue depth at which the batch path switches from a tight scalar
    #: loop over the list mirrors to numpy over the array columns (numpy's
    #: per-ufunc dispatch overhead dominates below this).
    numpy_min_queue: int = 32

    #: True when ``select_single`` is exactly "return queue[0]" with no state
    #: update; the engine then skips the call entirely on singleton queues.
    trivial_single: bool = False

    #: Trace bus attached by the engine for the current run (``None`` when
    #: tracing is off).  Policies that make observable control decisions
    #: beyond plain selection (e.g. powercap deferrals) emit on it, always
    #: behind an ``is not None`` check.
    trace_bus = None

    #: Policies whose argmin can be maintained incrementally (see
    #: :mod:`repro.sim.select_cache`) set True and implement
    #: :meth:`inc_best` / :meth:`inc_full_scan` (+ :meth:`inc_guard` when
    #: selection depends on per-select mutable state).
    supports_incremental: bool = False

    #: Instance-level master switch for the incremental layer.  The
    #: randomized lockstep parity tests and A/B benches set it False to
    #: force the full-scan batch path.
    incremental: bool = True

    #: Upper bound on how fast an *untouched* row's score can decrease per
    #: unit of simulated time (0 for static selection keys; ``eta`` for the
    #: Dysta family, whose slack term decays at most at rate 1).
    inc_decay_rate: float = 0.0

    #: Float-rounding slack subtracted from the acceptance bound.  Static-
    #: key policies compare stored bits and keep 0; decaying scores are
    #: recomputed per lookup and need a hair of headroom.
    inc_margin: float = 0.0

    #: Selection-cache tuning (see :mod:`repro.sim.select_cache`).  Every
    #: cache lookup walks the whole ladder, so its size is the steady-state
    #: per-decision cost; 8 keeps lookups cheap while still amortizing a
    #: full re-scan over many selections.
    inc_ladder_k: int = 8
    inc_journal_cap: int = 48

    #: Queue depth below which ``select_batch`` bypasses the selection cache
    #: and scans directly: on a shallow queue the tight scalar loop is
    #: cheaper than cache bookkeeping (same crossover as the numpy path).
    #: Tests drop it to 0 to force the cache on tiny queues.
    inc_min_queue: int = 32

    def __init__(self, lut: ModelInfoLUT):
        self.lut = lut
        self._bound: "ReadyQueue" = None  # type: ignore[assignment]
        self._cache = None

    def bind_queue(self, queue: "ReadyQueue") -> None:
        """Attach the engine's ready queue for this run (batch mode only).

        Subclasses that keep per-request aux state register their columns
        here (and must call ``super().bind_queue(queue)``).  Policies that
        support incremental selection get a fresh
        :class:`~repro.sim.select_cache.SelectionCache` per bind.
        """
        self._bound = queue
        if queue is not None and self.supports_incremental and self.incremental:
            from repro.sim.select_cache import SelectionCache

            self._cache = SelectionCache(self, queue)
        else:
            self._cache = None

    # -- incremental selection hooks (supports_incremental policies) --------

    def inc_guard(self):
        """Per-select mutable state the cached bound depends on.

        The cache re-scans whenever this differs from its scan-time value
        (e.g. the resident request/kind for switch-cost-aware scores).
        ``None`` when selection has no such state.
        """
        return None

    def inc_best(self, queue: "ReadyQueue", idxs: Sequence[int], now: float,
                 clear_at: float, journal: set) -> Tuple[int, float]:
        """Exact-score the candidate rows ``idxs``; return (index, score) of
        the native-tie-broken best (or ``(-1, inf)``).  Rows whose penalty-
        free score anchor is >= ``clear_at`` may be dropped from
        ``journal`` (they cannot win again this scan epoch)."""
        raise SchedulingError(
            f"scheduler {self.name!r} does not implement inc_best"
        )

    def inc_full_scan(self, queue: "ReadyQueue", now: float, cache) -> Request:
        """Full numpy scan that also rebuilds ``cache`` (ladder + bound)."""
        raise SchedulingError(
            f"scheduler {self.name!r} does not implement inc_full_scan"
        )

    def select_single(self, queue: Sequence[Request], now: float) -> Request:
        """Fast path for a singleton queue (batch mode).

        The default defers to the full scalar path; converted policies
        override it to return ``queue[0]`` directly (updating any per-select
        state first), which must be decision- and state-equivalent.
        """
        return self.select(queue, now)

    def select_batch(self, queue: "ReadyQueue", now: float) -> Request:
        """Vectorized selection over the ready queue's columns."""
        raise SchedulingError(
            f"scheduler {self.name!r} does not implement select_batch"
        )

    def reset(self) -> None:
        """Clear any cross-run state; called by the engine before a run."""

    def on_arrival(self, request: Request, now: float) -> None:
        """New request admitted to the ready queue."""

    def on_layer_complete(self, request: Request, now: float) -> None:
        """One layer of ``request`` finished; its monitored sparsity is now
        visible via ``request.monitored_sparsities``."""

    def on_complete(self, request: Request, now: float) -> None:
        """``request`` finished all layers and left the queue."""

    @abc.abstractmethod
    def select(self, queue: Sequence[Request], now: float) -> Request:
        """Choose the next request to run one layer of.  ``queue`` is
        non-empty and every entry is unfinished."""

    # -- shared estimate helpers -------------------------------------------

    def estimated_isolated(self, request: Request) -> float:
        """Offline-average isolated latency of the request's (model, pattern)."""
        entry = request.lut_entry(self.lut)
        if entry is None:
            raise SchedulingError(f"no LUT entry for {request.key!r}")
        return entry.avg_total_latency

    def estimated_remaining(self, request: Request) -> float:
        """Offline-average remaining latency given executed-layer progress."""
        entry = request.lut_entry(self.lut)
        if entry is None:
            raise SchedulingError(f"no LUT entry for {request.key!r}")
        return entry.remaining_suffix_t[request.next_layer]


_REGISTRY: Dict[str, Callable[..., Scheduler]] = {}


def register_scheduler(name: str) -> Callable[[type], type]:
    """Class decorator adding a scheduler to the registry under ``name``."""

    def deco(cls: type) -> type:
        if name in _REGISTRY:
            raise SchedulingError(f"scheduler {name!r} registered twice")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def available_schedulers() -> List[str]:
    """Registered scheduler names (imports the built-in policies lazily)."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def make_scheduler(name: str, lut: ModelInfoLUT, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(lut, **kwargs)


def _ensure_builtins() -> None:
    """Import built-in scheduler modules so their decorators run."""
    from repro import schedulers as _pkg  # noqa: F401  (self import anchor)
    from repro.schedulers import (  # noqa: F401
        fcfs,
        oracle,
        planaria,
        prema,
        sdrm3,
        sjf,
        textbook,
    )
    from repro.core import dysta  # noqa: F401
    from repro.energy import schedulers as _energy  # noqa: F401
    from repro.hw import hwloop  # noqa: F401
