"""Scheduler interface and registry.

A scheduler is invoked by the engine at every layer boundary (paper
Sec 4.2.2: execution proceeds per layer / layer block) and picks the request
to run next from the ready queue.  Schedulers estimate latencies exclusively
through the offline :class:`~repro.core.lut.ModelInfoLUT` plus whatever
runtime information the engine has revealed (executed layers' monitored
sparsities); only the Oracle may touch ground truth.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Sequence

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError
from repro.sim.request import Request


class Scheduler(abc.ABC):
    """Base class for all scheduling policies."""

    #: Registry / display name; subclasses override.
    name: str = "base"

    def __init__(self, lut: ModelInfoLUT):
        self.lut = lut

    def reset(self) -> None:
        """Clear any cross-run state; called by the engine before a run."""

    def on_arrival(self, request: Request, now: float) -> None:
        """New request admitted to the ready queue."""

    def on_layer_complete(self, request: Request, now: float) -> None:
        """One layer of ``request`` finished; its monitored sparsity is now
        visible via ``request.monitored_sparsities``."""

    def on_complete(self, request: Request, now: float) -> None:
        """``request`` finished all layers and left the queue."""

    @abc.abstractmethod
    def select(self, queue: Sequence[Request], now: float) -> Request:
        """Choose the next request to run one layer of.  ``queue`` is
        non-empty and every entry is unfinished."""

    # -- shared estimate helpers -------------------------------------------

    def estimated_isolated(self, request: Request) -> float:
        """Offline-average isolated latency of the request's (model, pattern)."""
        return self.lut.avg_total_latency(request.key)

    def estimated_remaining(self, request: Request) -> float:
        """Offline-average remaining latency given executed-layer progress."""
        return self.lut.static_remaining(request.key, request.next_layer)


_REGISTRY: Dict[str, Callable[..., Scheduler]] = {}


def register_scheduler(name: str) -> Callable[[type], type]:
    """Class decorator adding a scheduler to the registry under ``name``."""

    def deco(cls: type) -> type:
        if name in _REGISTRY:
            raise SchedulingError(f"scheduler {name!r} registered twice")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def available_schedulers() -> List[str]:
    """Registered scheduler names (imports the built-in policies lazily)."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def make_scheduler(name: str, lut: ModelInfoLUT, **kwargs) -> Scheduler:
    """Instantiate a registered scheduler by name."""
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown scheduler {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(lut, **kwargs)


def _ensure_builtins() -> None:
    """Import built-in scheduler modules so their decorators run."""
    from repro import schedulers as _pkg  # noqa: F401  (self import anchor)
    from repro.schedulers import (  # noqa: F401
        fcfs,
        oracle,
        planaria,
        prema,
        sdrm3,
        sjf,
        textbook,
    )
    from repro.core import dysta  # noqa: F401
    from repro.hw import hwloop  # noqa: F401
