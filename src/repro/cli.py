"""Command-line interface: profile the benchmark, run scheduling
experiments, and print the hardware-cost reports without writing code.

Installed as the ``repro`` console script::

    repro profile --family attnn --out traces/        # Phase-1 CSVs
    repro schedule --family cnn --scheduler dysta      # one policy
    repro compare --family attnn --rate 30             # Table-5-style table
    repro cluster --pools eyeriss:2,sanger:2 --router jsq   # cluster tier
    repro scenario --scenarios diurnal flash_crowd     # parallel sweep
    repro warehouse info scenario_results              # inspect sweep store
    repro regress scenario_results --baseline base.json  # CI quality gate
    repro fuzz --scheduler dysta --budget 50           # adversarial search
    repro energy --family attnn                        # joule models + EDP
    repro trace --scheduler dysta --out timeline.json  # Perfetto timeline
    repro predictor-rmse                               # Table-4-style table
    repro hw-report                                    # Fig 16 + Table 6
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.bench.figures import render_table
from repro.bench.harness import BASE_ARRIVAL_RATE, PAPER_SCHEDULERS, run_comparison, run_single
from repro.cluster import (
    AdmissionController,
    Pool,
    available_autoscale_policies,
    available_routers,
    build_heterogeneous_world,
    build_router,
    make_autoscaler,
    simulate_cluster,
)
from repro.core.lut import ModelInfoLUT
from repro.core.predictor import rmse_by_strategy
from repro.errors import ReproError
from repro.faults import available_fault_presets, build_faults
from repro.hw.report import normalized_usage, overhead_table
from repro.profiling.profiler import benchmark_suite
from repro.profiling.store import TraceStore
from repro.scenarios import available_scenarios
from repro.schedulers.base import available_schedulers, make_scheduler
from repro.sim.analysis import (
    jains_fairness,
    per_class_breakdown,
    turnaround_percentile,
    waiting_time_stats,
)
from repro.sim.engine import simulate
from repro.sim.workload import WorkloadSpec, generate_workload, iter_workload


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", choices=("attnn", "cnn"), default="attnn",
                        help="benchmark model family")
    parser.add_argument("--rate", type=float, default=None,
                        help="arrival rate in requests/s (default: paper's)")
    parser.add_argument("--requests", type=int, default=500,
                        help="number of requests per run")
    parser.add_argument("--slo", type=float, default=10.0,
                        help="latency SLO multiplier")
    parser.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                        help="workload seeds to average over")
    parser.add_argument("--samples", type=int, default=300,
                        help="profiling samples per (model, pattern)")
    parser.add_argument("--traces", default=None,
                        help="trace-store directory to load instead of profiling")
    parser.add_argument("--block-size", type=int, default=1,
                        help="scheduling granularity in layers")
    parser.add_argument("--switch-cost", type=float, default=0.0,
                        help="weight-reload cost per model switch, seconds")


def _cmd_profile(args: argparse.Namespace) -> int:
    traces = benchmark_suite(args.family, n_samples=args.samples, seed=args.seed)
    store = TraceStore(Path(args.out))
    for key, trace in sorted(traces.items()):
        path = store.save(trace)
        print(f"wrote {path} ({trace.num_samples} samples x {trace.num_layers} layers,"
              f" avg latency {1e3 * trace.avg_total_latency:.2f} ms)")
    print(f"indexed {len(store)} trace sets under {store.root}")
    return 0


def _load_traces(args: argparse.Namespace):
    """Traces from a store directory if given, else profiled on the fly."""
    if getattr(args, "traces", None):
        return TraceStore(Path(args.traces)).load_suite()
    return benchmark_suite(args.family, n_samples=args.samples, seed=0)


def _cmd_schedule(args: argparse.Namespace) -> int:
    result = run_single(
        args.scheduler,
        args.family,
        arrival_rate=args.rate,
        slo_multiplier=args.slo,
        n_requests=args.requests,
        seeds=tuple(args.seeds),
        n_profile_samples=args.samples,
        traces=_load_traces(args) if args.traces else None,
        engine_kwargs={"block_size": args.block_size,
                       "switch_cost": args.switch_cost},
    )
    print(f"scheduler       : {result.scheduler}")
    print(f"family          : {result.family} @ {result.arrival_rate:g} req/s, "
          f"SLO {result.slo_multiplier:g}x")
    print(f"ANTT            : {result.antt_mean:.3f} (std {result.antt_std:.3f})")
    print(f"violation rate  : {result.violation_rate_pct:.2f}% "
          f"(std {100 * result.violation_rate_std:.2f}%)")
    print(f"throughput (STP): {result.stp_mean:.3f} inf/s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    results = run_comparison(
        args.family,
        schedulers=tuple(args.schedulers),
        arrival_rate=args.rate,
        slo_multiplier=args.slo,
        n_requests=args.requests,
        seeds=tuple(args.seeds),
        n_profile_samples=args.samples,
        traces=_load_traces(args) if args.traces else None,
        engine_kwargs={"block_size": args.block_size,
                       "switch_cost": args.switch_cost},
    )
    rate = args.rate if args.rate is not None else BASE_ARRIVAL_RATE[args.family]
    print(render_table(
        f"{args.family} @ {rate:g} req/s, SLO {args.slo:g}x",
        ["ANTT", "Violation %", "STP"],
        {
            name: [res.antt_mean, res.violation_rate_pct, res.stp_mean]
            for name, res in results.items()
        },
        float_fmt="{:.2f}",
    ))
    return 0


def _build_accountant(lut: ModelInfoLUT):
    """Energy accountant over ``lut`` (lazy import: energy is optional)."""
    from repro.energy import EnergyAccountant

    return EnergyAccountant.from_model_lut(lut)


def _build_obs(args: argparse.Namespace):
    """Observability bundle for ``--trace``/``--timeline``, or ``None``."""
    if not (getattr(args, "trace", None) or getattr(args, "timeline", None)):
        return None
    from repro.obs import JsonlSink, Observability, RingSink

    sinks = [RingSink()]
    if args.trace:
        sinks.append(JsonlSink(args.trace))
    return Observability(sinks=sinks)


def _export_obs(obs, args: argparse.Namespace, metadata: dict) -> None:
    """Flush sinks and write the Chrome-trace timeline, reporting paths."""
    if obs is None:
        return
    from repro.obs import export_chrome_trace

    obs.close()
    obs.bus.check_conservation()
    if getattr(args, "trace", None):
        print(f"wrote {args.trace} ({obs.bus.total_events} trace events)")
    if getattr(args, "timeline", None):
        path, n = export_chrome_trace(obs.bus, args.timeline,
                                      metadata=metadata)
        print(f"wrote {path} ({n} timeline records; load in "
              f"chrome://tracing or ui.perfetto.dev)")


def _add_trace_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="stream request-lifecycle trace events to this "
                             "JSONL file")
    parser.add_argument("--timeline", default=None, metavar="PATH",
                        help="write a Chrome-trace/Perfetto JSON timeline "
                             "with one lane per accelerator")


def _cmd_analyze(args: argparse.Namespace) -> int:
    """One detailed run: tail latency, fairness and per-class breakdown."""
    traces = _load_traces(args)
    lut = ModelInfoLUT(traces)
    accountant = _build_accountant(lut) if args.energy else None
    rate = args.rate if args.rate is not None else BASE_ARRIVAL_RATE[args.family]
    spec = WorkloadSpec(arrival_rate=rate, n_requests=args.requests,
                        slo_multiplier=args.slo, seed=args.seeds[0])
    requests = generate_workload(traces, spec)
    obs = _build_obs(args)
    result = simulate(requests, make_scheduler(args.scheduler, lut),
                      block_size=args.block_size, switch_cost=args.switch_cost,
                      energy=accountant, obs=obs)
    _export_obs(obs, args, {"command": "analyze", "scheduler": args.scheduler,
                            "family": args.family, "seed": args.seeds[0]})
    reqs = result.requests
    waits = waiting_time_stats(reqs)
    if args.json:
        print(json.dumps({
            "scheduler": args.scheduler,
            "family": args.family,
            "arrival_rate": rate,
            "slo_multiplier": args.slo,
            "seed": args.seeds[0],
            "n_requests": len(reqs),
            "metrics": dict(result.metrics),
            "jain_fairness": jains_fairness(reqs),
            "num_preemptions": result.num_preemptions,
            "queueing": {key: float(value) for key, value in waits.items()},
            "per_class": {
                key: {
                    "count": s.count,
                    "antt": s.antt,
                    "violation_rate": s.violation_rate,
                    "p99": s.p99_turnaround,
                }
                for key, s in per_class_breakdown(reqs).items()
            },
        }, indent=2, sort_keys=True))
        return 0
    print(f"scheduler {args.scheduler} on {args.family} @ {rate:g} req/s")
    print(f"  ANTT {result.antt:.3f}  violations {100 * result.violation_rate:.2f}%  "
          f"STP {result.stp:.3f}")
    print(f"  normalized turnaround p50 {turnaround_percentile(reqs, 50):.2f}  "
          f"p95 {turnaround_percentile(reqs, 95):.2f}  "
          f"p99 {turnaround_percentile(reqs, 99):.2f}")
    print(f"  Jain fairness {jains_fairness(reqs):.3f}  "
          f"preemptions {result.num_preemptions}")
    print(f"  queueing delay mean {1e3 * waits['mean_wait']:.2f} ms  "
          f"p95 {1e3 * waits['p95_wait']:.2f} ms  "
          f"max {1e3 * waits['max_wait']:.2f} ms")
    if accountant is not None:
        print(f"  energy {1e3 * result.energy_per_request:.2f} mJ/req  "
              f"EDP {1e3 * result.edp:.3f} mJ*s  "
              f"total {result.total_joules:.2f} J  "
              f"weight loads {sum(r.num_weight_loads for r in reqs)}")
    print()
    print(render_table(
        "per-(model, pattern) class",
        ["count", "ANTT", "viol %", "p99"],
        {
            key: [s.count, s.antt, 100 * s.violation_rate, s.p99_turnaround]
            for key, s in per_class_breakdown(reqs).items()
        },
        float_fmt="{:.2f}",
    ))
    return 0


#: Which model family a pool kind serves natively; requests of the other
#: family run at 1/mismatch-penalty speed (weights/dataflow mismatch).
_POOL_NATIVE_FAMILY = {"eyeriss": "cnn", "sanger": "attnn"}


def _parse_pools(spec: str) -> List[tuple]:
    """Parse ``name:count[:speed]`` pool specs, comma-separated."""
    pools = []
    for part in spec.split(","):
        fields = part.strip().split(":")
        if len(fields) not in (2, 3) or not fields[0]:
            raise ReproError(
                f"bad pool spec {part!r}: expected name:count[:speed]"
            )
        try:
            count = int(fields[1])
            speed = float(fields[2]) if len(fields) == 3 else 1.0
        except ValueError:
            raise ReproError(f"bad pool spec {part!r}: count/speed not numeric") from None
        pools.append((fields[0], count, speed))
    return pools


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Heterogeneous-pool cluster replay with routing and admission control."""
    traces, lut, affinity_by_native = build_heterogeneous_world(
        args.families, n_samples=args.samples,
        mismatch_penalty=args.mismatch_penalty,
    )
    accountant = _build_accountant(lut) if args.energy else None

    pools = []
    for name, count, speed in _parse_pools(args.pools):
        native = next(
            (fam for kind, fam in _POOL_NATIVE_FAMILY.items()
             if name.startswith(kind)),
            None,
        )
        pools.append(Pool(
            name, make_scheduler(args.scheduler, lut), count, speed=speed,
            affinity=affinity_by_native[native] if native is not None else {},
            switch_cost=args.switch_cost,
            block_size=args.block_size,
        ))

    router = build_router(args.router, lut)
    admission = None
    if args.max_queue_depth is not None or args.slo_guard:
        admission = AdmissionController(max_queue_depth=args.max_queue_depth,
                                        slo_guard=args.slo_guard, lut=lut)
    autoscaler = None
    if args.autoscale:
        autoscaler = make_autoscaler(
            args.autoscale, lut=lut,
            min_accelerators=args.min_accelerators,
            max_accelerators=args.max_accelerators,
            interval=args.autoscale_interval,
            provision_latency=args.provision_latency,
        )

    if args.scenario:
        from repro.scenarios import build_scenario, iter_scenario

        spec = build_scenario(args.scenario, base_rate=args.rate,
                              duration=args.duration, slo_multiplier=args.slo)
        stream = iter_scenario(traces, spec, seed=args.seed)
        if not args.streaming:
            stream = list(stream)
        traffic_desc = f"scenario:{args.scenario}"
    else:
        wspec = WorkloadSpec(
            arrival_rate=args.rate, n_requests=args.requests,
            slo_multiplier=args.slo, seed=args.seed, traffic=args.traffic,
        )
        stream = (iter_workload(traces, wspec) if args.streaming
                  else generate_workload(traces, wspec))
        traffic_desc = args.traffic
    faults = None
    if args.faults:
        faults = build_faults(args.faults, duration=args.duration,
                              seed=args.seed)
    obs = _build_obs(args)
    result = simulate_cluster(stream, pools, router, admission=admission,
                              autoscaler=autoscaler,
                              retain_requests=not args.streaming,
                              energy=accountant, obs=obs, faults=faults)
    _export_obs(obs, args, {"command": "cluster", "router": router.name,
                            "scheduler": args.scheduler, "seed": args.seed})

    if args.json:
        print(json.dumps({
            "pools": {p.name: p.num_accelerators for p in pools},
            "router": router.name,
            "scheduler": args.scheduler,
            "traffic": traffic_desc,
            "arrival_rate": args.rate,
            "slo_multiplier": args.slo,
            "seed": args.seed,
            "autoscale": args.autoscale,
            "faults": args.faults,
            "num_offered": result.num_offered,
            "num_completed": result.num_completed,
            "num_shed": result.num_shed,
            "shed_reasons": result.shed_reasons,
            "makespan": result.makespan,
            "metrics": dict(result.metrics),
            "scale_events": [
                {"time": e.time, "pool": e.pool, "delta": e.delta,
                 "capacity_after": e.capacity_after, "ready_at": e.ready_at}
                for e in result.scale_events
            ],
            "pool_stats": {
                name: {
                    "num_accelerators": s.num_accelerators,
                    "peak_accelerators": s.peak_accelerators,
                    "completed": s.completed,
                    "shed": s.shed,
                    "shed_during_scale_lag": s.shed_during_scale_lag,
                    "max_queue_length": s.max_queue_length,
                    "utilization": s.utilization,
                    "acc_seconds_provisioned": s.acc_seconds_provisioned,
                    "scale_ups": s.scale_ups,
                    "scale_downs": s.scale_downs,
                    "joules_busy": s.joules_busy,
                    "joules_idle": s.joules_idle,
                }
                for name, s in result.pool_stats.items()
            },
        }, indent=2, sort_keys=True))
        return 0

    pool_desc = ", ".join(f"{p.name} x{p.num_accelerators}" for p in pools)
    print(f"cluster         : {pool_desc}")
    print(f"router          : {router.name}   scheduler: {args.scheduler}   "
          f"traffic: {traffic_desc}")
    print(f"workload        : {result.num_offered} requests @ {args.rate:g} req/s, "
          f"SLO {args.slo:g}x"
          + ("  [streaming metrics]" if args.streaming else ""))
    print(f"ANTT            : {result.antt:.3f}")
    print(f"violation rate  : {100 * result.violation_rate:.2f}%")
    print(f"throughput (STP): {result.stp:.3f} inf/s")
    print(f"shed rate       : {100 * result.shed_rate:.2f}%"
          + (f"  {result.shed_reasons}" if result.shed_reasons else ""))
    print(f"p99 turnaround  : {result.p99:.2f}x isolated "
          f"(p50 {result.p50:.2f}  p95 {result.p95:.2f})")
    if args.faults:
        print(f"faults          : preset {args.faults}, "
              f"{result.metrics['num_faults']:g} injected, "
              f"{result.metrics['requests_requeued_by_fault']:g} requeued, "
              f"{result.metrics['requests_shed_by_blackout']:g} blackout sheds, "
              f"{result.metrics['acc_seconds_lost']:.1f} acc-s lost")
    if args.autoscale:
        print(f"autoscaling     : policy {args.autoscale}, "
              f"{len(result.scale_events)} scale events, "
              f"{result.shed_under_scale_lag} shed under scale lag")
        print(f"cost            : {result.acc_seconds_provisioned:.1f} acc-s "
              f"provisioned, {result.acc_seconds_used:.1f} used "
              f"({100 * result.provisioned_utilization:.1f}% of provisioned)")
    if accountant is not None:
        print(f"energy          : {1e3 * result.energy_per_request:.2f} mJ/req, "
              f"EDP {1e3 * result.edp:.3f} mJ*s")
        print(f"energy cost     : {result.joules_provisioned:.2f} J provisioned "
              f"({result.joules_used:.2f} J serving, "
              f"{result.metrics['joules_idle']:.2f} J idle draw)")
    print()
    columns = ["accels", "peak", "completed", "shed", "peak queue", "util %"]
    if accountant is not None:
        columns += ["busy J", "idle J"]
    print(render_table(
        "per-pool breakdown",
        columns,
        {
            name: [s.num_accelerators, s.peak_accelerators, s.completed,
                   s.shed, s.max_queue_length, 100 * s.utilization]
                  + ([s.joules_busy, s.joules_idle]
                     if accountant is not None else [])
            for name, s in result.pool_stats.items()
        },
        float_fmt="{:.1f}",
    ))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    """Parallel scenario sweep: scenario x scheduler x seed grid."""
    from repro.scenarios import (
        SweepConfig,
        aggregate,
        cell_key,
        run_sweep,
        scenario_descriptions,
    )

    if args.list:
        for name, desc in scenario_descriptions().items():
            print(f"{name:14s} {desc}")
        return 0

    config = SweepConfig(
        scenarios=tuple(args.scenarios),
        schedulers=tuple(args.schedulers),
        seeds=tuple(args.seeds),
        family=args.family,
        base_rate=args.rate,
        duration=args.duration,
        slo_multiplier=args.slo,
        n_profile_samples=args.samples,
        block_size=args.block_size,
        switch_cost=args.switch_cost,
        engine=args.engine,
        pool_size=args.pool_size,
        autoscale=args.autoscale,
        max_queue_depth=args.max_queue_depth,
        energy=args.energy,
        telemetry_interval=args.telemetry_interval,
        alerts=args.alerts,
        faults=args.faults,
    )

    from repro.warehouse import SweepTelemetry

    telemetry = SweepTelemetry()

    def progress(key: str, done: int, total: int) -> None:
        print(f"  {telemetry.progress_line(key, done, total)}")

    result = run_sweep(config, out_path=args.out, workers=args.workers,
                       force=args.force, progress=progress,
                       telemetry=telemetry)
    grid = (f"{len(config.scenarios)} scenarios x "
            f"{len(config.schedulers)} schedulers x {len(config.seeds)} seeds")
    print(f"sweep           : {grid} = {len(config.cells())} cells "
          f"({result.n_run} run, {result.n_skipped} skipped)")
    if result.n_run:
        summary = telemetry.summary()
        print(f"fleet           : {summary['throughput_cells_per_s']:.2f} "
              f"cells/s over {len(summary['workers']) or 1} worker(s), "
              f"cell wall p95 {summary['cell_wall_s_p95']:.2f} s, "
              f"peak worker RSS {summary['cell_peak_rss_mb_max']:.0f} MiB")
    print(f"workload        : {config.family} @ base {config.rate:g} req/s, "
          f"{config.duration:g} s per scenario, SLO {config.slo_multiplier:g}x")
    # Aggregate only this invocation's grid: a shared store may hold cells
    # from wider past sweeps that were not asked about here.
    requested = {cell_key(*cell) for cell in config.cells()}
    this_grid = {
        "cells": {key: cell for key, cell in result.cells.items()
                  if key in requested}
    }
    columns = ["ANTT", "viol %", "p99", "STP"]
    if args.energy:
        columns += ["mJ/req", "EDP mJ*s"]
    print()
    print(render_table(
        "mean metrics per (scenario, scheduler) across seeds",
        columns,
        {
            f"{scenario}/{scheduler}": [
                row["antt"], 100 * row["violation_rate"], row["p99"], row["stp"],
            ] + ([1e3 * row["energy_per_request"], 1e3 * row["edp"]]
                 if args.energy else [])
            for (scenario, scheduler), row in aggregate(this_grid).items()
        },
        float_fmt="{:.2f}",
    ))
    if result.out_path is not None:
        print(f"\nwrote {result.out_path} "
              f"({len(result.cells)} cells; re-runs skip completed cells)")
    return 0


def _cmd_warehouse(args: argparse.Namespace) -> int:
    """Sweep-warehouse maintenance: inspect, import, compact, verify, query."""
    from repro.warehouse import (
        Warehouse,
        aggregate,
        distinct,
        group_key,
        import_legacy_json,
    )

    if args.action == "import":
        wh = import_legacy_json(args.store, args.out,
                                segment_rows=args.segment_rows,
                                force=args.force)
        with wh:
            print(f"imported {args.store} -> {args.out} "
                  f"({len(wh)} cells, {wh.num_segments} segments)")
        return 0

    with Warehouse.open(args.store) as wh:
        for note in wh.recovered:
            print(f"recovered: {note}")

        if args.action == "info":
            print(f"store           : {wh.root}")
            print(f"cells           : {len(wh)} "
                  f"({wh.num_segments} sealed segments x "
                  f"{wh.segment_rows} rows, {wh.tail_rows} in the "
                  f"journal tail)")
            print(f"cost rows       : {len(wh.read_costs())}")
            print(f"workload        : {json.dumps(wh.workload, sort_keys=True)}")
            return 0

        if args.action == "verify":
            rows = wh.verify()
            bad = [row for row in rows if not row["ok"]]
            for row in rows:
                status = "ok" if row["ok"] else "CORRUPT"
                print(f"  {row['name']}  {row['rows']} rows  {status}")
            print(f"{len(rows) - len(bad)}/{len(rows)} segments ok, "
                  f"{len(wh)} cells total")
            # Opening the store already healed any corruption by dropping
            # the bad suffix; surface that as a failure too, so CI notices
            # a store that lost rows even though what remains checks out.
            return 1 if bad or wh.recovered else 0

        if args.action == "compact":
            stats = wh.compact(segment_rows=args.segment_rows)
            print(f"compacted {wh.root}: {stats['segments_before']} -> "
                  f"{stats['segments_after']} segments ({stats['rows']} "
                  f"rows, {stats['tail_rows']} in the tail)")
            return 0

        # action == "query"
        where = {}
        for clause in args.where or []:
            name, sep, value = clause.partition("=")
            if not sep or not name:
                raise ReproError(
                    f"bad --where clause {clause!r}: expected column=value")
            try:
                where[name] = json.loads(value)
            except ValueError:
                where[name] = value
        if args.distinct:
            for value in distinct(wh, args.distinct, where=where or None):
                print(value)
            return 0
        table = aggregate(wh, group_by=tuple(args.group_by),
                          metrics=tuple(args.metrics), where=where or None)
        if args.json:
            print(json.dumps(
                {group_key(group): stats for group, stats in table.items()},
                indent=2, sort_keys=True))
            return 0
        columns = [f"{metric} {stat}" for metric in args.metrics
                   for stat in ("mean", "std", "n")]
        print(render_table(
            f"aggregate over {wh.root}",
            columns,
            {
                group_key(group): [
                    stats[metric][stat]
                    for metric in args.metrics
                    for stat in ("mean", "std", "n")
                ]
                for group, stats in table.items()
            },
            float_fmt="{:.4f}",
        ))
        return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    """Gate sweep quality metrics against a committed baseline."""
    from repro.warehouse import (
        build_baseline,
        compare,
        format_rows,
        load_baseline,
        load_store_cells,
        regressions,
        write_baseline,
    )

    workload, cells = load_store_cells(args.store)
    current = build_baseline(workload, cells.values())

    if args.write_baseline:
        path = write_baseline(args.write_baseline, current)
        n_groups = len(current["groups"])
        print(f"wrote {path} ({n_groups} cell groups, {len(cells)} cells)")
        return 0

    baseline = load_baseline(args.baseline)
    rows = compare(current, baseline, rel_tol=args.rel_tol,
                   noise_mult=args.noise_mult,
                   check_workload=not args.allow_workload_mismatch)
    failed = regressions(rows)
    if args.json:
        print(json.dumps({"rows": rows, "regressions": len(failed)},
                         indent=2, sort_keys=True))
    else:
        print(f"regression check: {args.store} vs {args.baseline} "
              f"({len(rows)} gated group-metrics)")
        for line in format_rows(rows):
            print(f"  {line}")
    if failed:
        print(f"SWEEP REGRESSION: {len(failed)} group-metric(s) worse than "
              f"baseline beyond the noise gate", file=sys.stderr)
        return 1
    print("regression check passed: no gated metric regressed")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Adversarial scenario search (or replay of a saved reproducer)."""
    from repro.scenarios.fuzz import FuzzConfig, fuzz, fuzz_to_json, replay

    if args.replay:
        try:
            doc = json.loads(Path(args.replay).read_text())
        except OSError as exc:
            raise ReproError(f"cannot read reproducer {args.replay}: {exc}") from None
        except json.JSONDecodeError as exc:
            raise ReproError(f"{args.replay} is not valid JSON: {exc}") from None
        # Accept a bare reproducer or a full fuzz-result document (the
        # minimized reproducer wins when present).
        if not isinstance(doc, dict):
            raise ReproError(f"{args.replay}: expected a JSON object")
        rep = doc if "genome" in doc else (doc.get("minimized") or doc.get("worst"))
        if not isinstance(rep, dict):
            raise ReproError(
                f"{args.replay}: no reproducer found (expected a 'genome' "
                "or a 'minimized'/'worst' entry)")
        outcome = replay(rep)
        match = outcome["score"] == rep["score"]
        print(f"replayed {args.replay}: score {outcome['score']:.6f} "
              f"(recorded {rep['score']:.6f}) -> "
              f"{'MATCH' if match else 'MISMATCH'}")
        if args.json:
            print(json.dumps(outcome, indent=2, sort_keys=True))
        return 0 if match else 1

    config = FuzzConfig(
        scheduler=args.scheduler,
        budget=args.budget,
        seed=args.seed,
        objective=args.objective,
        family=args.family,
        base_rate=args.rate,
        duration=args.duration,
        slo_multiplier=args.slo,
        n_profile_samples=args.samples,
        pool_size=args.pool_size,
        block_size=args.block_size,
        switch_cost=args.switch_cost,
        router=args.router,
        max_queue_depth=args.max_queue_depth,
        max_fault_events=args.max_fault_events,
        minimize=not args.no_minimize,
    )
    doc = fuzz(config, workers=args.workers)
    search = doc["search"]
    worst = doc["worst"]
    print(f"fuzz            : {config.scheduler} on {config.family}, "
          f"objective {config.objective}, budget {config.budget} "
          f"({search['evaluations']} evals, {search['generations']} "
          f"generations)")
    print(f"worst case      : score {worst['score']:.4f} "
          f"(generation {search['best_generation']}, "
          f"index {search['best_index']}; "
          f"{len(worst['genome']['faults'])} fault events)")
    if "minimized" in doc:
        minimized = doc["minimized"]
        print(f"minimized       : score {minimized['score']:.4f} "
              f"({len(minimized['genome']['faults'])} fault events, "
              f"{search['minimize_evaluations']} extra evals)")
    baselines = ", ".join(f"{name} {entry['score']:.4f}"
                          for name, entry in sorted(doc["baselines"].items()))
    print(f"baselines       : {baselines}")
    if args.out:
        Path(args.out).write_text(fuzz_to_json(doc))
        print(f"wrote {args.out} (replay with: repro fuzz --replay {args.out})")
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    """Energy subsystem report: joule models per pair, schedulers on EDP."""
    from repro.energy import EnergyAccountant, EnergyLUT

    traces = {}
    for family in args.families:
        traces.update(benchmark_suite(family, n_samples=args.samples, seed=0))
    lut = ModelInfoLUT(traces)
    energy_lut = EnergyLUT.from_model_lut(lut)
    accountant = EnergyAccountant(energy_lut)

    model_rows = {}
    for key in energy_lut.keys:
        entry = energy_lut.entry(key)
        latency = lut.entry_or_none(key)
        dynamic = float(entry.table.dynamic(latency.avg_layer_sparsities).sum())
        model_rows[key] = {
            "mj_per_inf": 1e3 * entry.avg_total_energy,
            "avg_w": entry.avg_power_w,
            "dynamic_pct": 100.0 * dynamic / entry.avg_total_energy,
            "reload_mj": 1e3 * entry.table.switch_joules,
        }

    rate = args.rate
    if rate is None:
        rate = sum(BASE_ARRIVAL_RATE[family] for family in args.families)
    spec = WorkloadSpec(arrival_rate=rate, n_requests=args.requests,
                        slo_multiplier=args.slo, seed=args.seed)
    from repro.energy.schedulers import ENERGY_SCHEDULERS

    sched_rows = {}
    for name in args.schedulers:
        requests = generate_workload(traces, spec)
        kwargs = ({"energy_lut": energy_lut}
                  if name in ENERGY_SCHEDULERS else {})
        result = simulate(requests, make_scheduler(name, lut, **kwargs),
                          switch_cost=args.switch_cost, energy=accountant)
        sched_rows[name] = {
            "edp_mjs": 1e3 * result.edp,
            "mj_per_req": 1e3 * result.energy_per_request,
            "violation_pct": 100.0 * result.violation_rate,
            "antt": result.antt,
            "weight_loads": sum(r.num_weight_loads for r in result.requests),
        }

    if args.json:
        print(json.dumps({
            "families": list(args.families),
            "arrival_rate": rate,
            "slo_multiplier": args.slo,
            "seed": args.seed,
            "n_requests": args.requests,
            "idle_power_w": accountant.idle_power_w,
            "models": model_rows,
            "schedulers": sched_rows,
        }, indent=2, sort_keys=True))
        return 0

    print(render_table(
        "per-(model, pattern) energy (offline averages)",
        ["mJ/inf", "avg W", "dynamic %", "reload mJ"],
        {key: [row["mj_per_inf"], row["avg_w"], row["dynamic_pct"],
               row["reload_mj"]]
         for key, row in model_rows.items()},
        float_fmt="{:.2f}",
    ))
    print()
    print(render_table(
        f"schedulers on energy-delay product "
        f"({'+'.join(args.families)} @ {rate:g} req/s, SLO {args.slo:g}x)",
        ["EDP mJ*s", "mJ/req", "viol %", "ANTT", "weight loads"],
        {name: [row["edp_mjs"], row["mj_per_req"], row["violation_pct"],
                row["antt"], row["weight_loads"]]
         for name, row in sched_rows.items()},
        float_fmt="{:.2f}",
    ))
    return 0


def _ledger_from_args(args: argparse.Namespace):
    """A folded RequestLedger: from a recorded trace, or from a fresh run.

    Returns ``(ledger, telemetry, description)``; telemetry is ``None``
    when folding a recorded file (alerts need a live telemetry grid).
    """
    from repro.obs import Observability, RequestLedger

    if args.from_trace:
        ledger = RequestLedger.from_jsonl(args.from_trace)
        return ledger, None, f"trace {args.from_trace}"
    traces = _load_traces(args)
    lut = ModelInfoLUT(traces)
    rate = args.rate if args.rate is not None else BASE_ARRIVAL_RATE[args.family]
    spec = WorkloadSpec(arrival_rate=rate, n_requests=args.requests,
                        slo_multiplier=args.slo, seed=args.seeds[0])
    requests = generate_workload(traces, spec)
    # The ledger rides the bus as a sink: events fold as they are emitted,
    # nothing is retained beyond the per-request records.
    ledger = RequestLedger()
    obs = Observability(sinks=[ledger],
                        telemetry=getattr(args, "telemetry_interval", None))
    scheduler = make_scheduler(args.scheduler, lut)
    if args.accelerators > 1:
        from repro.sim.multi import simulate_multi

        simulate_multi(requests, scheduler,
                       num_accelerators=args.accelerators,
                       block_size=args.block_size,
                       switch_cost=args.switch_cost, obs=obs)
    else:
        simulate(requests, scheduler, block_size=args.block_size,
                 switch_cost=args.switch_cost, obs=obs)
    obs.bus.check_conservation()
    desc = (f"{args.scheduler} on {args.family} @ {rate:g} req/s, "
            f"{args.accelerators} accelerator(s), seed {args.seeds[0]}")
    return ledger, obs.telemetry, desc


def _cmd_explain(args: argparse.Namespace) -> int:
    """Decompose one request's end-to-end latency into component blame."""
    ledger, _, desc = _ledger_from_args(args)
    record = ledger.record(args.rid).to_dict()
    if args.json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    e2e = record["e2e_s"]
    print(f"rid {record['rid']} [{record['pool']}] "
          f"-> {record['outcome'] or 'open'}   ({desc})")
    print(f"  end-to-end : {e2e:.6f} s "
          f"(arrival {record['arrival']:.6f} -> {record['end']:.6f})")
    for component in ("queue", "service", "preempt", "switch"):
        value = record[component + "_s"]
        share = value / e2e if e2e else 0.0
        marker = "   <- dominant" if component == record["dominant"] else ""
        print(f"  {component:<11}: {value:.6f} s ({100 * share:5.1f}%){marker}")
    print(f"  spans      : {record['n_exec_spans']} execute, "
          f"{record['n_queue_spans']} queue; "
          f"residual {record['residual_s']:.2e} s")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Aggregate SLO-attribution report: blame, worst misses, alerts."""
    from repro.obs import build_report, evaluate_alerts, render_markdown

    ledger, telemetry, desc = _ledger_from_args(args)
    ledger.check_conservation()
    alerts = evaluate_alerts(telemetry) if telemetry is not None else []
    report = build_report(ledger, alerts, top_misses=args.top,
                          title=f"Run report: {desc}")
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        text = render_markdown(report).rstrip("\n")
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one run end to end and export a Perfetto-loadable timeline."""
    from repro.obs import (
        JsonlSink,
        Observability,
        RingSink,
        Telemetry,
        export_chrome_trace,
    )

    if args.summary:
        # Streaming summary of a recorded trace: per-kind counts plus the
        # span-conservation verdict, without loading the file into memory.
        from repro.obs import conservation_verdict, summarize_jsonl

        counts = summarize_jsonl(args.summary)
        print(f"{args.summary}: {sum(counts.values())} events")
        for kind in sorted(counts):
            print(f"  {kind:<15} {counts[kind]}")
        ok, arrivals, terminals = conservation_verdict(counts)
        verdict = "OK" if ok else "VIOLATED"
        print(f"conservation    : {arrivals} arrivals vs {terminals} "
              f"terminals -> {verdict}")
        return 0 if ok else 1

    traces = _load_traces(args)
    lut = ModelInfoLUT(traces)
    rate = args.rate if args.rate is not None else BASE_ARRIVAL_RATE[args.family]
    spec = WorkloadSpec(arrival_rate=rate, n_requests=args.requests,
                        slo_multiplier=args.slo, seed=args.seeds[0])
    requests = generate_workload(traces, spec)
    sinks = [RingSink()]
    if args.events:
        sinks.append(JsonlSink(args.events))
    obs = Observability(
        sinks=sinks,
        telemetry=(Telemetry(interval=args.telemetry_interval)
                   if args.telemetry_csv else None),
    )
    scheduler = make_scheduler(args.scheduler, lut)
    if args.accelerators > 1:
        from repro.sim.multi import simulate_multi

        result = simulate_multi(requests, scheduler,
                                num_accelerators=args.accelerators,
                                block_size=args.block_size,
                                switch_cost=args.switch_cost, obs=obs)
    else:
        result = simulate(requests, scheduler, block_size=args.block_size,
                          switch_cost=args.switch_cost, obs=obs)
    obs.close()
    obs.bus.check_conservation()

    counts = obs.bus.counts
    lifecycle = " -> ".join(
        f"{kind}:{counts[kind]}" for kind in
        ("arrive", "queue", "select", "execute", "complete", "violate")
        if kind in counts
    )
    print(f"scheduler {args.scheduler} on {args.family} @ {rate:g} req/s, "
          f"{args.accelerators} accelerator(s)")
    print(f"spans           : {lifecycle}")
    print(f"conservation    : {obs.bus.num_arrivals} arrivals == "
          f"{obs.bus.num_terminals} terminals")
    print(f"makespan        : {result.makespan:.3f} s   "
          f"ANTT {result.antt:.3f}   "
          f"violations {100 * result.violation_rate:.2f}%")
    path, n = export_chrome_trace(
        obs.bus, args.out,
        metadata={"scheduler": args.scheduler, "family": args.family,
                  "arrival_rate": rate, "seed": args.seeds[0]},
    )
    print(f"wrote {path} ({n} timeline records; load in chrome://tracing "
          f"or ui.perfetto.dev)")
    if args.events:
        print(f"wrote {args.events} ({obs.bus.total_events} trace events)")
    if args.telemetry_csv:
        obs.telemetry.write_csv(args.telemetry_csv)
        print(f"wrote {args.telemetry_csv} "
              f"({obs.telemetry.num_samples} samples x "
              f"{len(obs.telemetry.columns())} columns)")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    """Run the simulator perf benches and write the BENCH_perf.json baseline."""
    from repro.bench.perf import compare_reports, load_baseline, run_perf_suite

    baseline = load_baseline(args.out) if args.compare else None
    if args.compare and baseline is None:
        print(f"error: --compare needs a committed baseline at {args.out}",
              file=sys.stderr)
        return 1

    report = run_perf_suite(
        cluster_requests=args.cluster_requests,
        rounds=args.rounds,
        include_cluster=not args.skip_cluster,
        profile=args.profile,
        # --compare is a gate, not a measurement run: don't grow the
        # committed trajectory with CI smoke numbers.
        out_path=None if args.compare else args.out,
        progress=print,
    )
    dysta = report["engine_200req_rate30"]["dysta"]
    print()
    print(f"dysta engine speedup (vectorized vs scalar): {dysta['speedup']:.2f}x")
    if not args.skip_cluster:
        for router, row in report["cluster_stream"].items():
            print(f"cluster replay [{router}]: {row['requests']} requests "
                  f"in {row['wall_s']:.1f} s")
    if args.profile:
        for tier, summary in report["profile"].items():
            print(f"profile [{tier}]: {1e3 * summary['wall_s']:.1f} ms wall")
            for phase, row in summary["phases"].items():
                print(f"  {phase:<14} {1e3 * row['seconds']:9.2f} ms  "
                      f"{100 * row['fraction']:5.1f}%  "
                      f"({row['calls']:,} calls)")
    if args.compare:
        lines, regressions = compare_reports(report, baseline)
        print()
        print(f"deltas vs committed baseline ({args.out}):")
        for line in lines:
            print(f"  {line}")
        if regressions:
            print(f"PERF REGRESSION: {len(regressions)} benchmark(s) "
                  f">20% worse than baseline", file=sys.stderr)
            return 1
        print("perf check passed: no benchmark regressed >20%")
    elif args.out:
        print(f"wrote {args.out}")
    return 0


def _cmd_predictor_rmse(args: argparse.Namespace) -> int:
    traces = benchmark_suite("attnn", n_samples=args.samples, seed=0)
    lut = ModelInfoLUT(traces)
    table = rmse_by_strategy(lut, traces)
    print(render_table(
        "sparse latency predictor RMSE (normalized)",
        ["Average-All", "Last-N", "Last-One"],
        {
            key: [row["average_all"], row["last_n"], row["last_one"]]
            for key, row in table.items()
        },
        float_fmt="{:.5f}",
    ))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import list_experiments, run_experiment

    if args.list:
        for name, desc in list_experiments().items():
            print(f"{name:8s} {desc}")
        return 0
    if not args.name:
        print("error: provide an experiment id or --list", file=sys.stderr)
        return 1
    bundle = run_experiment(args.name, scale=args.scale)
    print(f"== {bundle.experiment}: {bundle.description} "
          f"({bundle.scale.n_requests} requests x {len(bundle.scale.seeds)} seeds)")
    print()
    print(bundle.rendered)
    return 0


def _cmd_hw_report(args: argparse.Namespace) -> int:
    for depth in args.depths:
        usage = normalized_usage(depth)
        print(render_table(
            f"normalized resource usage (FIFO depth {depth})",
            ["LUT", "FF", "DSP"],
            {n: [r["LUT"], r["FF"], r["DSP"]] for n, r in usage.items()},
        ))
        print()
    rows = {}
    for name, (luts, dsps, ram_kb) in overhead_table().items():
        if name == "Total Overhead":
            rows[name] = [f"{100 * luts:.2f}%", f"{100 * dsps:.2f}%",
                          f"{100 * ram_kb:.2f}%"]
        else:
            rows[name] = [f"{luts:.0f}", f"{dsps:.0f}", f"{ram_kb:.2f} KB"]
    print(render_table("Dysta scheduler overhead", ["LUTs", "DSPs", "RAM"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the `repro` argument parser (one sub-command per workflow)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparse-DySta reproduction: profiling, scheduling and "
                    "hardware-cost experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_profile = sub.add_parser("profile", help="run Phase-1 profiling, save CSVs")
    p_profile.add_argument("--family", choices=("attnn", "cnn"), default="attnn")
    p_profile.add_argument("--samples", type=int, default=300)
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--out", default="traces",
                           help="output directory for trace CSVs")
    p_profile.set_defaults(func=_cmd_profile)

    p_sched = sub.add_parser("schedule", help="run one scheduler on a workload")
    _add_workload_args(p_sched)
    p_sched.add_argument("--scheduler", default="dysta",
                         choices=available_schedulers())
    p_sched.set_defaults(func=_cmd_schedule)

    p_cmp = sub.add_parser("compare", help="compare schedulers on one workload")
    _add_workload_args(p_cmp)
    p_cmp.add_argument("--schedulers", nargs="+", default=list(PAPER_SCHEDULERS))
    p_cmp.set_defaults(func=_cmd_compare)

    p_analyze = sub.add_parser("analyze",
                               help="tail latency, fairness and class breakdown")
    _add_workload_args(p_analyze)
    p_analyze.add_argument("--scheduler", default="dysta",
                           choices=available_schedulers())
    p_analyze.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON instead of tables")
    p_analyze.add_argument("--energy", action="store_true",
                           help="account joules (energy/request, EDP) "
                                "alongside the latency metrics")
    _add_trace_args(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_cluster = sub.add_parser(
        "cluster",
        help="replay a workload on heterogeneous accelerator pools",
    )
    p_cluster.add_argument("--pools", default="eyeriss:2,sanger:2",
                           help="comma-separated name:count[:speed] pool specs; "
                                "eyeriss*/sanger* pools natively serve cnn/attnn")
    p_cluster.add_argument("--router", default="jsq",
                           choices=available_routers() + ["rr", "least-loaded"])
    p_cluster.add_argument("--scheduler", default="dysta",
                           choices=available_schedulers(),
                           help="per-pool scheduling policy")
    p_cluster.add_argument("--families", nargs="+", choices=("attnn", "cnn"),
                           default=["attnn", "cnn"],
                           help="model families mixed into the workload")
    p_cluster.add_argument("--rate", type=float, default=10.0,
                           help="cluster-wide arrival rate in requests/s")
    p_cluster.add_argument("--requests", type=int, default=400)
    p_cluster.add_argument("--slo", type=float, default=10.0,
                           help="latency SLO multiplier")
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument("--samples", type=int, default=300,
                           help="profiling samples per (model, pattern)")
    p_cluster.add_argument("--traffic", choices=("poisson", "bursty"),
                           default="poisson")
    p_cluster.add_argument("--scenario", choices=available_scenarios(),
                           default=None,
                           help="drive the cluster with a named traffic "
                                "scenario instead of --traffic/--requests")
    p_cluster.add_argument("--duration", type=float, default=30.0,
                           help="scenario timeline length in seconds "
                                "(with --scenario)")
    p_cluster.add_argument("--autoscale", choices=available_autoscale_policies(),
                           default=None,
                           help="grow/shrink pools against load with this "
                                "autoscaling policy")
    p_cluster.add_argument("--autoscale-interval", type=float, default=1.0,
                           help="seconds between autoscaling decisions")
    p_cluster.add_argument("--provision-latency", type=float, default=2.0,
                           help="warm-up delay before scaled-up capacity "
                                "becomes schedulable")
    p_cluster.add_argument("--min-accelerators", type=int, default=1,
                           help="per-pool lower bound for the autoscaler")
    p_cluster.add_argument("--max-accelerators", type=int, default=8,
                           help="per-pool upper bound for the autoscaler")
    p_cluster.add_argument("--mismatch-penalty", type=float, default=4.0,
                           help="slowdown of a pool serving the non-native family")
    p_cluster.add_argument("--max-queue-depth", type=int, default=None,
                           help="shed when a pool holds this many outstanding "
                                "requests per accelerator")
    p_cluster.add_argument("--faults", choices=available_fault_presets(),
                           default=None,
                           help="inject a named fault preset (outages, "
                                "stragglers, blackouts, spot revocations) "
                                "over --duration seconds, seeded by --seed")
    p_cluster.add_argument("--slo-guard", action="store_true",
                           help="shed requests whose SLO is already infeasible")
    p_cluster.add_argument("--streaming", action="store_true",
                           help="stream the workload under incremental metrics "
                                "without retaining request objects")
    p_cluster.add_argument("--block-size", type=int, default=1)
    p_cluster.add_argument("--switch-cost", type=float, default=0.0)
    p_cluster.add_argument("--energy", action="store_true",
                           help="account joules per pool and request "
                                "(idle power charged for provisioned-but-"
                                "unused capacity)")
    p_cluster.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON instead of tables")
    _add_trace_args(p_cluster)
    p_cluster.set_defaults(func=_cmd_cluster)

    p_scen = sub.add_parser(
        "scenario",
        help="run a scenario x scheduler x seed sweep in parallel",
    )
    p_scen.add_argument("--scenarios", nargs="+",
                        choices=available_scenarios(),
                        default=["diurnal", "flash_crowd"],
                        help="named traffic scenarios to sweep")
    p_scen.add_argument("--schedulers", nargs="+",
                        choices=available_schedulers(),
                        default=["dysta", "sjf"])
    p_scen.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2],
                        help="workload seeds per cell")
    p_scen.add_argument("--family", choices=("attnn", "cnn"), default="attnn")
    p_scen.add_argument("--rate", type=float, default=None,
                        help="base arrival rate in req/s (default: family's)")
    p_scen.add_argument("--duration", type=float, default=30.0,
                        help="scenario timeline length in seconds")
    p_scen.add_argument("--slo", type=float, default=10.0,
                        help="latency SLO multiplier")
    p_scen.add_argument("--samples", type=int, default=100,
                        help="profiling samples per (model, pattern)")
    p_scen.add_argument("--workers", type=int,
                        default=max(1, min(4, os.cpu_count() or 1)),
                        help="worker processes (results identical for any count)")
    p_scen.add_argument("--out", default="scenario_results",
                        help="results store: a warehouse directory (columnar "
                             "segments, O(1) appends, crash recovery), or a "
                             "legacy monolithic JSON store when the path "
                             "ends in .json; completed cells are skipped "
                             "on re-runs")
    p_scen.add_argument("--force", action="store_true",
                        help="discard an existing results store")
    p_scen.add_argument("--list", action="store_true",
                        help="list available scenarios")
    p_scen.add_argument("--block-size", type=int, default=1)
    p_scen.add_argument("--switch-cost", type=float, default=0.0)
    p_scen.add_argument("--engine", choices=("single", "cluster"),
                        default="single",
                        help="replay cells on the single-NPU or cluster engine")
    p_scen.add_argument("--pool-size", type=int, default=2,
                        help="accelerators per cluster-engine cell pool")
    p_scen.add_argument("--autoscale", choices=available_autoscale_policies(),
                        default=None,
                        help="autoscaling policy for cluster-engine cells")
    p_scen.add_argument("--max-queue-depth", type=int, default=None,
                        help="admission queue-depth limit for cluster cells")
    p_scen.add_argument("--energy", action="store_true",
                        help="record energy columns (mJ/request, EDP) in "
                             "every cell of the results store")
    p_scen.add_argument("--telemetry-interval", type=float, default=None,
                        help="record a per-cell telemetry time-series "
                             "sampled at this simulated-second cadence")
    p_scen.add_argument("--alerts", action="store_true",
                        help="evaluate the default alert rules on each "
                             "cell's telemetry grid and record the fired "
                             "alerts (requires --telemetry-interval)")
    p_scen.add_argument("--faults", choices=available_fault_presets(),
                        default=None,
                        help="inject a named fault preset into every cell "
                             "(requires --engine cluster; the timeline is "
                             "seeded by the cell's workload seed)")
    p_scen.set_defaults(func=_cmd_scenario)

    p_wh = sub.add_parser(
        "warehouse",
        help="inspect, import, compact, verify or query a sweep warehouse",
    )
    wh_sub = p_wh.add_subparsers(dest="action", required=True)

    w_info = wh_sub.add_parser("info", help="cells, segments, workload")
    w_info.add_argument("store", help="warehouse directory")

    w_import = wh_sub.add_parser(
        "import",
        help="import a legacy run_sweep JSON store into a warehouse",
    )
    w_import.add_argument("store", help="legacy JSON results file")
    w_import.add_argument("--out", required=True,
                          help="warehouse directory to create or resume")
    w_import.add_argument("--segment-rows", type=int, default=256,
                          help="rows per columnar segment (new stores only)")
    w_import.add_argument("--force", action="store_true",
                          help="discard an existing warehouse at --out")

    w_compact = wh_sub.add_parser(
        "compact",
        help="merge undersized segments into the standard chunking",
    )
    w_compact.add_argument("store", help="warehouse directory")
    w_compact.add_argument("--segment-rows", type=int, default=None,
                           help="also re-chunk to this many rows per segment")

    w_verify = wh_sub.add_parser(
        "verify",
        help="checksum every sealed segment; exit nonzero on corruption",
    )
    w_verify.add_argument("store", help="warehouse directory")

    w_query = wh_sub.add_parser(
        "query",
        help="streaming filter/aggregate over the store's columns",
    )
    w_query.add_argument("store", help="warehouse directory")
    w_query.add_argument("--group-by", nargs="+",
                         default=["scenario", "scheduler"],
                         help="grouping columns")
    w_query.add_argument("--metrics", nargs="+",
                         default=["stp", "violation_rate"],
                         help="numeric columns to aggregate")
    w_query.add_argument("--where", nargs="+", default=None,
                         metavar="COLUMN=VALUE",
                         help="equality filters (values parsed as JSON when "
                              "possible: seed=0 is the int, scenario=diurnal "
                              "the string)")
    w_query.add_argument("--distinct", default=None, metavar="COLUMN",
                         help="print the sorted distinct values of one "
                              "column instead of aggregating")
    w_query.add_argument("--json", action="store_true",
                         help="emit the aggregate as JSON instead of a table")
    p_wh.set_defaults(func=_cmd_warehouse)

    p_regress = sub.add_parser(
        "regress",
        help="compare a sweep store against a committed baseline on req/s, "
             "EDP, violation and shed rates; exit nonzero on regression",
    )
    p_regress.add_argument("store",
                           help="warehouse directory or legacy sweep JSON")
    p_regress.add_argument("--baseline",
                           default="benchmarks/sweep_baseline.json",
                           help="committed baseline file to gate against")
    p_regress.add_argument("--write-baseline", default=None, metavar="PATH",
                           help="write the store's group statistics as a new "
                                "baseline instead of comparing")
    p_regress.add_argument("--rel-tol", type=float, default=0.05,
                           help="relative tolerance of the baseline mean")
    p_regress.add_argument("--noise-mult", type=float, default=3.0,
                           help="standard errors of seed noise a delta must "
                                "exceed before it counts")
    p_regress.add_argument("--allow-workload-mismatch", action="store_true",
                           help="compare even when the store and baseline "
                                "record different workload parameters")
    p_regress.add_argument("--json", action="store_true",
                           help="emit the delta rows as JSON")
    p_regress.set_defaults(func=_cmd_regress)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="adversarial scenario search: find the traffic shape and fault "
             "timeline that maximize SLO violations (or EDP)",
    )
    p_fuzz.add_argument("--scheduler", default="dysta",
                        choices=available_schedulers())
    p_fuzz.add_argument("--budget", type=int, default=50,
                        help="search evaluations (each one full simulation)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="search seed; same seed + budget => "
                             "byte-identical results for any --workers")
    p_fuzz.add_argument("--objective", choices=("violation_rate", "edp"),
                        default="violation_rate",
                        help="metric the search maximizes")
    p_fuzz.add_argument("--family", choices=("attnn", "cnn"), default="attnn")
    p_fuzz.add_argument("--rate", type=float, default=None,
                        help="base arrival rate in req/s (default: family's)")
    p_fuzz.add_argument("--duration", type=float, default=10.0,
                        help="candidate scenario length in seconds")
    p_fuzz.add_argument("--slo", type=float, default=10.0,
                        help="baseline latency SLO multiplier")
    p_fuzz.add_argument("--samples", type=int, default=60,
                        help="profiling samples per (model, pattern)")
    p_fuzz.add_argument("--pool-size", type=int, default=2,
                        help="accelerators in the evaluated cluster pool")
    p_fuzz.add_argument("--router", default="round-robin",
                        choices=available_routers(),
                        help="cluster router for candidate evaluations")
    p_fuzz.add_argument("--max-queue-depth", type=int, default=None,
                        help="admission queue-depth limit during evaluations")
    p_fuzz.add_argument("--max-fault-events", type=int, default=4,
                        help="fault-timeline length cap per candidate")
    p_fuzz.add_argument("--block-size", type=int, default=1)
    p_fuzz.add_argument("--switch-cost", type=float, default=0.0)
    p_fuzz.add_argument("--workers", type=int,
                        default=max(1, min(4, os.cpu_count() or 1)),
                        help="worker processes (results identical for any count)")
    p_fuzz.add_argument("--out", default="fuzz_result.json",
                        help="result JSON path (empty string to skip writing)")
    p_fuzz.add_argument("--no-minimize", action="store_true",
                        help="skip the greedy reproducer minimization pass")
    p_fuzz.add_argument("--replay", default=None, metavar="PATH",
                        help="re-evaluate a saved reproducer (or fuzz result) "
                             "instead of searching; exits nonzero unless the "
                             "replayed score matches the recorded one")
    p_fuzz.add_argument("--json", action="store_true",
                        help="with --replay: also print the replayed metrics "
                             "as JSON")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_energy = sub.add_parser(
        "energy",
        help="energy models per (model, pattern) and schedulers on EDP",
    )
    p_energy.add_argument("--families", nargs="+", choices=("attnn", "cnn"),
                          default=["attnn"],
                          help="model families profiled into the workload")
    p_energy.add_argument("--schedulers", nargs="+",
                          choices=available_schedulers(),
                          default=["energy_edp", "sjf", "fcfs"],
                          help="policies compared on energy-delay product")
    p_energy.add_argument("--rate", type=float, default=None,
                          help="arrival rate in req/s (default: sum of the "
                               "families' paper rates)")
    p_energy.add_argument("--requests", type=int, default=400)
    p_energy.add_argument("--slo", type=float, default=10.0,
                          help="latency SLO multiplier")
    p_energy.add_argument("--seed", type=int, default=0)
    p_energy.add_argument("--samples", type=int, default=300,
                          help="profiling samples per (model, pattern)")
    p_energy.add_argument("--switch-cost", type=float, default=0.0,
                          help="weight-reload cost per model switch, seconds")
    p_energy.add_argument("--json", action="store_true",
                          help="emit machine-readable JSON instead of tables")
    p_energy.set_defaults(func=_cmd_energy)

    p_trace = sub.add_parser(
        "trace",
        help="trace one run and export a Chrome-trace/Perfetto timeline",
    )
    _add_workload_args(p_trace)
    p_trace.add_argument("--scheduler", default="dysta",
                         choices=available_schedulers())
    p_trace.add_argument("--accelerators", type=int, default=1,
                         help="run on the multi-NPU engine with this many "
                              "accelerators (one timeline lane each)")
    p_trace.add_argument("--out", default="timeline.json",
                         help="Chrome-trace JSON output path")
    p_trace.add_argument("--events", default=None, metavar="PATH",
                         help="also stream raw trace events to this JSONL file")
    p_trace.add_argument("--telemetry-csv", default=None, metavar="PATH",
                         help="also write a telemetry time-series CSV")
    p_trace.add_argument("--telemetry-interval", type=float, default=0.1,
                         help="telemetry sampling cadence in simulated seconds")
    p_trace.add_argument("--summary", default=None, metavar="PATH",
                         help="summarize a recorded trace JSONL instead of "
                              "running: per-kind event counts plus the "
                              "span-conservation verdict (streaming; the "
                              "file is never fully loaded)")
    p_trace.set_defaults(func=_cmd_trace)

    p_explain = sub.add_parser(
        "explain",
        help="decompose one request's latency into queue/service/"
             "preempt/switch blame",
    )
    _add_workload_args(p_explain)
    p_explain.add_argument("rid", type=int,
                           help="request id to explain")
    p_explain.add_argument("--scheduler", default="dysta",
                           choices=available_schedulers())
    p_explain.add_argument("--accelerators", type=int, default=1,
                           help="run on the multi-NPU engine with this many "
                                "accelerators")
    p_explain.add_argument("--from-trace", default=None, metavar="PATH",
                           help="fold a recorded trace JSONL instead of "
                                "running a simulation")
    p_explain.add_argument("--json", action="store_true",
                           help="emit the record as JSON")
    p_explain.set_defaults(func=_cmd_explain)

    p_report = sub.add_parser(
        "report",
        help="aggregate SLO-attribution report: per-pool blame, worst "
             "misses, fired alerts",
    )
    _add_workload_args(p_report)
    p_report.add_argument("--scheduler", default="dysta",
                          choices=available_schedulers())
    p_report.add_argument("--accelerators", type=int, default=1,
                          help="run on the multi-NPU engine with this many "
                               "accelerators")
    p_report.add_argument("--from-trace", default=None, metavar="PATH",
                          help="fold a recorded trace JSONL instead of "
                               "running a simulation (no telemetry, so "
                               "no alert evaluation)")
    p_report.add_argument("--telemetry-interval", type=float, default=0.1,
                          help="telemetry cadence the alert rules are "
                               "evaluated on, simulated seconds")
    p_report.add_argument("--top", type=int, default=10,
                          help="worst SLO misses to rank in the report")
    p_report.add_argument("--json", action="store_true",
                          help="emit the report as JSON instead of markdown")
    p_report.add_argument("--out", default=None, metavar="PATH",
                          help="write the report here instead of stdout")
    p_report.set_defaults(func=_cmd_report)

    p_perf = sub.add_parser(
        "perf",
        help="time the simulator hot paths and emit BENCH_perf.json",
    )
    p_perf.add_argument("--out", default="BENCH_perf.json",
                        help="output JSON path (empty string to skip writing)")
    p_perf.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per engine measurement (min taken)")
    p_perf.add_argument("--cluster-requests", type=int, default=100_000,
                        help="streaming cluster replay length")
    p_perf.add_argument("--skip-cluster", action="store_true",
                        help="skip the streaming cluster replay")
    p_perf.add_argument("--profile", action="store_true",
                        help="also run self-profiled passes and record the "
                             "per-phase wall-clock breakdown")
    p_perf.add_argument("--compare", action="store_true",
                        help="compare against the committed baseline at "
                             "--out instead of writing; exit nonzero when a "
                             "benchmark regressed >20%%")
    p_perf.set_defaults(func=_cmd_perf)

    p_rmse = sub.add_parser("predictor-rmse",
                            help="sparse latency predictor RMSE table")
    p_rmse.add_argument("--samples", type=int, default=300)
    p_rmse.set_defaults(func=_cmd_predictor_rmse)

    p_hw = sub.add_parser("hw-report", help="hardware scheduler cost reports")
    p_hw.add_argument("--depths", type=int, nargs="+", default=[512, 64])
    p_hw.set_defaults(func=_cmd_hw_report)

    p_exp = sub.add_parser("experiment",
                           help="run one paper experiment by id (table5, fig14...)")
    p_exp.add_argument("name", nargs="?", default=None)
    p_exp.add_argument("--scale", choices=("quick", "default", "full"),
                       default="default")
    p_exp.add_argument("--list", action="store_true",
                       help="list available experiment ids")
    p_exp.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
