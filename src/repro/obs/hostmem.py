"""Host process memory measurement: resettable peak-RSS high-water mark.

Shared by the perf runner (``repro perf``, per-phase peak memory) and the
sweep runner (per-cell cost columns in the warehouse sidecar).  The
technique: ``VmHWM`` in ``/proc/self/status`` is a *process-lifetime*
high-water mark, so back-to-back measurements after the first big
allocation all report zero delta — the mark never comes back down.
Writing ``"5"`` to ``/proc/self/clear_refs`` resets it, making
``reset_peak_rss(); work(); peak_rss_mb()`` an honest per-measurement
peak on Linux.  Elsewhere the reset is a no-op and ``peak_rss_mb`` falls
back to ``ru_maxrss`` (lifetime peak).
"""

from __future__ import annotations

import resource
import sys


def reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS high-water mark (Linux only).

    Returns True when the reset took effect; False on non-Linux hosts or
    restricted kernels, where subsequent :func:`peak_rss_mb` reads report
    the process-lifetime peak instead.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5\n")
        return True
    except OSError:  # pragma: no cover - non-Linux / restricted kernels
        return False


def peak_rss_mb() -> float:
    """Peak resident set size of this process, in MiB.

    Reads ``VmHWM`` from ``/proc/self/status`` (the mark
    :func:`reset_peak_rss` resets); falls back to ``ru_maxrss`` — KiB on
    Linux, bytes on macOS — where /proc is unavailable.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1]) / 1024  # KiB -> MiB
    except OSError:  # pragma: no cover - non-Linux
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return peak / (1024 * 1024)
    return peak / 1024
