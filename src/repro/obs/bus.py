"""Request-lifecycle trace bus: structured spans with bounded-memory sinks.

The bus is the observability layer's event spine.  Engines emit structured
:class:`TraceEvent` records at lifecycle boundaries — ``arrive`` →
``admit``/``shed`` → ``route`` → ``queue`` → ``select`` →
``switch``/``preempt`` → ``execute`` → ``complete``/``violate`` — plus
control-plane instants (autoscaler ``scale`` events, energy
``powercap_defer`` decisions, telemetry ``alert`` firings).  Everything is
keyed by simulated time; ``dur`` distinguishes spans (> 0) from instants.

The ``switch``/``preempt`` spans exist for latency attribution: a
``switch`` span covers the weight-reload cost charged at the head of the
execute span it precedes, and a ``preempt`` span covers the stall between
two consecutive execute spans of one request (emitted retroactively when
the request is re-dispatched, timed at the previous span's end).  Both are
observation-only — schedules are bit-identical with or without a bus.

Cost model: engines guard every emission behind ``if tracer is not None``,
so a run without a bus pays nothing beyond the pointer check (the golden
parity and overhead-guard tests pin this down).  With a bus attached,
memory stays bounded regardless of stream length: the default
:class:`RingSink` keeps the most recent N events in a ring buffer, and
:class:`JsonlSink` streams every event to disk without retaining any.
Lifecycle *counters* on the bus are exact whatever the sink drops — they
are what the span-conservation invariant (every arrival terminates in
exactly one of ``shed``/``complete``/``violate``) is checked against.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Lifecycle event kinds, in the order a request meets them.
KIND_ARRIVE = "arrive"          # request reached the engine / router
KIND_SHED = "shed"              # admission control rejected it (terminal)
KIND_ROUTE = "route"            # router picked a pool (cluster engine)
KIND_QUEUE = "queue"            # waiting span: arrival -> first dispatch
KIND_SELECT = "select"          # one scheduler decision (batch-select)
KIND_SWITCH = "switch"          # weight-reload span at the head of an execute
KIND_PREEMPT = "preempt"        # stall span: gap between a rid's execute spans
KIND_EXECUTE = "execute"        # span of contiguous layer blocks on one NPU
KIND_COMPLETE = "complete"      # finished within its SLO (terminal)
KIND_VIOLATE = "violate"        # finished past its SLO (terminal)
KIND_SCALE = "scale"            # autoscaler applied a capacity change
KIND_POWERCAP = "powercap_defer"  # powercap scheduler deferred hot work
KIND_ALERT = "alert"            # an alert rule fired on the telemetry grid
KIND_FAULT = "fault"            # injected fault fired (with rid: block killed)
KIND_RECOVER = "recover"        # an injected fault's window ended

#: Kinds that end a request's lifecycle.
TERMINAL_KINDS = (KIND_SHED, KIND_COMPLETE, KIND_VIOLATE)

#: Lane name used by the single-/multi-NPU engines (no pools).
ENGINE_LANE = "engine"


class TraceEvent:
    """One structured trace record.

    Attributes:
        kind: Lifecycle kind (one of the ``KIND_*`` constants).
        time: Simulated start time, seconds.
        dur: Span duration in seconds; 0.0 for instant events.
        pool: Lane (pool name, or ``"engine"`` for the flat engines).
        npu: Accelerator id within the lane; -1 when not NPU-bound.
        rid: Request id; -1 for control-plane events.
        args: Extra structured payload (model key, queue depth, ...).
    """

    __slots__ = ("kind", "time", "dur", "pool", "npu", "rid", "args")

    def __init__(self, kind: str, time: float, dur: float = 0.0,
                 pool: str = ENGINE_LANE, npu: int = -1, rid: int = -1,
                 args: Optional[Dict] = None):
        self.kind = kind
        self.time = time
        self.dur = dur
        self.pool = pool
        self.npu = npu
        self.rid = rid
        self.args = args

    def to_dict(self) -> Dict:
        """JSON-friendly flat dict (the JSONL streaming record)."""
        out: Dict = {
            "kind": self.kind,
            "time": self.time,
            "dur": self.dur,
            "pool": self.pool,
            "npu": self.npu,
            "rid": self.rid,
        }
        if self.args:
            out["args"] = self.args
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceEvent({self.kind!r}, t={self.time:.6f}, "
                f"dur={self.dur:.6f}, {self.pool}/{self.npu}, rid={self.rid})")


class RingSink:
    """Bounded ring buffer: keeps the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 1 << 20):
        if capacity < 1:
            raise ObservabilityError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._ring.append(event)

    def close(self) -> None:
        """Nothing to flush; kept for sink-interface symmetry."""

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)


class ListSink:
    """Unbounded list sink (tests and short interactive runs)."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


class JsonlSink:
    """Streaming sink: one JSON object per line, nothing retained.

    Suitable for arbitrarily long replays — memory stays flat because every
    event is serialized and forgotten.  The file is line-buffered JSONL;
    :func:`read_jsonl` loads it back into :class:`TraceEvent` objects.
    """

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w")
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self.count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __len__(self) -> int:
        return self.count


def iter_jsonl(path) -> Iterator[TraceEvent]:
    """Stream a :class:`JsonlSink` file as trace events, one at a time.

    Bounded memory: each line is parsed, yielded and forgotten — the
    substrate for folding arbitrarily long recorded traces into ledgers
    and summaries without loading the file.
    """
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            yield TraceEvent(
                row["kind"], row["time"], row.get("dur", 0.0),
                row.get("pool", ENGINE_LANE), row.get("npu", -1),
                row.get("rid", -1), row.get("args"),
            )


def read_jsonl(path) -> List[TraceEvent]:
    """Load a :class:`JsonlSink` file back into trace events."""
    return list(iter_jsonl(path))


def summarize_jsonl(path) -> Dict[str, int]:
    """Per-kind event counts of a recorded trace, streamed line by line.

    Never holds more than one event in memory, so it summarizes traces of
    any length.  Feed the result to :func:`conservation_verdict` for the
    span-conservation check.
    """
    counts: Dict[str, int] = {}
    for event in iter_jsonl(path):
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return counts


def conservation_verdict(counts: Dict[str, int]) -> Tuple[bool, int, int]:
    """``(ok, arrivals, terminals)`` of a per-kind count table."""
    arrivals = counts.get(KIND_ARRIVE, 0)
    terminals = sum(counts.get(kind, 0) for kind in TERMINAL_KINDS)
    return arrivals == terminals, arrivals, terminals


class TraceBus:
    """Fan-out point for trace events, with exact lifecycle counters.

    Engines call the one hot method :meth:`emit`; it constructs the event
    and hands it to every sink.  ``counts`` tallies events per kind exactly
    (independent of sink capacity), which is what span conservation is
    verified against after a run.
    """

    def __init__(self, sinks: Optional[Sequence] = None, *,
                 capacity: int = 1 << 20):
        self.sinks = list(sinks) if sinks is not None else [RingSink(capacity)]
        self.counts: Dict[str, int] = {}

    def emit(self, kind: str, time: float, dur: float = 0.0,
             pool: str = ENGINE_LANE, npu: int = -1, rid: int = -1,
             args: Optional[Dict] = None) -> None:
        """Record one event (the only method on the engines' hot path)."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        event = TraceEvent(kind, time, dur, pool, npu, rid, args)
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Flush/close every sink (JSONL files in particular)."""
        for sink in self.sinks:
            sink.close()

    # -- post-run inspection -------------------------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """Events retained by the first retaining sink (ring/list order)."""
        for sink in self.sinks:
            if hasattr(sink, "events"):
                return list(sink.events)
        return []

    @property
    def total_events(self) -> int:
        """Exact number of events emitted (whatever the sinks retained)."""
        return sum(self.counts.values())

    @property
    def num_arrivals(self) -> int:
        return self.counts.get(KIND_ARRIVE, 0)

    @property
    def num_terminals(self) -> int:
        return sum(self.counts.get(kind, 0) for kind in TERMINAL_KINDS)

    def check_conservation(self) -> None:
        """Raise unless every arrival ended in exactly one terminal span.

        This is the structural invariant of the lifecycle instrumentation:
        requests may not vanish (a missing terminal) or double-finish (an
        extra one).  Counter-based, so it holds even when a bounded sink
        dropped the early events of a long replay.
        """
        if self.num_arrivals != self.num_terminals:
            raise ObservabilityError(
                f"span conservation violated: {self.num_arrivals} arrivals "
                f"vs {self.num_terminals} terminal spans ({self.counts})"
            )


def filter_events(events: Iterable[TraceEvent], kind: str) -> List[TraceEvent]:
    """The subset of ``events`` of one kind, in emission order."""
    return [e for e in events if e.kind == kind]
