"""Declarative alerting over the simulated-time telemetry grid.

Rules are evaluated on the exact sample grid :class:`~repro.obs.metrics.
Telemetry` records (one row per fixed simulated-time cadence point), so
alert streams are a pure function of the run — the same cells in a sweep
fire the same alerts whatever the worker count, wall-clock speed or host
(the sweep runner's byte-identity test covers this).  Because telemetry
rows are deterministic, post-run evaluation is indistinguishable from
evaluating live at each poll.

Rule kinds:

* :class:`ThresholdRule` — a metric crosses a bound, optionally sustained
  for a trailing window (queue-depth saturation is this rule on the
  ``queue_depth`` columns);
* :class:`BurnRateRule` — SLO error-budget burn rate: the violation rate
  over a trailing window, divided by the budgeted rate, exceeds a factor
  (the SRE burn-rate alert on simulated time);
* :class:`PowercapRule` — drawn watts (discrete derivative of the
  ``joules_busy`` columns) exceed a cap.

Metric names resolve against telemetry columns by exact match *or* the
``{pool}_{metric}`` suffix convention, taking the worst (max) matching
column per sample — one rule covers both the flat engines
(``queue_depth``) and every pool of a cluster run
(``eyeriss_queue_depth``, ...).  A rule whose metric matches no column is
inapplicable to that run and simply never fires.

Alerts fire on rising edges: once per episode in which the condition
becomes (and stays) true, at the first sample where it holds — so a
saturated queue raises one alert, not one per sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.bus import KIND_ALERT, TraceBus
from repro.obs.metrics import Telemetry

Table = Dict[str, List[float]]


@dataclass(frozen=True)
class Alert:
    """One rule firing at one grid point."""

    rule: str
    kind: str
    time: float
    value: float
    threshold: float
    metric: str = ""

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "time": self.time,
            "value": self.value,
            "threshold": self.threshold,
            "metric": self.metric,
        }

    def __str__(self) -> str:
        return (f"[{self.time:.3f}s] {self.rule}: {self.metric or self.kind} "
                f"= {self.value:.4g} (threshold {self.threshold:.4g})")


def _match_columns(table: Table, metric: str) -> List[str]:
    """Columns a metric name covers: exact, or the ``{pool}_`` suffix form."""
    suffix = "_" + metric
    return sorted(
        name for name in table
        if name != "t" and (name == metric or name.endswith(suffix))
    )


def _series_max(table: Table, columns: Sequence[str], i: int) -> float:
    """Worst (max) value across matching columns at sample ``i``."""
    best = float("-inf")
    for name in columns:
        value = table[name][i]
        if value is not None and value == value and value > best:
            best = value
    return best


def _window_start(times: Sequence[float], i: int, window_s: float) -> int:
    """First index inside the trailing window ``[t_i - window_s, t_i]``."""
    j = i
    lo = times[i] - window_s
    while j > 0 and times[j - 1] >= lo - 1e-12:
        j -= 1
    return j


@dataclass(frozen=True)
class ThresholdRule:
    """Fire when a metric crosses ``threshold``, sustained ``window_s``.

    ``above=True`` (default) fires on ``value >= threshold``; ``False``
    on ``value <= threshold``.  With ``window_s > 0`` the condition must
    hold at every grid point of the trailing window before firing.
    """

    name: str
    metric: str
    threshold: float
    above: bool = True
    window_s: float = 0.0
    kind: str = "threshold"

    def evaluate(self, table: Table) -> List[Alert]:
        columns = _match_columns(table, self.metric)
        if not columns:
            return []
        times = table["t"]
        alerts: List[Alert] = []
        run_start: Optional[int] = None  # first index of the true-run
        fired = False
        for i in range(len(times)):
            value = _series_max(table, columns, i)
            ok = value >= self.threshold if self.above else value <= self.threshold
            if not ok or value == float("-inf"):
                run_start = None
                fired = False
                continue
            if run_start is None:
                run_start = i
            sustained = times[i] - times[run_start] >= self.window_s - 1e-12
            if sustained and not fired:
                fired = True
                alerts.append(Alert(self.name, self.kind, times[i], value,
                                    self.threshold, self.metric))
        return alerts


def queue_saturation_rule(depth: float, *, window_s: float = 0.0,
                          name: str = "queue_saturation") -> ThresholdRule:
    """Sugar: queue-depth saturation across every engine/pool queue."""
    return ThresholdRule(name=name, metric="queue_depth", threshold=depth,
                         window_s=window_s, kind="queue_saturation")


@dataclass(frozen=True)
class BurnRateRule:
    """SLO error-budget burn rate over a trailing window.

    ``budget`` is the tolerated violation fraction (violations per
    completion); the rule fires when the windowed violation rate reaches
    ``factor`` times that budget.  Windows with no completions burn
    nothing.
    """

    name: str
    budget: float
    factor: float
    window_s: float
    kind: str = "burn_rate"

    def __post_init__(self):
        if self.budget <= 0:
            raise ObservabilityError(
                f"burn-rate budget must be positive, got {self.budget}"
            )
        if self.window_s <= 0:
            raise ObservabilityError(
                f"burn-rate window must be positive, got {self.window_s}"
            )

    def evaluate(self, table: Table) -> List[Alert]:
        if "completed" not in table or "violations" not in table:
            return []
        times = table["t"]
        completed = table["completed"]
        violations = table["violations"]
        alerts: List[Alert] = []
        fired = False
        for i in range(len(times)):
            j = _window_start(times, i, self.window_s)
            dc = completed[i] - completed[j]
            dv = violations[i] - violations[j]
            burn = (dv / dc) / self.budget if dc > 0 else 0.0
            if burn >= self.factor:
                if not fired:
                    fired = True
                    alerts.append(Alert(self.name, self.kind, times[i], burn,
                                        self.factor, "slo_burn_rate"))
            else:
                fired = False
        return alerts


@dataclass(frozen=True)
class PowercapRule:
    """Fire when drawn watts exceed ``cap_watts``.

    Watts are the discrete derivative of the cumulative ``joules_busy``
    columns between consecutive grid points, summed across pools —
    evaluable on any energy-accounted run without extra instrumentation.
    """

    name: str
    cap_watts: float
    kind: str = "powercap"

    def evaluate(self, table: Table) -> List[Alert]:
        columns = _match_columns(table, "joules_busy")
        if not columns:
            return []
        times = table["t"]
        alerts: List[Alert] = []
        fired = False
        for i in range(1, len(times)):
            dt = times[i] - times[i - 1]
            if dt <= 0:
                continue
            joules = 0.0
            for name in columns:
                a, b = table[name][i - 1], table[name][i]
                if a is None or b is None or a != a or b != b:
                    continue
                joules += b - a
            watts = joules / dt
            if watts >= self.cap_watts:
                if not fired:
                    fired = True
                    alerts.append(Alert(self.name, self.kind, times[i], watts,
                                        self.cap_watts, "watts"))
            else:
                fired = False
        return alerts


AlertRule = Union[ThresholdRule, BurnRateRule, PowercapRule]


def default_rules(*, slo_budget: float = 0.1, burn_factor: float = 2.0,
                  burn_window_s: float = 1.0,
                  queue_depth: float = 8.0) -> List[AlertRule]:
    """The standing rule set the CLI and sweep runner evaluate.

    A burn-rate page (violation rate at ``burn_factor``x the ``slo_budget``
    over a trailing window) plus queue-depth saturation.  Powercap rules
    are opt-in — caps are workload-specific.
    """
    return [
        BurnRateRule(name="slo_burn_rate", budget=slo_budget,
                     factor=burn_factor, window_s=burn_window_s),
        queue_saturation_rule(queue_depth),
    ]


class AlertEngine:
    """Evaluate a rule set against one run's telemetry grid."""

    def __init__(self, rules: Optional[Iterable[AlertRule]] = None):
        self.rules: List[AlertRule] = (list(rules) if rules is not None
                                       else default_rules())

    def evaluate(self, telemetry: Union[Telemetry, Table],
                 bus: Optional[TraceBus] = None) -> List[Alert]:
        """All firings, sorted by (time, rule name) — a deterministic
        stream.  With ``bus`` given, each alert is also emitted onto the
        trace as an ``alert`` instant (control-plane lane, ``rid=-1``)."""
        table = (telemetry.to_table() if isinstance(telemetry, Telemetry)
                 else telemetry)
        if "t" not in table:
            raise ObservabilityError("telemetry table has no 't' column")
        alerts: List[Alert] = []
        for rule in self.rules:
            alerts.extend(rule.evaluate(table))
        alerts.sort(key=lambda a: (a.time, a.rule))
        if bus is not None:
            for alert in alerts:
                bus.emit(KIND_ALERT, alert.time, args=alert.to_dict())
        return alerts


def evaluate_alerts(telemetry: Union[Telemetry, Table],
                    rules: Optional[Iterable[AlertRule]] = None,
                    bus: Optional[TraceBus] = None) -> List[Alert]:
    """Convenience wrapper: ``AlertEngine(rules).evaluate(...)``."""
    return AlertEngine(rules).evaluate(telemetry, bus=bus)
