"""Chrome-trace / Perfetto JSON exporter: eyeball any schedule.

Renders a run's trace events in the Trace Event Format (the JSON object
form, ``{"traceEvents": [...]}``) so a schedule can be loaded straight into
``chrome://tracing`` or https://ui.perfetto.dev:

* each **pool** becomes a process (named via ``process_name`` metadata);
* each **accelerator** becomes a thread lane (``npu 0``, ``npu 1``, ...),
  so per-accelerator occupancy, preemption interleaving and idle gaps are
  visible at a glance;
* a synthetic **queue** lane per pool holds the waiting spans
  (arrival → first dispatch) and preemption stalls; weight-reload
  ``switch`` spans nest at the head of their execute span on the NPU lane;
* instant events (arrivals, sheds, scale events, powercap deferrals) land
  on a per-pool **control** lane.

Simulated seconds map to trace microseconds (the format's native unit).
``execute`` spans become ``"X"`` complete events; everything else becomes
``"i"`` instants.  Colors are left to the viewer (category-based).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.bus import (
    KIND_EXECUTE,
    KIND_FAULT,
    KIND_PREEMPT,
    KIND_QUEUE,
    KIND_SWITCH,
    TraceBus,
    TraceEvent,
)

#: Thread ids of the synthetic lanes inside each pool-process.  Real NPU
#: lanes use tid = npu id (0-based), so these sit far above any pool size.
QUEUE_TID = 10_000
CONTROL_TID = 10_001

_S_TO_US = 1e6


def _lane_ids(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Stable pool -> pid assignment (sorted pool names, pid from 1)."""
    pools = sorted({e.pool for e in events})
    return {pool: pid for pid, pool in enumerate(pools, start=1)}


def to_chrome_trace(events: Iterable[TraceEvent],
                    metadata: Optional[Dict] = None) -> Dict:
    """Convert trace events to a Trace Event Format JSON object.

    Args:
        events: Trace events (e.g. ``bus.events`` or a loaded JSONL file).
        metadata: Optional run metadata stored under the top-level
            ``otherData`` key (the format reserves it for free-form info).
    """
    events = list(events)
    pids = _lane_ids(events)
    out: List[Dict] = []

    # Lane naming metadata: one process per pool, one thread per lane.
    seen_threads: set = set()
    for pool, pid in pids.items():
        out.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": pool},
        })
    for event in events:
        pid = pids[event.pool]
        if event.kind in (KIND_EXECUTE, KIND_SWITCH):
            tid = max(event.npu, 0)
            name = f"npu {tid}"
        elif event.kind in (KIND_QUEUE, KIND_PREEMPT):
            tid, name = QUEUE_TID, "queue"
        else:
            tid, name = CONTROL_TID, "control"
        key = (pid, tid)
        if key not in seen_threads:
            seen_threads.add(key)
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })

    for event in events:
        pid = pids[event.pool]
        args = dict(event.args) if event.args else {}
        if event.rid >= 0:
            args.setdefault("rid", event.rid)
        if event.kind == KIND_EXECUTE:
            out.append({
                "name": args.pop("key", f"rid {event.rid}"),
                "cat": event.kind,
                "ph": "X",
                "ts": event.time * _S_TO_US,
                "dur": event.dur * _S_TO_US,
                "pid": pid,
                "tid": max(event.npu, 0),
                "args": args,
            })
        elif event.kind == KIND_SWITCH:
            # Weight reload: a nested span at the head of its execute span,
            # on the same NPU lane (viewers render it as a child slice).
            out.append({
                "name": "switch",
                "cat": event.kind,
                "ph": "X",
                "ts": event.time * _S_TO_US,
                "dur": event.dur * _S_TO_US,
                "pid": pid,
                "tid": max(event.npu, 0),
                "args": args,
            })
        elif event.kind in (KIND_QUEUE, KIND_PREEMPT):
            label = "wait" if event.kind == KIND_QUEUE else "stall"
            out.append({
                "name": f"{label} rid {event.rid}",
                "cat": event.kind,
                "ph": "X",
                "ts": event.time * _S_TO_US,
                "dur": event.dur * _S_TO_US,
                "pid": pid,
                "tid": QUEUE_TID,
                "args": args,
            })
        elif event.kind == KIND_FAULT and event.dur > 0.0:
            # Outage / straggler / blackout window: a span on the control
            # lane so the faulted interval reads as a lane, not a tick.
            out.append({
                "name": f"fault:{args.get('fault', 'fault')}",
                "cat": event.kind,
                "ph": "X",
                "ts": event.time * _S_TO_US,
                "dur": event.dur * _S_TO_US,
                "pid": pid,
                "tid": CONTROL_TID,
                "args": args,
            })
        else:
            out.append({
                "name": event.kind,
                "cat": event.kind,
                "ph": "i",
                "ts": event.time * _S_TO_US,
                "pid": pid,
                "tid": CONTROL_TID,
                "s": "p",  # process scope: the marker spans the pool's lanes
                "args": args,
            })

    doc: Dict = {"traceEvents": out, "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def export_chrome_trace(source, path, metadata: Optional[Dict] = None) -> Tuple[str, int]:
    """Write a Chrome-trace JSON file from a bus or an event iterable.

    Returns ``(path, num_events)`` where ``num_events`` counts the
    non-metadata trace records written.
    """
    events = source.events if isinstance(source, TraceBus) else source
    doc = to_chrome_trace(events, metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    n = sum(1 for row in doc["traceEvents"] if row["ph"] != "M")
    return str(path), n
