"""Run reports: fold a ledger (+ alerts) into JSON or markdown.

``build_report`` produces one plain-JSON-serializable dict from a
:class:`~repro.obs.attribution.RequestLedger` and an optional alert
stream; ``render_markdown`` turns that dict into the human-facing
``repro report`` page — aggregate blame, per-pool breakdown, the ranked
worst SLO misses (which component dominated each), and the alert log.
Keeping the dict as the interchange format means the CLI, tests and any
future live dashboard all read the same structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.obs.alerts import Alert
from repro.obs.attribution import COMPONENTS, RequestLedger


def build_report(ledger: RequestLedger,
                 alerts: Optional[Iterable[Alert]] = None,
                 *, top_misses: int = 10, title: str = "Run report") -> Dict:
    """Assemble the report dict (the ``repro report --json`` payload)."""
    alert_list = [a.to_dict() for a in alerts] if alerts is not None else []
    return {
        "title": title,
        "summary": ledger.summary(),
        "pools": ledger.pool_summary(),
        "violations": ledger.violation_report(top=top_misses),
        "alerts": alert_list,
    }


def _pct(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"


def _seconds(value: float) -> str:
    return f"{value:.4f}"


def render_markdown(report: Dict) -> str:
    """Render a ``build_report`` dict as a markdown page."""
    summary = report["summary"]
    lines: List[str] = [f"# {report['title']}", ""]

    lines += [
        "## Summary",
        "",
        f"- requests closed: **{summary['n_closed']}** "
        f"(complete {summary['complete']}, violate {summary['violate']}, "
        f"shed {summary['shed']}; open {summary['n_open']})",
        f"- mean end-to-end latency: **{_seconds(summary['mean_e2e_s'])} s**",
        "- blame: " + ", ".join(
            f"{name} {_pct(summary['blame'][name])}" for name in COMPONENTS
        ),
        "",
    ]

    pools = report.get("pools") or {}
    if pools:
        lines += [
            "## Per-pool blame",
            "",
            "| pool | n | violate | shed | " + " | ".join(COMPONENTS) + " |",
            "|---|---|---|---|" + "---|" * len(COMPONENTS),
        ]
        for pool, row in pools.items():
            lines.append(
                f"| {pool} | {row['n']} | {row['violate']} | {row['shed']} | "
                + " | ".join(_pct(row["blame"][name]) for name in COMPONENTS)
                + " |"
            )
        lines.append("")

    misses = report.get("violations") or []
    lines += ["## Worst SLO misses", ""]
    if misses:
        lines += [
            "| rid | pool | e2e (s) | queue | service | preempt | switch "
            "| dominant |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for miss in misses:
            lines.append(
                f"| {miss['rid']} | {miss['pool']} "
                f"| {_seconds(miss['e2e_s'])} "
                f"| {_seconds(miss['queue_s'])} "
                f"| {_seconds(miss['service_s'])} "
                f"| {_seconds(miss['preempt_s'])} "
                f"| {_seconds(miss['switch_s'])} "
                f"| {miss['dominant']} |"
            )
    else:
        lines.append("No SLO violations.")
    lines.append("")

    alerts = report.get("alerts") or []
    lines += ["## Alerts", ""]
    if alerts:
        lines += [
            "| time (s) | rule | metric | value | threshold |",
            "|---|---|---|---|---|",
        ]
        for alert in alerts:
            lines.append(
                f"| {alert['time']:.3f} | {alert['rule']} "
                f"| {alert['metric']} | {alert['value']:.4g} "
                f"| {alert['threshold']:.4g} |"
            )
    else:
        lines.append("No alerts fired.")
    lines.append("")

    return "\n".join(lines)
