"""Streaming SLO attribution: fold a trace stream into per-request blame.

The :class:`RequestLedger` consumes lifecycle events — from a live
:class:`~repro.obs.bus.TraceBus` (the ledger implements the sink
interface, so ``TraceBus(sinks=[ledger])`` folds during the run) or from
a recorded :class:`~repro.obs.bus.JsonlSink` file via
:meth:`RequestLedger.from_jsonl` — and decomposes every request's
end-to-end latency into four components:

* **queue** — arrival to first dispatch (the ``queue`` span, plus any
  later re-queue spans a synthetic trace may carry);
* **service** — time on an accelerator actually executing layers
  (execute spans minus the switch overhead charged at their head);
* **switch** — weight-reload cost (``switch`` spans);
* **preempt** — stalls between a request's execute spans, i.e. time it
  sat preempted while other work held the accelerator.  Computed from
  the gaps between consecutive execute spans (robust for any trace,
  engine-emitted ``preempt`` spans included or not), minus re-queue
  time already blamed on queue.

The decomposition is *conservative*: the four components sum to the
end-to-end latency for every request, up to float reconstruction error
(``check_conservation`` asserts a relative epsilon; the engine-replay
tests pin it at 1e-9 over 10k-request cluster runs).

Memory: per-*open*-request state plus bounded aggregates.  Closed
records are kept by default (``repro explain`` wants them); pass
``keep_records=False`` to fold arbitrarily long streams in O(pools)
memory — aggregate summaries, the bounded top-miss heap, and the
conservation check all keep working.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import ObservabilityError
from repro.obs.bus import (
    KIND_ARRIVE,
    KIND_COMPLETE,
    KIND_EXECUTE,
    KIND_FAULT,
    KIND_QUEUE,
    KIND_ROUTE,
    KIND_SHED,
    KIND_SWITCH,
    KIND_VIOLATE,
    TraceEvent,
    iter_jsonl,
)

#: Component names, in blame-report order (ties break toward the left).
COMPONENTS = ("queue", "service", "preempt", "switch")


class RequestRecord:
    """Latency decomposition of one request, built up as events stream in."""

    __slots__ = (
        "rid", "pool", "arrival", "first_dispatch", "end", "outcome",
        "queue_s", "exec_s", "switch_s", "gap_s", "requeue_s",
        "n_queue_spans", "n_exec_spans", "_last_exec_end",
    )

    def __init__(self, rid: int, pool: str, arrival: float):
        self.rid = rid
        self.pool = pool
        self.arrival = arrival
        self.first_dispatch: Optional[float] = None
        self.end: Optional[float] = None
        self.outcome: Optional[str] = None  # complete | violate | shed
        self.queue_s = 0.0
        self.exec_s = 0.0
        self.switch_s = 0.0
        self.gap_s = 0.0
        self.requeue_s = 0.0
        self.n_queue_spans = 0
        self.n_exec_spans = 0
        self._last_exec_end: Optional[float] = None

    # -- derived components --------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.outcome is not None

    @property
    def e2e_s(self) -> float:
        """End-to-end latency (to the terminal event, or NaN while open)."""
        return float("nan") if self.end is None else self.end - self.arrival

    @property
    def service_s(self) -> float:
        """Pure execution time: execute spans minus their switch heads."""
        return self.exec_s - self.switch_s

    @property
    def preempt_s(self) -> float:
        """Stall time between execute spans not already blamed on queue."""
        return self.gap_s - self.requeue_s

    @property
    def residual_s(self) -> float:
        """e2e minus the component sum — float noise when conservative."""
        if self.end is None:
            return float("nan")
        return self.e2e_s - (self.queue_s + self.service_s
                             + self.preempt_s + self.switch_s)

    @property
    def dominant(self) -> str:
        """The component that contributed the most latency."""
        values = (self.queue_s, self.service_s, self.preempt_s, self.switch_s)
        best = max(range(len(COMPONENTS)), key=lambda k: values[k])
        return COMPONENTS[best]

    def to_dict(self) -> Dict:
        """JSON-friendly record (the ``repro explain`` payload)."""
        return {
            "rid": self.rid,
            "pool": self.pool,
            "outcome": self.outcome,
            "arrival": self.arrival,
            "end": self.end,
            "e2e_s": self.e2e_s,
            "queue_s": self.queue_s,
            "service_s": self.service_s,
            "preempt_s": self.preempt_s,
            "switch_s": self.switch_s,
            "residual_s": self.residual_s,
            "dominant": self.dominant,
            "n_queue_spans": self.n_queue_spans,
            "n_exec_spans": self.n_exec_spans,
        }


def _new_pool_agg() -> Dict:
    return {
        "n": 0, "complete": 0, "violate": 0, "shed": 0,
        "e2e_s": 0.0, "queue_s": 0.0, "service_s": 0.0,
        "preempt_s": 0.0, "switch_s": 0.0,
    }


class RequestLedger:
    """Fold lifecycle events into per-request latency decompositions.

    Implements the trace-sink interface (``emit`` / ``close``), so it can
    ride on a live bus next to the ring/JSONL sinks, or be fed a recorded
    stream with :meth:`feed` / :meth:`from_jsonl`.

    Args:
        keep_records: Retain every closed :class:`RequestRecord` (keyed by
            rid).  ``False`` drops them after folding into aggregates —
            bounded memory for arbitrarily long streams.
        max_misses: Size of the bounded worst-miss heap backing
            :meth:`violation_report` (largest-e2e violations survive).
        eps: Relative tolerance for :meth:`check_conservation`, scaled by
            ``max(1, |e2e|)`` per request.
    """

    def __init__(self, *, keep_records: bool = True, max_misses: int = 64,
                 eps: float = 1e-9):
        if max_misses < 1:
            raise ObservabilityError(
                f"max_misses must be >= 1, got {max_misses}"
            )
        self.keep_records = keep_records
        self.max_misses = max_misses
        self.eps = eps
        self.records: Dict[int, RequestRecord] = {}
        self._open: Dict[int, RequestRecord] = {}
        self._pools: Dict[str, Dict] = {}
        #: min-heap of (e2e_s, rid, record) for the worst SLO misses
        self._misses: List = []
        self.n_closed = 0
        self.max_rel_residual = 0.0
        self.worst_rid: Optional[int] = None

    # -- sink interface -------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        """Fold one event (the trace-sink hot method)."""
        rid = event.rid
        if rid < 0:
            return  # control-plane event (scale, alert, powercap, ...)
        kind = event.kind
        rec = self._open.get(rid)
        if rec is None:
            if rid in self.records:
                return  # stray post-terminal event; lifecycle already closed
            # A queue span starts at the arrival instant, so event.time is
            # the right arrival fallback for partial traces without arrive.
            rec = self._open[rid] = RequestRecord(rid, event.pool, event.time)
        if kind == KIND_EXECUTE:
            rec.pool = event.pool
            rec.n_exec_spans += 1
            rec.exec_s += event.dur
            if rec._last_exec_end is not None:
                gap = event.time - rec._last_exec_end
                if gap > 0.0:
                    rec.gap_s += gap
            rec._last_exec_end = event.time + event.dur
            if rec.first_dispatch is None:
                rec.first_dispatch = event.time
        elif kind == KIND_QUEUE:
            rec.pool = event.pool
            rec.n_queue_spans += 1
            rec.queue_s += event.dur
            if rec.n_queue_spans > 1:
                # Re-queue wait sits inside an inter-execute gap; blame it
                # on queue, not preempt (see preempt_s).
                rec.requeue_s += event.dur
            if rec.first_dispatch is None:
                rec.first_dispatch = event.time + event.dur
        elif kind == KIND_SWITCH:
            rec.switch_s += event.dur
        elif kind == KIND_ROUTE:
            rec.pool = event.pool
        elif kind == KIND_ARRIVE:
            rec.arrival = event.time
        elif kind == KIND_FAULT:
            # A rid-carrying fault marks a mid-block kill: the engine emits
            # execute spans optimistically at dispatch, so the victim's last
            # span lies past the kill.  Truncate it at the kill instant; the
            # rest of the stall lands in the inter-execute gap (preempt).
            if rec._last_exec_end is not None and rec._last_exec_end > event.time:
                rec.exec_s -= rec._last_exec_end - event.time
                rec._last_exec_end = event.time
        elif kind in (KIND_COMPLETE, KIND_VIOLATE, KIND_SHED):
            self._close(rec, kind, event.time)

    def close(self) -> None:
        """Sink-interface symmetry; aggregates are maintained eagerly."""

    # -- folding --------------------------------------------------------------

    def _close(self, rec: RequestRecord, kind: str, end: float) -> None:
        rec.end = end
        rec.outcome = kind
        if kind == KIND_SHED:
            # A shed request never dispatches, so no queue span was emitted;
            # everything between arrival and the shed decision (the cluster
            # engine sheds at block boundaries, not arrival instants) is
            # admission-queue wait.  Blame the uncovered remainder on queue.
            rec.queue_s += (end - rec.arrival) - (
                rec.queue_s + rec.service_s + rec.preempt_s + rec.switch_s
            )
        del self._open[rec.rid]
        self.n_closed += 1
        agg = self._pools.get(rec.pool)
        if agg is None:
            agg = self._pools[rec.pool] = _new_pool_agg()
        agg["n"] += 1
        agg[kind] += 1
        agg["e2e_s"] += rec.e2e_s
        agg["queue_s"] += rec.queue_s
        agg["service_s"] += rec.service_s
        agg["preempt_s"] += rec.preempt_s
        agg["switch_s"] += rec.switch_s
        rel = abs(rec.residual_s) / max(1.0, abs(rec.e2e_s))
        if rel > self.max_rel_residual:
            self.max_rel_residual = rel
            self.worst_rid = rec.rid
        if kind == KIND_VIOLATE:
            item = (rec.e2e_s, rec.rid, rec)
            if len(self._misses) < self.max_misses:
                heapq.heappush(self._misses, item)
            else:
                heapq.heappushpop(self._misses, item)
        if self.keep_records:
            self.records[rec.rid] = rec

    def feed(self, events: Iterable[TraceEvent]) -> "RequestLedger":
        """Fold an event iterable; returns self for chaining."""
        for event in events:
            self.emit(event)
        return self

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent], **kwargs) -> "RequestLedger":
        return cls(**kwargs).feed(events)

    @classmethod
    def from_jsonl(cls, path, **kwargs) -> "RequestLedger":
        """Stream a recorded ``.jsonl`` trace file (bounded memory)."""
        return cls(**kwargs).feed(iter_jsonl(path))

    # -- queries --------------------------------------------------------------

    @property
    def open_rids(self) -> List[int]:
        """Requests that arrived but have not reached a terminal event."""
        return sorted(self._open)

    def record(self, rid: int) -> RequestRecord:
        """The (closed or still-open) record for one request id."""
        rec = self.records.get(rid) or self._open.get(rid)
        if rec is None:
            detail = ("records were not kept (keep_records=False)"
                      if not self.keep_records else "no such rid in the trace")
            raise ObservabilityError(f"rid {rid}: {detail}")
        return rec

    def summary(self) -> Dict:
        """Aggregate blame across every closed request."""
        total = _new_pool_agg()
        for agg in self._pools.values():
            for key, value in agg.items():
                total[key] += value
        n = total["n"]
        component_sum = (total["queue_s"] + total["service_s"]
                         + total["preempt_s"] + total["switch_s"])
        blame = {
            name: (total[name + "_s"] / component_sum) if component_sum else 0.0
            for name in COMPONENTS
        }
        return {
            "n_closed": n,
            "n_open": len(self._open),
            "complete": total["complete"],
            "violate": total["violate"],
            "shed": total["shed"],
            "e2e_s": total["e2e_s"],
            "queue_s": total["queue_s"],
            "service_s": total["service_s"],
            "preempt_s": total["preempt_s"],
            "switch_s": total["switch_s"],
            "mean_e2e_s": total["e2e_s"] / n if n else 0.0,
            "blame": blame,
            "max_rel_residual": self.max_rel_residual,
        }

    def pool_summary(self) -> Dict[str, Dict]:
        """Per-pool (per-lane) aggregate blame, sorted by pool name."""
        out: Dict[str, Dict] = {}
        for pool in sorted(self._pools):
            agg = self._pools[pool]
            component_sum = (agg["queue_s"] + agg["service_s"]
                             + agg["preempt_s"] + agg["switch_s"])
            row = dict(agg)
            row["blame"] = {
                name: (agg[name + "_s"] / component_sum) if component_sum
                else 0.0
                for name in COMPONENTS
            }
            out[pool] = row
        return out

    def violation_report(self, top: Optional[int] = None) -> List[Dict]:
        """Worst SLO misses, largest end-to-end latency first.

        Each entry is a :meth:`RequestRecord.to_dict` payload; ``dominant``
        names the component that contributed the most latency to the miss.
        Bounded by ``max_misses`` however long the stream was.
        """
        ranked = sorted(self._misses, key=lambda item: (-item[0], item[1]))
        if top is not None:
            ranked = ranked[:top]
        return [rec.to_dict() for _, _, rec in ranked]

    def check_conservation(self, eps: Optional[float] = None) -> None:
        """Raise unless every closed decomposition summed to its e2e.

        Tolerance is relative: ``eps * max(1, |e2e|)`` per request (float
        reconstruction noise from span arithmetic is the only residual a
        well-formed trace leaves).
        """
        tol = self.eps if eps is None else eps
        if self.max_rel_residual > tol:
            raise ObservabilityError(
                f"attribution not conservative: rid {self.worst_rid} has "
                f"relative residual {self.max_rel_residual:.3e} > {tol:.3e}"
            )


def explain_request(events: Iterable[TraceEvent], rid: int) -> RequestRecord:
    """One-shot decomposition of a single request from an event stream."""
    ledger = RequestLedger.from_events(events)
    return ledger.record(rid)
