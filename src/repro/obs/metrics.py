"""Metrics registry and simulated-time telemetry sampling.

The registry holds three instrument kinds:

* :class:`Counter` — monotone event tallies (completions, violations,
  sheds);
* :class:`Gauge` — point-in-time values read through a callable at sample
  time (queue depth, pool occupancy, metered watts);
* :class:`Histogram` — bounded-memory value distributions, reusing the
  log-bucket :class:`~repro.cluster.metrics.StreamingHistogram`.

:class:`Telemetry` turns the registry into a deterministic time-series: it
samples every instrument on a fixed **simulated-time** cadence.  Engines
call :meth:`Telemetry.poll` with the current simulated time before applying
each event; because simulation state is piecewise-constant between events,
sampling at every crossed cadence point with the pre-event state yields one
exact, reproducible row per point — the same numbers whatever wall-clock
speed, host, or sweep worker count produced them (tested bit-identical
across worker counts).  The series exports to CSV or JSON and is the
substrate a live serving gateway would stream.
"""

from __future__ import annotations

import csv
import json
import math
from typing import Callable, Dict, List, Optional, Union

from repro.errors import ObservabilityError

_EPS = 1e-9


class Counter:
    """Monotone event tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time value, read at sample time.

    Backed either by a callable (pulled at each sample) or by an explicit
    :meth:`set` value (pushed by the instrumented code).
    """

    __slots__ = ("name", "_fn", "_value")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def read(self) -> float:
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Bounded-memory distribution (log-bucket streaming histogram)."""

    __slots__ = ("name", "_hist", "_sum")

    def __init__(self, name: str):
        # Imported lazily: repro.cluster's package import reaches the
        # engines, which import repro.obs — a module-level import here
        # would close that cycle.
        from repro.cluster.metrics import StreamingHistogram

        self.name = name
        self._hist = StreamingHistogram()
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self._hist.observe(value)
        self._sum += value

    @property
    def count(self) -> int:
        return self._hist.count

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else float("nan")

    def percentile(self, pct: float) -> float:
        return self._hist.percentile(pct)


class MetricsRegistry:
    """Named instruments, created on first use and listed deterministically."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            inst._fn = fn
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name)
            inst = self._histograms[name] = Histogram(name)
        return inst

    def _check_free(self, name: str) -> None:
        if (name in self._counters or name in self._gauges
                or name in self._histograms):
            raise ObservabilityError(
                f"metric {name!r} already registered under another kind"
            )

    def names(self) -> List[str]:
        """All instrument names, sorted (the telemetry column order)."""
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> Dict[str, float]:
        """Current value of every instrument, by sorted name.

        Counters report their tally, gauges their current read, histograms
        their observation count (distribution detail stays queryable on the
        instrument itself).
        """
        out: Dict[str, float] = {}
        for name in self.names():
            if name in self._counters:
                out[name] = float(self._counters[name].value)
            elif name in self._gauges:
                out[name] = self._gauges[name].read()
            else:
                out[name] = float(self._histograms[name].count)
        return out


class Telemetry:
    """Fixed-cadence time-series sampler over a :class:`MetricsRegistry`.

    ``poll(now)`` records one row per cadence point in ``(last, now]`` —
    state is piecewise-constant between simulation events, so sampling with
    the pre-event state at every crossed point is exact.  ``finish(now)``
    closes the series with a final row at the last crossed point (engines
    call it with the makespan).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 interval: float = 1.0):
        if interval <= 0:
            raise ObservabilityError(
                f"telemetry interval must be positive, got {interval}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.interval = interval
        self._next = 0.0
        self.times: List[float] = []
        self.rows: List[Dict[str, float]] = []

    def reset(self) -> None:
        self._next = 0.0
        self.times = []
        self.rows = []

    def poll(self, now: float) -> None:
        """Sample every cadence point that ``now`` has reached or passed."""
        while self._next <= now + _EPS:
            self.times.append(self._next)
            self.rows.append(self.registry.snapshot())
            # Multiples of the interval, not repeated addition: keeps the
            # sample grid exact (no float drift) and thus bit-identical
            # across runs that poll at different event times.
            self._next = self.interval * len(self.times)

    def finish(self, now: float) -> None:
        """Flush the remaining cadence points up to ``now`` (makespan)."""
        self.poll(now)

    # -- exports -------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return len(self.times)

    def columns(self) -> List[str]:
        """Deterministic column order: time first, then sorted metrics."""
        names = set()
        for row in self.rows:
            names.update(row)
        return ["t"] + sorted(names)

    def to_table(self, *, nan_as_none: bool = False) -> Dict[str, List[float]]:
        """Column-oriented dict (the sweep store's per-cell format).

        Cells a metric never reported (a column registered mid-run) backfill
        as NaN; with ``nan_as_none`` they become ``None`` instead, which is
        what the JSON exports use — bare ``NaN`` is not valid strict JSON.
        """
        missing = None if nan_as_none else math.nan
        columns = self.columns()
        out: Dict[str, List[float]] = {name: [] for name in columns}
        for t, row in zip(self.times, self.rows):
            out["t"].append(t)
            for name in columns[1:]:
                out[name].append(row.get(name, missing))
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_table(nan_as_none=True), sort_keys=True,
                          allow_nan=False)

    def write_csv(self, path) -> str:
        """Write the series as CSV (one row per sample point).

        Missing cells are written as empty fields, which
        :func:`read_telemetry_csv` maps back to NaN — an exact round-trip
        of :meth:`to_table`.
        """
        columns = self.columns()
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(columns)
            for t, row in zip(self.times, self.rows):
                values = [repr(t)]
                for name in columns[1:]:
                    value = row.get(name)
                    values.append("" if value is None or value != value
                                  else repr(value))
                writer.writerow(values)
        return str(path)

    def write_json(self, path) -> str:
        with open(path, "w") as fh:
            fh.write(json.dumps(self.to_table(nan_as_none=True), indent=2,
                                sort_keys=True, allow_nan=False))
            fh.write("\n")
        return str(path)


def read_telemetry_csv(path) -> Dict[str, List[float]]:
    """Load a :meth:`Telemetry.write_csv` file back into columns."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        out: Dict[str, List[float]] = {name: [] for name in header}
        for row in reader:
            for name, value in zip(header, row):
                out[name].append(math.nan if value == "" else float(value))
    return out
