"""Engine self-profiling: wall-clock attribution to engine phases.

Answers "where does the replay's time go?" without an external profiler:
the engines bracket their hot phases — event-heap ops, ready-queue update,
batch scoring (scheduler selection), router predict, arrival admission —
with ``perf_counter`` pairs and accumulate the deltas per phase into a
:class:`PhaseProfiler`.  The breakdown feeds ``repro perf --profile``,
which records it into ``BENCH_perf.json`` so the compiled-core work knows
exactly which phase to attack first.

Profiling is opt-in per run and adds measurement overhead (two clock reads
per bracketed phase); it reports *relative attribution* of the instrumented
run, alongside the instrumented run's own wall-clock.  With profiling off,
the engines skip every bracket behind a ``profiler is None`` check.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

#: Canonical engine phase names (engines may add their own).
PHASE_ARRIVALS = "arrivals"        # admit/route arrivals into ready queues
PHASE_SELECT = "select"            # batch scoring / scheduler selection
PHASE_EXECUTE = "execute"          # time advance + request bookkeeping
PHASE_QUEUE_UPDATE = "queue_update"  # ready-queue column refresh / requeue
PHASE_EVENT_HEAP = "event_heap"    # heap push/pop of simulation events
PHASE_ROUTE = "route"              # router predict (cluster engine)
PHASE_METRICS = "metrics"          # streaming-metrics folds / telemetry
PHASE_DISPATCH = "dispatch"        # placement bookkeeping around selection


class PhaseProfiler:
    """Accumulates wall-clock seconds per named engine phase.

    Engines use the :meth:`start`/:meth:`stop` bracket on their hot paths
    (one running phase at a time, no nesting — the engines' phases are
    sequential) and :meth:`add` for pre-measured deltas.
    """

    __slots__ = ("phases", "calls", "_t0", "_phase", "wall_s")

    def __init__(self):
        self.phases: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.wall_s = 0.0
        self._t0 = 0.0
        self._phase: Optional[str] = None

    def start(self, phase: str) -> None:
        """Open a bracket; the next :meth:`stop` charges this phase."""
        self._phase = phase
        self._t0 = perf_counter()

    def stop(self) -> None:
        """Close the open bracket and charge the elapsed time."""
        dt = perf_counter() - self._t0
        phase = self._phase
        if phase is not None:
            self.phases[phase] = self.phases.get(phase, 0.0) + dt
            self.calls[phase] = self.calls.get(phase, 0) + 1
            self._phase = None

    def add(self, phase: str, dt: float, calls: int = 1) -> None:
        """Charge a pre-measured delta to ``phase``."""
        self.phases[phase] = self.phases.get(phase, 0.0) + dt
        self.calls[phase] = self.calls.get(phase, 0) + calls

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's tallies into this one."""
        for phase, dt in other.phases.items():
            self.add(phase, dt, other.calls.get(phase, 0))
        self.wall_s += other.wall_s

    @property
    def total_s(self) -> float:
        """Sum of all attributed phase time."""
        return sum(self.phases.values())

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-phase seconds, call counts and share of attributed time,
        sorted by descending time (the BENCH_perf.json payload)."""
        total = self.total_s
        out: Dict[str, Dict[str, float]] = {}
        for phase in sorted(self.phases, key=self.phases.get, reverse=True):
            seconds = self.phases[phase]
            out[phase] = {
                "seconds": seconds,
                "calls": self.calls.get(phase, 0),
                "fraction": seconds / total if total > 0 else 0.0,
            }
        return out

    def summary(self) -> Dict:
        """Breakdown plus the instrumented run's wall-clock and coverage."""
        return {
            "wall_s": self.wall_s,
            "attributed_s": self.total_s,
            "coverage": self.total_s / self.wall_s if self.wall_s > 0 else 0.0,
            "phases": self.breakdown(),
        }
