"""Observability layer: lifecycle tracing, telemetry, self-profiling.

One subsystem, three concerns, all opt-in per run and all passive — a run
with observability attached produces a bit-identical schedule to one
without (golden-tested):

* **Trace bus** (:mod:`repro.obs.bus`): structured request-lifecycle spans
  (arrive → admit/shed → route → queue → select → execute →
  complete/violate) plus autoscaler scale events and energy powercap
  deferrals, with bounded-memory ring and streaming-JSONL sinks.
* **Chrome-trace exporter** (:mod:`repro.obs.chrome`): renders any traced
  schedule as per-accelerator lanes loadable in ``chrome://tracing`` /
  Perfetto.
* **Metrics registry + telemetry** (:mod:`repro.obs.metrics`):
  counters/gauges/histograms sampled on a simulated-time cadence into a
  deterministic time-series (queue depth, violations, pool occupancy,
  metered watts), exportable to CSV/JSON and bit-identical across sweep
  worker counts.
* **Self-profiling** (:mod:`repro.obs.profile`): wall-clock attribution to
  engine phases (event-heap ops, ready-queue update, batch scoring, router
  predict), recorded into ``BENCH_perf.json`` via ``repro perf --profile``.
* **SLO attribution** (:mod:`repro.obs.attribution`): a streaming
  :class:`~repro.obs.attribution.RequestLedger` that folds any trace
  stream into per-request queue/service/preempt/switch latency
  decompositions, aggregate per-pool blame, and a ranked worst-miss
  report (``repro explain`` / ``repro report``).
* **Alerting** (:mod:`repro.obs.alerts`): declarative rules (threshold,
  SLO error-budget burn rate, queue saturation, powercap breach)
  evaluated on the exact telemetry grid — deterministic alert streams,
  emitted onto the bus as ``alert`` events.

Engines take an ``obs=`` keyword holding an :class:`Observability` bundle.
``Observability.active`` normalizes a fully-disabled bundle to ``None``, so
the disabled path is *literally* the ``obs=None`` path — zero overhead
beyond one pointer check per instrumentation site.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.obs.alerts import (
    Alert,
    AlertEngine,
    BurnRateRule,
    PowercapRule,
    ThresholdRule,
    default_rules,
    evaluate_alerts,
    queue_saturation_rule,
)
from repro.obs.attribution import RequestLedger, RequestRecord, explain_request
from repro.obs.bus import (
    ENGINE_LANE,
    KIND_ALERT,
    KIND_ARRIVE,
    KIND_COMPLETE,
    KIND_EXECUTE,
    KIND_FAULT,
    KIND_POWERCAP,
    KIND_PREEMPT,
    KIND_QUEUE,
    KIND_RECOVER,
    KIND_ROUTE,
    KIND_SCALE,
    KIND_SELECT,
    KIND_SHED,
    KIND_SWITCH,
    KIND_VIOLATE,
    TERMINAL_KINDS,
    JsonlSink,
    ListSink,
    RingSink,
    TraceBus,
    TraceEvent,
    conservation_verdict,
    filter_events,
    iter_jsonl,
    read_jsonl,
    summarize_jsonl,
)
from repro.obs.chrome import export_chrome_trace, to_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Telemetry,
    read_telemetry_csv,
)
from repro.obs.profile import (
    PHASE_ARRIVALS,
    PHASE_EVENT_HEAP,
    PHASE_EXECUTE,
    PHASE_METRICS,
    PHASE_QUEUE_UPDATE,
    PHASE_ROUTE,
    PHASE_SELECT,
    PhaseProfiler,
)
from repro.obs.report import build_report, render_markdown


class Observability:
    """Per-run bundle of the three observability concerns.

    Args:
        trace: Enable the lifecycle trace bus (default ring sink).
        sinks: Explicit trace sinks (implies ``trace=True``).
        trace_capacity: Ring capacity of the default sink.
        telemetry: Sampling interval in simulated seconds, or a prepared
            :class:`Telemetry` instance; ``None`` disables time-series
            sampling.
        profile: Enable wall-clock phase attribution.
    """

    def __init__(
        self,
        *,
        trace: bool = False,
        sinks: Optional[Sequence] = None,
        trace_capacity: int = 1 << 20,
        telemetry: Optional[Union[float, Telemetry]] = None,
        profile: bool = False,
    ):
        self.bus: Optional[TraceBus] = (
            TraceBus(sinks, capacity=trace_capacity)
            if trace or sinks is not None else None
        )
        if telemetry is None:
            self.telemetry: Optional[Telemetry] = None
        elif isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
        else:
            self.telemetry = Telemetry(interval=float(telemetry))
        self.profiler: Optional[PhaseProfiler] = (
            PhaseProfiler() if profile else None
        )

    @property
    def enabled(self) -> bool:
        """Whether any concern is switched on."""
        return (self.bus is not None or self.telemetry is not None
                or self.profiler is not None)

    @staticmethod
    def active(obs: Optional["Observability"]) -> Optional["Observability"]:
        """``obs`` if anything is enabled, else ``None``.

        Engines call this once at entry, so a constructed-but-disabled
        bundle takes the exact ``obs=None`` code path.
        """
        return obs if obs is not None and obs.enabled else None

    def close(self) -> None:
        """Flush trace sinks (streaming JSONL files in particular)."""
        if self.bus is not None:
            self.bus.close()


__all__ = [
    "Observability",
    "TraceBus",
    "TraceEvent",
    "RingSink",
    "ListSink",
    "JsonlSink",
    "read_jsonl",
    "iter_jsonl",
    "summarize_jsonl",
    "conservation_verdict",
    "filter_events",
    "RequestLedger",
    "RequestRecord",
    "explain_request",
    "Alert",
    "AlertEngine",
    "ThresholdRule",
    "BurnRateRule",
    "PowercapRule",
    "queue_saturation_rule",
    "default_rules",
    "evaluate_alerts",
    "build_report",
    "render_markdown",
    "to_chrome_trace",
    "export_chrome_trace",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "read_telemetry_csv",
    "PhaseProfiler",
    "ENGINE_LANE",
    "TERMINAL_KINDS",
    "KIND_ARRIVE",
    "KIND_SHED",
    "KIND_ROUTE",
    "KIND_QUEUE",
    "KIND_SELECT",
    "KIND_SWITCH",
    "KIND_PREEMPT",
    "KIND_EXECUTE",
    "KIND_COMPLETE",
    "KIND_VIOLATE",
    "KIND_SCALE",
    "KIND_POWERCAP",
    "KIND_FAULT",
    "KIND_RECOVER",
    "KIND_ALERT",
    "PHASE_ARRIVALS",
    "PHASE_SELECT",
    "PHASE_EXECUTE",
    "PHASE_QUEUE_UPDATE",
    "PHASE_EVENT_HEAP",
    "PHASE_ROUTE",
    "PHASE_METRICS",
]
