"""Sparsity substrate: static weight-sparsity patterns (Sec 3.2) and
input-dependent dynamic sparsity models (Sec 2.3.1)."""

from repro.sparsity.patterns import (
    SparsityPattern,
    WeightSparsityConfig,
    apply_pattern,
    channel_mask,
    measured_sparsity,
    nm_block_mask,
    pattern_pe_utilization,
    random_mask,
)
from repro.sparsity.dynamic import CorrelatedSparsityModel
from repro.sparsity.datasets import (
    DATASET_FOR_MODEL,
    DatasetProfile,
    activation_model_for,
    list_datasets,
)

__all__ = [
    "SparsityPattern",
    "WeightSparsityConfig",
    "apply_pattern",
    "channel_mask",
    "measured_sparsity",
    "nm_block_mask",
    "pattern_pe_utilization",
    "random_mask",
    "CorrelatedSparsityModel",
    "DATASET_FOR_MODEL",
    "DatasetProfile",
    "activation_model_for",
    "list_datasets",
]
