"""Dataset profiles: statistical stand-ins for the paper's input datasets.

The paper profiles each (model, dataset) pair into per-layer sparsity
distributions (Sec 3.3, Fig 7 "Phase 1").  We cannot ship ImageNet/ExDark/
DarkFace/COCO/SQuAD/GLUE, so each dataset is represented by a
:class:`DatasetProfile` describing how activation (or attention) sparsity is
distributed across layers and samples.  Profile parameters encode the paper's
measurements:

* in-distribution vision inputs (ImageNet/COCO) give moderate ReLU sparsity
  with modest variance;
* low-light inputs (ExDark/DarkFace) give *higher* sparsity with much larger
  variance (Sec 2.3.1's out-of-distribution argument, Fig 3);
* language inputs give attention sparsity between ~30% and ~90% depending on
  prompt complexity (Fig 1(c)), highly correlated across layers (Fig 9).

Deterministic per-layer "wiggle" (hashed from the layer name) differentiates
layers so that per-layer means are stable across runs without an RNG.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import SparsityError
from repro.models.graph import DynamicKind, ModelGraph
from repro.sparsity.dynamic import CorrelatedSparsityModel

#: Sparsity assigned to layers with no dynamic-sparsity source (a few
#: incidental zeros always exist in practice).
_STATIC_LAYER_MEAN = 0.02
_STATIC_LAYER_STD = 0.005


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical profile of one input dataset.

    Attributes:
        name: Dataset identifier.
        kind: "vision" (drives ReLU sparsity) or "language" (drives attention
            sparsity; ReLU/GELU layers get a fixed moderate profile).
        base_mean: Mean sparsity of the shallowest dynamic layer.
        depth_slope: Added mean sparsity from the first to the last layer
            (deeper CNN layers are sparser, Fig 3).
        std: Per-layer sparsity standard deviation across samples.
        rho: Inter-layer correlation of the per-sample sparsity vector.
        wiggle: Amplitude of the deterministic per-layer mean perturbation.
    """

    name: str
    kind: str
    base_mean: float
    depth_slope: float
    std: float
    rho: float
    wiggle: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in ("vision", "language"):
            raise SparsityError(f"dataset kind must be vision|language, got {self.kind!r}")


_PROFILES: Dict[str, DatasetProfile] = {
    # Vision profiles reconcile two paper measurements: per-layer sparsity
    # varies widely across inputs (Fig 3, ~10-45% whiskers) while the
    # *network* sparsity (mean over layers) has a modest relative range
    # (Table 2, 15-29%).  That is only possible with low inter-layer
    # correlation — per-layer excursions average out across the network —
    # so vision rho is small (unlike the near-unit AttNN rho of Fig 9).
    "imagenet": DatasetProfile("imagenet", "vision", 0.30, 0.18, 0.065, 0.05),
    "coco": DatasetProfile("coco", "vision", 0.32, 0.15, 0.070, 0.05),
    "exdark": DatasetProfile("exdark", "vision", 0.33, 0.19, 0.080, 0.08),
    "darkface": DatasetProfile("darkface", "vision", 0.345, 0.17, 0.085, 0.08),
    "squad": DatasetProfile("squad", "language", 0.55, 0.10, 0.14, 0.97),
    "glue": DatasetProfile("glue", "language", 0.60, 0.08, 0.15, 0.97),
}

#: Default dataset per benchmark model (Table 3 task/dataset binding).
DATASET_FOR_MODEL: Dict[str, str] = {
    "resnet50": "imagenet",
    "vgg16": "imagenet",
    "mobilenet": "imagenet",
    "googlenet": "imagenet",
    "inception_v3": "imagenet",
    "ssd": "coco",
    "bert": "squad",
    "gpt2": "glue",
    "bart": "glue",
}

#: Vision evaluation mixes in low-light inputs to emulate real deployments
#: (Sec 2.3.1): (dataset, weight) pairs.
VISION_MIXTURE: Tuple[Tuple[str, float], ...] = (
    ("__primary__", 0.70),
    ("exdark", 0.15),
    ("darkface", 0.15),
)

#: Sparsity of GELU/ReLU FFN activations inside AttNNs (independent of the
#: prompt-driven attention sparsity).
_LANGUAGE_RELU_MEAN = 0.45
_LANGUAGE_RELU_STD = 0.05


def list_datasets() -> List[str]:
    return sorted(_PROFILES)


def dataset_for(model_name: str, default: str = "imagenet") -> str:
    """Table 3 dataset binding, tolerant of builder variants.

    Sequence-length variants like ``bert_s128`` inherit the base model's
    dataset.
    """
    if model_name in DATASET_FOR_MODEL:
        return DATASET_FOR_MODEL[model_name]
    base = model_name.split("_s")[0]
    return DATASET_FOR_MODEL.get(base, default)


def get_profile(name: str) -> DatasetProfile:
    try:
        return _PROFILES[name]
    except KeyError:
        raise SparsityError(f"unknown dataset {name!r}; available: {list_datasets()}") from None


def _layer_wiggle(layer_name: str, amplitude: float) -> float:
    """Deterministic mean perturbation in [-amplitude, +amplitude]."""
    h = zlib.crc32(layer_name.encode("utf-8")) & 0xFFFFFFFF
    return amplitude * (2.0 * (h / 0xFFFFFFFF) - 1.0)


def activation_model_for(model: ModelGraph, dataset: str) -> CorrelatedSparsityModel:
    """Build the per-layer dynamic-sparsity model of ``model`` on ``dataset``.

    Layers whose :class:`DynamicKind` matches the dataset's driving source get
    the dataset's distribution (with depth-dependent mean); all other layers
    get a near-zero static profile.
    """
    profile = get_profile(dataset)
    dyn_indices = [
        i for i, layer in enumerate(model.layers) if layer.dynamic is not DynamicKind.NONE
    ]
    depth_of = {idx: rank for rank, idx in enumerate(dyn_indices)}
    n_dyn = max(len(dyn_indices), 1)

    means: List[float] = []
    stds: List[float] = []
    for i, layer in enumerate(model.layers):
        if layer.dynamic is DynamicKind.NONE:
            means.append(_STATIC_LAYER_MEAN)
            stds.append(_STATIC_LAYER_STD)
            continue
        driving = "language" if layer.dynamic is DynamicKind.ATTENTION else "vision"
        if profile.kind == driving:
            frac = depth_of[i] / max(n_dyn - 1, 1)
            mean = profile.base_mean + profile.depth_slope * frac
            mean += _layer_wiggle(layer.name, profile.wiggle)
            means.append(min(max(mean, 0.05), 0.95))
            stds.append(profile.std)
        elif layer.dynamic is DynamicKind.RELU:
            # Language dataset driving an AttNN: FFN activations still carry
            # moderate input-dependent sparsity.
            mean = _LANGUAGE_RELU_MEAN + _layer_wiggle(layer.name, profile.wiggle)
            means.append(min(max(mean, 0.05), 0.95))
            stds.append(_LANGUAGE_RELU_STD)
        else:
            # Vision dataset on an attention layer cannot happen for the zoo,
            # but keep a sane fallback for user-defined models.
            means.append(_STATIC_LAYER_MEAN)
            stds.append(_STATIC_LAYER_STD)
    return CorrelatedSparsityModel(
        means=tuple(means), stds=tuple(stds), rho=profile.rho
    )


def vision_mixture_for(model: ModelGraph) -> Tuple[List[CorrelatedSparsityModel], List[float]]:
    """Mixture components for a vision model's evaluation traffic: its primary
    dataset plus low-light ExDark/DarkFace inputs (paper Sec 2.3.1)."""
    primary = dataset_for(model.name)
    components: List[CorrelatedSparsityModel] = []
    weights: List[float] = []
    for slot, weight in VISION_MIXTURE:
        dataset = primary if slot == "__primary__" else slot
        components.append(activation_model_for(model, dataset))
        weights.append(weight)
    return components, weights
