"""Static weight-sparsity patterns (paper Sec 3.2, Fig 6).

Three pruning patterns are supported on numpy weight tensors:

* **random** — point-wise unstructured pruning (Han et al.);
* **nm_block** — N:M block-wise structured pruning (keep N of every M
  contiguous weights, as in NVIDIA Sparse Tensor Cores);
* **channel** — channel-wise pruning (zero whole output channels).

Besides exact mask generation, this module also models the *hardware-visible*
effect of each pattern: the PE-array utilization an accelerator achieves when
zero-skipping that pattern, and how the pattern's survivor set overlaps with
activation sparsity.  These two effects are what make equal-rate patterns
yield different valid-MAC counts (paper Fig 4, up to ~40% apart).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SparsityError


class SparsityPattern(enum.Enum):
    """Weight-mask structure applied when pruning (paper Fig 6)."""

    DENSE = "dense"
    RANDOM = "random"
    NM_BLOCK = "nm_block"
    CHANNEL = "channel"


@dataclass(frozen=True)
class WeightSparsityConfig:
    """How a model's weights were sparsified.

    Attributes:
        pattern: Mask structure.
        rate: Fraction of weights pruned, in [0, 1).  Ignored for DENSE.
        nm: (N, M) for the NM_BLOCK pattern — N survivors per M-block; the
            implied rate is ``1 - N/M`` and overrides ``rate``.
    """

    pattern: SparsityPattern
    rate: float = 0.0
    nm: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.pattern is SparsityPattern.NM_BLOCK:
            if self.nm is None:
                raise SparsityError("NM_BLOCK pattern requires nm=(N, M)")
            n, m = self.nm
            if not (0 < n < m):
                raise SparsityError(f"invalid N:M spec {self.nm}: need 0 < N < M")
        elif not 0.0 <= self.rate < 1.0:
            raise SparsityError(f"sparsity rate must be in [0, 1), got {self.rate}")

    @property
    def effective_rate(self) -> float:
        """Fraction of weights removed by the mask."""
        if self.pattern is SparsityPattern.DENSE:
            return 0.0
        if self.pattern is SparsityPattern.NM_BLOCK:
            n, m = self.nm  # type: ignore[misc]
            return 1.0 - n / m
        return self.rate

    @property
    def key(self) -> str:
        """Stable identifier for LUT keys and trace-file names."""
        if self.pattern is SparsityPattern.NM_BLOCK:
            n, m = self.nm  # type: ignore[misc]
            return f"nm{n}:{m}"
        if self.pattern is SparsityPattern.DENSE:
            return "dense"
        return f"{self.pattern.value}{self.rate:.2f}"


DENSE = WeightSparsityConfig(SparsityPattern.DENSE)


def random_mask(shape: Tuple[int, ...], rate: float, rng: np.random.Generator) -> np.ndarray:
    """Point-wise random mask: each weight survives independently w.p. 1-rate,
    with the global count matched exactly (magnitude-pruning analogue)."""
    if not 0.0 <= rate < 1.0:
        raise SparsityError(f"rate must be in [0, 1), got {rate}")
    size = int(np.prod(shape))
    n_zero = int(round(size * rate))
    mask = np.ones(size, dtype=bool)
    zero_idx = rng.choice(size, size=n_zero, replace=False)
    mask[zero_idx] = False
    return mask.reshape(shape)


def nm_block_mask(shape: Tuple[int, ...], n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """N:M structured mask along the last axis: in every contiguous group of
    M weights exactly N survive (positions chosen at random, standing in for
    magnitude selection)."""
    if not 0 < n < m:
        raise SparsityError(f"need 0 < N < M, got N={n} M={m}")
    size = int(np.prod(shape))
    if size % m != 0:
        raise SparsityError(f"tensor size {size} is not divisible by M={m}")
    groups = size // m
    scores = rng.random((groups, m))
    # Keep the N largest-scored positions per group.
    keep_rank = np.argsort(scores, axis=1)[:, m - n:]
    mask = np.zeros((groups, m), dtype=bool)
    np.put_along_axis(mask, keep_rank, True, axis=1)
    return mask.reshape(shape)


def channel_mask(shape: Tuple[int, ...], rate: float, rng: np.random.Generator) -> np.ndarray:
    """Channel-wise mask: prune whole output channels (axis 0)."""
    if not 0.0 <= rate < 1.0:
        raise SparsityError(f"rate must be in [0, 1), got {rate}")
    if len(shape) < 2:
        raise SparsityError("channel pruning needs a >=2-D weight tensor")
    channels = shape[0]
    n_zero = int(round(channels * rate))
    if n_zero >= channels:
        n_zero = channels - 1
    mask = np.ones(channels, dtype=bool)
    zero_idx = rng.choice(channels, size=n_zero, replace=False)
    mask[zero_idx] = False
    expand = (channels,) + (1,) * (len(shape) - 1)
    return np.broadcast_to(mask.reshape(expand), shape).copy()


def apply_pattern(
    weights: np.ndarray, config: WeightSparsityConfig, rng: np.random.Generator
) -> np.ndarray:
    """Return a sparsified copy of ``weights`` under the given pattern."""
    if config.pattern is SparsityPattern.DENSE:
        return weights.copy()
    if config.pattern is SparsityPattern.RANDOM:
        mask = random_mask(weights.shape, config.rate, rng)
    elif config.pattern is SparsityPattern.NM_BLOCK:
        n, m = config.nm  # type: ignore[misc]
        mask = nm_block_mask(weights.shape, n, m, rng)
    elif config.pattern is SparsityPattern.CHANNEL:
        mask = channel_mask(weights.shape, config.rate, rng)
    else:  # pragma: no cover - exhaustive enum
        raise SparsityError(f"unknown pattern {config.pattern}")
    return np.where(mask, weights, 0.0)


def measured_sparsity(tensor: np.ndarray) -> float:
    """Fraction of exactly-zero entries."""
    if tensor.size == 0:
        raise SparsityError("cannot measure sparsity of an empty tensor")
    return float(np.count_nonzero(tensor == 0.0)) / tensor.size


# --------------------------------------------------------------------------
# Hardware-visible pattern effects (consumed by the accelerator models).
# --------------------------------------------------------------------------

# PE-array utilization when zero-skipping each pattern.  Structured patterns
# keep the array load-balanced; point-wise random sparsity causes workload
# imbalance across PEs (Sec 2.3.2: pattern support depends on the hardware).
_PE_UTILIZATION = {
    SparsityPattern.DENSE: 0.92,
    SparsityPattern.RANDOM: 0.72,
    SparsityPattern.NM_BLOCK: 0.90,
    SparsityPattern.CHANNEL: 0.96,
}

# How the survivor weights overlap with activation zeros.  Channel pruning
# removes the *least informative* channels, so surviving channels see denser
# activations than average; random pruning overlaps independently.
_ACTIVATION_OVERLAP_GAIN = {
    SparsityPattern.DENSE: 0.0,
    SparsityPattern.RANDOM: 0.0,
    SparsityPattern.NM_BLOCK: 0.05,
    SparsityPattern.CHANNEL: 0.35,
}


def pattern_pe_utilization(pattern: SparsityPattern) -> float:
    """Average PE utilization a zero-skipping array achieves on the pattern."""
    return _PE_UTILIZATION[pattern]


def pattern_overlap_gain(config: WeightSparsityConfig) -> float:
    """Activation-density inflation factor for the pattern's survivor set."""
    return _ACTIVATION_OVERLAP_GAIN[config.pattern] * config.effective_rate


def effective_densities(
    config: WeightSparsityConfig, activation_sparsity: float
) -> Tuple[float, float]:
    """(weight density, activation density seen by surviving weights).

    The activation density is inflated for structured patterns whose pruning
    criterion anti-correlates with activation zeros (channel pruning keeps the
    channels that fire most).  This interplay is what separates the valid-MAC
    distributions of equal-rate patterns in Fig 4.
    """
    if not 0.0 <= activation_sparsity <= 1.0:
        raise SparsityError(
            f"activation sparsity must be in [0, 1], got {activation_sparsity}"
        )
    w_density = 1.0 - config.effective_rate
    gain = _ACTIVATION_OVERLAP_GAIN[config.pattern] * config.effective_rate
    a_density = min(1.0, (1.0 - activation_sparsity) * (1.0 + gain))
    return w_density, a_density


def valid_mac_fraction(config: WeightSparsityConfig, activation_sparsity: float) -> float:
    """Fraction of a layer's dense MACs that remain effectual."""
    w_density, a_density = effective_densities(config, activation_sparsity)
    return w_density * a_density
