"""Input-dependent (dynamic) sparsity model.

The paper's profiling (Sec 2.3.1, Figs 2/3/9, Table 2) characterizes dynamic
sparsity by three properties that this sampler reproduces:

1. per-layer activation sparsity varies substantially across input samples
   (Fig 3: ~10%-45% for CNN layers; Fig 2: 0.6x-1.8x latency for BERT);
2. sparsities of different layers of the same model are *highly linearly
   correlated* for a given input (Fig 9) — an informative input densifies
   every layer at once;
3. the network-level sparsity (mean over layers) has a significant relative
   range across a dataset (Table 2: 15%-28%).

We therefore model the per-sample sparsity vector with a single-factor
Gaussian copula: a latent per-sample "informativeness" factor ``z`` shifts all
layers together, plus independent per-layer noise.  ``rho`` is the share of
variance carried by the common factor, so the Pearson correlation between any
two layers is approximately ``rho``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SparsityError


@dataclass(frozen=True)
class CorrelatedSparsityModel:
    """Single-factor model of per-sample, per-layer sparsity.

    Attributes:
        means: Per-layer mean sparsity, each in (0, 1).
        stds: Per-layer sparsity standard deviation.
        rho: Inter-layer correlation (variance share of the common factor).
        lo, hi: Clipping bounds keeping samples inside a valid range.
    """

    means: Tuple[float, ...]
    stds: Tuple[float, ...]
    rho: float
    lo: float = 0.02
    hi: float = 0.98

    def __post_init__(self) -> None:
        if len(self.means) != len(self.stds):
            raise SparsityError("means and stds must have equal length")
        if not self.means:
            raise SparsityError("sparsity model needs at least one layer")
        if not 0.0 <= self.rho <= 1.0:
            raise SparsityError(f"rho must be in [0, 1], got {self.rho}")
        if not 0.0 <= self.lo < self.hi <= 1.0:
            raise SparsityError(f"invalid clip bounds [{self.lo}, {self.hi}]")
        for i, (m, s) in enumerate(zip(self.means, self.stds)):
            if not 0.0 < m < 1.0:
                raise SparsityError(f"layer {i}: mean sparsity {m} outside (0, 1)")
            if s < 0.0:
                raise SparsityError(f"layer {i}: negative std {s}")

    @property
    def num_layers(self) -> int:
        return len(self.means)

    def sample(self, n_samples: int, rng: np.random.Generator) -> np.ndarray:
        """Draw an ``(n_samples, num_layers)`` matrix of layer sparsities."""
        if n_samples <= 0:
            raise SparsityError(f"n_samples must be positive, got {n_samples}")
        z = rng.standard_normal((n_samples, 1))
        eps = rng.standard_normal((n_samples, self.num_layers))
        common = np.sqrt(self.rho) * z
        idio = np.sqrt(1.0 - self.rho) * eps
        means = np.asarray(self.means)
        stds = np.asarray(self.stds)
        s = means + stds * (common + idio)
        return np.clip(s, self.lo, self.hi)

    def network_sparsity(self, samples: np.ndarray) -> np.ndarray:
        """Network sparsity per sample: the mean of layer sparsities
        (paper Table 2 definition)."""
        if samples.ndim != 2 or samples.shape[1] != self.num_layers:
            raise SparsityError(
                f"expected samples of shape (n, {self.num_layers}), got {samples.shape}"
            )
        return samples.mean(axis=1)


def relative_range(values: Sequence[float]) -> float:
    """Relative range statistic used in Table 2: (max - min) / mean."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise SparsityError("relative_range of empty sequence")
    mean = arr.mean()
    if mean == 0.0:
        raise SparsityError("relative_range undefined for zero-mean values")
    return float((arr.max() - arr.min()) / mean)


def correlation_matrix(samples: np.ndarray) -> np.ndarray:
    """Pearson correlation between layers over samples (paper Fig 9)."""
    if samples.ndim != 2 or samples.shape[0] < 2:
        raise SparsityError("need a (n>=2, layers) sample matrix")
    return np.corrcoef(samples, rowvar=False)


def mixture_sample(
    models: Sequence[CorrelatedSparsityModel],
    weights: Sequence[float],
    n_samples: int,
    rng: np.random.Generator,
    component_out: Optional[list] = None,
) -> np.ndarray:
    """Sample from a mixture of sparsity models (e.g. ImageNet + ExDark +
    DarkFace inputs hitting the same deployed model).

    Args:
        models: Mixture components; all must share a layer count.
        weights: Mixture weights (normalized internally).
        component_out: If given, receives the component index of each sample.
    """
    if not models:
        raise SparsityError("mixture needs at least one component")
    if len(models) != len(weights):
        raise SparsityError("models and weights must have equal length")
    layer_counts = {m.num_layers for m in models}
    if len(layer_counts) != 1:
        raise SparsityError(f"mixture components disagree on layer count: {layer_counts}")
    w = np.asarray(weights, dtype=float)
    if (w < 0).any() or w.sum() == 0:
        raise SparsityError("mixture weights must be non-negative and not all zero")
    w = w / w.sum()
    choices = rng.choice(len(models), size=n_samples, p=w)
    out = np.empty((n_samples, models[0].num_layers))
    for idx, model in enumerate(models):
        pick = choices == idx
        count = int(pick.sum())
        if count:
            out[pick] = model.sample(count, rng)
    if component_out is not None:
        component_out.extend(choices.tolist())
    return out
