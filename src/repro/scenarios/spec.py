"""Declarative scenarios: named phases stitched into one request stream.

A :class:`ScenarioSpec` upgrades the one-shot ``WorkloadSpec`` world to a
timeline: each :class:`Phase` pairs an arrival-rate :class:`~.shapes.Shape`
with a duration and the traffic *content* for that span — SLO mix, priority
mix, model mix.  :func:`iter_scenario` samples every phase's arrivals via
thinning, offsets them onto the global timeline (the same phase-stitching
that ``WorkloadSpec.start_time`` enables for plain workloads), and yields
requests lazily in arrival order — the same contract as
:func:`repro.sim.workload.iter_workload`, so scenarios drive ``simulate``,
``simulate_multi`` and the streaming cluster engine unchanged.

The registry at the bottom names the canonical scenario families the sweep
runner and CLI expose: steady, ramp, diurnal, flash_crowd, multi_tenant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchedulingError
from repro.profiling.trace import TraceSet
from repro.sim.request import Request
from repro.sim.workload import check_class_mix, draw_class_mix, request_from_trace

from repro.scenarios.shapes import (
    Constant,
    Diurnal,
    Ramp,
    Shape,
    Spike,
    Superpose,
    sample_arrivals,
)

ClassMix = Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class Phase:
    """One span of the scenario timeline.

    Attributes:
        name: Phase label (carried into results for per-phase analysis).
        shape: Arrival-intensity shape over phase-local time.
        duration: Phase length in seconds.
        slo_multiplier: Flat SLO multiplier (SLO = T_isol x multiplier).
        slo_classes: Optional (multiplier, weight) mixture; overrides the
            flat multiplier, as in ``WorkloadSpec``.
        priority_classes: Optional (priority, weight) mixture.
        model_mix: Optional (trace-set key, weight) mixture; ``None`` draws
            uniformly over all profiled trace sets.
    """

    name: str
    shape: Shape
    duration: float
    slo_multiplier: float = 10.0
    slo_classes: Optional[ClassMix] = None
    priority_classes: Optional[ClassMix] = None
    model_mix: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("phase name must be non-empty")
        if self.duration <= 0:
            raise SchedulingError(
                f"phase {self.name!r}: duration must be positive, got {self.duration}"
            )
        if self.slo_multiplier <= 0:
            raise SchedulingError(
                f"phase {self.name!r}: slo multiplier must be positive"
            )
        check_class_mix(f"phase {self.name!r} slo_classes", self.slo_classes)
        check_class_mix(f"phase {self.name!r} priority_classes",
                        self.priority_classes)
        if self.model_mix is not None:
            if not self.model_mix:
                raise SchedulingError(
                    f"phase {self.name!r}: model_mix must be None or non-empty"
                )
            for key, weight in self.model_mix:
                if not key or weight < 0:
                    raise SchedulingError(
                        f"phase {self.name!r}: invalid model_mix entry "
                        f"({key!r}, {weight})"
                    )
            if sum(w for _, w in self.model_mix) <= 0:
                raise SchedulingError(
                    f"phase {self.name!r}: model_mix weights must not all be zero"
                )


@dataclass(frozen=True)
class ScenarioSpec:
    """A named sequence of phases forming one traffic scenario."""

    name: str
    phases: Tuple[Phase, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("scenario name must be non-empty")
        if not self.phases:
            raise SchedulingError(f"scenario {self.name!r} needs at least one phase")

    @property
    def duration(self) -> float:
        return sum(p.duration for p in self.phases)

    def expected_requests(self) -> float:
        """Expected request count (sum of phase intensity integrals)."""
        return sum(p.shape.expected_requests(p.duration) for p in self.phases)

    def describe(self) -> str:
        spans = ", ".join(
            f"{p.name}[{p.shape.__class__.__name__} {p.duration:g}s]"
            for p in self.phases
        )
        return f"{self.name}: {spans} (~{self.expected_requests():.0f} requests)"


def iter_scenario(
    traces: Dict[str, TraceSet],
    spec: ScenarioSpec,
    *,
    seed: Optional[int] = None,
) -> Iterator[Request]:
    """Yield the scenario's requests lazily, in global arrival order.

    Each phase draws from an independent RNG stream seeded by
    ``(seed, phase index)``, so inserting or editing one phase never
    perturbs the randomness of the others.  Only O(n) scalars per phase
    (arrival times, class draws) are materialized — never n live
    ``Request`` objects — matching ``iter_workload``'s lazy contract.

    Args:
        seed: Overrides ``spec.seed`` (the sweep runner's per-cell seed).
    """
    if not traces:
        raise SchedulingError("cannot generate a scenario from an empty trace dict")
    base_seed = spec.seed if seed is None else seed
    all_keys: List[str] = sorted(traces)
    rid = 0
    offset = 0.0
    for phase_idx, phase in enumerate(spec.phases):
        # Validate the phase's model mix even when it samples zero arrivals,
        # so a misconfigured spec never passes on a lucky seed or low rate.
        if phase.model_mix is not None:
            missing = [k for k, _ in phase.model_mix if k not in traces]
            if missing:
                raise SchedulingError(
                    f"phase {phase.name!r}: model_mix keys {missing} not in "
                    f"the profiled trace sets ({all_keys})"
                )
        rng = np.random.default_rng([base_seed, phase_idx])
        arrivals = sample_arrivals(phase.shape, phase.duration, rng,
                                   start_time=offset)
        n = len(arrivals)
        offset += phase.duration
        if n == 0:
            continue
        if phase.model_mix is None:
            keys = all_keys
            key_idx = rng.integers(len(keys), size=n)
        else:
            keys = [k for k, _ in phase.model_mix]
            weights = np.array([w for _, w in phase.model_mix], dtype=float)
            key_idx = rng.choice(len(keys), size=n, p=weights / weights.sum())
        multipliers = draw_class_mix(phase.slo_classes, phase.slo_multiplier,
                                     n, rng)
        priorities = draw_class_mix(phase.priority_classes, 1.0, n, rng)
        for i in range(n):
            trace = traces[keys[int(key_idx[i])]]
            row = int(rng.integers(trace.num_samples))
            yield request_from_trace(
                trace, row,
                rid=rid,
                arrival=float(arrivals[i]),
                slo_multiplier=float(multipliers[i]),
                priority=float(priorities[i]),
            )
            rid += 1


def generate_scenario(
    traces: Dict[str, TraceSet],
    spec: ScenarioSpec,
    *,
    seed: Optional[int] = None,
) -> List[Request]:
    """Materialize :func:`iter_scenario` as a list (for the batch engines)."""
    return list(iter_scenario(traces, spec, seed=seed))


# --------------------------------------------------------------------------
# Named scenario registry
# --------------------------------------------------------------------------


def _steady(rate: float, duration: float, slo: float) -> Tuple[Phase, ...]:
    """Stationary Poisson traffic — the paper's operating point."""
    return (Phase("steady", Constant(rate), duration, slo_multiplier=slo),)


def _ramp(rate: float, duration: float, slo: float) -> Tuple[Phase, ...]:
    """Cold start: traffic ramps from 20% to 150% of base, then sustains."""
    return (
        Phase("rampup", Ramp(0.2 * rate, 1.5 * rate, 0.6 * duration),
              0.6 * duration, slo_multiplier=slo),
        Phase("sustain", Constant(1.5 * rate), 0.4 * duration,
              slo_multiplier=slo),
    )


def _diurnal(rate: float, duration: float, slo: float) -> Tuple[Phase, ...]:
    """Two day/night cycles: sinusoid around base with 80% swing."""
    return (
        Phase("diurnal", Diurnal(rate, amplitude=0.8, period=duration / 2.0),
              duration, slo_multiplier=slo),
    )


def _flash_crowd(rate: float, duration: float, slo: float) -> Tuple[Phase, ...]:
    """Calm baseline, a 4x Gaussian surge mid-timeline, then recovery."""
    crowd = Superpose(
        Constant(rate),
        Spike(0.0, 3.0 * rate, at=0.15 * duration, width=0.05 * duration),
    )
    return (
        Phase("calm", Constant(rate), 0.4 * duration, slo_multiplier=slo),
        Phase("crowd", crowd, 0.3 * duration, slo_multiplier=slo),
        Phase("recovery", Constant(rate), 0.3 * duration, slo_multiplier=slo),
    )


def _multi_tenant(rate: float, duration: float, slo: float) -> Tuple[Phase, ...]:
    """Two tenants sharing the accelerator: a latency-critical minority
    (tight SLO, high priority) over a best-effort majority."""
    return (
        Phase(
            "tenants", Constant(rate), duration,
            slo_classes=((max(0.3 * slo, 1.0), 0.3), (2.0 * slo, 0.7)),
            priority_classes=((4.0, 0.3), (1.0, 0.7)),
        ),
    )


_SCENARIOS: Dict[str, Callable[[float, float, float], Tuple[Phase, ...]]] = {
    "steady": _steady,
    "ramp": _ramp,
    "diurnal": _diurnal,
    "flash_crowd": _flash_crowd,
    "multi_tenant": _multi_tenant,
}


def available_scenarios() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_SCENARIOS)


def scenario_descriptions() -> Dict[str, str]:
    """Name → one-line description (the factory docstring's first line)."""
    return {
        name: next(iter((factory.__doc__ or "").strip().splitlines()), "")
        for name, factory in sorted(_SCENARIOS.items())
    }


def build_scenario(
    name: str,
    *,
    base_rate: float,
    duration: float,
    slo_multiplier: float = 10.0,
    seed: int = 0,
) -> ScenarioSpec:
    """Instantiate a registered scenario at a base rate and total duration."""
    if name not in _SCENARIOS:
        raise SchedulingError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    if base_rate <= 0:
        raise SchedulingError(f"base rate must be positive, got {base_rate}")
    if duration <= 0:
        raise SchedulingError(f"duration must be positive, got {duration}")
    phases = _SCENARIOS[name](base_rate, duration, slo_multiplier)
    return ScenarioSpec(name=name, phases=phases, seed=seed)
