"""Parallel scenario sweep runner with a resumable results store.

A sweep is the cartesian grid **scenario x scheduler x seed**.  Every cell
is an independent deterministic simulation: its workload seed derives only
from (scenario, seed) — never from the scheduler — so competing policies
see bit-identical request streams, and never from the process that happens
to run it — so the results store is identical whatever ``workers`` is.

Cells are keyed ``scenario/scheduler/seed<N>`` in the store; re-running a
sweep against an existing store skips completed cells (crash-safe,
incremental grids: add a scheduler or seed and only the new cells run).
The store refuses to mix grids generated under different workload
configurations.

Results land in a :class:`~repro.warehouse.store.Warehouse` directory by
default — appends are O(1) per cell and every byte is deterministic, so
interrupted sweeps resume to the exact store an uninterrupted run would
have produced, for any worker count.  An ``out_path`` with a ``.json``
suffix selects the legacy monolithic JSON store instead (kept for
compatibility; it rewrites the whole file per cell, which is O(cells²)
I/O over a sweep).  Alongside the deterministic results, warehouse sweeps
record per-cell *cost* rows (wall-clock seconds, peak worker RSS) in the
store's non-deterministic sidecar, and an optional
:class:`~repro.warehouse.telemetry.SweepTelemetry` publishes live
throughput / ETA / failure metrics while the grid runs.

Cells run on the single-NPU engine by default; ``engine="cluster"`` runs
each cell through :func:`repro.cluster.engine.simulate_cluster` instead —
one elastic pool of ``pool_size`` accelerators, optionally autoscaled
(``autoscale="reactive" | "target-utilization" | "predictive"``) and
depth-limited (``max_queue_depth``) — and records the autoscaler's cost
metrics (accelerator-seconds provisioned vs used, scale events, sheds
under scale lag) in the per-cell JSON.  ``energy=True`` additionally
records energy columns (joules/request, EDP, and the joule-denominated
capacity cost on cluster cells) via a per-cell
:class:`~repro.energy.accounting.EnergyAccountant`.  All cells keep the
same determinism contract: the numbers are bit-identical for any worker
count.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import zlib
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import SchedulingError
from repro.sim.engine import simulate

from repro.scenarios.spec import available_scenarios, build_scenario, generate_scenario

#: Per-cell metrics copied from the simulation summary into the store.
METRIC_KEYS = ("antt", "violation_rate", "stp", "p50", "p95", "p99")

#: Extra per-cell metrics recorded for cluster-engine cells (autoscaler
#: cost accounting; present with zero scale events for fixed pools too).
COST_KEYS = (
    "shed_rate",
    "acc_seconds_provisioned",
    "acc_seconds_used",
    "provisioned_utilization",
    "num_scale_events",
    "shed_under_scale_lag",
)

#: Per-cell energy metrics recorded when ``SweepConfig(energy=True)``.
ENERGY_KEYS = ("energy_per_request", "total_joules", "edp")

#: Per-cell fault metrics recorded when ``SweepConfig(faults=...)`` is set.
FAULT_KEYS = (
    "num_faults",
    "requests_requeued_by_fault",
    "requests_shed_by_blackout",
    "acc_seconds_lost",
)

#: Joule-denominated capacity cost, recorded for energy cluster cells.
ENERGY_COST_KEYS = ("joules_used", "joules_idle", "joules_provisioned")

#: Arrival rates matched to the families' service rates (paper Sec 6.2).
_DEFAULT_BASE_RATE = {"attnn": 20.0, "cnn": 2.5}


@dataclass(frozen=True)
class SweepConfig:
    """The full specification of one sweep grid.

    Everything that affects a cell's numbers lives here.  The JSON store
    records the workload parameters verbatim and refuses to resume under
    different ones; the grid axes (scenarios, schedulers, seeds) may grow
    across runs — only the missing cells execute.
    """

    scenarios: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    seeds: Tuple[int, ...]
    family: str = "attnn"
    base_rate: Optional[float] = None
    duration: float = 30.0
    slo_multiplier: float = 10.0
    n_profile_samples: int = 100
    block_size: int = 1
    switch_cost: float = 0.0
    #: ``"single"`` replays cells on the single-NPU engine; ``"cluster"``
    #: on the cluster engine (one pool of ``pool_size`` accelerators).
    engine: str = "single"
    pool_size: int = 2
    #: Autoscaling policy name for cluster cells (``None`` = fixed pool).
    autoscale: Optional[str] = None
    max_accelerators: int = 8
    provision_latency: float = 2.0
    autoscale_interval: float = 1.0
    #: Queue-depth admission limit for cluster cells (``None`` = admit all).
    max_queue_depth: Optional[int] = None
    #: Record energy columns (joules/request, EDP, and — on the cluster
    #: engine — joule-denominated capacity cost) in every cell.  Purely
    #: additive: schedules and latency metrics are unchanged, and the
    #: energy numbers are bit-identical for any worker count.
    energy: bool = False
    #: Telemetry sampling cadence in simulated seconds; when set, every
    #: cell records a ``timeseries`` table (queue depth, completions,
    #: violations, ... sampled on this grid).  Purely additive and — like
    #: every cell number — bit-identical for any worker count.
    telemetry_interval: Optional[float] = None
    #: Evaluate the default alert rule set (SLO burn rate, queue
    #: saturation — see :func:`repro.obs.alerts.default_rules`) on every
    #: cell's telemetry grid and record the firings in a per-cell
    #: ``alerts`` column.  Requires ``telemetry_interval``; alert streams
    #: are a pure function of the cell, so they are bit-identical for any
    #: worker count.
    alerts: bool = False
    #: Fault-preset name (see
    #: :func:`repro.faults.spec.available_fault_presets`) injected into
    #: every cell.  The timeline is a pure function of (preset, duration,
    #: workload seed), so faulted cells keep the determinism contract.
    #: Requires ``engine="cluster"``; cells gain the :data:`FAULT_KEYS`
    #: columns.
    faults: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.scenarios or not self.schedulers or not self.seeds:
            raise SchedulingError(
                "sweep needs at least one scenario, scheduler and seed"
            )
        unknown = sorted(set(self.scenarios) - set(available_scenarios()))
        if unknown:
            raise SchedulingError(
                f"unknown scenarios {unknown}; available: {available_scenarios()}"
            )
        from repro.schedulers.base import available_schedulers

        bad = sorted(set(self.schedulers) - set(available_schedulers()))
        if bad:
            raise SchedulingError(
                f"unknown schedulers {bad}; available: {available_schedulers()}"
            )
        if self.family not in _DEFAULT_BASE_RATE:
            raise SchedulingError(
                f"family must be one of {sorted(_DEFAULT_BASE_RATE)}, "
                f"got {self.family!r}"
            )
        if self.duration <= 0:
            raise SchedulingError(f"duration must be positive, got {self.duration}")
        if self.base_rate is not None and self.base_rate <= 0:
            raise SchedulingError(
                f"base rate must be positive, got {self.base_rate}"
            )
        if self.slo_multiplier <= 0:
            raise SchedulingError(
                f"slo multiplier must be positive, got {self.slo_multiplier}"
            )
        if self.n_profile_samples <= 0:
            raise SchedulingError(
                f"profile samples must be positive, got {self.n_profile_samples}"
            )
        if self.engine not in ("single", "cluster"):
            raise SchedulingError(
                f"engine must be 'single' or 'cluster', got {self.engine!r}"
            )
        if self.autoscale is not None:
            from repro.cluster.policies import available_autoscale_policies

            if self.engine != "cluster":
                raise SchedulingError(
                    "autoscale requires engine='cluster'"
                )
            if self.autoscale not in available_autoscale_policies():
                raise SchedulingError(
                    f"unknown autoscale policy {self.autoscale!r}; available: "
                    f"{available_autoscale_policies()}"
                )
        if self.pool_size < 1:
            raise SchedulingError(
                f"pool size must be >= 1, got {self.pool_size}"
            )
        if self.telemetry_interval is not None and self.telemetry_interval <= 0:
            raise SchedulingError(
                f"telemetry interval must be positive, got "
                f"{self.telemetry_interval}"
            )
        if self.alerts and self.telemetry_interval is None:
            raise SchedulingError(
                "alerts are evaluated on the telemetry grid; set "
                "telemetry_interval as well"
            )
        if self.faults is not None:
            from repro.faults.spec import available_fault_presets

            if self.engine != "cluster":
                raise SchedulingError("faults require engine='cluster'")
            if self.faults not in available_fault_presets():
                raise SchedulingError(
                    f"unknown fault preset {self.faults!r}; available: "
                    f"{available_fault_presets()}"
                )

    @property
    def rate(self) -> float:
        """The effective base arrival rate (family default when unset)."""
        return (self.base_rate if self.base_rate is not None
                else _DEFAULT_BASE_RATE[self.family])

    def cells(self) -> List[Tuple[str, str, int]]:
        """The grid in deterministic (scenario, scheduler, seed) order."""
        return [
            (scenario, scheduler, seed)
            for scenario in self.scenarios
            for scheduler in self.schedulers
            for seed in self.seeds
        ]


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call."""

    store: Dict
    n_run: int
    n_skipped: int
    out_path: Optional[Path] = None

    @property
    def cells(self) -> Dict[str, Dict]:
        return self.store["cells"]


def cell_key(scenario: str, scheduler: str, seed: int) -> str:
    return f"{scenario}/{scheduler}/seed{seed}"


def workload_seed(scenario: str, seed: int) -> int:
    """Deterministic per-cell workload seed, independent of the scheduler.

    Decorrelates equal seed numbers across scenarios via a stable CRC of
    the scenario name (never ``hash()`` — that is salted per process and
    would break cross-run resume).
    """
    return (zlib.crc32(scenario.encode()) + seed) & 0x7FFFFFFF


@lru_cache(maxsize=4)
def _profiled_suite(family: str, n_samples: int):
    """Per-process trace-suite cache: workers profile each family once."""
    from repro.profiling.profiler import benchmark_suite

    return benchmark_suite(family, n_samples=n_samples, seed=0)


def _run_cell(args: Tuple) -> Tuple[str, Dict]:
    """Run one (scenario, scheduler, seed) cell; top-level for pickling."""
    scenario, scheduler_name, seed, config = args
    from repro.core.lut import ModelInfoLUT
    from repro.schedulers.base import make_scheduler

    traces = _profiled_suite(config.family, config.n_profile_samples)
    spec = build_scenario(scenario, base_rate=config.rate,
                          duration=config.duration,
                          slo_multiplier=config.slo_multiplier)
    wseed = workload_seed(scenario, seed)
    requests = generate_scenario(traces, spec, seed=wseed)
    if not requests:
        raise SchedulingError(
            f"cell {cell_key(scenario, scheduler_name, seed)} generated no "
            f"requests; increase --rate or --duration"
        )
    lut = ModelInfoLUT(traces)
    accountant = None
    scheduler_kwargs = {}
    if config.energy:
        from repro.energy import EnergyAccountant
        from repro.energy.schedulers import ENERGY_SCHEDULERS

        accountant = EnergyAccountant.from_model_lut(lut)
        if scheduler_name in ENERGY_SCHEDULERS:
            scheduler_kwargs["energy_lut"] = accountant.energy_lut
    obs = None
    if config.telemetry_interval is not None:
        from repro.obs import Observability

        obs = Observability(telemetry=config.telemetry_interval)
    cell = {
        "scenario": scenario,
        "scheduler": scheduler_name,
        "seed": seed,
        "workload_seed": wseed,
        "n_requests": len(requests),
    }
    if config.engine == "cluster":
        from repro.cluster import (
            AdmissionController,
            Pool,
            make_autoscaler,
            simulate_cluster,
        )

        pool = Pool(
            "pool", make_scheduler(scheduler_name, lut, **scheduler_kwargs),
            config.pool_size,
            block_size=config.block_size, switch_cost=config.switch_cost,
        )
        autoscaler = None
        if config.autoscale is not None:
            autoscaler = make_autoscaler(
                config.autoscale, lut=lut,
                max_accelerators=config.max_accelerators,
                interval=config.autoscale_interval,
                provision_latency=config.provision_latency,
            )
        admission = None
        if config.max_queue_depth is not None:
            admission = AdmissionController(max_queue_depth=config.max_queue_depth)
        faults = None
        if config.faults is not None:
            from repro.faults.spec import build_faults

            # Seeded with the cell's workload seed: a faulted grid varies
            # the timeline across seeds but never across workers.
            faults = build_faults(config.faults, duration=config.duration,
                                  seed=wseed)
        result = simulate_cluster(
            requests, [pool], "round-robin",
            admission=admission, autoscaler=autoscaler,
            energy=accountant, obs=obs, faults=faults,
        )
        cell["num_shed"] = result.num_shed
        cell.update({key: float(result.metrics[key]) for key in COST_KEYS})
        if faults is not None:
            cell.update(
                {key: float(result.metrics[key]) for key in FAULT_KEYS}
            )
        if accountant is not None:
            cell.update(
                {key: float(result.metrics[key]) for key in ENERGY_COST_KEYS}
            )
    else:
        result = simulate(
            requests,
            make_scheduler(scheduler_name, lut, **scheduler_kwargs),
            block_size=config.block_size,
            switch_cost=config.switch_cost,
            energy=accountant,
            obs=obs,
        )
    cell["makespan"] = result.makespan
    cell["num_preemptions"] = result.num_preemptions
    cell.update({key: float(result.metrics[key]) for key in METRIC_KEYS})
    if accountant is not None:
        cell.update({key: float(result.metrics[key]) for key in ENERGY_KEYS})
    if obs is not None:
        table = obs.telemetry.to_table(nan_as_none=True)
        cell["timeseries"] = table
        if config.alerts:
            from repro.obs.alerts import evaluate_alerts

            cell["alerts"] = [a.to_dict() for a in evaluate_alerts(table)]
    return cell_key(scenario, scheduler_name, seed), cell


def _run_cell_costed(args: Tuple) -> Tuple[int, str, Optional[Dict], Dict, Optional[str]]:
    """Run one indexed cell, measuring its cost and capturing failures.

    Returns ``(index, key, cell, cost, error)``: ``index`` restores the
    deterministic grid order in the parent whatever order workers finish
    in; ``cost`` carries the wall-clock seconds, peak worker RSS (VmHWM,
    reset per cell) and worker pid for the warehouse cost sidecar; a
    failed cell comes back with ``cell=None`` and the error message
    instead of tearing down the whole pool mid-grid.
    """
    index, scenario, scheduler_name, seed, config = args
    from repro.obs.hostmem import peak_rss_mb, reset_peak_rss

    rss_ok = reset_peak_rss()
    t0 = time.perf_counter()
    key = cell_key(scenario, scheduler_name, seed)
    cell: Optional[Dict] = None
    error: Optional[str] = None
    try:
        key, cell = _run_cell((scenario, scheduler_name, seed, config))
    except Exception as exc:  # noqa: BLE001 - reported, then re-raised in parent
        error = f"{type(exc).__name__}: {exc}"
    cost = {
        "wall_s": time.perf_counter() - t0,
        "peak_rss_mb": peak_rss_mb() if rss_ok else 0.0,
        "worker": os.getpid(),
    }
    return index, key, cell, cost, error


def _load_store(path: Path, workload_dict: Dict, force: bool) -> Dict:
    if force or not path.exists():
        return {"workload": workload_dict, "cells": {}}
    try:
        store = json.loads(path.read_text())
    except ValueError as exc:
        raise SchedulingError(f"{path}: corrupt sweep store ({exc})") from None
    if not isinstance(store, dict):
        raise SchedulingError(
            f"{path}: corrupt sweep store (expected a JSON object, "
            f"got {type(store).__name__})"
        )
    if isinstance(store.get("workload"), dict):
        # Stores written before the energy columns existed resume as
        # energy-free sweeps (the default), not as mismatches; likewise
        # pre-telemetry stores resume without time-series columns.
        store["workload"].setdefault("energy", False)
        store["workload"].setdefault("telemetry_interval", None)
        store["workload"].setdefault("alerts", False)
        store["workload"].setdefault("faults", None)
    if store.get("workload") != workload_dict:
        raise SchedulingError(
            f"{path} holds a sweep under different workload parameters "
            f"({store.get('workload')} vs {workload_dict}); choose another "
            f"output path or pass force to overwrite it"
        )
    store.setdefault("cells", {})
    return store


def _write_store(path: Path, store: Dict) -> None:
    """Atomic, canonically-ordered write: same cells => same bytes."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(store, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def run_sweep(
    config: SweepConfig,
    *,
    out_path: Optional[Union[str, Path]] = None,
    workers: int = 1,
    force: bool = False,
    progress: Optional[Callable[[str, int, int], None]] = None,
    telemetry=None,
) -> SweepResult:
    """Run (or resume) the sweep grid, optionally in parallel.

    Args:
        out_path: Results store.  A path ending in ``.json`` is the legacy
            monolithic JSON store; anything else is a
            :class:`~repro.warehouse.store.Warehouse` directory (O(1)
            appends, crash recovery, per-cell cost sidecar).  When the
            store already exists with the same configuration, completed
            cells are skipped and only the missing ones run, so an
            interrupted sweep resumes where it stopped.  ``None`` keeps
            the results in memory only.
        workers: Worker processes; <= 1 runs inline (no multiprocessing).
            Results are bit-identical for every worker count.
        force: Discard an existing store instead of resuming it.
        progress: Optional callback ``(cell_key, n_done, n_total)``, fired
            in deterministic grid order for any worker count.
        telemetry: Optional
            :class:`~repro.warehouse.telemetry.SweepTelemetry` publishing
            live throughput / ETA / failure metrics while the grid runs.
    """
    # The store is keyed by workload parameters only: the grid axes
    # (scenarios, schedulers, seeds) may grow across runs — new cells run,
    # completed ones are skipped — but the numbers behind every cell must
    # come from one consistent workload configuration.  base_rate is
    # recorded resolved (config.rate), so an explicit rate equal to the
    # family default matches a store created with the default, and a
    # default-table change can never silently mix rates.  Round-trip
    # through JSON so tuples compare equal to the lists an existing store
    # holds.
    workload_params = {
        key: value for key, value in asdict(config).items()
        if key not in ("scenarios", "schedulers", "seeds")
    }
    workload_params["base_rate"] = config.rate
    workload_dict = json.loads(json.dumps(workload_params))
    out = Path(out_path) if out_path is not None else None

    wh = None
    if out is not None and out.suffix != ".json":
        from repro.warehouse.store import Warehouse

        wh = Warehouse.open_or_create(out, workload_dict, force=force)
        store = {"workload": wh.workload, "cells": {}}
        completed = wh.completed_keys()
    else:
        store = (_load_store(out, workload_dict, force) if out is not None
                 else {"workload": workload_dict, "cells": {}})
        completed = frozenset(store["cells"])

    grid = config.cells()
    todo = [c for c in grid if cell_key(*c) not in completed]
    n_skipped = len(grid) - len(todo)
    done = n_skipped
    if telemetry is not None:
        telemetry.begin(len(grid), n_skipped)

    def record(key: str, cell: Dict, cost: Dict) -> None:
        nonlocal done
        store["cells"][key] = cell
        done += 1
        if wh is not None:
            wh.append(key, cell)
            wh.record_cost(key, **cost)
        elif out is not None:
            _write_store(out, store)
        if telemetry is not None:
            telemetry.on_cell(key, worker=cost.get("worker"),
                              wall_s=cost.get("wall_s"),
                              peak_rss_mb=cost.get("peak_rss_mb"))
        if progress is not None:
            progress(key, done, len(grid))

    args_list = [
        (index, scenario, scheduler, seed, config)
        for index, (scenario, scheduler, seed) in enumerate(todo)
    ]
    # Workers finish in any order; appends must not.  Results wait in a
    # reorder buffer and are recorded strictly in grid order, which is
    # what makes the warehouse bytes (and the progress/telemetry streams)
    # identical for every worker count.
    pending: Dict[int, Tuple] = {}
    next_index = 0
    failure: Optional[Tuple[str, str]] = None

    def fold(result: Tuple) -> bool:
        """Buffer one worker result; record the contiguous prefix."""
        nonlocal next_index, failure
        pending[result[0]] = result
        while next_index in pending:
            _, key, cell, cost, error = pending.pop(next_index)
            next_index += 1
            if error is not None:
                if telemetry is not None:
                    telemetry.on_cell(key, worker=cost.get("worker"),
                                      wall_s=cost.get("wall_s"), failed=True)
                failure = (key, error)
                return False
            record(key, cell, cost)
        return True

    try:
        if workers > 1 and len(args_list) > 1:
            # Warm the trace-suite cache in the parent: under the default
            # fork start method the workers inherit it copy-on-write instead
            # of each re-profiling the suite (a no-op cost shift on spawn
            # platforms).
            _profiled_suite(config.family, config.n_profile_samples)
            with multiprocessing.get_context().Pool(
                processes=min(workers, len(args_list))
            ) as pool:
                for result in pool.imap_unordered(_run_cell_costed, args_list):
                    if not fold(result):
                        break
        else:
            for args in args_list:
                if not fold(_run_cell_costed(args)):
                    break
        if failure is None and wh is not None:
            # The result exposes the requested grid — including resumed
            # cells the warehouse already held (it may hold a larger grid).
            store["cells"] = wh.read_cells(
                key for key in (cell_key(*c) for c in grid) if key in wh
            )
    finally:
        if wh is not None:
            wh.close()
    if failure is not None:
        key, error = failure
        raise SchedulingError(
            f"sweep cell {key} failed: {error} (completed cells up to the "
            f"failure are stored; re-run to resume)"
        )

    if wh is None and out is not None and (todo or not out.exists()):
        _write_store(out, store)
    return SweepResult(store=store, n_run=len(todo), n_skipped=n_skipped,
                       out_path=out)


def aggregate(store: Dict) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Mean metrics per (scenario, scheduler) across the store's seeds.

    Energy columns are averaged too when every cell of a group carries
    them (i.e. the sweep ran with ``energy=True``).
    """
    groups: Dict[Tuple[str, str], List[Dict]] = {}
    for cell in store["cells"].values():
        groups.setdefault((cell["scenario"], cell["scheduler"]), []).append(cell)
    return {
        pair: {
            key: float(np.mean([c[key] for c in cells]))
            for key in METRIC_KEYS + ENERGY_KEYS + ENERGY_COST_KEYS
            if all(key in c for c in cells)
        }
        for pair, cells in sorted(groups.items())
    }
