"""Adversarial scenario fuzzer: search for the curves the paper never ran.

Given a scheduler and an evaluation budget, :func:`fuzz` hill-climbs with
random restarts over a *genome* — traffic-shape parameters (rate scale, a
superposed spike, SLO tightness) plus a fault timeline
(:class:`~repro.faults.spec.FaultSpec`) — and returns the scenario that
maximizes the objective (SLO violation rate by default, or mean
energy-delay product), together with a greedily *minimized* reproducer:
the same score with as few fault events and as many neutral shape
parameters as possible.

Determinism is the contract, exactly as in the sweep runner: every
candidate is a pure function of ``(seed, generation, index)``, evaluations
are keyed by index when fanned out over worker processes, and the result
document serializes with sorted keys — same seed and budget give
byte-identical JSON for any worker count.  A reproducer embeds everything
its replay needs (:func:`replay` re-evaluates it and returns the score it
reports).
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FaultError, SchedulingError
from repro.faults.spec import (
    FaultSpec,
    KIND_REVOKE,
    KIND_SLOWDOWN,
    sample_fault_spec,
)
from repro.scenarios.runner import (
    _DEFAULT_BASE_RATE,
    _profiled_suite,
    workload_seed,
)
from repro.scenarios.shapes import Constant, Spike, Superpose
from repro.scenarios.spec import (
    Phase,
    ScenarioSpec,
    build_scenario,
    generate_scenario,
)

#: Objectives the fuzzer can maximize.
OBJECTIVES = ("violation_rate", "edp")

#: Reproducer document version (bump on breaking format changes).
REPRODUCER_VERSION = 1

#: Shape-parameter bounds: (low, high, neutral).  "Neutral" is what the
#: minimizer pushes towards — the value that leaves the baseline scenario
#: unchanged.
_PARAM_BOUNDS: Dict[str, Tuple[float, float, float]] = {
    "rate_scale": (0.5, 3.0, 1.0),    # base arrival rate multiplier
    "spike_scale": (0.0, 6.0, 0.0),   # spike peak, in units of the rate
    "spike_at": (0.05, 0.9, 0.5),     # spike center, fraction of duration
    "spike_width": (0.01, 0.2, 0.05),  # spike sigma, fraction of duration
    "slo_scale": (0.3, 1.5, 1.0),     # SLO-multiplier tightness
}

_PARAM_NAMES = tuple(sorted(_PARAM_BOUNDS))


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that affects a fuzz run's numbers.

    The search shares the sweep runner's workload machinery: cells run on
    the cluster engine against one pool of ``pool_size`` accelerators, and
    the candidate workload seed derives from ``seed`` only — never from
    the worker process — so results are bit-identical for any ``workers``.
    """

    scheduler: str
    budget: int = 50
    seed: int = 0
    objective: str = "violation_rate"
    family: str = "attnn"
    base_rate: Optional[float] = None
    duration: float = 10.0
    slo_multiplier: float = 10.0
    n_profile_samples: int = 60
    pool_size: int = 2
    block_size: int = 1
    switch_cost: float = 0.0
    router: str = "round-robin"
    max_queue_depth: Optional[int] = None
    #: Candidates evaluated per hill-climb generation.
    generation_size: int = 8
    #: Mutants of the incumbent per generation; the rest are random
    #: restarts.
    mutants_per_generation: int = 5
    max_fault_events: int = 4
    minimize: bool = True

    def __post_init__(self) -> None:
        from repro.schedulers.base import available_schedulers

        if self.scheduler not in available_schedulers():
            raise SchedulingError(
                f"unknown scheduler {self.scheduler!r}; available: "
                f"{available_schedulers()}"
            )
        if self.budget < 1:
            raise FaultError(f"budget must be >= 1, got {self.budget}")
        if self.objective not in OBJECTIVES:
            raise FaultError(
                f"objective must be one of {OBJECTIVES}, got {self.objective!r}"
            )
        if self.family not in _DEFAULT_BASE_RATE:
            raise SchedulingError(
                f"family must be one of {sorted(_DEFAULT_BASE_RATE)}, "
                f"got {self.family!r}"
            )
        if self.duration <= 0:
            raise FaultError(f"duration must be positive, got {self.duration}")
        if self.base_rate is not None and self.base_rate <= 0:
            raise FaultError(f"base rate must be positive, got {self.base_rate}")
        if self.pool_size < 1:
            raise FaultError(f"pool size must be >= 1, got {self.pool_size}")
        if self.generation_size < 1 or self.mutants_per_generation < 0:
            raise FaultError("generation sizes must be sensible (>= 1 / >= 0)")
        if self.max_fault_events < 1:
            raise FaultError(
                f"max_fault_events must be >= 1, got {self.max_fault_events}"
            )

    @property
    def rate(self) -> float:
        """Effective base arrival rate (family default when unset)."""
        return (self.base_rate if self.base_rate is not None
                else _DEFAULT_BASE_RATE[self.family])

    def eval_dict(self) -> Dict:
        """The evaluation-relevant fields as a plain JSON-stable dict — the
        ``config`` block embedded in every reproducer."""
        out = asdict(self)
        out["base_rate"] = self.rate
        out["workload_seed"] = workload_seed("fuzz", self.seed)
        # Search-only knobs don't affect a single evaluation.
        for key in ("budget", "generation_size", "mutants_per_generation",
                    "max_fault_events", "minimize"):
            del out[key]
        return json.loads(json.dumps(out))


# --------------------------------------------------------------------------
# Genome <-> scenario
# --------------------------------------------------------------------------


def _clip(name: str, value: float) -> float:
    low, high, _ = _PARAM_BOUNDS[name]
    return float(min(max(value, low), high))


def _scenario_from_genome(genome: Dict, cfg: Dict) -> ScenarioSpec:
    """One adversarial phase: constant traffic plus an optional spike."""
    params = genome["params"]
    duration = float(cfg["duration"])
    rate = float(cfg["base_rate"]) * params["rate_scale"]
    shape = Constant(rate)
    if params["spike_scale"] > 0.0:
        shape = Superpose(shape, Spike(
            0.0, params["spike_scale"] * rate,
            at=params["spike_at"] * duration,
            width=params["spike_width"] * duration,
        ))
    phase = Phase("fuzz", shape, duration,
                  slo_multiplier=float(cfg["slo_multiplier"]) * params["slo_scale"])
    return ScenarioSpec(name="fuzz", phases=(phase,))


def _random_genome(rng: np.random.Generator, config: FuzzConfig) -> Dict:
    params = {
        name: float(rng.uniform(_PARAM_BOUNDS[name][0], _PARAM_BOUNDS[name][1]))
        for name in _PARAM_NAMES
    }
    faults: List[Dict] = []
    if rng.random() < 0.8:
        faults = sample_fault_spec(
            rng, config.duration, max_events=config.max_fault_events
        ).to_dicts()
    return {"params": params, "faults": faults}


def _mutate(genome: Dict, rng: np.random.Generator,
            config: FuzzConfig) -> Dict:
    """Perturb the incumbent: lognormal jitter on shape parameters,
    add/drop/jitter on the fault timeline."""
    params = dict(genome["params"])
    for name in _PARAM_NAMES:
        if rng.random() < 0.4:
            params[name] = _clip(name, params[name] * float(np.exp(rng.normal(0.0, 0.25))))
            if name == "spike_scale" and rng.random() < 0.1:
                params[name] = 0.0  # let mutation also retire the spike
    faults = [dict(event) for event in genome["faults"]]
    if faults and rng.random() < 0.2:
        faults.pop(int(rng.integers(len(faults))))
    if len(faults) < config.max_fault_events and rng.random() < 0.3:
        faults.extend(sample_fault_spec(
            rng, config.duration, max_events=1
        ).to_dicts())
    for event in faults:
        if rng.random() < 0.3:
            event["time"] = float(np.clip(
                event["time"] + rng.normal(0.0, 0.05) * config.duration,
                0.0, 0.9 * config.duration,
            ))
            if event["kind"] != KIND_REVOKE:
                event["duration"] = float(np.clip(
                    event["duration"] * np.exp(rng.normal(0.0, 0.25)),
                    0.01 * config.duration, 0.5 * config.duration,
                ))
            if event["kind"] == KIND_SLOWDOWN:
                event["factor"] = float(np.clip(
                    event["factor"] * np.exp(rng.normal(0.0, 0.2)), 1.0, 8.0,
                ))
    FaultSpec.from_dicts(faults)  # fail fast if a mutation broke validity
    return {"params": params, "faults": faults}


# --------------------------------------------------------------------------
# Candidate evaluation (pure function of (genome, eval-config dict))
# --------------------------------------------------------------------------


def _evaluate(genome: Dict, cfg: Dict,
              scenario: Optional[ScenarioSpec] = None,
              wseed: Optional[int] = None) -> Dict:
    """Run one scenario + fault timeline; returns score and key metrics.

    Pure and deterministic: the same ``(genome, cfg)`` always produces the
    same numbers, whatever process runs it.
    """
    from repro.cluster import AdmissionController, Pool, simulate_cluster
    from repro.core.lut import ModelInfoLUT
    from repro.schedulers.base import make_scheduler

    traces = _profiled_suite(cfg["family"], cfg["n_profile_samples"])
    if scenario is None:
        scenario = _scenario_from_genome(genome, cfg)
    if wseed is None:
        wseed = cfg["workload_seed"]
    requests = generate_scenario(traces, scenario, seed=wseed)
    lut = ModelInfoLUT(traces)
    accountant = None
    scheduler_kwargs = {}
    if cfg["objective"] == "edp":
        from repro.energy import EnergyAccountant
        from repro.energy.schedulers import ENERGY_SCHEDULERS

        accountant = EnergyAccountant.from_model_lut(lut)
        if cfg["scheduler"] in ENERGY_SCHEDULERS:
            scheduler_kwargs["energy_lut"] = accountant.energy_lut
    if not requests:
        # A genome that generates no traffic scores worst, not an error.
        return {"score": float("-inf"), "n_requests": 0}
    pool = Pool(
        "pool", make_scheduler(cfg["scheduler"], lut, **scheduler_kwargs),
        cfg["pool_size"],
        block_size=cfg["block_size"], switch_cost=cfg["switch_cost"],
    )
    admission = None
    if cfg["max_queue_depth"] is not None:
        admission = AdmissionController(max_queue_depth=cfg["max_queue_depth"])
    spec = FaultSpec.from_dicts(genome["faults"]) if genome["faults"] else None
    result = simulate_cluster(
        requests, [pool], cfg["router"],
        admission=admission, energy=accountant,
        faults=spec if spec else None,
    )
    out = {
        "score": float(result.metrics[cfg["objective"]]),
        "n_requests": len(requests),
        "makespan": float(result.makespan),
        "violation_rate": float(result.violation_rate),
        "antt": float(result.antt),
        "p99": float(result.p99),
        "num_shed": float(result.num_shed),
        "num_faults": float(result.metrics.get("num_faults", 0.0)),
        "requests_requeued_by_fault": float(
            result.metrics.get("requests_requeued_by_fault", 0.0)
        ),
    }
    if accountant is not None:
        out["edp"] = float(result.edp)
    return out


def _eval_candidate(args: Tuple) -> Tuple[int, Dict]:
    """Worker entry point: evaluate candidate ``idx``; top-level so it
    pickles under multiprocessing."""
    idx, genome, cfg = args
    return idx, _evaluate(genome, cfg)


def evaluate_named_scenario(name: str, config: FuzzConfig) -> Dict:
    """Baseline: a registry scenario under the fuzzer's evaluation setup.

    Uses the sweep runner's per-scenario workload seed, so the number here
    matches the corresponding fault-free sweep cell.
    """
    cfg = config.eval_dict()
    scenario = build_scenario(name, base_rate=config.rate,
                              duration=config.duration,
                              slo_multiplier=config.slo_multiplier)
    genome = {"params": {}, "faults": []}
    return _evaluate(genome, cfg, scenario=scenario,
                     wseed=workload_seed(name, config.seed))


def replay(reproducer: Dict) -> Dict:
    """Re-evaluate a reproducer document; returns the fresh metrics.

    The document embeds its evaluation config, so a replay needs nothing
    else and reproduces the recorded score exactly.
    """
    for key in ("config", "genome"):
        if key not in reproducer:
            raise FaultError(f"reproducer is missing its {key!r} block")
    return _evaluate(reproducer["genome"], reproducer["config"])


# --------------------------------------------------------------------------
# Search
# --------------------------------------------------------------------------


def _reproducer(genome: Dict, evaluation: Dict, cfg: Dict) -> Dict:
    return {
        "kind": "fuzz-reproducer",
        "version": REPRODUCER_VERSION,
        "config": cfg,
        "genome": genome,
        "score": evaluation["score"],
        "metrics": evaluation,
    }


def _minimize(best_genome: Dict, best_score: float, cfg: Dict,
              config: FuzzConfig) -> Tuple[Dict, Dict, int]:
    """Greedy reproducer shrink: drop fault events and neutralize shape
    parameters one at a time, keeping every change that does not lower the
    score.  Serial and deterministic; costs one evaluation per trial."""
    genome = {"params": dict(best_genome["params"]),
              "faults": [dict(e) for e in best_genome["faults"]]}
    evals = 0
    # 1. Drop fault genes, last to first (stable indices while popping).
    for i in range(len(genome["faults"]) - 1, -1, -1):
        trial = {"params": genome["params"],
                 "faults": genome["faults"][:i] + genome["faults"][i + 1:]}
        outcome = _evaluate(trial, cfg)
        evals += 1
        if outcome["score"] >= best_score:
            genome = trial
    # 2. Neutralize shape parameters (sorted order: deterministic).
    for name in _PARAM_NAMES:
        neutral = _PARAM_BOUNDS[name][2]
        if genome["params"][name] == neutral:
            continue
        trial = {"params": {**genome["params"], name: neutral},
                 "faults": genome["faults"]}
        outcome = _evaluate(trial, cfg)
        evals += 1
        if outcome["score"] >= best_score:
            genome = trial
    final = _evaluate(genome, cfg)
    evals += 1
    return genome, final, evals


def fuzz(config: FuzzConfig, *, workers: int = 1) -> Dict:
    """Search for the objective-maximizing scenario within the budget.

    Seeded hill-climb with random restarts: each generation evaluates
    ``generation_size`` candidates — ``mutants_per_generation`` mutants of
    the incumbent plus random restarts — until ``budget`` evaluations are
    spent.  Candidate genomes derive from ``(seed, generation, index)``
    and evaluations are pure, so the returned document is byte-identical
    (``json.dumps(..., sort_keys=True)``) for any ``workers`` count.

    Returns a document with the worst-case reproducer, its greedy
    minimization (when ``config.minimize``), and fault-free baselines for
    the ``steady`` and ``flash_crowd`` registry scenarios under the same
    scheduler and pool.
    """
    cfg = config.eval_dict()
    best: Optional[Tuple[float, int, int]] = None  # (score, gen, idx) incumbent key
    best_genome: Optional[Dict] = None
    best_eval: Optional[Dict] = None
    spent = 0
    gen = 0
    pool = None
    if workers > 1:
        # Warm the per-process trace cache in the parent (fork inherits it
        # copy-on-write; a no-op cost shift on spawn platforms).
        _profiled_suite(config.family, config.n_profile_samples)
        pool = multiprocessing.get_context().Pool(processes=workers)
    try:
        while spent < config.budget:
            size = min(config.generation_size, config.budget - spent)
            genomes: List[Dict] = []
            for idx in range(size):
                rng = np.random.default_rng([config.seed, gen, idx])
                if best_genome is not None and idx < config.mutants_per_generation:
                    genomes.append(_mutate(best_genome, rng, config))
                else:
                    genomes.append(_random_genome(rng, config))
            args = [(idx, genomes[idx], cfg) for idx in range(size)]
            if pool is not None and size > 1:
                outcomes: Dict[int, Dict] = dict(
                    pool.imap_unordered(_eval_candidate, args)
                )
            else:
                outcomes = dict(map(_eval_candidate, args))
            spent += size
            for idx in range(size):  # index order: worker-count invariant
                score = outcomes[idx]["score"]
                # Strict improvement keeps the earliest (gen, idx) on ties.
                if best is None or score > best[0]:
                    best = (score, gen, idx)
                    best_genome = genomes[idx]
                    best_eval = outcomes[idx]
            gen += 1
    finally:
        if pool is not None:
            pool.close()
            pool.join()
    assert best is not None and best_genome is not None and best_eval is not None
    document = {
        "kind": "fuzz-result",
        "version": REPRODUCER_VERSION,
        "config": cfg,
        "search": {
            "budget": config.budget,
            "evaluations": spent,
            "generations": gen,
            "best_generation": best[1],
            "best_index": best[2],
        },
        "worst": _reproducer(best_genome, best_eval, cfg),
        "baselines": {
            name: evaluate_named_scenario(name, config)
            for name in ("steady", "flash_crowd")
        },
    }
    if config.minimize:
        min_genome, min_eval, min_evals = _minimize(
            best_genome, best_eval["score"], cfg, config
        )
        document["minimized"] = _reproducer(min_genome, min_eval, cfg)
        document["search"]["minimize_evaluations"] = min_evals
    return document


def fuzz_to_json(document: Dict) -> str:
    """Canonical serialization: same document => same bytes."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
