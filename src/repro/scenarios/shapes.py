"""Composable arrival-rate shapes and non-homogeneous Poisson sampling.

The paper evaluates schedulers under stationary Poisson and bursty arrivals
at fixed rates (Sec 6.2).  Real serving traffic is non-stationary: diurnal
load curves, flash crowds, capacity ramps, and superpositions of tenants.
A :class:`Shape` is a deterministic intensity function ``rate(t)`` (requests
per second at phase-local time ``t``); :func:`sample_arrivals` turns any
shape into concrete arrival instants via Lewis–Shedler thinning, which is
exact for every bounded intensity — no per-shape sampling code.

Shapes compose: ``Superpose`` adds intensities (independent Poisson streams
merge into a Poisson stream of summed rate), and ``shape_a + shape_b`` /
``shape * k`` are sugar for superposition and scaling.

Recorded traffic is the limiting case of a shape: :class:`TraceEvent` rows
(timestamp, model, seq_len) round-trip through CSV via
:func:`save_trace_csv` / :func:`load_trace_csv`, and :func:`replay_trace`
turns them into a lazy arrival-ordered request stream that drives
``simulate``, ``simulate_multi`` and ``simulate_cluster`` unchanged.
Traces can also be *learned back into* a shape:
:func:`fit_piecewise_constant` bins a recorded trace into a
:class:`Piecewise` intensity (the per-bin maximum-likelihood Poisson rate),
so synthetic scenarios can reproduce a production load profile.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.errors import SchedulingError
from repro.profiling.trace import TraceSet
from repro.sim.request import Request
from repro.sim.workload import request_from_trace

#: Candidate draws per thinning round.  Fixed so one seed always consumes
#: the RNG stream identically regardless of duration or acceptance rate.
_THINNING_CHUNK = 1024

# numpy >= 2.0 renamed trapz to trapezoid.
_trapezoid = getattr(np, "trapezoid", getattr(np, "trapz", None))


class Shape:
    """A bounded arrival-intensity function over phase-local time.

    Subclasses implement :meth:`rate` (vectorized over numpy arrays) and
    :meth:`peak_rate` (a true upper bound of the intensity on ``[0, d]`` —
    thinning is only exact under a correct bound).
    """

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Intensity in requests/s at time(s) ``t`` (``t >= 0``)."""
        raise NotImplementedError

    def peak_rate(self, duration: float) -> float:
        """An upper bound of ``rate`` on ``[0, duration]``."""
        raise NotImplementedError

    def mean_rate(self, duration: float) -> float:
        """Average intensity over ``[0, duration]`` (trapezoidal integral)."""
        t = np.linspace(0.0, duration, 4097)
        return float(_trapezoid(self.rate(t), t) / duration)

    def expected_requests(self, duration: float) -> float:
        return self.mean_rate(duration) * duration

    def __add__(self, other: "Shape") -> "Shape":
        return Superpose(self, other)

    def __mul__(self, factor: float) -> "Shape":
        return Scale(self, factor)

    __rmul__ = __mul__


@dataclass(frozen=True)
class Constant(Shape):
    """Stationary traffic: the paper's fixed-rate operating point."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise SchedulingError(f"rate must be >= 0, got {self.value}")

    def rate(self, t: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(t, dtype=float), self.value)

    def peak_rate(self, duration: float) -> float:
        return self.value

    def mean_rate(self, duration: float) -> float:
        return self.value


@dataclass(frozen=True)
class Ramp(Shape):
    """Linear rate change over ``ramp_duration``, then held at ``end``.

    Models capacity ramps and gradual rollouts (traffic shifted onto a
    deployment over minutes rather than instantaneously).
    """

    start: float
    end: float
    ramp_duration: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < 0:
            raise SchedulingError("ramp rates must be >= 0")
        if self.ramp_duration <= 0:
            raise SchedulingError(
                f"ramp duration must be positive, got {self.ramp_duration}"
            )

    def rate(self, t: np.ndarray) -> np.ndarray:
        frac = np.clip(np.asarray(t, dtype=float) / self.ramp_duration, 0.0, 1.0)
        return self.start + (self.end - self.start) * frac

    def peak_rate(self, duration: float) -> float:
        return max(self.start, self.end)

    def mean_rate(self, duration: float) -> float:
        ramp = min(duration, self.ramp_duration)
        mid = self.start + (self.end - self.start) * (ramp / self.ramp_duration) / 2.0
        area = mid * ramp + self.end * max(0.0, duration - self.ramp_duration)
        return area / duration


@dataclass(frozen=True)
class Diurnal(Shape):
    """Sinusoidal day/night load curve around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t/period + phase)))``;
    the mean over whole periods is exactly ``base``.
    """

    base: float
    amplitude: float = 0.8
    period: float = 60.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise SchedulingError(f"base rate must be >= 0, got {self.base}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise SchedulingError(
                f"amplitude must be in [0, 1] (rate stays >= 0), got {self.amplitude}"
            )
        if self.period <= 0:
            raise SchedulingError(f"period must be positive, got {self.period}")

    def rate(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return self.base * (
            1.0 + self.amplitude * np.sin(2.0 * np.pi * (t / self.period + self.phase))
        )

    def peak_rate(self, duration: float) -> float:
        return self.base * (1.0 + self.amplitude)


@dataclass(frozen=True)
class Spike(Shape):
    """Flash crowd: a Gaussian surge from ``base`` up to ``peak`` at ``at``.

    ``width`` is the surge's standard deviation in seconds; ~95% of the
    extra load lands within ``at +/- 2*width``.
    """

    base: float
    peak: float
    at: float
    width: float

    def __post_init__(self) -> None:
        if self.base < 0:
            raise SchedulingError(f"base rate must be >= 0, got {self.base}")
        if self.peak < self.base:
            raise SchedulingError(
                f"spike peak {self.peak} must be >= base rate {self.base}"
            )
        if self.width <= 0:
            raise SchedulingError(f"spike width must be positive, got {self.width}")

    def rate(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        bump = np.exp(-0.5 * ((t - self.at) / self.width) ** 2)
        return self.base + (self.peak - self.base) * bump

    def peak_rate(self, duration: float) -> float:
        return self.peak


class Superpose(Shape):
    """Sum of component intensities: independent tenants sharing a cluster."""

    def __init__(self, *shapes: Shape):
        if not shapes:
            raise SchedulingError("superposition needs at least one shape")
        # Flatten nested superpositions so the structure stays shallow.
        flat: List[Shape] = []
        for shape in shapes:
            if isinstance(shape, Superpose):
                flat.extend(shape.shapes)
            else:
                flat.append(shape)
        self.shapes = tuple(flat)

    def __repr__(self) -> str:
        return f"Superpose{self.shapes!r}"

    def rate(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        total = np.zeros_like(t)
        for shape in self.shapes:
            total = total + shape.rate(t)
        return total

    def peak_rate(self, duration: float) -> float:
        return sum(s.peak_rate(duration) for s in self.shapes)

    def mean_rate(self, duration: float) -> float:
        return sum(s.mean_rate(duration) for s in self.shapes)


@dataclass(frozen=True)
class Piecewise(Shape):
    """Piecewise-constant intensity over consecutive time bins.

    ``rates[b]`` holds on ``[edges[b], edges[b+1])``; before the first edge
    the first rate applies, after the last edge the last rate holds (like
    :class:`Ramp`, so a fitted shape can drive a longer scenario).  This is
    the shape class traces are *learned into*: see
    :func:`fit_piecewise_constant`.
    """

    edges: Tuple[float, ...]
    rates: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.rates) + 1 or not self.rates:
            raise SchedulingError(
                f"need len(edges) == len(rates) + 1 >= 2, got "
                f"{len(self.edges)} edges / {len(self.rates)} rates"
            )
        if any(nxt <= prev for prev, nxt in zip(self.edges, self.edges[1:])):
            raise SchedulingError("bin edges must be strictly increasing")
        if any(r < 0 for r in self.rates):
            raise SchedulingError("bin rates must be >= 0")

    def rate(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        idx = np.clip(
            np.searchsorted(self.edges, t, side="right") - 1,
            0, len(self.rates) - 1,
        )
        return np.asarray(self.rates, dtype=float)[idx]

    def peak_rate(self, duration: float) -> float:
        return max(self.rates)

    def mean_rate(self, duration: float) -> float:
        """Exact piecewise integral over ``[0, duration]`` (no quadrature)."""
        if duration <= 0:
            raise SchedulingError(f"duration must be positive, got {duration}")
        edges = np.asarray(self.edges, dtype=float)
        rates = np.asarray(self.rates, dtype=float)
        lo = np.minimum(np.maximum(edges[:-1], 0.0), duration)
        hi = np.minimum(np.maximum(edges[1:], 0.0), duration)
        area = float(np.dot(rates, hi - lo))
        # Constant extrapolation outside the fitted span.
        if edges[0] > 0.0:
            area += rates[0] * min(edges[0], duration)
        if duration > edges[-1]:
            area += rates[-1] * (duration - edges[-1])
        return area / duration


def fit_piecewise_constant(
    events: Union[str, Path, Sequence["TraceEvent"]],
    n_bins: int,
    *,
    duration: Optional[float] = None,
) -> Piecewise:
    """Fit a piecewise-constant arrival intensity to a recorded trace.

    The maximum-likelihood rate of a Poisson process on each bin is simply
    ``count / bin_width``, so the fit is exact bookkeeping: ``n_bins``
    equal-width bins over ``[0, duration]`` (default: the last event's
    timestamp), each at its empirical rate.  The result is an ordinary
    :class:`Shape` — compose it, scale it, or hand it to
    :func:`sample_arrivals` / a :class:`~repro.scenarios.spec.Phase` to
    generate synthetic traffic with the recorded trace's load profile.

    Round trip: the fitted shape preserves the trace's in-span event count
    exactly (``mean_rate(duration) * duration == len(events)`` when the
    trace lies within ``[0, duration]``), and re-fitting a trace sampled
    from a piecewise shape recovers the per-bin empirical rates bit for
    bit.  Events after an explicitly shorter ``duration`` are excluded —
    they are outside the fitted span, not extra mass for the last bin.
    """
    if isinstance(events, (str, Path)):
        events = load_trace_csv(events)
    if not events:
        raise SchedulingError("cannot fit a shape to an empty traffic trace")
    if n_bins < 1:
        raise SchedulingError(f"need >= 1 bin, got {n_bins}")
    times = np.asarray(sorted(ev.timestamp for ev in events), dtype=float)
    if duration is None:
        duration = float(times[-1])
    if duration <= 0:
        raise SchedulingError(
            "trace spans zero time; pass an explicit positive duration"
        )
    edges = np.linspace(0.0, duration, n_bins + 1)
    counts, _ = np.histogram(times[times <= duration], bins=edges)
    width = duration / n_bins
    return Piecewise(
        edges=tuple(edges.tolist()),
        rates=tuple((counts / width).tolist()),
    )


@dataclass(frozen=True)
class Scale(Shape):
    """A shape with its intensity multiplied by a nonnegative factor."""

    inner: Shape
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise SchedulingError(f"scale factor must be >= 0, got {self.factor}")

    def rate(self, t: np.ndarray) -> np.ndarray:
        return self.factor * self.inner.rate(t)

    def peak_rate(self, duration: float) -> float:
        return self.factor * self.inner.peak_rate(duration)

    def mean_rate(self, duration: float) -> float:
        return self.factor * self.inner.mean_rate(duration)


def sample_arrivals(
    shape: Shape,
    duration: float,
    rng: np.random.Generator,
    *,
    start_time: float = 0.0,
) -> np.ndarray:
    """Sample non-homogeneous Poisson arrivals on ``[0, duration)``.

    Lewis–Shedler thinning: draw a homogeneous Poisson process at the
    shape's peak rate and keep each candidate ``t`` with probability
    ``rate(t) / peak``.  Exact for any bounded intensity.  Candidates are
    drawn in fixed-size chunks so the RNG stream consumed by one seed is
    reproducible bit for bit.

    Returns arrival times sorted ascending, shifted by ``start_time``.
    """
    if duration <= 0:
        raise SchedulingError(f"duration must be positive, got {duration}")
    lam = shape.peak_rate(duration)
    if lam < 0:
        raise SchedulingError(f"peak rate must be >= 0, got {lam}")
    if lam == 0:
        return np.empty(0)
    accepted: List[np.ndarray] = []
    t = 0.0
    while t < duration:
        gaps = rng.exponential(1.0 / lam, size=_THINNING_CHUNK)
        candidates = t + np.cumsum(gaps)
        uniforms = rng.uniform(size=_THINNING_CHUNK)
        t = float(candidates[-1])
        keep = (candidates < duration) & (uniforms * lam < shape.rate(candidates))
        accepted.append(candidates[keep])
    arrivals = np.concatenate(accepted)
    return start_time + arrivals


# --------------------------------------------------------------------------
# Recorded-traffic traces
# --------------------------------------------------------------------------

_TRACE_HEADER = ("timestamp", "model", "seq_len")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded request: when it arrived, which model, how long an input.

    ``seq_len`` is the recorded input size (e.g. token count); replay maps
    it deterministically onto one of the profiled input samples, so the same
    trace always produces the same per-layer latencies.
    """

    timestamp: float
    model: str
    seq_len: int

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise SchedulingError(
                f"trace timestamps must be >= 0, got {self.timestamp}"
            )
        if self.seq_len < 0:
            raise SchedulingError(f"seq_len must be >= 0, got {self.seq_len}")


def save_trace_csv(path: Union[str, Path], events: Sequence[TraceEvent]) -> None:
    """Write a recorded-traffic trace as (timestamp, model, seq_len) CSV."""
    if not events:
        raise SchedulingError("cannot save an empty traffic trace")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_TRACE_HEADER)
        for ev in events:
            writer.writerow([repr(float(ev.timestamp)), ev.model, ev.seq_len])


def load_trace_csv(path: Union[str, Path]) -> List[TraceEvent]:
    """Load a traffic trace written by :func:`save_trace_csv` (sorted)."""
    path = Path(path)
    events: List[TraceEvent] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or set(_TRACE_HEADER) - set(reader.fieldnames):
            raise SchedulingError(
                f"{path}: traffic trace needs columns {_TRACE_HEADER}"
            )
        for row in reader:
            events.append(TraceEvent(
                timestamp=float(row["timestamp"]),
                model=row["model"],
                seq_len=int(row["seq_len"]),
            ))
    if not events:
        raise SchedulingError(f"{path}: empty traffic trace")
    events.sort(key=lambda e: e.timestamp)
    return events


def replay_trace(
    events: Union[str, Path, Sequence[TraceEvent]],
    traces: Dict[str, TraceSet],
    *,
    slo_multiplier: float = 10.0,
    priority: float = 1.0,
    start_time: float = 0.0,
    rid_base: int = 0,
) -> Iterator[Request]:
    """Lazily turn a recorded traffic trace into an arrival-ordered stream.

    Each event's ``model`` is either a full ``model/pattern`` trace-set key
    or a bare model name (then ``seq_len`` picks among that model's patterns
    round-robin over sorted keys).  Within the trace set, ``seq_len %
    num_samples`` picks the profiled input sample — a deterministic proxy
    for "this recorded input", so replaying the same CSV yields identical
    per-layer latencies every time.  The stream feeds ``simulate``,
    ``simulate_multi`` (via ``list(...)``) and ``simulate_cluster``
    (directly, bounded memory) alike.
    """
    if isinstance(events, (str, Path)):
        events = load_trace_csv(events)
    if not events:
        raise SchedulingError("cannot replay an empty traffic trace")
    if slo_multiplier <= 0:
        raise SchedulingError(
            f"slo multiplier must be positive, got {slo_multiplier}"
        )
    by_model: Dict[str, List[str]] = {}
    for key in sorted(traces):
        by_model.setdefault(traces[key].model_name, []).append(key)
    last = -np.inf
    for offset, ev in enumerate(events):
        if ev.timestamp < last:
            raise SchedulingError("traffic trace events must be sorted by timestamp")
        last = ev.timestamp
        if ev.model in traces:
            trace = traces[ev.model]
        else:
            keys = by_model.get(ev.model)
            if not keys:
                raise SchedulingError(
                    f"traced model {ev.model!r} matches no trace-set key or "
                    f"profiled model name (have: {sorted(traces)})"
                )
            trace = traces[keys[ev.seq_len % len(keys)]]
        yield request_from_trace(
            trace, ev.seq_len % trace.num_samples,
            rid=rid_base + offset,
            arrival=start_time + ev.timestamp,
            slo_multiplier=slo_multiplier,
            priority=priority,
        )


def record_trace(
    requests: Sequence[Request], traces: Dict[str, TraceSet]
) -> List[TraceEvent]:
    """Project a request stream back to (timestamp, model, seq_len) events.

    The inverse of :func:`replay_trace`: each event carries the request's
    full trace-set key and the index of its profiled input sample (located
    by matching the per-layer latencies), so replaying the recorded events
    reproduces arrivals *and* per-layer latencies exactly.
    """
    events: List[TraceEvent] = []
    for req in requests:
        if req.key not in traces:
            raise SchedulingError(
                f"request {req.rid}: no trace set for key {req.key!r}"
            )
        trace = traces[req.key]
        matches = np.flatnonzero(
            (trace.latencies == np.asarray(req.layer_latencies)).all(axis=1)
        )
        if matches.size == 0:
            raise SchedulingError(
                f"request {req.rid}: its latencies match no profiled sample "
                f"of {req.key!r}"
            )
        events.append(TraceEvent(timestamp=req.arrival, model=req.key,
                                 seq_len=int(matches[0])))
    return events
