"""Scenario engine: composable traffic shapes, trace replay, parallel sweeps.

Three layers, each usable on its own:

* :mod:`repro.scenarios.shapes` — arrival-intensity shapes (constant, ramp,
  diurnal, flash-crowd spike, superposition) sampled as non-homogeneous
  Poisson via thinning, plus recorded-traffic CSV replay;
* :mod:`repro.scenarios.spec` — ``ScenarioSpec``: named phases (shape x
  duration x SLO/priority/model mix) stitched into one lazy request stream
  that drives every simulation engine;
* :mod:`repro.scenarios.runner` — a multiprocessing sweep over the
  scenario x scheduler x seed grid with a resumable JSON results store;
* :mod:`repro.scenarios.fuzz` — adversarial scenario search: a seeded
  hill-climb over traffic shapes and fault timelines that returns the
  violation-rate- (or EDP-) maximizing scenario plus a minimized
  reproducer spec.
"""

from repro.scenarios.shapes import (
    Constant,
    Diurnal,
    Piecewise,
    Ramp,
    Scale,
    Shape,
    Spike,
    Superpose,
    TraceEvent,
    fit_piecewise_constant,
    load_trace_csv,
    record_trace,
    replay_trace,
    sample_arrivals,
    save_trace_csv,
)
from repro.scenarios.spec import (
    Phase,
    ScenarioSpec,
    available_scenarios,
    build_scenario,
    generate_scenario,
    iter_scenario,
    scenario_descriptions,
)
from repro.scenarios.runner import (
    ENERGY_COST_KEYS,
    ENERGY_KEYS,
    FAULT_KEYS,
    METRIC_KEYS,
    SweepConfig,
    SweepResult,
    aggregate,
    cell_key,
    run_sweep,
    workload_seed,
)
from repro.scenarios.fuzz import (
    FuzzConfig,
    evaluate_named_scenario,
    fuzz,
    fuzz_to_json,
    replay,
)

__all__ = [
    "Shape",
    "Constant",
    "Ramp",
    "Diurnal",
    "Piecewise",
    "Spike",
    "Superpose",
    "Scale",
    "sample_arrivals",
    "fit_piecewise_constant",
    "TraceEvent",
    "save_trace_csv",
    "load_trace_csv",
    "replay_trace",
    "record_trace",
    "Phase",
    "ScenarioSpec",
    "iter_scenario",
    "generate_scenario",
    "available_scenarios",
    "scenario_descriptions",
    "build_scenario",
    "SweepConfig",
    "SweepResult",
    "METRIC_KEYS",
    "ENERGY_KEYS",
    "ENERGY_COST_KEYS",
    "FAULT_KEYS",
    "aggregate",
    "cell_key",
    "run_sweep",
    "workload_seed",
    "FuzzConfig",
    "evaluate_named_scenario",
    "fuzz",
    "fuzz_to_json",
    "replay",
]
