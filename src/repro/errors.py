"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ModelError(ReproError):
    """Malformed model graph or unknown model name."""


class SparsityError(ReproError):
    """Invalid sparsity configuration (rate out of range, bad pattern...)."""


class ProfilingError(ReproError):
    """Trace generation or trace-file parsing failed."""


class SchedulingError(ReproError):
    """Scheduler engine invariant violated or unknown scheduler name."""


class HardwareModelError(ReproError):
    """Invalid hardware-resource model configuration."""


class ObservabilityError(ReproError):
    """Trace/metrics/profile invariant violated or bad obs configuration."""


class FaultError(ReproError):
    """Invalid fault-injection timeline or fuzzer configuration."""


class WarehouseError(ReproError):
    """Sweep-warehouse invariant violated (corrupt store, bad query...)."""
