"""Live sweep telemetry: fleet progress through the ``repro.obs`` registry.

A :class:`SweepTelemetry` rides :func:`repro.scenarios.runner.run_sweep`
and publishes, on the standard metrics registry, what a fleet operator
watches during a 10k-cell grid:

* ``sweep.cells_completed`` / ``sweep.cells_failed`` /
  ``sweep.cells_skipped`` counters;
* ``sweep.throughput_cells_per_s`` and ``sweep.eta_s`` pull-gauges
  (recomputed at read time from the wall clock);
* per-worker completion counters ``sweep.worker.<pid>.cells``;
* ``sweep.cell_wall_s`` / ``sweep.cell_peak_rss_mb`` histograms over the
  per-cell cost measurements.

Unlike the simulated-time telemetry inside each cell (which is
deterministic and lands in the store), this is *wall-clock* telemetry
about the sweep itself — it feeds progress output and the cost sidecar,
never the checksummed result files.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class SweepTelemetry:
    """Progress metrics for one ``run_sweep`` invocation."""

    def __init__(self, registry=None, clock=time.perf_counter):
        # Local import: repro.obs reaches the engines; keep the warehouse
        # importable without dragging them in until telemetry is used.
        from repro.obs import MetricsRegistry

        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._t0 = clock()
        self.total = 0
        self._completed = self.registry.counter("sweep.cells_completed")
        self._failed = self.registry.counter("sweep.cells_failed")
        self._skipped = self.registry.counter("sweep.cells_skipped")
        self.registry.gauge("sweep.throughput_cells_per_s",
                            lambda: self.throughput)
        self.registry.gauge("sweep.eta_s", lambda: self.eta_s)
        self._wall = self.registry.histogram("sweep.cell_wall_s")
        self._rss = self.registry.histogram("sweep.cell_peak_rss_mb")
        self._rss_max = 0.0
        self._workers: Dict[int, object] = {}
        self.failures: List[str] = []

    def begin(self, total: int, skipped: int) -> None:
        """Announce the grid: total cells and how many resume as done."""
        self.total = int(total)
        self._t0 = self._clock()
        self._skipped.inc(int(skipped))

    # -- event hooks ---------------------------------------------------------

    def on_cell(self, key: str, *, worker: Optional[int] = None,
                wall_s: Optional[float] = None,
                peak_rss_mb: Optional[float] = None,
                failed: bool = False) -> None:
        """Fold one finished cell (successful or failed) into the metrics."""
        if failed:
            self._failed.inc()
            self.failures.append(key)
        else:
            self._completed.inc()
        if worker is not None:
            counter = self._workers.get(worker)
            if counter is None:
                counter = self._workers[worker] = self.registry.counter(
                    f"sweep.worker.{worker}.cells")
            counter.inc()
        if wall_s is not None:
            self._wall.observe(float(wall_s))
        if peak_rss_mb is not None and peak_rss_mb > 0:
            self._rss.observe(float(peak_rss_mb))
            self._rss_max = max(self._rss_max, float(peak_rss_mb))

    # -- derived figures -----------------------------------------------------

    @property
    def completed(self) -> int:
        return self._completed.value

    @property
    def failed(self) -> int:
        return self._failed.value

    @property
    def skipped(self) -> int:
        return self._skipped.value

    @property
    def elapsed_s(self) -> float:
        return max(self._clock() - self._t0, 1e-9)

    @property
    def throughput(self) -> float:
        """Completed cells per wall-clock second, this invocation."""
        done = self.completed + self.failed
        return done / self.elapsed_s if done else 0.0

    @property
    def remaining(self) -> int:
        return max(self.total - self.skipped - self.completed - self.failed, 0)

    @property
    def eta_s(self) -> float:
        """Seconds to grid completion at the current throughput."""
        rate = self.throughput
        return self.remaining / rate if rate > 0 else float("inf")

    # -- rendering -----------------------------------------------------------

    def progress_line(self, key: str, done: int, total: int) -> str:
        """One live progress line: counts, throughput, ETA, failures."""
        eta = self.eta_s
        eta_text = "--" if eta == float("inf") else f"{eta:.0f}s"
        line = (f"[{done}/{total}] {key}  "
                f"{self.throughput:.2f} cells/s  ETA {eta_text}")
        if self.failed:
            line += f"  [{self.failed} FAILED]"
        return line

    def summary(self) -> Dict:
        """Final fleet accounting (the CLI's post-sweep report)."""
        per_worker = {
            str(worker): counter.value
            for worker, counter in sorted(self._workers.items())
        }
        return {
            "total_cells": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "skipped": self.skipped,
            "elapsed_s": self.elapsed_s,
            "throughput_cells_per_s": self.throughput,
            "workers": per_worker,
            "cell_wall_s_mean": self._wall.mean if self._wall.count else 0.0,
            "cell_wall_s_p95": (self._wall.percentile(95)
                                if self._wall.count else 0.0),
            "cell_peak_rss_mb_max": self._rss_max,
        }
