"""Filter / project / aggregate over a warehouse without materializing it.

Queries stream the store one columnar batch (segment) at a time: a filter
builds a numpy mask per batch, a projection decodes only the named columns,
and aggregations fold per-group accumulators (count, sum, sum-of-squares,
min, max) across batches — so a 10k-cell grid is reduced in one pass with
one segment resident at a time.

Predicates are either column equalities (``scenario="diurnal"``) or
callables taking the column's values array and returning a boolean mask
(``seed=lambda s: s >= 2``).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import WarehouseError
from repro.warehouse.store import KEY_COLUMN, Warehouse

Predicate = Union[object, Callable]

#: Aggregate statistics computed per (group, metric).
STATS = ("n", "mean", "std", "min", "max")


def _as_array(values) -> np.ndarray:
    if isinstance(values, np.ndarray):
        return values
    return np.asarray(values, dtype=object)


def _batch_mask(batch: Dict[str, object], where: Dict[str, Predicate]
                ) -> np.ndarray:
    n = len(_as_array(batch[KEY_COLUMN]))
    mask = np.ones(n, dtype=bool)
    for name, predicate in where.items():
        if name not in batch:
            return np.zeros(n, dtype=bool)
        values = _as_array(batch[name])
        if callable(predicate):
            hit = np.asarray([bool(v) for v in predicate(values)], dtype=bool)
        else:
            hit = np.asarray([v == predicate for v in values], dtype=bool)
        if hit.shape != (n,):
            raise WarehouseError(
                f"predicate on {name!r} returned shape {hit.shape}, "
                f"expected ({n},)"
            )
        mask &= hit
    return mask


def scan(wh: Warehouse, *, columns: Optional[Sequence[str]] = None,
         where: Optional[Dict[str, Predicate]] = None
         ) -> Iterator[Dict[str, np.ndarray]]:
    """Yield filtered, projected column batches, one per segment.

    When filtering, the predicate columns are decoded alongside the
    projection so the mask can be evaluated per batch.
    """
    where = where or {}
    decode = None
    if columns is not None:
        decode = set(columns) | set(where)
    for batch in wh.iter_batches(columns=decode):
        mask = _batch_mask(batch, where)
        if not mask.any():
            continue
        out = {}
        for name, values in batch.items():
            if columns is not None and name not in columns \
                    and name != KEY_COLUMN:
                continue
            out[name] = _as_array(values)[mask]
        yield out


def select(wh: Warehouse, *, columns: Optional[Sequence[str]] = None,
           where: Optional[Dict[str, Predicate]] = None
           ) -> Dict[str, np.ndarray]:
    """Materialize the matching rows as concatenated columns."""
    batches = list(scan(wh, columns=columns, where=where))
    if not batches:
        return {}
    names = sorted({name for batch in batches for name in batch})
    out = {}
    for name in names:
        parts = [batch[name] if name in batch
                 else np.full(len(batch[KEY_COLUMN]), np.nan)
                 for batch in batches]
        try:
            out[name] = np.concatenate(parts)
        except (ValueError, TypeError):
            out[name] = np.concatenate([_as_array(p) for p in parts])
    return out


def distinct(wh: Warehouse, column: str,
             where: Optional[Dict[str, Predicate]] = None) -> List:
    """Sorted unique values of one column across the matching rows."""
    seen = set()
    for batch in scan(wh, columns=(column,), where=where):
        if column in batch:
            seen.update(batch[column].tolist())
    return sorted(seen)


class _Acc:
    """Streaming accumulator: count / sum / sum-of-squares / min / max."""

    __slots__ = ("n", "total", "total_sq", "lo", "hi")

    def __init__(self):
        self.n = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.lo = math.inf
        self.hi = -math.inf

    def fold(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        values = values[~np.isnan(values)]
        if not len(values):
            return
        self.n += int(len(values))
        self.total += float(values.sum())
        self.total_sq += float((values * values).sum())
        self.lo = min(self.lo, float(values.min()))
        self.hi = max(self.hi, float(values.max()))

    def stats(self) -> Dict[str, float]:
        if not self.n:
            return {"n": 0, "mean": math.nan, "std": math.nan,
                    "min": math.nan, "max": math.nan}
        mean = self.total / self.n
        variance = max(self.total_sq / self.n - mean * mean, 0.0)
        return {"n": self.n, "mean": mean, "std": math.sqrt(variance),
                "min": self.lo, "max": self.hi}


def aggregate(wh: Warehouse, *, group_by: Sequence[str] = ("scenario", "scheduler"),
              metrics: Sequence[str],
              where: Optional[Dict[str, Predicate]] = None
              ) -> Dict[Tuple, Dict[str, Dict[str, float]]]:
    """Per-group streaming statistics over the matching rows.

    Returns ``{group_tuple: {metric: {n, mean, std, min, max}}}`` with
    groups in sorted order.  Non-numeric metric values and rows missing
    the metric fold as absent (NaN-skipped), so mixed engine grids
    aggregate cleanly.
    """
    accs: Dict[Tuple, Dict[str, _Acc]] = {}
    for batch in scan(wh, columns=tuple(group_by) + tuple(metrics),
                      where=where):
        n = len(batch[KEY_COLUMN])
        group_cols = []
        for name in group_by:
            if name not in batch:
                raise WarehouseError(f"unknown group-by column {name!r}")
            group_cols.append(_as_array(batch[name]))
        row_groups = [tuple(col[i] for col in group_cols) for i in range(n)]
        for group in set(row_groups):
            rows = np.asarray([g == group for g in row_groups], dtype=bool)
            target = accs.setdefault(group, {m: _Acc() for m in metrics})
            for metric in metrics:
                if metric not in batch:
                    continue
                values = batch[metric]
                if not isinstance(values, np.ndarray) \
                        or values.dtype.kind not in "if":
                    try:
                        values = np.asarray(
                            [math.nan if v is None else float(v)
                             for v in values], dtype=np.float64)
                    except (TypeError, ValueError):
                        continue
                target[metric].fold(np.asarray(values)[rows])
    return {
        group: {metric: acc.stats() for metric, acc in sorted(group_accs.items())}
        for group, group_accs in sorted(accs.items())
    }


def group_key(group: Iterable) -> str:
    """Canonical ``a/b/...`` label for a group tuple (baseline file keys)."""
    return "/".join(str(part) for part in group)
