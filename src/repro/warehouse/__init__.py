"""Columnar sweep warehouse: fleet-scale result storage and analytics.

Replaces the monolithic rewrite-the-whole-JSON sweep store with an
append-only columnar format built for 10k-cell grids:

* **Store** (:mod:`repro.warehouse.store`): numpy-backed column segments
  under a checksummed manifest plus a CRC-framed journal tail — cell
  appends are O(1), crashes recover to the longest valid prefix, and the
  on-disk bytes are identical for any sweep worker count.
* **Query** (:mod:`repro.warehouse.query`): filter / project / aggregate
  streamed one segment at a time, never materializing the store.
* **Regression detection** (:mod:`repro.warehouse.regress`):
  ``repro regress`` gates req/s, EDP, violation rate and shed rate per
  (scenario, scheduler) group against a committed baseline with
  seed-noise-aware thresholds.
* **Live telemetry** (:mod:`repro.warehouse.telemetry`): per-worker
  throughput, failure counts and ETA published through the standard
  :class:`repro.obs.MetricsRegistry` while a sweep runs.
"""

from __future__ import annotations

from repro.warehouse.query import (
    aggregate,
    distinct,
    group_key,
    scan,
    select,
)
from repro.warehouse.regress import (
    REGRESS_METRICS,
    build_baseline,
    compare,
    format_rows,
    group_stats,
    load_baseline,
    load_store_cells,
    regressions,
    write_baseline,
)
from repro.warehouse.store import (
    COSTS_NAME,
    JOURNAL_NAME,
    KEY_COLUMN,
    MANIFEST_NAME,
    SEGMENT_DIR,
    Warehouse,
    decode_segment,
    encode_segment,
    import_legacy_json,
    is_warehouse,
)
from repro.warehouse.telemetry import SweepTelemetry

__all__ = [
    "Warehouse",
    "is_warehouse",
    "import_legacy_json",
    "encode_segment",
    "decode_segment",
    "KEY_COLUMN",
    "MANIFEST_NAME",
    "SEGMENT_DIR",
    "JOURNAL_NAME",
    "COSTS_NAME",
    "scan",
    "select",
    "distinct",
    "aggregate",
    "group_key",
    "REGRESS_METRICS",
    "group_stats",
    "build_baseline",
    "write_baseline",
    "load_baseline",
    "compare",
    "regressions",
    "format_rows",
    "load_store_cells",
    "SweepTelemetry",
]
