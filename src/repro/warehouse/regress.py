"""Cross-run regression detection on scheduling-quality metrics.

The scheduling-quality twin of ``repro perf --compare``: where the perf
gate tracks *engine throughput*, this gate tracks what the paper's claims
are actually about — requests/s served (STP), energy-delay product,
SLO-violation rate and shed rate — per (scenario, scheduler) cell group,
against a committed baseline file.

Thresholds are **seed-noise aware**: a group's baseline records the mean
*and* the across-seed standard deviation per metric, and a change only
counts as a regression when the direction-aware delta exceeds every one of

* an absolute floor (rates get 0.5 points — below that a "regression" in
  violation rate is numerical dust),
* a relative tolerance of the baseline mean (default 5%), and
* ``noise_mult`` standard errors of the seed noise
  (:math:`\\sqrt{\\sigma_b^2/n_b + \\sigma_c^2/n_c}`), so a metric that
  legitimately varies across seeds needs a correspondingly larger shift.

``repro regress`` exits non-zero on any regression, which is what CI
gates on.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import WarehouseError

BASELINE_KIND = "sweep-baseline"
BASELINE_SCHEMA = 1

#: Gated metrics: direction ("higher"/"lower" is better) and the absolute
#: floor below which a delta is never flagged.  ``edp`` and ``shed_rate``
#: only exist on energy / cluster sweeps; groups simply omit absent ones.
REGRESS_METRICS: Dict[str, Tuple[str, float]] = {
    "stp": ("higher", 0.0),
    "edp": ("lower", 0.0),
    "violation_rate": ("lower", 0.005),
    "shed_rate": ("lower", 0.005),
}


def group_stats(cells: Iterable[Dict],
                metrics: Iterable[str] = tuple(REGRESS_METRICS)
                ) -> Dict[str, Dict]:
    """Per-(scenario, scheduler) mean/std/n across seeds, from cell dicts."""
    groups: Dict[str, List[Dict]] = {}
    for cell in cells:
        key = f"{cell['scenario']}/{cell['scheduler']}"
        groups.setdefault(key, []).append(cell)
    out: Dict[str, Dict] = {}
    for key, members in sorted(groups.items()):
        stats: Dict[str, Dict[str, float]] = {}
        for metric in metrics:
            values = [float(c[metric]) for c in members
                      if metric in c and c[metric] is not None
                      and not math.isnan(float(c[metric]))]
            if not values:
                continue
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            stats[metric] = {"mean": mean, "std": math.sqrt(variance),
                             "n": len(values)}
        out[key] = {"n_cells": len(members), "metrics": stats}
    return out


def build_baseline(workload: Dict, cells: Iterable[Dict]) -> Dict:
    """The committed-baseline document for one sweep's cells."""
    return {
        "kind": BASELINE_KIND,
        "schema": BASELINE_SCHEMA,
        "workload": json.loads(json.dumps(workload)),
        "groups": group_stats(cells),
    }


def write_baseline(path: Union[str, Path], baseline: Dict) -> Path:
    path = Path(path)
    path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Union[str, Path]) -> Dict:
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise WarehouseError(f"{path}: unreadable baseline ({exc})") from None
    if not isinstance(doc, dict) or doc.get("kind") != BASELINE_KIND:
        raise WarehouseError(
            f"{path}: not a sweep baseline (write one with "
            f"`repro regress STORE --write-baseline {path}`)"
        )
    if doc.get("schema") != BASELINE_SCHEMA:
        raise WarehouseError(
            f"{path}: unsupported baseline schema {doc.get('schema')!r}")
    return doc


def _metric_stats(entry, metric: str) -> Optional[Dict]:
    """One group's ``{mean, std, n}`` for ``metric``, or ``None``.

    Tolerates hand-edited / truncated baselines: a group entry without a
    ``metrics`` key, or a metric missing any of the stat fields, is simply
    ungated instead of crashing the CI gate with a raw ``KeyError``.
    """
    if not isinstance(entry, dict):
        return None
    metrics = entry.get("metrics")
    stats = metrics.get(metric) if isinstance(metrics, dict) else None
    if not isinstance(stats, dict):
        return None
    if not all(isinstance(stats.get(field), (int, float))
               and not isinstance(stats.get(field), bool)
               for field in ("mean", "std", "n")):
        return None
    return stats


def compare(current: Dict, baseline: Dict, *, rel_tol: float = 0.05,
            noise_mult: float = 3.0,
            check_workload: bool = True) -> List[Dict]:
    """Direction-aware deltas of ``current`` vs ``baseline``, per group.

    Both arguments are baseline-shaped documents (``build_baseline`` of
    the current store vs the committed file).  Returns one row per
    (group, metric) present in both, each carrying the threshold it was
    judged against and a ``regressed`` verdict.
    """
    if check_workload and current.get("workload") != baseline.get("workload"):
        raise WarehouseError(
            "current store and baseline describe different workloads "
            f"({current.get('workload')} vs {baseline.get('workload')}); "
            "regenerate the baseline or pass --allow-workload-mismatch"
        )
    rows: List[Dict] = []
    base_groups = baseline.get("groups", {})
    for group, cur_entry in sorted(current.get("groups", {}).items()):
        base_entry = base_groups.get(group)
        if base_entry is None:
            continue
        for metric, (direction, abs_floor) in REGRESS_METRICS.items():
            cur = _metric_stats(cur_entry, metric)
            base = _metric_stats(base_entry, metric)
            if cur is None or base is None:
                continue
            noise = noise_mult * math.sqrt(
                base["std"] ** 2 / max(base["n"], 1)
                + cur["std"] ** 2 / max(cur["n"], 1)
            )
            threshold = max(abs_floor, rel_tol * abs(base["mean"]), noise)
            delta = cur["mean"] - base["mean"]
            worse = delta if direction == "lower" else -delta
            rows.append({
                "group": group,
                "metric": metric,
                "direction": direction,
                "baseline": base["mean"],
                "current": cur["mean"],
                "delta": delta,
                "threshold": threshold,
                "regressed": worse > threshold,
            })
    return rows


def regressions(rows: List[Dict]) -> List[Dict]:
    return [row for row in rows if row["regressed"]]


def format_rows(rows: List[Dict]) -> List[str]:
    """Printable delta table, worst offenders carrying a marker."""
    out = []
    for row in rows:
        arrow = "↑" if row["direction"] == "higher" else "↓"
        rel = (row["delta"] / row["baseline"] if row["baseline"] else math.inf
               if row["delta"] else 0.0)
        marker = "  <-- REGRESSION" if row["regressed"] else ""
        out.append(
            f"{row['group']:<24} {row['metric']:<15}{arrow} "
            f"{row['baseline']:10.4f} -> {row['current']:10.4f} "
            f"({rel:+8.1%}, gate ±{row['threshold']:.4f}){marker}"
        )
    return out


def load_store_cells(path: Union[str, Path]
                     ) -> Tuple[Dict, Dict[str, Dict]]:
    """``(workload, cells)`` from a warehouse dir *or* a legacy JSON store."""
    from repro.warehouse.store import MANIFEST_NAME, Warehouse

    path = Path(path)
    if path.is_dir() or (path / MANIFEST_NAME).exists():
        with Warehouse.open(path) as wh:
            return wh.workload, wh.read_cells()
    try:
        store = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise WarehouseError(f"{path}: unreadable sweep store ({exc})") from None
    if not isinstance(store, dict) or not isinstance(store.get("cells"), dict):
        raise WarehouseError(f"{path}: neither a warehouse directory nor a "
                             f"legacy sweep-store JSON")
    return store.get("workload", {}), store["cells"]
