"""Append-only, columnar, crash-recoverable sweep result store.

A :class:`Warehouse` is a directory holding one sweep grid's results:

* ``manifest.json`` — the workload parameters, the segment roll (name,
  rows, CRC-32) and the sealing chunk size.  Rewritten atomically and only
  when a segment seals — never per cell.
* ``segments/seg-NNNNN.seg`` — immutable columnar chunks: a one-line JSON
  header (column names, kinds, byte extents, missing-row indices) followed
  by the raw little-endian column payloads.  Numeric columns are
  ``float64``/``int64`` buffers decoded straight into numpy; everything
  else (names, nested telemetry tables, alert lists) is a JSON column.
* ``journal.jsonl`` — the mutable tail: one CRC-framed JSON line per
  appended cell.  Appending is O(1) — the fix for the legacy store's
  rewrite-everything-per-cell behaviour — and when the tail reaches
  ``segment_rows`` rows it seals into the next segment and the journal
  truncates.
* ``costs.jsonl`` — non-deterministic sidecar (per-cell wall-clock, peak
  RSS, worker pid).  Deliberately outside the manifest/checksum envelope:
  everything *inside* it is a pure function of the workload, so two sweeps
  of the same grid are byte-identical whatever the worker count, and an
  interrupted sweep resumes to the exact bytes of an uninterrupted one.

**Determinism contract.**  Rows must be appended in one globally
deterministic order (the sweep runner's grid order).  Under that
discipline the recovery rule is simple and total: the store's valid state
is always the longest checksum-valid *prefix* of (segments, journal), so
recovery truncates to that prefix and a resume re-appends the missing
suffix — reproducing, byte for byte, the store an uninterrupted run would
have written.

Crash windows and how :meth:`Warehouse.open` heals them:

* torn journal line (killed mid-append) — the CRC frame fails; the journal
  is truncated to its last valid line;
* torn segment (killed mid-seal, or a later truncation) — the CRC-32 in
  the manifest fails; that segment, every later segment and the journal
  are discarded (suffix truncation keeps the deterministic order);
* segment written but manifest not yet updated — the orphan segment file
  is deleted, its rows are still in the journal, and the now-full-size
  journal tail is immediately re-sealed so segment boundaries stay where
  an uninterrupted run would have put them;
* manifest updated but journal not yet truncated — journal rows whose keys
  already live in sealed segments are dropped and the journal rewritten.

:meth:`Warehouse.compact` follows the same discipline: rows leaving the
sealed prefix are spilled to the journal before the manifest stops
referencing their old segments, so a crash mid-compact recovers to either
the old or the compacted layout — never a truncated one.
"""

from __future__ import annotations

import json
import math
import os
import shutil
import zlib
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.errors import WarehouseError

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
COSTS_NAME = "costs.jsonl"
SEGMENT_DIR = "segments"
SEGMENT_MAGIC = "repro-warehouse-seg"
MANIFEST_SCHEMA = 1
#: Rows per sealed segment unless the manifest says otherwise.
DEFAULT_SEGMENT_ROWS = 256
#: Reserved column carrying each row's cell key.
KEY_COLUMN = "cell_key"


def _canon(doc) -> str:
    """Canonical compact JSON: the only serialization written to disk."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _atomic_write(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


def segment_name(index: int) -> str:
    return f"seg-{index:05d}.seg"


# ---------------------------------------------------------------------------
# Columnar segment encoding


def encode_segment(rows: List[Tuple[str, Dict]]) -> bytes:
    """Encode ``(key, cell)`` rows as one immutable columnar segment.

    Column order is sorted by name (the key column first), kinds are
    derived from the present values — ``i8`` when every one is an int and
    no row is missing, ``f8`` when ints and floats mix, ``json`` otherwise
    (including gappy int columns, keeping their values int) — and rows
    where a column is absent are listed in the header's ``missing``
    indices, so decoding reconstructs each cell dict exactly.  Every byte
    is a pure function of the rows: same rows, same segment.
    """
    if not rows:
        raise WarehouseError("cannot encode an empty segment")
    names = sorted({name for _, cell in rows for name in cell})
    columns = []
    payloads = []
    for name, values, missing in _iter_columns(names, rows):
        present = [v for i, v in enumerate(values) if i not in missing]
        entry: Dict = {"name": name}
        numeric = present and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in present
        )
        all_int = numeric and all(isinstance(v, int) for v in present)
        if all_int and not missing:
            entry["kind"] = "i8"
            payload = np.asarray(values, dtype="<i8").tobytes()
        elif numeric and not all_int:
            entry["kind"] = "f8"
            filled = [np.nan if i in missing else float(v)
                      for i, v in enumerate(values)]
            payload = np.asarray(filled, dtype="<f8").tobytes()
        else:
            # json carries strings/nested values — and int columns with
            # gaps: a numeric payload has no int-preserving hole marker,
            # so it would come back float and re-encode to different bytes.
            entry["kind"] = "json"
            filled = [None if i in missing else v
                      for i, v in enumerate(values)]
            payload = _canon(filled).encode()
        entry["nbytes"] = len(payload)
        if missing:
            entry["missing"] = sorted(missing)
        columns.append(entry)
        payloads.append(payload)
    header = _canon({
        "columns": columns,
        "magic": SEGMENT_MAGIC,
        "rows": len(rows),
        "version": 1,
    })
    return header.encode() + b"\n" + b"".join(payloads)


def _iter_columns(names, rows):
    """Yield ``(name, values, missing_row_indices)`` — key column first."""
    yield KEY_COLUMN, [key for key, _ in rows], set()
    for name in names:
        values = [cell.get(name) for _, cell in rows]
        missing = {i for i, (_, cell) in enumerate(rows) if name not in cell}
        yield name, values, missing


def decode_segment(data: bytes,
                   columns: Optional[Iterable[str]] = None) -> Dict[str, object]:
    """Decode a segment buffer into ``{name: values}`` columns.

    ``i8``/``f8`` columns come back as numpy arrays (missing rows as
    NaN), ``json`` columns as Python lists with ``None`` holes.
    ``columns`` restricts decoding; unnamed payloads are skipped without
    parsing.  The key column is always included.
    """
    newline = data.find(b"\n")
    if newline < 0:
        raise WarehouseError("segment has no header line")
    try:
        header = json.loads(data[:newline])
    except ValueError as exc:
        raise WarehouseError(f"segment header is not JSON ({exc})") from None
    if header.get("magic") != SEGMENT_MAGIC:
        raise WarehouseError("segment magic mismatch")
    wanted = None if columns is None else set(columns) | {KEY_COLUMN}
    out: Dict[str, object] = {}
    offset = newline + 1
    for entry in header["columns"]:
        name, kind, nbytes = entry["name"], entry["kind"], entry["nbytes"]
        payload = data[offset:offset + nbytes]
        offset += nbytes
        if len(payload) != nbytes:
            raise WarehouseError(f"segment column {name!r} is truncated")
        if wanted is not None and name not in wanted:
            continue
        missing = entry.get("missing", [])
        if kind == "json":
            out[name] = json.loads(payload)
        elif kind == "i8" and not missing:
            out[name] = np.frombuffer(payload, dtype="<i8")
        else:
            values = np.array(
                np.frombuffer(payload, dtype="<i8" if kind == "i8" else "<f8"),
                dtype=np.float64,
            )
            values[missing] = np.nan
            out[name] = values
    return out


def rows_from_columns(batch: Dict[str, object]) -> Iterator[Tuple[str, Dict]]:
    """Invert a decoded batch back into ``(key, cell)`` rows."""
    keys = batch[KEY_COLUMN]
    names = [name for name in batch if name != KEY_COLUMN]
    for i, key in enumerate(keys):
        cell = {}
        for name in names:
            values = batch[name]
            value = values[i]
            if isinstance(values, np.ndarray):
                if np.isnan(value):
                    continue  # missing numeric cell
                value = int(value) if values.dtype.kind == "i" else float(value)
            elif value is None:
                continue  # missing json cell
            cell[name] = value
        yield key, cell


# ---------------------------------------------------------------------------
# Journal framing


def frame_journal_line(key: str, cell: Dict) -> bytes:
    doc = _canon({"cell": cell, "key": key}).encode()
    return f"{_crc(doc):08x} ".encode() + doc + b"\n"


def parse_journal_line(line: bytes) -> Optional[Tuple[str, Dict]]:
    """Decode one framed journal line; ``None`` if torn/corrupt."""
    if not line.endswith(b"\n") or len(line) < 11 or line[8:9] != b" ":
        return None
    doc = line[9:-1]
    try:
        if int(line[:8], 16) != _crc(doc):
            return None
        payload = json.loads(doc)
    except ValueError:
        return None
    if not isinstance(payload, dict) or "key" not in payload:
        return None
    return payload["key"], payload.get("cell", {})


# ---------------------------------------------------------------------------
# The warehouse


class Warehouse:
    """One sweep grid's append-only columnar result store (see module doc)."""

    def __init__(self, root: Union[str, Path], manifest: Dict,
                 tail: List[Tuple[str, Dict]], keys: set,
                 recovered: List[str]):
        self.root = Path(root)
        self._manifest = manifest
        self._tail = tail
        self._keys = keys
        #: Human-readable notes about what :meth:`open` had to heal.
        self.recovered = recovered
        self._journal_fh = open(self.root / JOURNAL_NAME, "ab")

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, root: Union[str, Path], workload: Dict, *,
               segment_rows: int = DEFAULT_SEGMENT_ROWS,
               force: bool = False) -> "Warehouse":
        root = Path(root)
        if (root / MANIFEST_NAME).exists() and not force:
            raise WarehouseError(f"{root} already holds a warehouse")
        if segment_rows < 1:
            raise WarehouseError(f"segment_rows must be >= 1, got {segment_rows}")
        if force and root.exists():
            if (root / MANIFEST_NAME).exists():
                shutil.rmtree(root)
            elif not root.is_dir() or any(root.iterdir()):
                raise WarehouseError(
                    f"{root} exists but is not a warehouse; refusing to "
                    f"overwrite it — delete it manually if that is really "
                    f"what you want"
                )
        (root / SEGMENT_DIR).mkdir(parents=True, exist_ok=True)
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "segment_rows": int(segment_rows),
            "segments": [],
            "workload": json.loads(json.dumps(workload)),
        }
        _atomic_write(root / MANIFEST_NAME,
                      (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode())
        (root / JOURNAL_NAME).touch()
        return cls(root, manifest, [], set(), [])

    @classmethod
    def open(cls, root: Union[str, Path]) -> "Warehouse":
        """Open an existing warehouse, healing any interrupted-write state."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise WarehouseError(f"{root} is not a warehouse (no {MANIFEST_NAME})")
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise WarehouseError(f"{manifest_path}: corrupt manifest ({exc})") from None
        if not isinstance(manifest, dict) or manifest.get("schema") != MANIFEST_SCHEMA:
            raise WarehouseError(
                f"{manifest_path}: unsupported warehouse schema "
                f"{manifest.get('schema')!r}"
            )
        recovered: List[str] = []
        keys: set = set()
        seg_dir = root / SEGMENT_DIR
        seg_dir.mkdir(exist_ok=True)

        # Longest valid segment prefix; everything after a bad segment goes.
        valid: List[Dict] = []
        truncated = False
        for entry in manifest.get("segments", []):
            path = seg_dir / entry["name"]
            data = path.read_bytes() if path.exists() else None
            if data is None or _crc(data) != entry["crc32"]:
                recovered.append(
                    f"segment {entry['name']} "
                    f"{'missing' if data is None else 'failed its checksum'}; "
                    f"dropped it and everything after"
                )
                truncated = True
                break
            batch = decode_segment(data, columns=())
            keys.update(batch[KEY_COLUMN])
            valid.append(entry)
        if truncated:
            manifest["segments"] = valid
            _atomic_write(manifest_path,
                          (json.dumps(manifest, indent=2, sort_keys=True)
                           + "\n").encode())
        listed = {entry["name"] for entry in manifest["segments"]}
        for path in sorted(seg_dir.iterdir()):
            if path.name not in listed:
                path.unlink()
                recovered.append(f"deleted orphan segment file {path.name}")

        # Journal: longest valid line prefix, minus rows already sealed.
        tail: List[Tuple[str, Dict]] = []
        journal_path = root / JOURNAL_NAME
        raw = journal_path.read_bytes() if journal_path.exists() else b""
        kept = bytearray()
        if truncated:
            if raw:
                recovered.append(
                    "discarded the journal (it follows the dropped segments)"
                )
            raw = b""
        pos = 0
        while pos < len(raw):
            end = raw.find(b"\n", pos)
            if end < 0:
                recovered.append("dropped a torn trailing journal line")
                break
            line = raw[pos:end + 1]
            parsed = parse_journal_line(line)
            if parsed is None:
                recovered.append("dropped a corrupt journal line and its tail")
                break
            key, cell = parsed
            if key in keys:
                recovered.append(f"dropped journal row {key!r} already sealed")
            else:
                keys.add(key)
                tail.append((key, cell))
                kept += line
            pos = end + 1
        if bytes(kept) != raw:
            _atomic_write(journal_path, bytes(kept))
        wh = cls(root, manifest, tail, keys, recovered)
        # A crash between the segment write and the manifest update leaves
        # a full-size journal tail (the orphan segment's rows).  Complete
        # the interrupted seal now — deferring it would shift every later
        # segment boundary and break byte-identity with an uninterrupted
        # run.
        while len(wh._tail) >= wh.segment_rows:
            name = wh._seal_rows(wh.segment_rows)
            recovered.append(
                f"completed an interrupted seal into segment {name}")
        return wh

    @classmethod
    def open_or_create(cls, root: Union[str, Path], workload: Dict, *,
                       segment_rows: int = DEFAULT_SEGMENT_ROWS,
                       force: bool = False) -> "Warehouse":
        """Open (validating the workload) or create the warehouse at ``root``.

        Mirrors the legacy JSON store's resume discipline: an existing
        warehouse under *different* workload parameters is refused rather
        than silently mixed.
        """
        root = Path(root)
        if force or not (root / MANIFEST_NAME).exists():
            return cls.create(root, workload, segment_rows=segment_rows,
                              force=force)
        wh = cls.open(root)
        expected = json.loads(json.dumps(workload))
        if wh.workload != expected:
            raise WarehouseError(
                f"{root} holds a sweep under different workload parameters "
                f"({wh.workload} vs {expected}); choose another path or pass "
                f"force to overwrite it"
            )
        return wh

    def close(self) -> None:
        if not self._journal_fh.closed:
            self._journal_fh.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- properties ----------------------------------------------------------

    @property
    def workload(self) -> Dict:
        return self._manifest["workload"]

    @property
    def segment_rows(self) -> int:
        return int(self._manifest["segment_rows"])

    @property
    def segments(self) -> List[Dict]:
        return list(self._manifest["segments"])

    @property
    def num_segments(self) -> int:
        return len(self._manifest["segments"])

    @property
    def num_sealed(self) -> int:
        return sum(entry["rows"] for entry in self._manifest["segments"])

    @property
    def tail_rows(self) -> int:
        return len(self._tail)

    def __len__(self) -> int:
        return self.num_sealed + len(self._tail)

    def completed_keys(self) -> FrozenSet[str]:
        return frozenset(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    # -- writes --------------------------------------------------------------

    def append(self, key: str, cell: Dict) -> None:
        """Append one cell: O(1) journal write, sealing every Nth row.

        ``None``-valued and NaN-valued fields are normalized to *absent* —
        both mean "this cell has no such measurement", and collapsing them
        keeps the encoding canonical: appending a round-tripped cell
        reproduces the original bytes.
        """
        if key in self._keys:
            raise WarehouseError(f"cell {key!r} already in the warehouse")
        if KEY_COLUMN in cell:
            raise WarehouseError(f"cell may not define the reserved "
                                 f"{KEY_COLUMN!r} column")
        cell = {
            name: value for name, value in cell.items()
            if value is not None
            and not (isinstance(value, float) and math.isnan(value))
        }
        self._journal_fh.write(frame_journal_line(key, cell))
        self._journal_fh.flush()
        self._keys.add(key)
        self._tail.append((key, cell))
        if len(self._tail) >= self.segment_rows:
            self.seal_tail()

    def seal_tail(self) -> Optional[str]:
        """Seal the journal tail into the next immutable segment.

        Called automatically at every ``segment_rows``-th append; calling
        it early (e.g. before archiving) produces an undersized segment
        that a later :meth:`compact` will fold back into the standard
        chunking.  Returns the new segment's name, or ``None`` when the
        tail is empty.
        """
        if not self._tail:
            return None
        return self._seal_rows(len(self._tail))

    def _seal_rows(self, count: int) -> str:
        """Seal the first ``count`` tail rows into the next segment.

        Three atomic file writes, ordered so a crash between any two of
        them recovers losslessly on :meth:`open`: segment first (crash ->
        orphan file, rows still journalled, seal re-runs), manifest second
        (crash -> journal rows duplicate sealed ones and are dropped),
        journal rewrite last.
        """
        chunk, rest = self._tail[:count], self._tail[count:]
        name = segment_name(len(self._manifest["segments"]))
        data = encode_segment(chunk)
        _atomic_write(self.root / SEGMENT_DIR / name, data)
        self._manifest["segments"].append(
            {"crc32": _crc(data), "name": name, "rows": len(chunk)}
        )
        self._write_manifest()
        self._rewrite_journal(rest)
        self._tail = rest
        return name

    def _write_manifest(self) -> None:
        _atomic_write(self.root / MANIFEST_NAME,
                      (json.dumps(self._manifest, indent=2, sort_keys=True)
                       + "\n").encode())

    def _rewrite_journal(self, rows: List[Tuple[str, Dict]]) -> None:
        """Atomically replace the journal with frames for ``rows``."""
        self._journal_fh.close()
        _atomic_write(self.root / JOURNAL_NAME,
                      b"".join(frame_journal_line(key, cell)
                               for key, cell in rows))
        self._journal_fh = open(self.root / JOURNAL_NAME, "ab")

    def compact(self, *, segment_rows: Optional[int] = None) -> Dict[str, int]:
        """Re-chunk every row into full-size segments, preserving order.

        Merges undersized segments (from :meth:`seal_tail` or historical
        smaller ``segment_rows``) into the standard chunking — the exact
        layout a fresh uninterrupted run would have produced.  Offline
        operation (don't run it concurrently with a sweep), but crash-safe:
        rows leaving the sealed prefix are spilled to the journal before
        the manifest stops referencing their old segments, so at every
        point the store's recoverable state holds every row — a crash
        mid-compact resumes to either the old or the compacted layout.
        """
        rows = list(self.iter_cells())
        if segment_rows is not None:
            if segment_rows < 1:
                raise WarehouseError(
                    f"segment_rows must be >= 1, got {segment_rows}")
            self._manifest["segment_rows"] = int(segment_rows)
        chunk = self.segment_rows
        before = len(self._manifest["segments"])
        # Longest prefix of sealed segments already in final form; only
        # the suffix is rewritten, which also makes the aligned case a
        # byte-for-byte no-op.
        keep = 0
        for index, entry in enumerate(self._manifest["segments"]):
            if entry["rows"] != chunk or entry["name"] != segment_name(index):
                break
            data = encode_segment(rows[index * chunk:(index + 1) * chunk])
            if entry["crc32"] != _crc(data):
                break
            keep += 1
        spill = rows[keep * chunk:]
        self._rewrite_journal(spill)
        self._manifest["segments"] = self._manifest["segments"][:keep]
        self._write_manifest()
        self._tail = spill
        while len(self._tail) >= chunk:
            self._seal_rows(chunk)
        seg_dir = self.root / SEGMENT_DIR
        listed = {entry["name"] for entry in self._manifest["segments"]}
        for path in sorted(seg_dir.iterdir()):
            if path.name not in listed:
                path.unlink()
        return {"rows": len(rows), "segments_before": before,
                "segments_after": len(self._manifest["segments"]),
                "tail_rows": len(self._tail)}

    # -- reads ---------------------------------------------------------------

    def iter_batches(self, columns: Optional[Iterable[str]] = None
                     ) -> Iterator[Dict[str, object]]:
        """Yield one decoded column batch per segment, then the tail.

        Never materializes the whole store: each batch is independent, so
        filters and aggregations stream segment by segment.
        """
        for entry in self._manifest["segments"]:
            data = (self.root / SEGMENT_DIR / entry["name"]).read_bytes()
            yield decode_segment(data, columns=columns)
        if self._tail:
            yield decode_segment(encode_segment(self._tail), columns=columns)

    def iter_cells(self) -> Iterator[Tuple[str, Dict]]:
        """Yield ``(key, cell)`` rows in append order."""
        for entry in self._manifest["segments"]:
            data = (self.root / SEGMENT_DIR / entry["name"]).read_bytes()
            for row in rows_from_columns(decode_segment(data)):
                yield row
        for key, cell in self._tail:
            yield key, dict(cell)

    def read_cells(self, keys: Optional[Iterable[str]] = None
                   ) -> Dict[str, Dict]:
        """Cells as a dict, optionally restricted to ``keys``."""
        wanted = None if keys is None else set(keys)
        return {key: cell for key, cell in self.iter_cells()
                if wanted is None or key in wanted}

    def verify(self) -> List[Dict]:
        """Checksum every sealed segment; one status row each."""
        out = []
        for entry in self._manifest["segments"]:
            path = self.root / SEGMENT_DIR / entry["name"]
            ok = path.exists() and _crc(path.read_bytes()) == entry["crc32"]
            out.append({"name": entry["name"], "rows": entry["rows"],
                        "ok": bool(ok)})
        return out

    def fingerprint(self) -> Dict[str, int]:
        """CRC-32 of every *deterministic* file (costs sidecar excluded).

        Two warehouses holding the same grid — whatever worker count or
        interruption history produced them — have equal fingerprints.
        """
        out: Dict[str, int] = {}
        for name in (MANIFEST_NAME, JOURNAL_NAME):
            path = self.root / name
            out[name] = _crc(path.read_bytes()) if path.exists() else 0
        for entry in self._manifest["segments"]:
            path = self.root / SEGMENT_DIR / entry["name"]
            out[f"{SEGMENT_DIR}/{entry['name']}"] = _crc(path.read_bytes())
        return out

    # -- cost sidecar --------------------------------------------------------

    def record_cost(self, key: str, **fields) -> None:
        """Append one row to the non-deterministic cost sidecar."""
        doc = dict(fields)
        doc["key"] = key
        with open(self.root / COSTS_NAME, "a") as fh:
            fh.write(_canon(doc) + "\n")

    def read_costs(self) -> List[Dict]:
        path = self.root / COSTS_NAME
        if not path.exists():
            return []
        out = []
        for line in path.read_text().splitlines():
            try:
                out.append(json.loads(line))
            except ValueError:
                continue  # torn tail line: the sidecar is best-effort
        return out


def is_warehouse(path: Union[str, Path]) -> bool:
    """Whether ``path`` is (or names) a warehouse directory.

    True for an existing warehouse (manifest present) and for any path
    without a ``.json`` suffix, which the sweep runner treats as a
    warehouse to be created.
    """
    path = Path(path)
    if (path / MANIFEST_NAME).exists():
        return True
    return path.suffix != ".json"


def import_legacy_json(json_path: Union[str, Path],
                       root: Union[str, Path], *,
                       segment_rows: int = DEFAULT_SEGMENT_ROWS,
                       force: bool = False) -> Warehouse:
    """Import a legacy ``run_sweep`` JSON store into a warehouse.

    The read shim for pre-warehouse result files: cells land in the legacy
    file's (sorted-key) order, after which ``run_sweep`` resumes against
    the warehouse exactly as it would have against the JSON.
    """
    json_path = Path(json_path)
    try:
        store = json.loads(json_path.read_text())
    except (OSError, ValueError) as exc:
        raise WarehouseError(f"{json_path}: unreadable sweep store ({exc})") from None
    if not isinstance(store, dict) or not isinstance(store.get("cells"), dict):
        raise WarehouseError(f"{json_path}: not a sweep store (no cells object)")
    workload = store.get("workload")
    if not isinstance(workload, dict):
        raise WarehouseError(f"{json_path}: not a sweep store (no workload)")
    wh = Warehouse.open_or_create(root, workload, segment_rows=segment_rows,
                                  force=force)
    for key in sorted(store["cells"]):
        if key not in wh:
            wh.append(key, store["cells"][key])
    return wh
