#!/usr/bin/env python
"""Perf-trajectory dashboard: render BENCH_perf.json as SVG + markdown.

``repro perf`` appends one entry per run to ``BENCH_perf.json``; this tool
turns that history into a small static dashboard:

* **cluster_throughput.svg** — cluster streaming throughput (requests/s)
  per router, across recorded entries;
* **engine_speedup.svg** — vectorized-vs-scalar engine speedup per
  scheduler (plus the deep-queue stress case), across entries;
* **profile_phases.svg** — stacked wall-clock phase attribution for the
  latest entry's engine self-profiles;
* **index.md** — the charts inlined, plus latest-entry summary tables.

Entries have no timestamps (runs are environment-dependent anyway), so the
x-axis is the entry index: the *trajectory* across commits is the signal,
not absolute dates.  Everything is hand-rolled stdlib SVG — no plotting
dependency — and the output directory (``docs/_dashboard/`` by default) is
gitignored; CI regenerates it from the committed benchmark file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: Okabe-Ito palette: colorblind-safe, high-contrast on white.
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7",
           "#E69F00", "#56B4E9", "#F0E442", "#000000")

WIDTH, HEIGHT = 640, 360
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 60, 150, 40, 40


def load_entries(path: str) -> List[Dict]:
    """Benchmark entries, oldest first, across both on-disk schemas.

    Schema 1 was a bare single-run dict; schema 2 wraps a history as
    ``{"schema": 2, "entries": [...]}``.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict) and isinstance(doc.get("entries"), list):
        return doc["entries"]
    return [doc]


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """A few round-ish axis ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(n - 1, 1)
    mag = 10.0 ** int(f"{raw:e}".split("e")[1])
    step = next(s * mag for s in (1, 2, 2.5, 5, 10) if s * mag >= raw)
    start = int(lo / step) * step
    out = []
    value = start
    while value <= hi + 1e-12:
        if value >= lo - 1e-12:
            out.append(value)
        value += step
    return out or [lo, hi]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def line_chart(series: Dict[str, List[Optional[float]]], *, title: str,
               ylabel: str, n_points: int) -> str:
    """One SVG line chart: x = entry index, one polyline per series.

    ``None`` values are gaps (an entry that lacks that section); the
    polyline breaks around them instead of interpolating.
    """
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B
    values = [v for vs in series.values() for v in vs if v is not None]
    lo, hi = 0.0, max(values) * 1.08 if values else 1.0
    xs = ([MARGIN_L + plot_w / 2.0] if n_points <= 1 else
          [MARGIN_L + plot_w * i / (n_points - 1) for i in range(n_points)])

    def y_of(value: float) -> float:
        return MARGIN_T + plot_h * (1.0 - (value - lo) / (hi - lo or 1.0))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="20" font-size="15" font-weight="bold">'
        f'{_esc(title)}</text>',
        f'<text x="14" y="{MARGIN_T + plot_h / 2:.1f}" '
        f'transform="rotate(-90 14 {MARGIN_T + plot_h / 2:.1f})" '
        f'text-anchor="middle">{_esc(ylabel)}</text>',
    ]
    for tick in _ticks(lo, hi):
        ty = y_of(tick)
        parts.append(f'<line x1="{MARGIN_L}" y1="{ty:.1f}" '
                     f'x2="{WIDTH - MARGIN_R}" y2="{ty:.1f}" '
                     f'stroke="#ddd"/>')
        parts.append(f'<text x="{MARGIN_L - 6}" y="{ty + 4:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    for i, x in enumerate(xs):
        parts.append(f'<text x="{x:.1f}" y="{HEIGHT - MARGIN_B + 16}" '
                     f'text-anchor="middle">{i}</text>')
    parts.append(f'<text x="{MARGIN_L + plot_w / 2:.1f}" '
                 f'y="{HEIGHT - 8}" text-anchor="middle">entry</text>')
    parts.append(f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" '
                 f'y2="{HEIGHT - MARGIN_B}" stroke="#333"/>')
    parts.append(f'<line x1="{MARGIN_L}" y1="{HEIGHT - MARGIN_B}" '
                 f'x2="{WIDTH - MARGIN_R}" y2="{HEIGHT - MARGIN_B}" '
                 f'stroke="#333"/>')

    for idx, (name, points) in enumerate(sorted(series.items())):
        color = PALETTE[idx % len(PALETTE)]
        run: List[Tuple[float, float]] = []
        segments: List[List[Tuple[float, float]]] = []
        for i, value in enumerate(points[:n_points]):
            if value is None:
                if run:
                    segments.append(run)
                run = []
            else:
                run.append((xs[i], y_of(value)))
        if run:
            segments.append(run)
        for seg in segments:
            if len(seg) == 1:
                parts.append(f'<circle cx="{seg[0][0]:.1f}" '
                             f'cy="{seg[0][1]:.1f}" r="3" fill="{color}"/>')
            else:
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in seg)
                parts.append(f'<polyline points="{path}" fill="none" '
                             f'stroke="{color}" stroke-width="2"/>')
                for x, y in seg:
                    parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" '
                                 f'r="2.5" fill="{color}"/>')
        ly = MARGIN_T + 14 * idx
        lx = WIDTH - MARGIN_R + 12
        parts.append(f'<rect x="{lx}" y="{ly}" width="10" height="10" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly + 9}">{_esc(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def stacked_bars(groups: Dict[str, Dict[str, float]], *, title: str) -> str:
    """Stacked horizontal bars: one bar per group, segments per phase."""
    phases = sorted({p for fractions in groups.values() for p in fractions})
    colors = {p: PALETTE[i % len(PALETTE)] for i, p in enumerate(phases)}
    bar_h, gap, top = 34, 22, 50
    height = top + len(groups) * (bar_h + gap) + 30
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" viewBox="0 0 {WIDTH} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{height}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="20" font-size="15" font-weight="bold">'
        f'{_esc(title)}</text>',
    ]
    for row, (name, fractions) in enumerate(sorted(groups.items())):
        y = top + row * (bar_h + gap)
        parts.append(f'<text x="{MARGIN_L - 6}" y="{y + bar_h / 2 + 4:.1f}" '
                     f'text-anchor="end">{_esc(name)}</text>')
        x = float(MARGIN_L)
        for phase in phases:
            frac = max(float(fractions.get(phase, 0.0)), 0.0)
            w = plot_w * frac
            if w <= 0.0:
                continue
            parts.append(f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                         f'height="{bar_h}" fill="{colors[phase]}"/>')
            if w > 46:
                parts.append(f'<text x="{x + w / 2:.1f}" '
                             f'y="{y + bar_h / 2 + 4:.1f}" fill="white" '
                             f'text-anchor="middle">'
                             f'{100 * frac:.0f}%</text>')
            x += w
    for i, phase in enumerate(phases):
        ly = top + 14 * i
        lx = WIDTH - MARGIN_R + 12
        parts.append(f'<rect x="{lx}" y="{ly}" width="10" height="10" '
                     f'fill="{colors[phase]}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly + 9}">{_esc(phase)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _series(entries: Sequence[Dict], *path_and_leaf) -> Dict[str, List[Optional[float]]]:
    """Per-key trajectory of ``entry[path...][key][leaf]`` across entries."""
    *path, leaf = path_and_leaf
    out: Dict[str, List[Optional[float]]] = {}
    keys: set = set()
    for entry in entries:
        node = entry
        for part in path:
            node = node.get(part, {}) if isinstance(node, dict) else {}
        if isinstance(node, dict):
            keys.update(k for k, v in node.items()
                        if isinstance(v, dict) and leaf in v)
    for key in sorted(keys):
        points: List[Optional[float]] = []
        for entry in entries:
            node = entry
            for part in path:
                node = node.get(part, {}) if isinstance(node, dict) else {}
            value = node.get(key, {}).get(leaf) if isinstance(node, dict) else None
            points.append(float(value) if value is not None else None)
        out[key] = points
    return out


def build_dashboard(entries: Sequence[Dict], out_dir: str) -> List[str]:
    """Write the SVG charts + index.md; returns the written paths."""
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    n = len(entries)
    latest = entries[-1]

    def write(name: str, content: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as fh:
            fh.write(content)
        written.append(path)

    cluster = _series(entries, "cluster_stream", "requests_per_s")
    if cluster:
        write("cluster_throughput.svg", line_chart(
            cluster, title="Cluster streaming throughput by router",
            ylabel="requests / s", n_points=n))

    speedups = _series(entries, "engine_200req_rate30", "speedup")
    deep = [e.get("deep_queue_400req_rate120", {}).get("speedup")
            for e in entries]
    if any(v is not None for v in deep):
        speedups["deep_queue"] = [float(v) if v is not None else None
                                  for v in deep]
    if speedups:
        write("engine_speedup.svg", line_chart(
            speedups, title="Engine vectorization speedup by scheduler",
            ylabel="speedup (x)", n_points=n))

    profiles = {
        name: {phase: stats.get("fraction", 0.0)
               for phase, stats in prof.get("phases", {}).items()}
        for name, prof in latest.get("profile", {}).items()
    }
    profiles = {k: v for k, v in profiles.items() if v}
    if profiles:
        write("profile_phases.svg", stacked_bars(
            profiles, title="Engine wall-clock phase attribution (latest)"))

    lines = [
        "# Performance dashboard",
        "",
        f"Rendered from `BENCH_perf.json` ({n} "
        f"entr{'y' if n == 1 else 'ies'}; x-axis = entry index). "
        "Regenerate with `python tools/perf_dashboard.py`.",
        "",
    ]
    if cluster:
        lines += ["## Cluster throughput trajectory", "",
                  "![cluster throughput](cluster_throughput.svg)", ""]
        lines += ["| router | requests/s (latest) | p99 (norm) | violation rate |",
                  "|---|---|---|---|"]
        for router, stats in sorted(latest.get("cluster_stream", {}).items()):
            lines.append(
                f"| {router} | {stats.get('requests_per_s', 0.0):.0f} "
                f"| {stats.get('p99', 0.0):.0f} "
                f"| {100 * stats.get('violation_rate', 0.0):.1f}% |")
        lines.append("")
    if speedups:
        lines += ["## Engine speedup trajectory", "",
                  "![engine speedup](engine_speedup.svg)", ""]
    if profiles:
        lines += ["## Phase profile (latest entry)", "",
                  "![phase profile](profile_phases.svg)", "",
                  "| engine | wall (s) | coverage |", "|---|---|---|"]
        for name, prof in sorted(latest.get("profile", {}).items()):
            lines.append(f"| {name} | {prof.get('wall_s', 0.0):.3f} "
                         f"| {100 * prof.get('coverage', 0.0):.0f}% |")
        lines.append("")
    host = latest.get("host", {})
    if host:
        lines += [f"Latest host: `{host.get('hostname', '?')}` "
                  f"({host.get('machine', '?')}, "
                  f"python {host.get('python', '?')}, "
                  f"numpy {host.get('numpy', '?')})", ""]
    write("index.md", "\n".join(lines))
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="BENCH_perf.json",
                        help="benchmark history file to render")
    parser.add_argument("--out", default=os.path.join("docs", "_dashboard"),
                        help="output directory for SVG + markdown")
    args = parser.parse_args(argv)
    if not os.path.exists(args.bench):
        print(f"error: no benchmark file at {args.bench}", file=sys.stderr)
        return 1
    entries = load_entries(args.bench)
    if not entries:
        print(f"error: {args.bench} holds no entries", file=sys.stderr)
        return 1
    for path in build_dashboard(entries, args.out):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
