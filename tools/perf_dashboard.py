#!/usr/bin/env python
"""Perf-trajectory dashboard: render BENCH_perf.json as SVG + markdown.

``repro perf`` appends one entry per run to ``BENCH_perf.json``; this tool
turns that history into a small static dashboard:

* **cluster_throughput.svg** — cluster streaming throughput (requests/s)
  per router, across recorded entries;
* **engine_speedup.svg** — vectorized-vs-scalar engine speedup per
  scheduler (plus the deep-queue stress case), across entries;
* **profile_phases.svg** — stacked wall-clock phase attribution for the
  latest entry's engine self-profiles;
* **index.md** — the charts inlined, plus latest-entry summary tables.

With ``--sweep STORE`` (a warehouse directory or legacy sweep JSON) it
additionally renders **fleet views** of the scheduling-quality grid:

* **fleet_heatmap_<metric>.svg** — one scenario x scheduler heatmap per
  gated metric (STP, violation rate, EDP, shed rate where present);
* **fleet_regression.svg** — per-group relative deltas against the
  committed ``--sweep-baseline``, regressed bars highlighted (the same
  seed-noise-aware gate ``repro regress`` exits nonzero on).

Entries have no timestamps (runs are environment-dependent anyway), so the
x-axis is the entry index: the *trajectory* across commits is the signal,
not absolute dates.  Everything is hand-rolled stdlib SVG — no plotting
dependency — and the output directory (``docs/_dashboard/`` by default) is
gitignored; CI regenerates it from the committed benchmark file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: Okabe-Ito palette: colorblind-safe, high-contrast on white.
PALETTE = ("#0072B2", "#D55E00", "#009E73", "#CC79A7",
           "#E69F00", "#56B4E9", "#F0E442", "#000000")

WIDTH, HEIGHT = 640, 360
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 60, 150, 40, 40


def load_entries(path: str) -> List[Dict]:
    """Benchmark entries, oldest first, across both on-disk schemas.

    Schema 1 was a bare single-run dict; schema 2 wraps a history as
    ``{"schema": 2, "entries": [...]}``.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict) and isinstance(doc.get("entries"), list):
        return doc["entries"]
    return [doc]


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """A few round-ish axis ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(n - 1, 1)
    mag = 10.0 ** int(f"{raw:e}".split("e")[1])
    step = next(s * mag for s in (1, 2, 2.5, 5, 10) if s * mag >= raw)
    start = int(lo / step) * step
    out = []
    value = start
    while value <= hi + 1e-12:
        if value >= lo - 1e-12:
            out.append(value)
        value += step
    return out or [lo, hi]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def line_chart(series: Dict[str, List[Optional[float]]], *, title: str,
               ylabel: str, n_points: int) -> str:
    """One SVG line chart: x = entry index, one polyline per series.

    ``None`` values are gaps (an entry that lacks that section); the
    polyline breaks around them instead of interpolating.
    """
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B
    values = [v for vs in series.values() for v in vs if v is not None]
    lo, hi = 0.0, max(values) * 1.08 if values else 1.0
    xs = ([MARGIN_L + plot_w / 2.0] if n_points <= 1 else
          [MARGIN_L + plot_w * i / (n_points - 1) for i in range(n_points)])

    def y_of(value: float) -> float:
        return MARGIN_T + plot_h * (1.0 - (value - lo) / (hi - lo or 1.0))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="20" font-size="15" font-weight="bold">'
        f'{_esc(title)}</text>',
        f'<text x="14" y="{MARGIN_T + plot_h / 2:.1f}" '
        f'transform="rotate(-90 14 {MARGIN_T + plot_h / 2:.1f})" '
        f'text-anchor="middle">{_esc(ylabel)}</text>',
    ]
    for tick in _ticks(lo, hi):
        ty = y_of(tick)
        parts.append(f'<line x1="{MARGIN_L}" y1="{ty:.1f}" '
                     f'x2="{WIDTH - MARGIN_R}" y2="{ty:.1f}" '
                     f'stroke="#ddd"/>')
        parts.append(f'<text x="{MARGIN_L - 6}" y="{ty + 4:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    for i, x in enumerate(xs):
        parts.append(f'<text x="{x:.1f}" y="{HEIGHT - MARGIN_B + 16}" '
                     f'text-anchor="middle">{i}</text>')
    parts.append(f'<text x="{MARGIN_L + plot_w / 2:.1f}" '
                 f'y="{HEIGHT - 8}" text-anchor="middle">entry</text>')
    parts.append(f'<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" '
                 f'y2="{HEIGHT - MARGIN_B}" stroke="#333"/>')
    parts.append(f'<line x1="{MARGIN_L}" y1="{HEIGHT - MARGIN_B}" '
                 f'x2="{WIDTH - MARGIN_R}" y2="{HEIGHT - MARGIN_B}" '
                 f'stroke="#333"/>')

    for idx, (name, points) in enumerate(sorted(series.items())):
        color = PALETTE[idx % len(PALETTE)]
        run: List[Tuple[float, float]] = []
        segments: List[List[Tuple[float, float]]] = []
        for i, value in enumerate(points[:n_points]):
            if value is None:
                if run:
                    segments.append(run)
                run = []
            else:
                run.append((xs[i], y_of(value)))
        if run:
            segments.append(run)
        for seg in segments:
            if len(seg) == 1:
                parts.append(f'<circle cx="{seg[0][0]:.1f}" '
                             f'cy="{seg[0][1]:.1f}" r="3" fill="{color}"/>')
            else:
                path = " ".join(f"{x:.1f},{y:.1f}" for x, y in seg)
                parts.append(f'<polyline points="{path}" fill="none" '
                             f'stroke="{color}" stroke-width="2"/>')
                for x, y in seg:
                    parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" '
                                 f'r="2.5" fill="{color}"/>')
        ly = MARGIN_T + 14 * idx
        lx = WIDTH - MARGIN_R + 12
        parts.append(f'<rect x="{lx}" y="{ly}" width="10" height="10" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly + 9}">{_esc(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def stacked_bars(groups: Dict[str, Dict[str, float]], *, title: str) -> str:
    """Stacked horizontal bars: one bar per group, segments per phase."""
    phases = sorted({p for fractions in groups.values() for p in fractions})
    colors = {p: PALETTE[i % len(PALETTE)] for i, p in enumerate(phases)}
    bar_h, gap, top = 34, 22, 50
    height = top + len(groups) * (bar_h + gap) + 30
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" viewBox="0 0 {WIDTH} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{height}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="20" font-size="15" font-weight="bold">'
        f'{_esc(title)}</text>',
    ]
    for row, (name, fractions) in enumerate(sorted(groups.items())):
        y = top + row * (bar_h + gap)
        parts.append(f'<text x="{MARGIN_L - 6}" y="{y + bar_h / 2 + 4:.1f}" '
                     f'text-anchor="end">{_esc(name)}</text>')
        x = float(MARGIN_L)
        for phase in phases:
            frac = max(float(fractions.get(phase, 0.0)), 0.0)
            w = plot_w * frac
            if w <= 0.0:
                continue
            parts.append(f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
                         f'height="{bar_h}" fill="{colors[phase]}"/>')
            if w > 46:
                parts.append(f'<text x="{x + w / 2:.1f}" '
                             f'y="{y + bar_h / 2 + 4:.1f}" fill="white" '
                             f'text-anchor="middle">'
                             f'{100 * frac:.0f}%</text>')
            x += w
    for i, phase in enumerate(phases):
        ly = top + 14 * i
        lx = WIDTH - MARGIN_R + 12
        parts.append(f'<rect x="{lx}" y="{ly}" width="10" height="10" '
                     f'fill="{colors[phase]}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly + 9}">{_esc(phase)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _lerp_color(lo: Tuple[int, int, int], hi: Tuple[int, int, int],
                t: float) -> str:
    t = min(max(t, 0.0), 1.0)
    return "#%02x%02x%02x" % tuple(
        int(round(a + (b - a) * t)) for a, b in zip(lo, hi))


def heatmap(row_labels: Sequence[str], col_labels: Sequence[str],
            values: Dict[Tuple[str, str], float], *, title: str,
            fmt: str = "{:.3g}") -> str:
    """One SVG heatmap: rows x cols cells shaded by value (white -> blue)."""
    cell_w, cell_h, left, top = 110, 44, 150, 60
    width = left + cell_w * len(col_labels) + 20
    height = top + cell_h * len(row_labels) + 30
    finite = [v for v in values.values() if v == v]
    lo = min(finite) if finite else 0.0
    hi = max(finite) if finite else 1.0
    span = (hi - lo) or 1.0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{left}" y="24" font-size="15" font-weight="bold">'
        f'{_esc(title)}</text>',
    ]
    for col, label in enumerate(col_labels):
        parts.append(f'<text x="{left + cell_w * col + cell_w / 2:.1f}" '
                     f'y="{top - 8}" text-anchor="middle">{_esc(label)}</text>')
    for row, rlabel in enumerate(row_labels):
        y = top + cell_h * row
        parts.append(f'<text x="{left - 8}" y="{y + cell_h / 2 + 4:.1f}" '
                     f'text-anchor="end">{_esc(rlabel)}</text>')
        for col, clabel in enumerate(col_labels):
            x = left + cell_w * col
            value = values.get((rlabel, clabel))
            if value is None or value != value:
                parts.append(f'<rect x="{x}" y="{y}" width="{cell_w - 2}" '
                             f'height="{cell_h - 2}" fill="#eee"/>')
                continue
            t = (value - lo) / span
            fill = _lerp_color((247, 251, 255), (0, 114, 178), t)
            text_fill = "white" if t > 0.6 else "#222"
            parts.append(f'<rect x="{x}" y="{y}" width="{cell_w - 2}" '
                         f'height="{cell_h - 2}" fill="{fill}"/>')
            parts.append(f'<text x="{x + (cell_w - 2) / 2:.1f}" '
                         f'y="{y + cell_h / 2 + 4:.1f}" fill="{text_fill}" '
                         f'text-anchor="middle">{fmt.format(value)}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def delta_bars(rows: Sequence[Dict], *, title: str) -> str:
    """Horizontal relative-delta bars from ``repro regress`` comparison rows.

    One bar per (group, metric); regressed rows render in the alarm color.
    Positive x = metric got *worse* (direction-aware), so every bar
    pointing right past its gate is a regression.
    """
    bar_h, gap, top, left = 18, 8, 56, 230
    plot_w = WIDTH - left - 90
    height = top + len(rows) * (bar_h + gap) + 30
    worst = max((abs(_rel_delta(row)) for row in rows), default=0.0)
    scale = max(worst, 0.10) or 1.0
    mid = left + plot_w / 2.0
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" viewBox="0 0 {WIDTH} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{height}" fill="white"/>',
        f'<text x="{left}" y="24" font-size="15" font-weight="bold">'
        f'{_esc(title)}</text>',
        f'<text x="{mid:.1f}" y="{top - 16}" text-anchor="middle">'
        f'&#8592; better    worse &#8594;</text>',
        f'<line x1="{mid:.1f}" y1="{top - 8}" x2="{mid:.1f}" '
        f'y2="{height - 24}" stroke="#333"/>',
    ]
    for i, row in enumerate(rows):
        y = top + i * (bar_h + gap)
        rel = _rel_delta(row)
        w = plot_w / 2.0 * min(abs(rel) / scale, 1.0)
        color = "#D55E00" if row["regressed"] else "#009E73"
        x = mid if rel >= 0 else mid - w
        label = f"{row['group']} {row['metric']}"
        parts.append(f'<text x="{left - 8}" y="{y + bar_h - 4}" '
                     f'text-anchor="end">{_esc(label)}</text>')
        parts.append(f'<rect x="{x:.1f}" y="{y}" width="{max(w, 1.0):.1f}" '
                     f'height="{bar_h}" fill="{color}"/>')
        tx = mid + (w + 6 if rel >= 0 else -w - 6)
        anchor = "start" if rel >= 0 else "end"
        parts.append(f'<text x="{tx:.1f}" y="{y + bar_h - 4}" '
                     f'text-anchor="{anchor}">{100 * rel:+.1f}%</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _rel_delta(row: Dict) -> float:
    """Direction-aware relative delta: positive = worse."""
    base = row["baseline"]
    raw = (row["delta"] / abs(base)) if base else (1.0 if row["delta"] else 0.0)
    return raw if row["direction"] == "lower" else -raw


def _load_repro():
    """Import the repro package, bootstrapping src/ onto sys.path."""
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, os.path.join(os.path.dirname(
            os.path.abspath(__file__)), os.pardir, "src"))
    import repro.warehouse as warehouse

    return warehouse


def build_fleet_views(sweep_path: str, baseline_path: Optional[str],
                      out_dir: str) -> Tuple[List[str], List[str]]:
    """Render the sweep-grid heatmaps + regression deltas.

    Returns ``(written_paths, markdown_lines)`` for the index.
    """
    warehouse = _load_repro()
    workload, cells = warehouse.load_store_cells(sweep_path)
    written: List[str] = []
    lines: List[str] = ["## Fleet sweep", "",
                        f"Grid of {len(cells)} cells from `{sweep_path}` "
                        f"(mean across seeds).", ""]

    def write(name: str, content: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as fh:
            fh.write(content)
        written.append(path)

    scenarios = sorted({c["scenario"] for c in cells.values()})
    schedulers = sorted({c["scheduler"] for c in cells.values()})
    stats = warehouse.group_stats(cells.values())
    for metric in warehouse.REGRESS_METRICS:
        values = {}
        for scenario in scenarios:
            for scheduler in schedulers:
                entry = stats.get(f"{scenario}/{scheduler}", {})
                m = entry.get("metrics", {}).get(metric)
                if m is not None:
                    values[(scenario, scheduler)] = m["mean"]
        if not values:
            continue
        name = f"fleet_heatmap_{metric}.svg"
        write(name, heatmap(
            scenarios, schedulers, values,
            title=f"{metric} by scenario x scheduler (mean across seeds)"))
        lines += [f"![{metric} heatmap]({name})", ""]

    if baseline_path and os.path.exists(baseline_path):
        baseline = warehouse.load_baseline(baseline_path)
        rows = warehouse.compare(
            warehouse.build_baseline(workload, cells.values()), baseline,
            check_workload=False)
        if rows:
            n_reg = len(warehouse.regressions(rows))
            write("fleet_regression.svg", delta_bars(
                rows, title=f"Deltas vs {os.path.basename(baseline_path)} "
                            f"({n_reg} regressed)"))
            lines += ["![regression deltas](fleet_regression.svg)", "",
                      f"{n_reg} of {len(rows)} gated group-metrics regressed "
                      f"vs `{baseline_path}` "
                      "(gate: see `repro regress --help`).", ""]
    return written, lines


def _series(entries: Sequence[Dict], *path_and_leaf) -> Dict[str, List[Optional[float]]]:
    """Per-key trajectory of ``entry[path...][key][leaf]`` across entries."""
    *path, leaf = path_and_leaf
    out: Dict[str, List[Optional[float]]] = {}
    keys: set = set()
    for entry in entries:
        node = entry
        for part in path:
            node = node.get(part, {}) if isinstance(node, dict) else {}
        if isinstance(node, dict):
            keys.update(k for k, v in node.items()
                        if isinstance(v, dict) and leaf in v)
    for key in sorted(keys):
        points: List[Optional[float]] = []
        for entry in entries:
            node = entry
            for part in path:
                node = node.get(part, {}) if isinstance(node, dict) else {}
            value = node.get(key, {}).get(leaf) if isinstance(node, dict) else None
            points.append(float(value) if value is not None else None)
        out[key] = points
    return out


def build_dashboard(entries: Sequence[Dict], out_dir: str, *,
                    sweep: Optional[str] = None,
                    sweep_baseline: Optional[str] = None) -> List[str]:
    """Write the SVG charts + index.md; returns the written paths."""
    os.makedirs(out_dir, exist_ok=True)
    written: List[str] = []
    n = len(entries)
    latest = entries[-1]

    def write(name: str, content: str) -> None:
        path = os.path.join(out_dir, name)
        with open(path, "w") as fh:
            fh.write(content)
        written.append(path)

    cluster = _series(entries, "cluster_stream", "requests_per_s")
    if cluster:
        write("cluster_throughput.svg", line_chart(
            cluster, title="Cluster streaming throughput by router",
            ylabel="requests / s", n_points=n))

    speedups = _series(entries, "engine_200req_rate30", "speedup")
    deep = [e.get("deep_queue_400req_rate120", {}).get("speedup")
            for e in entries]
    if any(v is not None for v in deep):
        speedups["deep_queue"] = [float(v) if v is not None else None
                                  for v in deep]
    if speedups:
        write("engine_speedup.svg", line_chart(
            speedups, title="Engine vectorization speedup by scheduler",
            ylabel="speedup (x)", n_points=n))

    profiles = {
        name: {phase: stats.get("fraction", 0.0)
               for phase, stats in prof.get("phases", {}).items()}
        for name, prof in latest.get("profile", {}).items()
    }
    profiles = {k: v for k, v in profiles.items() if v}
    if profiles:
        write("profile_phases.svg", stacked_bars(
            profiles, title="Engine wall-clock phase attribution (latest)"))

    lines = [
        "# Performance dashboard",
        "",
        f"Rendered from `BENCH_perf.json` ({n} "
        f"entr{'y' if n == 1 else 'ies'}; x-axis = entry index). "
        "Regenerate with `python tools/perf_dashboard.py`.",
        "",
    ]
    if cluster:
        lines += ["## Cluster throughput trajectory", "",
                  "![cluster throughput](cluster_throughput.svg)", ""]
        lines += ["| router | requests/s (latest) | p99 (norm) | violation rate |",
                  "|---|---|---|---|"]
        for router, stats in sorted(latest.get("cluster_stream", {}).items()):
            lines.append(
                f"| {router} | {stats.get('requests_per_s', 0.0):.0f} "
                f"| {stats.get('p99', 0.0):.0f} "
                f"| {100 * stats.get('violation_rate', 0.0):.1f}% |")
        lines.append("")
    if speedups:
        lines += ["## Engine speedup trajectory", "",
                  "![engine speedup](engine_speedup.svg)", ""]
    if sweep is not None:
        fleet_written, fleet_lines = build_fleet_views(
            sweep, sweep_baseline, out_dir)
        written.extend(fleet_written)
        lines += fleet_lines
    if profiles:
        lines += ["## Phase profile (latest entry)", "",
                  "![phase profile](profile_phases.svg)", "",
                  "| engine | wall (s) | coverage |", "|---|---|---|"]
        for name, prof in sorted(latest.get("profile", {}).items()):
            lines.append(f"| {name} | {prof.get('wall_s', 0.0):.3f} "
                         f"| {100 * prof.get('coverage', 0.0):.0f}% |")
        lines.append("")
    host = latest.get("host", {})
    if host:
        lines += [f"Latest host: `{host.get('hostname', '?')}` "
                  f"({host.get('machine', '?')}, "
                  f"python {host.get('python', '?')}, "
                  f"numpy {host.get('numpy', '?')})", ""]
    write("index.md", "\n".join(lines))
    return written


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="BENCH_perf.json",
                        help="benchmark history file to render")
    parser.add_argument("--out", default=os.path.join("docs", "_dashboard"),
                        help="output directory for SVG + markdown")
    parser.add_argument("--sweep", default=None, metavar="STORE",
                        help="also render fleet views of this sweep store "
                             "(warehouse directory or legacy JSON)")
    parser.add_argument("--sweep-baseline",
                        default=os.path.join("benchmarks",
                                             "sweep_baseline.json"),
                        help="committed baseline the fleet regression chart "
                             "compares against (skipped when absent)")
    args = parser.parse_args(argv)
    if not os.path.exists(args.bench):
        print(f"error: no benchmark file at {args.bench}", file=sys.stderr)
        return 1
    entries = load_entries(args.bench)
    if not entries:
        print(f"error: {args.bench} holds no entries", file=sys.stderr)
        return 1
    if args.sweep is not None and not os.path.exists(args.sweep):
        print(f"error: no sweep store at {args.sweep}", file=sys.stderr)
        return 1
    for path in build_dashboard(entries, args.out, sweep=args.sweep,
                                sweep_baseline=args.sweep_baseline):
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
