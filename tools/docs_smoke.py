#!/usr/bin/env python
"""Docs-integrity smoke runner: execute the documentation's code blocks.

Extracts fenced ``bash``/``sh`` and ``python`` blocks from README.md and
``docs/*.md`` and runs them, so documented commands cannot rot.  Within one
file, blocks of the same language are concatenated into a single script in
document order — exactly how a reader would paste them, which lets an early
block define a shell function (the ``repro()`` shim) or bind Python names
that later blocks use.

A block is excluded by placing the marker comment

    <!-- docs-smoke: skip -->

on its own line within the two lines above the opening fence.  Use it for
display-only menus and commands whose full-scale runtime does not belong in
CI (``repro perf``, 100k-request replays).

Scripts run from the repository root with ``PYTHONPATH=src`` prepended, a
per-script timeout, and ``bash -eu`` strictness for shell blocks.  Exit
status is non-zero if any script fails, with the failing file and captured
output reported.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
#: Substring match, so the marker comment may carry a rationale, e.g.
#: ``<!-- docs-smoke: skip (full-scale run, minutes) -->``.
SKIP_MARKER = "docs-smoke: skip"
_FENCE = re.compile(r"^```(\w+)\s*$")
_LANGS = {"bash": "bash", "sh": "bash", "python": "python", "py": "python"}


def extract_blocks(path: Path) -> List[Tuple[str, str]]:
    """Return (language, source) for each runnable fenced block, in order."""
    blocks: List[Tuple[str, str]] = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE.match(lines[i])
        lang = _LANGS.get(match.group(1)) if match else None
        if lang is None:
            i += 1
            continue
        skip = any(
            SKIP_MARKER in lines[j]
            for j in range(max(0, i - 2), i)
        )
        body: List[str] = []
        i += 1
        while i < len(lines) and lines[i].rstrip() != "```":
            body.append(lines[i])
            i += 1
        i += 1  # closing fence
        if not skip:
            blocks.append((lang, "\n".join(body)))
    return blocks


def scripts_for(path: Path) -> Dict[str, str]:
    """Concatenate the file's blocks into one script per language."""
    scripts: Dict[str, List[str]] = {}
    for lang, body in extract_blocks(path):
        scripts.setdefault(lang, []).append(body)
    return {lang: "\n\n".join(parts) for lang, parts in scripts.items()}


def run_script(lang: str, source: str, timeout: float) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if lang == "bash":
        argv = ["bash", "-eu", "-c", source]
    else:
        argv = [sys.executable, "-c", source]
    return subprocess.run(
        argv, cwd=REPO_ROOT, env=env, timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="markdown files (default: README.md docs/*.md)")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="per-script timeout in seconds")
    parser.add_argument("--list", action="store_true",
                        help="show what would run without executing")
    args = parser.parse_args(argv)

    paths = args.paths or [REPO_ROOT / "README.md",
                           *sorted((REPO_ROOT / "docs").glob("*.md"))]
    failures = 0
    for path in paths:
        rel = path.relative_to(REPO_ROOT) if path.is_absolute() else path
        for lang, source in sorted(scripts_for(path).items()):
            n_lines = len(source.splitlines())
            if args.list:
                print(f"-- {rel} [{lang}] {n_lines} lines")
                continue
            print(f"== {rel} [{lang}] ({n_lines} lines) ...", flush=True)
            try:
                proc = run_script(lang, source, args.timeout)
            except subprocess.TimeoutExpired:
                print(f"FAIL {rel} [{lang}]: timed out after {args.timeout:g}s")
                failures += 1
                continue
            if proc.returncode != 0:
                print(f"FAIL {rel} [{lang}] (exit {proc.returncode}):")
                print(proc.stdout)
                failures += 1
            else:
                print(f"ok   {rel} [{lang}]")
    if failures:
        print(f"\n{failures} documentation script(s) failed")
        return 1
    if not args.list:
        print("\nall documentation scripts passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
