#!/usr/bin/env python
"""AR/VR wearable + visual perception scenario (paper Table 3).

An AR headset time-shares an Eyeriss-V2-class NPU between SSD (hand
detection), MobileNet (gesture recognition) and the data-center-style
classification models.  Each deployed model instance is pruned with a
different *weight-sparsity pattern* (random / N:M / channel), and the same
model+rate can differ >2x in latency depending on the pattern — information
only a pattern-aware scheduler (Dysta's static level) exploits.

Run:  python examples/arvr_wearable.py
"""

from repro import (
    ModelInfoLUT,
    WorkloadSpec,
    benchmark_suite,
    generate_workload,
    make_scheduler,
    simulate,
)
from repro.bench.figures import render_table

def main() -> None:
    traces = benchmark_suite("cnn", n_samples=300, seed=0)
    lut = ModelInfoLUT(traces)

    # Pattern-awareness: identical model, identical input stream, three
    # different latencies depending on how the weights were sparsified.
    rows = {}
    for model in ("ssd", "resnet50", "mobilenet"):
        cells = []
        for pattern in ("random0.80", "nm2:8", "channel0.60"):
            cells.append(1e3 * traces[f"{model}/{pattern}"].avg_total_latency)
        rows[model] = cells
    print(render_table("avg isolated latency by pattern (ms)",
                       ["random 80%", "2:8 block", "channel 60%"], rows,
                       float_fmt="{:.1f}"))

    # Hand-tracking has tight deadlines: stress the scheduler at the paper's
    # multi-CNN operating point (3 requests/s, SLO 10x).
    spec = WorkloadSpec(arrival_rate=3.0, n_requests=400, slo_multiplier=10.0,
                        seed=3)
    print(f"\n{'scheduler':14s} {'ANTT':>8s} {'violations':>12s}")
    for name in ("fcfs", "sjf", "planaria", "dysta_nosparse", "dysta"):
        result = simulate(generate_workload(traces, spec),
                          make_scheduler(name, lut))
        print(f"{name:14s} {result.antt:8.2f} "
              f"{100 * result.violation_rate:11.1f}%")
    print("\nFCFS head-of-line-blocks gesture requests behind SSD frames; "
          "Dysta keeps both deadline misses and turnaround low.")

if __name__ == "__main__":
    main()
