#!/usr/bin/env python
"""Quickstart: profile the sparse multi-DNN benchmark, generate a workload,
schedule it with Dysta, and compare against classic baselines.

Run:  python examples/quickstart.py
"""

from repro import (
    ModelInfoLUT,
    WorkloadSpec,
    benchmark_suite,
    generate_workload,
    make_scheduler,
    simulate,
)

def main() -> None:
    # Phase 1 (paper Fig 7): "hardware simulation" — profile every sparse
    # model over its dataset on the target accelerator.  Results are
    # per-layer (latency, sparsity) traces, cached across calls.
    traces = benchmark_suite("attnn", n_samples=200, seed=0)
    print(f"profiled {len(traces)} (model, pattern) pairs:")
    for key, trace in sorted(traces.items()):
        print(f"  {key:12s} avg latency {1e3 * trace.avg_total_latency:6.2f} ms "
              f"({trace.num_samples} samples x {trace.num_layers} layers)")

    # The static scheduler's model-info LUT (Algorithm 1).
    lut = ModelInfoLUT(traces)

    # Phase 2: scheduling evaluation.  30 requests/s Poisson traffic, SLO =
    # 10x each request's isolated latency — the paper's Table 5 setup.
    spec = WorkloadSpec(arrival_rate=30.0, n_requests=500, slo_multiplier=10.0,
                        seed=1)

    print(f"\n{'scheduler':12s} {'ANTT':>8s} {'violations':>12s} {'STP':>8s}")
    for name in ("fcfs", "sjf", "prema", "planaria", "dysta"):
        requests = generate_workload(traces, spec)  # same stream per policy
        result = simulate(requests, make_scheduler(name, lut))
        print(f"{name:12s} {result.antt:8.2f} {100 * result.violation_rate:11.1f}% "
              f"{result.stp:8.2f}")

if __name__ == "__main__":
    main()
