#!/usr/bin/env python
"""Autoscaling walkthrough: elastic pools under a flash crowd.

Four stops:

1. **The provisioning dilemma** — a fixed mean-sized pool sheds the crowd;
   a fixed peak-sized pool idles through the calm paying for 4x capacity.
2. **Reactive autoscaling** — queue-depth thresholds grow the pool through
   the surge and drain it afterwards; the scale-event timeline shows the
   capacity following the load (one provisioning latency behind it).
3. **Policy shoot-out** — reactive vs target-utilization vs predictive
   (the latter feeds the paper's LUT latency estimates forward over the
   provisioning horizon) on sheds, ANTT and provisioned cost.
4. **The bill** — accelerator-seconds provisioned vs used: autoscaling
   buys near-peak QoS at a fraction of the peak pool's cost.

Run:  python examples/autoscaling.py
"""

from repro.bench.figures import render_table
from repro.cluster import (
    AdmissionController,
    Pool,
    make_autoscaler,
    simulate_cluster,
)
from repro.core.lut import ModelInfoLUT
from repro.profiling.profiler import benchmark_suite
from repro.scenarios import build_scenario, generate_scenario
from repro.schedulers.base import make_scheduler

BASE_RATE = 40.0
DURATION = 16.0
SMALL, PEAK = 2, 8


def run(traces, lut, policy=None, n=SMALL):
    spec = build_scenario("flash_crowd", base_rate=BASE_RATE,
                          duration=DURATION)
    requests = generate_scenario(traces, spec, seed=3)
    autoscaler = None
    if policy is not None:
        autoscaler = make_autoscaler(
            policy, lut=lut, min_accelerators=SMALL, max_accelerators=PEAK,
            interval=0.5, provision_latency=1.0, cooldown_down=2.0,
        )
    return simulate_cluster(
        requests, [Pool("pool", make_scheduler("dysta", lut), n)],
        "round-robin",
        admission=AdmissionController(max_queue_depth=8),
        autoscaler=autoscaler,
    )


def row(result):
    return [
        result.num_shed,
        result.antt,
        result.p99,
        result.acc_seconds_provisioned,
        100 * result.provisioned_utilization,
    ]


def dilemma_demo(traces, lut):
    small = run(traces, lut, n=SMALL)
    peak = run(traces, lut, n=PEAK)
    print(render_table(
        f"fixed pools under a flash crowd ({BASE_RATE:g} req/s base, "
        f"4x surge)",
        ["shed", "ANTT", "p99", "prov acc-s", "util %"],
        {f"fixed x{SMALL}": row(small), f"fixed x{PEAK}": row(peak)},
        float_fmt="{:.1f}",
    ))
    print("Mean-sized sheds the surge; peak-sized pays for idle capacity "
          "all run long.\n")
    return small, peak


def timeline_demo(traces, lut):
    result = run(traces, lut, policy="reactive")
    print("reactive scale-event timeline (crowd spikes mid-run):")
    for event in result.scale_events:
        direction = "up  " if event.delta > 0 else "down"
        ready = (f" (serving from t={event.ready_at:.1f}s)"
                 if event.ready_at is not None else "")
        print(f"  t={event.time:5.1f}s  {direction} {event.delta:+d} "
              f"-> {event.capacity_after} accelerators{ready}")
    print(f"{result.shed_under_scale_lag} of {result.num_shed} sheds happened "
          "while capacity was still warming —\nthe price of the provisioning "
          "latency, tracked as shed_under_scale_lag.\n")
    return result


def shootout_demo(traces, lut, small, peak, reactive):
    rows = {
        f"fixed x{SMALL}": row(small),
        f"fixed x{PEAK}": row(peak),
        "reactive": row(reactive),
    }
    for policy in ("target-utilization", "predictive"):
        rows[policy] = row(run(traces, lut, policy=policy))
    print(render_table(
        "autoscaling policies vs fixed provisioning",
        ["shed", "ANTT", "p99", "prov acc-s", "util %"],
        rows,
        float_fmt="{:.1f}",
    ))
    print("Every policy sheds less than the mean-sized pool at a fraction "
          "of the peak pool's\nprovisioned accelerator-seconds; predictive "
          "plans one provisioning horizon ahead\nusing the paper's LUT "
          "latency estimates.\n")


def main() -> None:
    traces = benchmark_suite("attnn", n_samples=40, seed=0)
    lut = ModelInfoLUT(traces)
    small, peak = dilemma_demo(traces, lut)
    reactive = timeline_demo(traces, lut)
    shootout_demo(traces, lut, small, peak, reactive)
    saved = peak.acc_seconds_provisioned - reactive.acc_seconds_provisioned
    print(f"The bill: reactive autoscaling provisioned "
          f"{reactive.acc_seconds_provisioned:.0f} acc-s vs the peak pool's "
          f"{peak.acc_seconds_provisioned:.0f} acc-s\n"
          f"({saved:.0f} acc-s saved) while shedding "
          f"{small.num_shed - reactive.num_shed} fewer requests than the "
          f"mean-sized pool.")


if __name__ == "__main__":
    main()
