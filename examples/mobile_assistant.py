#!/usr/bin/env python
"""Mobile personal-assistant scenario (paper Table 3, mobile-phone row).

A phone runs three language models concurrently — BERT for question
answering, GPT-2 and BART for translation — on a Sanger-style sparse
attention NPU.  Prompts vary in complexity, so dynamic attention sparsity
makes per-request latency swing ~0.6x-1.8x (paper Fig 2).  This example
shows how Dysta's monitored-sparsity refinement behaves as traffic ramps
from light to overloaded.

Run:  python examples/mobile_assistant.py
"""

from repro import (
    ModelInfoLUT,
    WorkloadSpec,
    benchmark_suite,
    generate_workload,
    make_scheduler,
    simulate,
)
from repro.bench.figures import render_series

def main() -> None:
    traces = benchmark_suite("attnn", n_samples=300, seed=0)
    lut = ModelInfoLUT(traces)

    # Show the dynamicity the scheduler has to cope with.
    print("per-request isolated latency spread (dynamic attention sparsity):")
    for key, trace in sorted(traces.items()):
        iso = trace.isolated_latencies
        print(f"  {key:12s} {1e3 * iso.min():6.2f} .. {1e3 * iso.max():6.2f} ms "
              f"(mean {1e3 * iso.mean():6.2f} ms)")

    rates = [10.0, 20.0, 30.0, 40.0]
    schedulers = ("sjf", "prema", "dysta")
    antt = {name: [] for name in schedulers}
    viol = {name: [] for name in schedulers}
    for rate in rates:
        spec = WorkloadSpec(arrival_rate=rate, n_requests=400,
                            slo_multiplier=10.0, seed=7)
        for name in schedulers:
            result = simulate(generate_workload(traces, spec),
                              make_scheduler(name, lut))
            antt[name].append(result.antt)
            viol[name].append(100 * result.violation_rate)

    print()
    print(render_series("assistant ANTT vs traffic", "rate", rates, antt,
                        float_fmt="{:.2f}"))
    print()
    print(render_series("assistant violation %% vs traffic", "rate", rates, viol,
                        float_fmt="{:.1f}"))
    print("\nDysta holds the violation curve down as the phone saturates, "
          "without giving up SJF-level turnaround.")

if __name__ == "__main__":
    main()
