#!/usr/bin/env python
"""Data-center scenario (paper Table 3, data-center row) on an NPU pool.

Visual-perception traffic (SSD detection + ResNet/VGG classification, mixed
sparsity patterns) lands on a pool of Eyeriss-V2-class accelerators behind
one queue.  The example scales the pool, shows statistical-multiplexing
gains, and prints a per-tenant-class breakdown under Dysta.

Run:  python examples/datacenter_pool.py
"""

from repro import (
    ModelInfoLUT,
    WorkloadSpec,
    benchmark_suite,
    generate_workload,
    make_scheduler,
)
from repro.bench.figures import render_table
from repro.sim.analysis import per_class_breakdown, turnaround_percentile
from repro.sim.multi import simulate_multi

def main() -> None:
    traces = benchmark_suite("cnn", n_samples=300, seed=0)
    lut = ModelInfoLUT(traces)

    per_npu_rate = 2.5  # just under single-NPU capacity (~3.3 inf/s)
    print(f"{'NPUs':>5s} {'rate':>6s} {'ANTT':>8s} {'viol':>7s} {'p95':>8s} {'STP':>7s}")
    for k in (1, 2, 4):
        spec = WorkloadSpec(arrival_rate=per_npu_rate * k, n_requests=300,
                            slo_multiplier=10.0, seed=5)
        requests = generate_workload(traces, spec)
        result = simulate_multi(requests, make_scheduler("dysta", lut),
                                num_accelerators=k)
        p95 = turnaround_percentile(result.requests, 95)
        print(f"{k:5d} {per_npu_rate * k:6.1f} {result.antt:8.2f} "
              f"{100 * result.violation_rate:6.1f}% {p95:8.2f} {result.stp:7.2f}")

    # Who gets what service on the 4-NPU pool?
    spec = WorkloadSpec(arrival_rate=per_npu_rate * 4, n_requests=400,
                        slo_multiplier=10.0, seed=6)
    requests = generate_workload(traces, spec)
    result = simulate_multi(requests, make_scheduler("dysta", lut),
                            num_accelerators=4)
    breakdown = per_class_breakdown(result.requests)
    print()
    print(render_table(
        "per-(model, pattern) class on the 4-NPU pool",
        ["count", "ANTT", "viol %"],
        {
            key: [stats.count, stats.antt, 100 * stats.violation_rate]
            for key, stats in breakdown.items()
        },
        float_fmt="{:.2f}",
    ))
    print("\nPooling smooths the SSD head-of-line effect: tenants share "
          "statistical slack that a single NPU cannot offer.")

if __name__ == "__main__":
    main()
