#!/usr/bin/env python
"""Data-center scenario (paper Table 3, data-center row) on a heterogeneous
cluster of accelerator pools.

Mixed traffic — AttNN language requests (BERT/GPT-2/BART, profiled on
Sanger) plus visual-perception CNN requests (profiled on Eyeriss V2) — lands
on a cluster with one pool of each accelerator kind.  A pool serves its
native family at trace speed and pays a 4x penalty hosting the other family,
so the router's placement quality is visible in end metrics.  The example
compares routing policies, then shows admission control shedding load under
deliberate overload.

Run:  python examples/datacenter_pool.py
"""

from repro import WorkloadSpec, make_scheduler
from repro.bench.figures import render_table
from repro.cluster import (
    AdmissionController,
    Pool,
    build_heterogeneous_world,
    build_router,
    make_router,
    simulate_cluster,
)
from repro.sim.workload import generate_workload


def build_pools(lut, affinity, scheduler="dysta"):
    return [
        Pool("eyeriss", make_scheduler(scheduler, lut), 2, affinity=affinity["cnn"]),
        Pool("sanger", make_scheduler(scheduler, lut), 2, affinity=affinity["attnn"]),
    ]


def main() -> None:
    traces, lut, affinity = build_heterogeneous_world(n_samples=200)

    # --- routing policies on the same mixed workload ----------------------
    spec = WorkloadSpec(arrival_rate=10.0, n_requests=300, slo_multiplier=10.0,
                        seed=5)
    rows = {}
    for router_name in ("round-robin", "jsq", "predictive"):
        requests = generate_workload(traces, spec)
        router = build_router(router_name, lut)
        result = simulate_cluster(requests, build_pools(lut, affinity), router)
        rows[router_name] = [result.antt, 100 * result.violation_rate,
                             result.p99, result.stp]
    print(render_table(
        "routing policies on eyeriss x2 + sanger x2 (dysta per pool)",
        ["ANTT", "viol %", "p99", "STP"],
        rows,
        float_fmt="{:.2f}",
    ))
    print("\nRound-robin ignores pool state and family affinity; JSQ balances "
          "occupancy; the\npredictive router also prices the 4x mismatch "
          "penalty into its placement.")

    # --- admission control under overload ---------------------------------
    overload = WorkloadSpec(arrival_rate=25.0, n_requests=400,
                            slo_multiplier=10.0, seed=6)
    rows = {}
    for label, admission in (
        ("admit-all", None),
        ("depth<=6", AdmissionController(max_queue_depth=6)),
        ("slo-guard", AdmissionController(slo_guard=True, lut=lut)),
    ):
        requests = generate_workload(traces, overload)
        result = simulate_cluster(requests, build_pools(lut, affinity),
                                  make_router("jsq"),
                                  admission=admission)
        rows[label] = [result.antt, 100 * result.violation_rate,
                       100 * result.shed_rate]
    print()
    print(render_table(
        "admission control @ 2.5x overload (jsq)",
        ["ANTT", "viol %", "shed %"],
        rows,
        float_fmt="{:.2f}",
    ))
    print("\nShedding the infeasible tail keeps the served requests' ANTT and "
          "violation rate\nbounded instead of letting every queue grow without "
          "limit.")


if __name__ == "__main__":
    main()
