#!/usr/bin/env python
"""Extending the framework: plug a custom scheduling policy into the engine.

The scheduler interface is three callbacks around one decision function
(``select``).  This example implements a "least attained service" (LAS)
policy, registers it, and benchmarks it against Dysta on the standard
multi-AttNN workload — exactly the workflow for evaluating a new research
scheduler on the sparse multi-DNN benchmark.

Run:  python examples/custom_scheduler.py
"""

from typing import Sequence

from repro import (
    ModelInfoLUT,
    WorkloadSpec,
    benchmark_suite,
    generate_workload,
    make_scheduler,
    simulate,
)
from repro.schedulers.base import Scheduler, register_scheduler
from repro.sim.request import Request


@register_scheduler("stride_demo")
class StrideScheduler(Scheduler):
    """Stride scheduling: deterministic proportional sharing.

    Each request advances a virtual "pass" by a stride inversely proportional
    to its priority whenever it runs; the lowest pass runs next.  A classic
    fair-share policy — and a contrast to Dysta: fairness without deadlines
    or latency estimates.  (A least-attained-service baseline already ships
    as ``make_scheduler("las", lut)``.)
    """

    def reset(self) -> None:
        self._pass = {}

    def on_arrival(self, request: Request, now: float) -> None:
        current = [self._pass[r] for r in self._pass]
        self._pass[request.rid] = min(current) if current else 0.0

    def on_layer_complete(self, request: Request, now: float) -> None:
        self._pass[request.rid] = self._pass.get(request.rid, 0.0) + 1.0 / request.priority

    def on_complete(self, request: Request, now: float) -> None:
        self._pass.pop(request.rid, None)

    def select(self, queue: Sequence[Request], now: float) -> Request:
        return min(queue, key=lambda r: (self._pass.get(r.rid, 0.0), r.rid))


def main() -> None:
    traces = benchmark_suite("attnn", n_samples=200, seed=0)
    lut = ModelInfoLUT(traces)
    spec = WorkloadSpec(arrival_rate=30.0, n_requests=400, slo_multiplier=10.0,
                        seed=11)

    print(f"{'scheduler':12s} {'ANTT':>8s} {'violations':>12s} {'preemptions':>12s}")
    for name in ("stride_demo", "las", "sjf", "dysta"):
        result = simulate(generate_workload(traces, spec),
                          make_scheduler(name, lut))
        print(f"{name:12s} {result.antt:8.2f} "
              f"{100 * result.violation_rate:11.1f}% "
              f"{result.num_preemptions:12d}")
    print("\nFair-share policies (stride, LAS) need no estimates but preempt "
          "constantly and ignore deadlines; Dysta needs a fraction of the "
          "switches because its penalty term keeps the running task resident.")


if __name__ == "__main__":
    main()
