#!/usr/bin/env python
"""Scenario-engine walkthrough: shaped traffic, trace replay, and sweeps.

Four stops:

1. **Shapes** — compose arrival-intensity curves (diurnal sinusoid, flash
   crowd, tenant superposition) and sample them as non-homogeneous Poisson
   arrivals via thinning.
2. **Scenarios** — stitch phases into a ``ScenarioSpec`` and drive the
   single-accelerator engine with a diurnal load curve.
3. **Trace replay** — record a request stream to a (timestamp, model,
   seq_len) CSV, replay it bit-for-bit, and feed it to the cluster engine.
4. **Sweeps** — run a scenario x scheduler x seed grid through the
   multiprocessing runner and resume it from its JSON store.

Run:  python examples/traffic_scenarios.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import make_scheduler
from repro.bench.figures import render_table
from repro.cluster import Pool, simulate_cluster
from repro.core.lut import ModelInfoLUT
from repro.profiling.profiler import benchmark_suite
from repro.scenarios import (
    Constant,
    Diurnal,
    Spike,
    SweepConfig,
    aggregate,
    build_scenario,
    generate_scenario,
    record_trace,
    replay_trace,
    run_sweep,
    sample_arrivals,
    save_trace_csv,
)
from repro.sim.engine import simulate


def shapes_demo() -> None:
    rng = np.random.default_rng(0)
    day = Diurnal(base=20.0, amplitude=0.8, period=20.0)
    crowd = Constant(5.0) + Spike(0.0, 40.0, at=15.0, width=2.0)
    tenants = day + Constant(4.0)  # a diurnal tenant over a steady one
    rows = {}
    for name, shape in (("diurnal", day), ("flash crowd", crowd),
                        ("two tenants", tenants)):
        arrivals = sample_arrivals(shape, 40.0, rng)
        rows[name] = [shape.mean_rate(40.0), len(arrivals) / 40.0]
    print(render_table(
        "analytic vs sampled mean rate (40 s, one seed)",
        ["analytic req/s", "sampled req/s"],
        rows,
        float_fmt="{:.2f}",
    ))
    print("Thinning keeps the sampled process exact for any bounded "
          "intensity, so\ncomposed shapes need no bespoke sampling code.\n")


def scenario_demo(traces, lut) -> None:
    spec = build_scenario("diurnal", base_rate=20.0, duration=16.0)
    print(f"scenario: {spec.describe()}")
    rows = {}
    for name in ("fcfs", "dysta"):
        requests = generate_scenario(traces, spec, seed=7)
        result = simulate(requests, make_scheduler(name, lut))
        rows[name] = [result.antt, 100 * result.violation_rate, result.p99]
    print(render_table(
        "diurnal load curve on one accelerator",
        ["ANTT", "viol %", "p99"],
        rows,
        float_fmt="{:.2f}",
    ))
    print("The day/night swing pushes the peak past the mean operating "
          "point; latency-aware\nscheduling matters most near the crest.\n")


def replay_demo(traces, lut, tmp: Path) -> None:
    spec = build_scenario("flash_crowd", base_rate=15.0, duration=10.0)
    recorded = generate_scenario(traces, spec, seed=11)
    csv_path = tmp / "recorded_traffic.csv"
    save_trace_csv(csv_path, record_trace(recorded, traces))

    replayed = list(replay_trace(csv_path, traces))
    same = (
        [r.arrival for r in replayed] == [r.arrival for r in recorded]
        and [r.layer_latencies for r in replayed]
        == [r.layer_latencies for r in recorded]
    )
    print(f"recorded {len(recorded)} requests -> {csv_path.name} -> replayed "
          f"{len(replayed)} (bit-identical: {same})")

    pools = [Pool("sanger", make_scheduler("dysta", lut), 2)]
    result = simulate_cluster(
        replay_trace(csv_path, traces), pools, "jsq", retain_requests=False
    )
    print(f"replayed through the cluster engine: ANTT {result.antt:.2f}, "
          f"viol {100 * result.violation_rate:.1f}%, p99 {result.p99:.2f}\n")


def sweep_demo(tmp: Path) -> None:
    config = SweepConfig(
        scenarios=("diurnal", "flash_crowd"),
        schedulers=("sjf", "dysta"),
        seeds=(0, 1),
        duration=8.0,
        n_profile_samples=40,
    )
    store_path = tmp / "scenario_results.json"
    first = run_sweep(config, out_path=store_path, workers=2)
    again = run_sweep(config, out_path=store_path, workers=2)
    print(f"sweep: {first.n_run} cells run, then re-run skipped "
          f"{again.n_skipped}/{len(config.cells())} (store: JSON, "
          f"bit-identical for any worker count)")
    print(render_table(
        "sweep means across seeds",
        ["ANTT", "viol %", "p99"],
        {
            f"{scenario}/{scheduler}": [
                row["antt"], 100 * row["violation_rate"], row["p99"],
            ]
            for (scenario, scheduler), row in aggregate(first.store).items()
        },
        float_fmt="{:.2f}",
    ))


def main() -> None:
    traces = benchmark_suite("attnn", n_samples=40, seed=0)
    lut = ModelInfoLUT(traces)
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        shapes_demo()
        scenario_demo(traces, lut)
        replay_demo(traces, lut, tmp)
        sweep_demo(tmp)


if __name__ == "__main__":
    main()
