"""Tests for the named-experiment registry (repro.experiments)."""

import pytest

from repro.errors import ReproError
from repro.experiments import ExperimentScale, list_experiments, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_indexed(self):
        exps = list_experiments()
        expected = {
            "fig2", "fig3", "fig4", "fig9", "fig12", "fig13", "fig14",
            "fig15", "fig16", "table2", "table4", "table5", "table6",
        }
        assert set(exps) == expected
        assert all(isinstance(desc, str) and desc for desc in exps.values())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("table9")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ReproError, match="unknown scale"):
            ExperimentScale.preset("enormous")

    def test_scale_presets(self):
        quick = ExperimentScale.preset("quick")
        full = ExperimentScale.preset("full")
        assert quick.n_requests < full.n_requests
        assert len(quick.seeds) < len(full.seeds)
        assert len(full.slo_multipliers) > len(quick.slo_multipliers)
        assert len(full.attnn_rates) > len(quick.attnn_rates)
        assert len(full.cnn_rates) > len(quick.cnn_rates)


class TestQuickRuns:
    """Fast experiments run end-to-end at the quick preset."""

    def test_fig2(self):
        bundle = run_experiment("fig2", scale="quick")
        assert "BERT" in bundle.rendered
        assert bundle.data["last"]["max"] > 1.1

    def test_fig9(self):
        bundle = run_experiment("fig9", scale="quick")
        assert bundle.data["bert"] > 0.85

    def test_table2(self):
        bundle = run_experiment("table2", scale="quick")
        assert set(bundle.data) == {"googlenet", "vgg16", "inception_v3", "resnet50"}

    def test_table4(self):
        bundle = run_experiment("table4", scale="quick")
        for row in bundle.data.values():
            assert row["average_all"] < row["last_n"]

    def test_fig16_and_table6(self):
        fig = run_experiment("fig16", scale="quick")
        assert fig.data[64]["Opt_FP16"]["DSP"] < 0.5
        tab = run_experiment("table6", scale="quick")
        assert tab.data["Total Overhead"][0] < 0.02

    def test_table5_quick(self):
        bundle = run_experiment("table5", scale="quick")
        assert set(bundle.data) == {"attnn", "cnn"}
        attnn = bundle.data["attnn"]
        # Even at quick scale the headline ordering holds.
        assert attnn["dysta"][0] < attnn["fcfs"][0]
        assert attnn["dysta"][1] < attnn["fcfs"][1]
        assert "Table 5" in bundle.rendered

    def test_fig13_includes_static_only_variant(self):
        bundle = run_experiment("fig13", scale="quick")
        assert "dysta_static" in bundle.data["attnn"]

    def test_fig15_stp_saturates(self):
        bundle = run_experiment("fig15", scale="quick")
        attnn = bundle.data["attnn"]
        rates = sorted(attnn)
        # STP grows with offered load up to capacity.
        assert attnn[rates[-1]]["dysta"] > attnn[rates[0]]["dysta"]
        assert attnn[rates[-1]]["dysta"] < 40.0  # bounded by hardware

    def test_fig14_violations_decline_with_relaxed_slo(self):
        bundle = run_experiment("fig14", scale="quick")
        for family, per_slo in bundle.data.items():
            mults = sorted(per_slo)
            for sched in per_slo[mults[0]]:
                assert (
                    per_slo[mults[-1]][sched] <= per_slo[mults[0]][sched] + 0.02
                ), (family, sched)
