"""Tests for the autoscaler tier: elastic pools, policies, cost accounting.

The anchors are the four production-safety contracts:

* **scale-up latency** — capacity provisioned at t becomes schedulable only
  at t + provision_latency; requests arriving in between queue on warm
  capacity instead of running on cold accelerators;
* **drain-before-remove** — a scale-down never kills an in-flight request:
  busy accelerators finish their current layer block and the request
  continues (requeued or complete);
* **hysteresis + cooldown** — an oscillating load inside the reactive
  policy's band does not flap capacity up and down;
* **cost accounting** — provisioned accelerator-seconds integrate exactly
  to capacity × wall-clock across every capacity change.
"""

import math

import pytest

from repro.core.lut import ModelInfoLUT
from repro.errors import SchedulingError
from repro.schedulers.base import make_scheduler
from repro.sim.workload import WorkloadSpec, generate_workload
from repro.cluster import (
    AdmissionController,
    Autoscaler,
    Pool,
    available_autoscale_policies,
    make_autoscale_policy,
    make_autoscaler,
    simulate_cluster,
)
from repro.cluster.policies import ReactivePolicy

from conftest import build_trace, make_request


def burst(n, arrival=0.0, layer=0.01, layers=3, slo=10.0):
    """n identical requests landing together (service = layers * layer)."""
    return [
        make_request(rid=i, model="long", arrival=arrival, slo=slo,
                     latencies=(layer,) * layers, sparsities=(0.3,) * layers)
        for i in range(n)
    ]


def surge_world(rate_hi=60.0, seed=0):
    """A toy trace suite plus a calm/surge/calm request stream."""
    sp = [[0.5, 0.5], [0.55, 0.52], [0.45, 0.48]]
    lat = [[0.02 * (1 - a), 0.04 * (1 - b)] for a, b in sp]
    trace = build_trace("tiny", "dense", lat, sp)
    traces = {trace.key: trace}
    spec = WorkloadSpec(arrival_rate=rate_hi, n_requests=400,
                        slo_multiplier=10.0, seed=seed)
    return traces, ModelInfoLUT(traces), generate_workload(traces, spec)


class TestValidation:
    def test_policy_registry(self):
        assert {"reactive", "target-utilization", "predictive"} <= set(
            available_autoscale_policies()
        )
        with pytest.raises(SchedulingError, match="unknown autoscale policy"):
            make_autoscale_policy("nope")

    def test_policy_limits_validated(self):
        with pytest.raises(SchedulingError, match="min accelerators"):
            make_autoscale_policy("reactive", min_accelerators=0)
        with pytest.raises(SchedulingError, match="max"):
            make_autoscale_policy("reactive", min_accelerators=4,
                                  max_accelerators=2)
        with pytest.raises(SchedulingError, match="low_backlog"):
            make_autoscale_policy("reactive", high_backlog=1.0, low_backlog=2.0)
        with pytest.raises(SchedulingError, match="target utilization"):
            make_autoscale_policy("target-utilization", target=1.5)

    def test_autoscaler_knobs_validated(self):
        with pytest.raises(SchedulingError, match="interval"):
            Autoscaler("reactive", interval=0.0)
        with pytest.raises(SchedulingError, match="provision latency"):
            Autoscaler("reactive", provision_latency=-1.0)
        with pytest.raises(SchedulingError, match="cooldown"):
            Autoscaler("reactive", cooldown_up=-1.0)

    def test_predictive_needs_lut(self):
        with pytest.raises(SchedulingError, match="ModelInfoLUT"):
            make_autoscaler("predictive")

    def test_pool_capacity_args_validated(self, toy_lut):
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 1)
        with pytest.raises(SchedulingError, match="add"):
            pool.add_accelerators(0, 0.0, 1.0)
        with pytest.raises(SchedulingError, match="past"):
            pool.add_accelerators(1, 5.0, 4.0)
        with pytest.raises(SchedulingError, match="remove"):
            pool.remove_accelerators(0, 0.0)


class TestPoolElasticity:
    def test_warmup_capacity_not_schedulable_until_ready(self, toy_lut):
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 1)
        pool.reset()
        assert pool.num_accelerators == 1
        pool.add_accelerators(2, now=0.0, ready_at=5.0)
        assert pool.num_accelerators == 1      # still cold
        assert pool.num_warming == 2
        assert pool.provision_target == 3
        assert pool.activate_ready(4.999) == 0  # not yet
        assert pool.num_accelerators == 1
        assert pool.activate_ready(5.0) == 2
        assert pool.num_accelerators == 3
        assert pool.num_warming == 0

    def test_requests_queue_rather_than_run_cold(self, toy_lut):
        """During warm-up, queued work is only dispatched to warm capacity."""
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 1)
        pool.reset()
        pool.add_accelerators(1, now=0.0, ready_at=5.0)
        for req in burst(3):
            pool.enqueue(req, 0.0)
        dispatched = []
        pool.dispatch(0.0, lambda *ev: dispatched.append(ev))
        assert len(dispatched) == 1            # one warm accelerator only
        assert len(pool.queue) == 2
        pool.activate_ready(5.0)
        pool.dispatch(5.0, lambda *ev: dispatched.append(ev))
        assert len(dispatched) == 2            # warm replacement picks up one

    def test_remove_prefers_warming_then_idle(self, toy_lut):
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 2)
        pool.reset()
        pool.add_accelerators(1, now=0.0, ready_at=5.0)
        pool.remove_accelerators(2, now=1.0)
        # The warming accelerator is cancelled first, then one idle retires.
        assert pool.num_warming == 0
        assert pool.num_accelerators == 1
        assert pool.provision_target == 1

    def test_remove_never_below_one(self, toy_lut):
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 2)
        pool.reset()
        pool.remove_accelerators(10, now=0.0)
        assert pool.provision_target == 1
        assert pool.num_accelerators == 1

    def test_busy_accelerators_drain(self, toy_lut):
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 2)
        pool.reset()
        events = []
        for i, req in enumerate(burst(2)):
            req.rid = i
            pool.enqueue(req, 0.0)
        pool.dispatch(0.0, lambda *ev: events.append(ev))
        assert len(pool.running) == 2          # both accelerators busy
        pool.remove_accelerators(1, now=0.001)
        # No warming or idle capacity to retire: one busy NPU drains.
        assert pool.num_draining == 1
        assert pool.num_accelerators == 2      # still physically serving
        draining_npu = next(iter(pool._draining))
        end, p, npu, r, layers, dt = next(
            ev for ev in events if ev[2] == draining_npu
        )
        assert pool.complete_block(end, npu, r, layers, dt) is False
        # The drained accelerator retired; its request rejoined the queue.
        assert pool.num_draining == 0
        assert pool.num_accelerators == 1
        assert r in list(pool.queue)

    def test_rescued_drain_is_instant_capacity(self, toy_lut):
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 2)
        pool.reset()
        for i, req in enumerate(burst(2)):
            req.rid = i
            pool.enqueue(req, 0.0)
        pool.dispatch(0.0, lambda *ev: None)
        pool.remove_accelerators(1, now=0.001)
        assert pool.num_draining == 1
        warming = pool.add_accelerators(1, now=0.002, ready_at=2.0)
        assert warming == 0                    # covered by the rescued drain
        assert pool.num_draining == 0
        assert pool.num_warming == 0

    def test_cost_integral_is_exact(self, toy_lut):
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 2)
        pool.reset()
        pool.add_accelerators(1, now=1.0, ready_at=3.0)   # 2 -> 3 at t=1
        pool.activate_ready(3.0)
        pool.remove_accelerators(1, now=5.0)              # 3 -> 2 at t=5
        pool.finalize_cost(10.0)
        # 2 accels for [0,1) + 3 for [1,5) + 2 for [5,10] = 2 + 12 + 10.
        assert pool.acc_seconds_provisioned == pytest.approx(24.0)
        assert pool.peak_accelerators == 3
        assert pool.scale_ups == 1 and pool.scale_downs == 1


class TestEngineIntegration:
    def test_fixed_pool_cost_is_wallclock_times_capacity(self, toy_lut):
        """Without an autoscaler, provisioned acc-seconds == n x makespan."""
        reqs = burst(8) + burst(8, arrival=0.05)
        for i, r in enumerate(reqs):
            r.rid = i
        result = simulate_cluster(reqs, [Pool("a", make_scheduler("fcfs", toy_lut), 3)])
        assert result.acc_seconds_provisioned == 3 * result.makespan
        assert result.acc_seconds_used == pytest.approx(
            result.pool_stats["a"].busy_time
        )
        assert result.scale_events == []

    def test_infinite_provision_latency_equals_fixed_pool(self, toy_lut):
        """Capacity that never warms must not serve: the completion schedule
        matches the fixed-size baseline exactly."""
        def world():
            reqs = burst(12, layer=0.02)
            for i, r in enumerate(reqs):
                r.rid = i
            return reqs

        baseline = simulate_cluster(world(), [Pool("a", make_scheduler("fcfs", toy_lut), 1)])
        scaler = make_autoscaler("reactive", interval=0.01,
                                 provision_latency=1e9, max_accelerators=8)
        scaled = simulate_cluster(
            world(), [Pool("a", make_scheduler("fcfs", toy_lut), 1)],
            autoscaler=scaler,
        )
        assert scaled.scale_events                       # it did try
        assert scaled.makespan == pytest.approx(baseline.makespan)
        assert (
            sorted(r.finish_time for r in scaled.requests)
            == pytest.approx(sorted(r.finish_time for r in baseline.requests))
        )
        # ... but the never-warm capacity was still paid for.
        assert scaled.acc_seconds_provisioned > baseline.acc_seconds_provisioned

    def test_drain_never_kills_inflight_requests(self, toy_lut):
        """An aggressive scale-down mid-run loses no request: everything
        offered completes, on capacity that demonstrably shrank."""
        reqs = burst(20, layer=0.02, layers=4)
        for i, r in enumerate(reqs):
            r.rid = i
        scaler = make_autoscaler(
            "reactive", interval=0.02, provision_latency=0.05,
            max_accelerators=6, cooldown_down=0.0,
            high_backlog=2.0, low_backlog=1.9,
        )
        result = simulate_cluster(
            reqs, [Pool("a", make_scheduler("fcfs", toy_lut), 4)],
            autoscaler=scaler,
        )
        assert result.num_completed == 20
        assert result.num_shed == 0
        downs = [e for e in result.scale_events if e.delta < 0]
        assert downs, "expected at least one scale-down"
        stats = result.pool_stats["a"]
        assert stats.peak_accelerators > 4
        assert stats.num_accelerators < stats.peak_accelerators
        for req in result.requests:
            assert req.is_done and req.finish_time is not None

    def test_hysteresis_and_cooldown_prevent_flapping(self, toy_lut):
        """On a load oscillating around the thresholds, a wide hysteresis
        band plus cooldowns produces strictly fewer capacity changes than a
        tight band with no cooldown."""
        def world():
            reqs = []
            rid = 0
            for k in range(10):                 # bursts every 0.2 s
                for r in burst(6 if k % 2 == 0 else 1, arrival=0.2 * k,
                               layer=0.01, layers=2):
                    r.rid = rid
                    rid += 1
                    reqs.append(r)
            return reqs

        def run(policy, **scaler_kwargs):
            return simulate_cluster(
                world(), [Pool("a", make_scheduler("fcfs", toy_lut), 1)],
                autoscaler=Autoscaler(policy, interval=0.05,
                                      provision_latency=0.05, **scaler_kwargs),
            )

        nervous = run(ReactivePolicy(high_backlog=2.0, low_backlog=1.9,
                                     max_accelerators=6),
                      cooldown_up=0.0, cooldown_down=0.0)
        damped = run(ReactivePolicy(high_backlog=4.0, low_backlog=0.5,
                                    max_accelerators=6),
                     cooldown_up=0.2, cooldown_down=1.0)
        assert len(damped.scale_events) < len(nervous.scale_events)
        assert len(damped.scale_events) <= 4

    def test_autoscaling_beats_fixed_small_and_peak_cost(self):
        """The acceptance contract on a surge: reactive autoscaling sheds
        strictly fewer requests than the fixed-size baseline while
        provisioning fewer accelerator-seconds than a statically
        peak-sized pool."""
        traces, lut, _ = surge_world()

        def run(autoscale, n):
            _, _, reqs = surge_world()
            scaler = make_autoscaler(
                autoscale, lut=lut, interval=0.25, provision_latency=0.5,
                max_accelerators=8,
            ) if autoscale else None
            return simulate_cluster(
                reqs, [Pool("a", make_scheduler("sjf", lut), n)],
                admission=AdmissionController(max_queue_depth=8),
                autoscaler=scaler,
            )

        fixed_small = run(None, 1)
        peak_sized = run(None, 8)
        for policy in ("reactive", "target-utilization", "predictive"):
            scaled = run(policy, 1)
            assert scaled.num_shed < fixed_small.num_shed, policy
            assert (scaled.acc_seconds_provisioned
                    < peak_sized.acc_seconds_provisioned), policy
            assert scaled.scale_events, policy

    def test_shed_under_scale_lag_accounting(self):
        """Sheds while capacity warms are tallied separately, and are a
        subset of all sheds."""
        traces, lut, reqs = surge_world()
        scaler = make_autoscaler("reactive", lut=lut, interval=0.25,
                                 provision_latency=1.0, max_accelerators=4,
                                 high_backlog=2.0)
        result = simulate_cluster(
            reqs, [Pool("a", make_scheduler("sjf", lut), 1)],
            admission=AdmissionController(max_queue_depth=4),
            autoscaler=scaler,
        )
        lag = result.shed_under_scale_lag
        assert 0 < lag <= result.num_shed
        assert result.metrics["shed_under_scale_lag"] == lag
        assert result.pool_stats["a"].shed_during_scale_lag == lag

    def test_cost_metrics_present_in_both_summary_paths(self, toy_lut):
        def world():
            reqs = burst(10)
            for i, r in enumerate(reqs):
                r.rid = i
            return reqs

        retained = simulate_cluster(world(), [Pool("a", make_scheduler("fcfs", toy_lut), 2)])
        streamed = simulate_cluster(iter(world()),
                                    [Pool("a", make_scheduler("fcfs", toy_lut), 2)],
                                    retain_requests=False)
        for key in ("acc_seconds_provisioned", "acc_seconds_used",
                    "provisioned_utilization", "num_scale_events",
                    "shed_under_scale_lag"):
            assert key in retained.metrics
            assert key in streamed.metrics
        assert retained.acc_seconds_provisioned == pytest.approx(
            streamed.acc_seconds_provisioned
        )


class TestPolicyBehaviour:
    def test_reactive_scales_up_on_backlog(self, toy_lut):
        policy = make_autoscale_policy("reactive", high_backlog=2.0,
                                       max_accelerators=8)
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 1)
        pool.reset()
        for req in burst(10):
            pool.enqueue(req, 0.0)
        desired = policy.desired_capacity(pool, 0.0, horizon=1.0)
        assert desired == math.ceil(10 / 2.0)

    def test_reactive_holds_inside_band(self, toy_lut):
        policy = make_autoscale_policy("reactive", high_backlog=4.0,
                                       low_backlog=1.0)
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 1)
        pool.reset()
        for req in burst(2):
            pool.enqueue(req, 0.0)
        assert policy.desired_capacity(pool, 0.0, horizon=1.0) == 1

    def test_reactive_never_drains_busy_pool(self, toy_lut):
        policy = make_autoscale_policy("reactive", low_backlog=1.5)
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 1)
        pool.reset()
        pool.enqueue(burst(1)[0], 0.0)
        pool.dispatch(0.0, lambda *ev: None)
        # Backlog (1 in-flight) is below low_backlog but nothing is idle.
        assert policy.desired_capacity(pool, 1.0, horizon=1.0) == 1

    def test_target_utilization_proportional_law(self, toy_lut):
        policy = make_autoscale_policy("target-utilization", target=0.5,
                                       max_accelerators=8)
        policy.reset([])
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 2)
        pool.reset()
        pool.busy_time = 2.0   # utilization 1.0 over a 1 s window
        assert policy.desired_capacity(pool, 1.0, horizon=1.0) == 4
        pool.busy_time = 3.0   # utilization 0.5 == target: deadband holds
        assert policy.desired_capacity(pool, 2.0, horizon=1.0) == 2

    def test_predictive_scales_with_projected_load(self, toy_lut):
        policy = make_autoscale_policy("predictive", lut=toy_lut,
                                       max_accelerators=8)
        pool = Pool("a", make_scheduler("fcfs", toy_lut), 1)
        policy.reset([pool])
        pool.reset()
        assert policy.desired_capacity(pool, 1.0, horizon=1.0) == 1  # idle
        for req in burst(150, layer=1 / 70, slo=10.0):
            pool.enqueue(req, 1.0)
        desired = policy.desired_capacity(pool, 2.0, horizon=1.0)
        assert desired > 1
