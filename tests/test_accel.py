"""Unit tests for the accelerator performance models (Eyeriss-V2, Sanger)."""

import numpy as np
import pytest

from repro.accel.eyeriss import EyerissV2
from repro.accel.sanger import Sanger
from repro.errors import ProfilingError
from repro.models.graph import DynamicKind, Layer, LayerKind
from repro.models.registry import build_model
from repro.sparsity.patterns import DENSE, SparsityPattern, WeightSparsityConfig

CONV = Layer("conv", LayerKind.CONV, macs=10_000_000, params=100_000,
             dynamic=DynamicKind.RELU)
DWCONV = Layer("dw", LayerKind.DWCONV, macs=1_000_000, params=1_000,
               dynamic=DynamicKind.RELU)
SCORE = Layer("score", LayerKind.ATTN_SCORE, macs=500_000_000, params=0,
              dynamic=DynamicKind.ATTENTION, prunable=False)
FFN = Layer("ffn", LayerKind.FFN, macs=2_000_000_000, params=500_000,
            dynamic=DynamicKind.ATTENTION)
RANDOM80 = WeightSparsityConfig(SparsityPattern.RANDOM, rate=0.8)
CHANNEL60 = WeightSparsityConfig(SparsityPattern.CHANNEL, rate=0.6)


class TestEyeriss:
    def setup_method(self):
        self.accel = EyerissV2()

    def test_latency_positive(self):
        assert self.accel.layer_latency(CONV, DENSE, 0.3) > 0

    def test_latency_decreases_with_activation_sparsity(self):
        lat = [self.accel.layer_latency(CONV, DENSE, s) for s in (0.0, 0.3, 0.6, 0.9)]
        assert lat == sorted(lat, reverse=True)

    def test_weight_sparsity_speeds_up(self):
        dense = self.accel.layer_latency(CONV, DENSE, 0.3)
        sparse = self.accel.layer_latency(CONV, RANDOM80, 0.3)
        assert sparse < dense

    def test_channel_pattern_slower_than_random_at_higher_density(self):
        # channel 0.6 keeps 40% weights vs random 0.8 keeping 20%:
        # more surviving work -> higher latency.
        rand = self.accel.layer_latency(CONV, RANDOM80, 0.4)
        chan = self.accel.layer_latency(CONV, CHANNEL60, 0.4)
        assert chan > rand

    def test_depthwise_utilization_penalty(self):
        # Same MACs as depthwise => conv variant must be faster per MAC.
        conv_like = Layer("c", LayerKind.CONV, macs=DWCONV.macs, params=DWCONV.params,
                          dynamic=DynamicKind.RELU)
        assert self.accel.layer_latency(DWCONV, DENSE, 0.3) > self.accel.layer_latency(
            conv_like, DENSE, 0.3
        )

    def test_rejects_attention_layers(self):
        with pytest.raises(ProfilingError, match="cannot execute"):
            self.accel.layer_cost(SCORE, DENSE, 0.3)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ProfilingError):
            self.accel.layer_cost(CONV, DENSE, 1.2)

    def test_memory_bound_fc_layer(self):
        # Huge-parameter FC with tiny effective compute: memory term binds.
        fc = Layer("fc", LayerKind.FC, macs=10_000, params=100_000_000)
        cost = self.accel.layer_cost(fc, DENSE, 0.0)
        assert cost.memory_cycles > cost.compute_cycles

    def test_vectorized_matches_scalar(self):
        model = build_model("mobilenet")
        sparsities = np.random.default_rng(0).uniform(0.1, 0.8, (3, model.num_layers))
        matrix = self.accel.model_latencies(model, RANDOM80, sparsities)
        for i in range(3):
            for j, layer in enumerate(model.layers):
                scalar = self.accel.layer_latency(layer, RANDOM80, float(sparsities[i, j]))
                assert matrix[i, j] == pytest.approx(scalar, rel=1e-9)

    def test_model_latencies_shape_check(self):
        model = build_model("mobilenet")
        with pytest.raises(ProfilingError):
            self.accel.model_latencies(model, DENSE, np.zeros((2, 3)))


class TestSanger:
    def setup_method(self):
        self.accel = Sanger()

    def test_attention_layer_scales_with_density(self):
        slow = self.accel.layer_latency(SCORE, DENSE, 0.1)
        fast = self.accel.layer_latency(SCORE, DENSE, 0.9)
        # Near-linear in density (1-s), modulo the fixed overhead.
        assert slow > 3 * fast

    def test_dense_layer_partially_scales_with_token_pruning(self):
        slow = self.accel.layer_latency(FFN, DENSE, 0.1)
        fast = self.accel.layer_latency(FFN, DENSE, 0.9)
        assert slow > fast
        # But the cascade is partial: never the full attention-layer swing.
        assert slow < 3 * fast

    def test_load_balance_efficiency_hurts_sparse_layers(self):
        ideal = Sanger(load_balance_efficiency=1.0)
        real = Sanger(load_balance_efficiency=0.8)
        assert real.layer_latency(SCORE, DENSE, 0.5) > ideal.layer_latency(SCORE, DENSE, 0.5)

    def test_rejects_conv(self):
        with pytest.raises(ProfilingError, match="cannot execute"):
            self.accel.layer_cost(CONV, DENSE, 0.3)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ProfilingError):
            self.accel.layer_cost(SCORE, DENSE, -0.1)

    def test_vectorized_matches_scalar(self):
        model = build_model("gpt2")
        sparsities = np.random.default_rng(1).uniform(0.2, 0.9, (2, model.num_layers))
        matrix = self.accel.model_latencies(model, DENSE, sparsities)
        for i in range(2):
            for j, layer in enumerate(model.layers):
                scalar = self.accel.layer_latency(layer, DENSE, float(sparsities[i, j]))
                assert matrix[i, j] == pytest.approx(scalar, rel=1e-9)

    def test_whole_model_dynamic_range_matches_fig2(self):
        # Paper Fig 2: normalized latency spans roughly 0.6x - 1.8x.
        model = build_model("bert")
        lo = self.accel.model_latencies(model, DENSE, np.full((1, model.num_layers), 0.9))
        hi = self.accel.model_latencies(model, DENSE, np.full((1, model.num_layers), 0.2))
        ratio = hi.sum() / lo.sum()
        assert 1.5 < ratio < 2.5


class TestCalibration:
    def test_cnn_capacity_near_paper_saturation(self):
        # Fig 15(b): multi-CNN STP saturates around ~3.3 inf/s.
        from repro.profiling.profiler import benchmark_suite

        traces = benchmark_suite("cnn", n_samples=100, seed=0)
        mean = np.mean([t.avg_total_latency for t in traces.values()])
        assert 2.5 < 1.0 / mean < 4.5

    def test_attnn_capacity_near_paper_saturation(self):
        # Fig 15(a): multi-AttNN STP saturates around ~27 inf/s.
        from repro.profiling.profiler import benchmark_suite

        traces = benchmark_suite("attnn", n_samples=100, seed=0)
        mean = np.mean([t.avg_total_latency for t in traces.values()])
        assert 25.0 < 1.0 / mean < 36.0
