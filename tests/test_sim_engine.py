"""Unit tests for the layer-granularity scheduling engine."""

import pytest

from repro.errors import SchedulingError
from repro.schedulers.base import Scheduler, make_scheduler
from repro.sim.engine import simulate

from conftest import make_request


class FirstInQueue(Scheduler):
    """Trivially picks the first queue entry (queue order = arrival order)."""

    name = "first"

    def select(self, queue, now):
        return queue[0]


class BadScheduler(Scheduler):
    name = "bad"

    def select(self, queue, now):
        return make_request(rid=999)


def short(rid, arrival, slo=10.0):
    return make_request(rid=rid, model="short", arrival=arrival, slo=slo,
                        latencies=(0.001, 0.002), sparsities=(0.5, 0.5))


def long(rid, arrival, slo=10.0):
    return make_request(rid=rid, model="long", arrival=arrival, slo=slo,
                        latencies=(0.01, 0.01, 0.01), sparsities=(0.3, 0.3, 0.3))


class TestEngineBasics:
    def test_empty_workload_rejected(self, toy_lut):
        with pytest.raises(SchedulingError):
            simulate([], FirstInQueue(toy_lut))

    def test_reused_request_rejected(self, toy_lut):
        req = short(0, 0.0)
        simulate([req], FirstInQueue(toy_lut))
        with pytest.raises(SchedulingError, match="already"):
            simulate([req], FirstInQueue(toy_lut))

    def test_outside_queue_selection_rejected(self, toy_lut):
        with pytest.raises(SchedulingError, match="outside the queue"):
            simulate([short(0, 0.0)], BadScheduler(toy_lut))

    def test_single_request_runs_isolated(self, toy_lut):
        req = short(0, arrival=1.0)
        result = simulate([req], FirstInQueue(toy_lut))
        assert req.finish_time == pytest.approx(1.0 + req.isolated_latency)
        assert result.makespan == pytest.approx(req.finish_time)
        assert result.metrics["antt"] == pytest.approx(1.0)

    def test_idle_gap_fast_forwards(self, toy_lut):
        a = short(0, arrival=0.0)
        b = short(1, arrival=100.0)
        simulate([a, b], FirstInQueue(toy_lut))
        assert b.finish_time == pytest.approx(100.0 + b.isolated_latency)

    def test_work_conservation(self, toy_lut):
        reqs = [long(i, arrival=0.0) for i in range(3)]
        result = simulate(reqs, FirstInQueue(toy_lut))
        total_work = sum(r.isolated_latency for r in reqs)
        assert result.makespan == pytest.approx(total_work)
        for req in reqs:
            assert req.executed_time == pytest.approx(req.isolated_latency)

    def test_finish_times_respect_arrival_plus_isolated(self, toy_lut):
        reqs = [long(0, 0.0), short(1, 0.005)]
        simulate(reqs, make_scheduler("sjf", toy_lut))
        for req in reqs:
            assert req.finish_time >= req.arrival + req.isolated_latency - 1e-12


class TestPreemption:
    def test_fcfs_never_preempts(self, toy_lut):
        reqs = [long(0, 0.0), short(1, 0.001), short(2, 0.002)]
        result = simulate(reqs, make_scheduler("fcfs", toy_lut))
        assert result.num_preemptions == 0

    def test_sjf_preempts_long_job_for_short_arrival(self, toy_lut):
        # Long job starts; a short job arrives mid-flight and SJF switches at
        # the next layer boundary (Fig 5 behaviour).
        a = long(0, 0.0)
        b = short(1, 0.005)
        result = simulate([a, b], make_scheduler("sjf", toy_lut))
        assert result.num_preemptions >= 1
        assert b.finish_time < a.finish_time

    def test_arrival_admitted_only_at_layer_boundary(self, toy_lut):
        # b arrives while a's first (10ms) layer runs; its first dispatch can
        # only happen after that layer completes.
        a = long(0, 0.0)
        b = short(1, 0.001)
        simulate([a, b], make_scheduler("sjf", toy_lut))
        assert b.first_dispatch_time >= 0.01

    def test_invocation_count_equals_total_layers(self, toy_lut):
        reqs = [long(0, 0.0), short(1, 0.0)]
        result = simulate(reqs, FirstInQueue(toy_lut))
        assert result.num_scheduler_invocations == 5  # 3 + 2 layers


class TestResultObject:
    def test_metrics_populated(self, toy_lut):
        result = simulate([short(0, 0.0)], FirstInQueue(toy_lut))
        assert result.antt == result.metrics["antt"]
        assert result.violation_rate == 0.0
        assert result.stp > 0
