"""Tests for the functional hardware-scheduler datapath, including
software/hardware decision-equivalence."""

import numpy as np
import pytest

from repro.core.dysta import DystaScheduler
from repro.core.lut import ModelInfoLUT
from repro.errors import HardwareModelError
from repro.hw.microarch import (
    HardwareDystaScheduler,
    HardwareFIFO,
    ReconfigurableComputeUnit,
    build_lut_memories,
    fp16,
)
from repro.profiling.trace import TraceSet
from repro.sim.request import Request

from conftest import make_request


class TestFIFO:
    def test_push_pop(self):
        fifo = HardwareFIFO(4)
        fifo.push(1, 0.5)
        fifo.push(2, 0.6)
        assert len(fifo) == 2
        fifo.pop_tag(1)
        assert fifo.tags() == [2]

    def test_overflow(self):
        fifo = HardwareFIFO(1)
        fifo.push(1, 0.0)
        with pytest.raises(HardwareModelError, match="overflow"):
            fifo.push(2, 0.0)

    def test_missing_tag(self):
        with pytest.raises(HardwareModelError, match="not present"):
            HardwareFIFO(2).pop_tag(7)

    def test_bad_depth(self):
        with pytest.raises(HardwareModelError):
            HardwareFIFO(0)


class TestComputeUnit:
    def test_coefficient_dataflow(self):
        unit = ReconfigurableComputeUnit()
        # 50% zeros on a 4096 shape, avg density 0.5, slope 1 => gamma 1.0.
        gamma = unit.sparsity_coefficient(2048, fp16(1 / 4096), fp16(2.0), fp16(1.0))
        assert gamma == pytest.approx(1.0, abs=1e-2)
        assert unit.trace.coef_ops == 6

    def test_denser_layer_raises_gamma(self):
        unit = ReconfigurableComputeUnit()
        dense = unit.sparsity_coefficient(512, fp16(1 / 4096), fp16(2.0), fp16(1.0))
        sparse = unit.sparsity_coefficient(3584, fp16(1 / 4096), fp16(2.0), fp16(1.0))
        assert dense > 1.0 > sparse

    def test_score_dataflow_counts_cycles(self):
        unit = ReconfigurableComputeUnit()
        score, remaining = unit.score(
            gamma_eff=1.0, remaining_avg=0.02, deadline=1.0, now=0.0,
            isolated=0.03, isolated_reciprocal=fp16(1 / 0.03), wait=0.0,
            queue_reciprocal=1.0, eta=0.02,
        )
        assert remaining == pytest.approx(0.02, rel=1e-2)
        assert unit.trace.score_ops == 8
        assert score < remaining + 0.05  # slack is positive, eta small


class TestHardwareScheduler:
    def test_enqueue_requires_lut_entry(self, toy_lut):
        hw = HardwareDystaScheduler(toy_lut)
        stranger = make_request(rid=9, model="mystery")
        with pytest.raises(HardwareModelError, match="no LUT entry"):
            hw.enqueue(stranger)

    def test_fifo_depth_enforced(self, toy_lut):
        hw = HardwareDystaScheduler(toy_lut, fifo_depth=1)
        a = make_request(rid=1)
        b = make_request(rid=2)
        hw.enqueue(a)
        with pytest.raises(HardwareModelError, match="overflow"):
            hw.enqueue(b)

    def test_select_empty_queue_rejected(self, toy_lut):
        with pytest.raises(HardwareModelError):
            HardwareDystaScheduler(toy_lut).select([], 0.0)

    def test_decision_cycles_linear_in_queue(self, toy_lut):
        hw = HardwareDystaScheduler(toy_lut)
        reqs = [make_request(rid=i) for i in range(6)]
        for r in reqs:
            hw.enqueue(r)
        _, c3 = hw.select(reqs[:3], 0.0)
        _, c6 = hw.select(reqs, 0.0)
        assert c6 == 2 * c3

    def test_lut_memories_quantized(self, toy_lut):
        entries = build_lut_memories(toy_lut)
        for entry in entries.values():
            assert entry.avg_total_latency == fp16(entry.avg_total_latency)
            for value in entry.remaining_suffix:
                assert value == fp16(value)

    def test_monitor_updates_gamma(self, toy_lut):
        hw = HardwareDystaScheduler(toy_lut)
        req = make_request(rid=1, model="long",
                           latencies=(0.01, 0.01, 0.01),
                           sparsities=(0.05, 0.3, 0.3))
        hw.enqueue(req)
        assert hw._gamma[1] == 1.0
        req.next_layer = 1
        hw.monitor_layer(req, 0)
        # Much denser than the 0.3 average: gamma must rise.
        assert hw._gamma[1] > 1.0


class TestSoftwareEquivalence:
    """The hardware datapath implements Algorithm 2, not a new policy."""

    def _world(self, seed, n_requests=8):
        rng = np.random.default_rng(seed)
        traces = {}
        for m in range(2):
            layers = int(rng.integers(2, 5))
            sp = rng.uniform(0.2, 0.8, (6, layers))
            lat = 0.01 * (1.0 - sp) + rng.uniform(0.001, 0.002, (6, layers))
            traces[f"m{m}/dense"] = TraceSet(
                model_name=f"m{m}", pattern_key="dense", dataset="hyp",
                latencies=lat, sparsities=sp,
            )
        lut = ModelInfoLUT(traces)
        keys = sorted(traces)
        requests = []
        for rid in range(n_requests):
            trace = traces[keys[int(rng.integers(len(keys)))]]
            row = int(rng.integers(trace.num_samples))
            lats = trace.latencies[row].tolist()
            requests.append(Request(
                rid=rid, model_name=trace.model_name, pattern_key="dense",
                arrival=float(rng.uniform(0, 0.01)),
                slo=float(sum(lats)) * 10.0,
                layer_latencies=lats,
                layer_sparsities=trace.sparsities[row].tolist(),
            ))
        return lut, requests

    @pytest.mark.parametrize("seed", range(12))
    def test_hw_matches_sw_selection(self, seed):
        lut, requests = self._world(seed)
        sw = DystaScheduler(lut, eta=0.02)
        hw = HardwareDystaScheduler(lut, eta=0.02)
        rng = np.random.default_rng(seed + 999)
        for req in requests:
            hw.enqueue(req)
            # Randomly advance some requests and feed the monitor.
            steps = int(rng.integers(0, req.num_layers))
            for j in range(steps):
                req.next_layer = j + 1
                hw.monitor_layer(req, j)
        now = 0.05
        hw_choice, _ = hw.select(requests, now)
        sw_choice = sw.select(requests, now)
        sw_scores = sorted(
            sw.dynamic_score(r, now, len(requests)) for r in requests
        )
        margin = sw_scores[1] - sw_scores[0]
        if margin > 1e-4:
            # Clear-cut decisions must agree exactly; razor-thin ties may
            # legitimately flip under FP16 rounding.
            assert hw_choice is sw_choice
