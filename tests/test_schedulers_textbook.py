"""Unit tests for the textbook baseline schedulers and engine block mode."""

import pytest

from repro.schedulers.base import available_schedulers, make_scheduler
from repro.sim.engine import simulate

from conftest import make_request


def short(rid, arrival=0.0, slo=10.0, priority=1.0):
    req = make_request(rid=rid, model="short", arrival=arrival, slo=slo)
    req.priority = priority
    return req


def long(rid, arrival=0.0, slo=10.0):
    return make_request(rid=rid, model="long", arrival=arrival, slo=slo,
                        latencies=(0.01, 0.01, 0.01), sparsities=(0.3, 0.3, 0.3))


class TestRegistry:
    def test_textbook_policies_registered(self):
        names = available_schedulers()
        for expected in ("round_robin", "edf", "las", "srpt_oracle"):
            assert expected in names


class TestRoundRobin:
    def test_alternates_between_requests(self, toy_lut):
        sched = make_scheduler("round_robin", toy_lut)
        sched.reset()
        a, b = long(1), long(2)
        sched.on_arrival(a, 0.0)
        sched.on_arrival(b, 0.0)
        first = sched.select([a, b], 0.001)
        sched.on_layer_complete(first, 0.01)
        second = sched.select([a, b], 0.01)
        assert second is not first

    def test_end_to_end_interleaves(self, toy_lut):
        reqs = [long(1), long(2)]
        result = simulate(reqs, make_scheduler("round_robin", toy_lut))
        # Perfect interleaving: lots of switches.
        assert result.num_preemptions >= 3


class TestEDF:
    def test_picks_earliest_deadline(self, toy_lut):
        sched = make_scheduler("edf", toy_lut)
        tight = short(1, arrival=0.0, slo=0.01)
        loose = short(2, arrival=0.0, slo=5.0)
        assert sched.select([loose, tight], 0.0) is tight

    def test_deadline_uses_arrival(self, toy_lut):
        sched = make_scheduler("edf", toy_lut)
        early = short(1, arrival=0.0, slo=1.0)   # deadline 1.0
        late = short(2, arrival=0.5, slo=0.6)    # deadline 1.1
        assert sched.select([late, early], 0.6) is early


class TestLAS:
    def test_prefers_least_served(self, toy_lut):
        sched = make_scheduler("las", toy_lut)
        served = long(1)
        served.executed_time = 0.02
        fresh = long(2)
        assert sched.select([served, fresh], 0.0) is fresh


class TestSRPTOracle:
    def test_uses_true_remaining(self, toy_lut):
        sched = make_scheduler("srpt_oracle", toy_lut)
        nearly_done = long(1)
        nearly_done.next_layer = 2  # one 10ms layer left
        fresh_short = short(2)  # 3ms total
        assert sched.select([nearly_done, fresh_short], 0.0) is fresh_short

    def test_srpt_is_antt_optimal_ish(self, toy_lut):
        # SRPT must beat FCFS on ANTT for any contended workload.
        def workload():
            return [long(1, 0.0), short(2, 0.001), short(3, 0.002)]

        srpt = simulate(workload(), make_scheduler("srpt_oracle", toy_lut))
        fcfs = simulate(workload(), make_scheduler("fcfs", toy_lut))
        assert srpt.antt < fcfs.antt


class TestBlockGranularity:
    def test_invalid_block_rejected(self, toy_lut):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="block size"):
            simulate([short(1)], make_scheduler("fcfs", toy_lut), block_size=0)

    def test_block_reduces_invocations(self, toy_lut):
        a = [long(1), long(2)]
        b = [long(1), long(2)]
        per_layer = simulate(a, make_scheduler("sjf", toy_lut), block_size=1)
        per_block = simulate(b, make_scheduler("sjf", toy_lut), block_size=3)
        assert per_block.num_scheduler_invocations < per_layer.num_scheduler_invocations
        assert per_block.num_scheduler_invocations == 2  # one per request

    def test_block_never_overruns_request(self, toy_lut):
        req = long(1)
        simulate([req], make_scheduler("fcfs", toy_lut), block_size=100)
        assert req.is_done
        assert req.executed_time == pytest.approx(req.isolated_latency)

    def test_same_total_work_any_granularity(self, toy_lut):
        for block in (1, 2, 5):
            reqs = [long(1), short(2, arrival=0.005)]
            result = simulate(reqs, make_scheduler("sjf", toy_lut),
                              block_size=block)
            assert result.makespan == pytest.approx(
                sum(r.isolated_latency for r in reqs) + 0.005, abs=0.005
            )
