"""Tests for the hardware-in-the-loop Dysta scheduler."""

import pytest

from repro.core.lut import ModelInfoLUT
from repro.hw.timing import SchedulerTiming
from repro.profiling.profiler import benchmark_suite
from repro.schedulers.base import available_schedulers, make_scheduler
from repro.sim.engine import simulate
from repro.sim.workload import WorkloadSpec, generate_workload


@pytest.fixture(scope="module")
def attnn_world():
    traces = benchmark_suite("attnn", n_samples=150, seed=0)
    return traces, ModelInfoLUT(traces)


class TestHardwareInLoop:
    def test_registered(self):
        assert "dysta_hw" in available_schedulers()

    def test_runs_end_to_end(self, attnn_world):
        traces, lut = attnn_world
        spec = WorkloadSpec(30.0, n_requests=120, slo_multiplier=10.0, seed=4)
        requests = generate_workload(traces, spec)
        sched = make_scheduler("dysta_hw", lut)
        result = simulate(requests, sched)
        assert len(result.requests) == 120
        assert sched.num_decisions == result.num_scheduler_invocations
        assert sched.total_decision_cycles > 0

    def test_metrics_close_to_software_dysta(self, attnn_world):
        traces, lut = attnn_world
        spec = WorkloadSpec(30.0, n_requests=200, slo_multiplier=10.0, seed=5)
        hw_result = simulate(generate_workload(traces, spec),
                             make_scheduler("dysta_hw", lut))
        sw_result = simulate(generate_workload(traces, spec),
                             make_scheduler("dysta", lut))
        # FP16 hardware arithmetic may flip razor-thin ties; workload-level
        # metrics must stay within a few percent.
        assert hw_result.antt == pytest.approx(sw_result.antt, rel=0.10)
        assert hw_result.violation_rate == pytest.approx(
            sw_result.violation_rate, abs=0.03
        )

    def test_decision_time_negligible(self, attnn_world):
        traces, lut = attnn_world
        spec = WorkloadSpec(30.0, n_requests=150, slo_multiplier=10.0, seed=6)
        sched = make_scheduler("dysta_hw", lut)
        result = simulate(generate_workload(traces, spec), sched)
        decision_time = sched.decision_time(SchedulerTiming())
        # The paper's claim, measured: total decision wall-time under 0.1% of
        # the simulated horizon.
        assert decision_time < 0.001 * result.makespan

    def test_reset_clears_state(self, attnn_world):
        traces, lut = attnn_world
        spec = WorkloadSpec(30.0, n_requests=50, slo_multiplier=10.0, seed=7)
        sched = make_scheduler("dysta_hw", lut)
        simulate(generate_workload(traces, spec), sched)
        first = sched.total_decision_cycles
        assert first > 0
        simulate(generate_workload(traces, spec), sched)
        # The engine resets the scheduler, so counters restart.
        assert sched.total_decision_cycles <= first * 1.01
