"""Seeded randomized lockstep parity for the incremental selection layer.

Two instances of the same policy are driven through one randomized
arrival / run-a-block / remove / requeue op sequence on two separate ready
queues.  One instance keeps the selection cache (``incremental=True`` with
``inc_min_queue=0`` so the cache engages at any depth); the other disables
it (``incremental=False``), which is the brute-force full re-scan batch
path.  After every op the harness probes ``select_batch`` on both and
asserts the selected rid matches — the cache must be decision-invisible at
every step, not just on engine-shaped workloads.

The op mix deliberately includes the queue motions the caches must survive:

* ``arrive``  — admit the next workload request (journal add),
* ``run``     — select, remove with a requeue ticket, execute one layer
  block, then re-admit (or complete) — the multi-accelerator dispatch shape,
* ``drop``    — remove a random resident request outright (cluster
  rebalance / migration out),
* ``return``  — re-admit a previously dropped request (migration in).
"""

import random

import pytest

from repro.schedulers.base import make_scheduler
from repro.sim.ready_queue import ReadyQueue
from repro.sim.workload import WorkloadSpec, generate_workload

#: Policies with an incremental select (cache on by default).
INCREMENTAL = (
    "dysta",
    "dysta_nosparse",
    "dysta_switchaware",
    "dysta_static",
    "sjf",
    "fcfs",
    "oracle",
    "energy_edp",
)

#: Batch-converted policies that opt out of the cache; the harness runs
#: them too so the opt-out path is exercised by the same sequences.
OPTED_OUT = ("prema", "sdrm3")


class Lane:
    """One scheduler + ready-queue pair fed the shared op sequence."""

    def __init__(self, name, lut, incremental):
        kwargs = {"switch_cost": 0.002} if name == "dysta_switchaware" else {}
        self.sched = make_scheduler(name, lut, **kwargs)
        self.sched.incremental = incremental
        self.sched.inc_min_queue = 0  # engage the cache at any depth
        self.sched.reset()
        self.queue = ReadyQueue(lut, columns=self.sched.batch_columns)
        self.sched.bind_queue(self.queue)
        self.limbo = []  # dropped requests awaiting re-admission

    def arrive(self, request, now):
        self.queue.add(request)
        self.sched.on_arrival(request, now)

    def run_block(self, chosen, now):
        """Execute one layer of ``chosen`` the way the multi-NPU engines do:
        remove with a requeue ticket, advance, re-admit or complete."""
        self.queue.remove(chosen, requeue=True)
        nl = chosen.next_layer
        dt = chosen.layer_latencies[nl]
        end = now + dt
        chosen.next_layer = nl + 1
        chosen.executed_time += dt
        chosen.last_run_end = end
        if chosen.is_done:
            self.queue.forget(chosen.rid)
            self.sched.on_layer_complete(chosen, end)
            chosen.finish_time = end
            self.sched.on_complete(chosen, end)
        else:
            self.queue.add(chosen)
            self.sched.on_layer_complete(chosen, end)
        return dt

    def drop(self, idx):
        request = self.queue[idx]
        self.queue.remove(request)
        self.limbo.append(request)
        return request.rid

    def readmit(self, now):
        request = self.limbo.pop(0)
        self.queue.add(request)
        self.sched.on_arrival(request, now)
        return request.rid


def lockstep(name, lut, traces, seed, n_requests=140, rate=400.0, ops=400):
    """Drive both lanes through one shared random op sequence."""
    spec = WorkloadSpec(rate, n_requests=n_requests, slo_multiplier=5.0,
                        seed=seed)
    lanes = [
        Lane(name, lut, incremental=True),
        Lane(name, lut, incremental=False),
    ]
    # Each lane owns its request objects (selection mutates per-request
    # state); seeded generation makes the two copies identical.
    workloads = [generate_workload(traces, spec) for _ in lanes]
    rng = random.Random(seed)
    now = 0.0
    next_i = 0
    probes = 0
    for _ in range(ops):
        n = len(lanes[0].queue)
        choices = []
        if next_i < n_requests:
            choices += ["arrive"] * 4
        if n:
            choices += ["run"] * 4 + ["drop"]
        if lanes[0].limbo:
            choices += ["return"]
        if not choices:
            break
        op = rng.choice(choices)

        if op == "arrive":
            now = max(now, workloads[0][next_i].arrival)
            for lane, workload in zip(lanes, workloads):
                lane.arrive(workload[next_i], now)
            next_i += 1
        elif op == "run":
            if n == 1:
                picks = [lane.queue[0] for lane in lanes]
            else:
                picks = [lane.sched.select_batch(lane.queue, now)
                         for lane in lanes]
                probes += 1
            assert picks[0].rid == picks[1].rid, (
                f"{name}: incremental selected r{picks[0].rid}, "
                f"brute force r{picks[1].rid} at t={now:.6f} depth={n}"
            )
            dts = [lane.run_block(pick, now)
                   for lane, pick in zip(lanes, picks)]
            assert dts[0] == dts[1]
            now += dts[0]
        elif op == "drop":
            idx = rng.randrange(n)
            rids = [lane.drop(idx) for lane in lanes]
            assert rids[0] == rids[1]
        else:  # return
            rids = [lane.readmit(now) for lane in lanes]
            assert rids[0] == rids[1]

        # The core invariant: after ANY queue motion the cached selection
        # must match a brute-force full re-scan.
        if len(lanes[0].queue) >= 2:
            picks = [lane.sched.select_batch(lane.queue, now)
                     for lane in lanes]
            probes += 1
            assert picks[0].rid == picks[1].rid, (
                f"{name}: post-{op} probe diverged at t={now:.6f}: "
                f"r{picks[0].rid} vs r{picks[1].rid}"
            )
    assert probes > 50  # the sequence actually exercised selection
    return lanes[0]


class TestLockstepParity:
    @pytest.mark.parametrize("seed", (1, 7))
    @pytest.mark.parametrize("name", INCREMENTAL)
    def test_cache_matches_brute_force(self, toy_traces, toy_lut, name, seed):
        lane = lockstep(name, toy_lut, toy_traces, seed)
        cache = lane.sched._cache
        assert cache is not None
        # The cache must have answered from the ladder at least sometimes —
        # otherwise the test only compared two full scans.
        assert cache.num_hits > 0
        assert cache.num_scans > 0  # and rebuilt when the journal overflowed

    @pytest.mark.parametrize("name", OPTED_OUT)
    def test_opted_out_policies_survive_the_same_sequences(
            self, toy_traces, toy_lut, name):
        lane = lockstep(name, toy_lut, toy_traces, seed=3)
        assert lane.sched._cache is None  # opt-out respected


class TestOptOuts:
    def test_fp16_dysta_disables_the_cache(self, toy_lut):
        sched = make_scheduler("dysta", toy_lut, score_dtype="fp16")
        queue = ReadyQueue(toy_lut, columns=sched.batch_columns)
        sched.bind_queue(queue)
        # FP16 score quantization breaks the decay bound the acceptance
        # test relies on, so the fp16 mode opts out instance-wide.
        assert sched._cache is None

    def test_master_switch_disables_the_cache(self, toy_lut):
        sched = make_scheduler("dysta", toy_lut)
        sched.incremental = False
        queue = ReadyQueue(toy_lut, columns=sched.batch_columns)
        sched.bind_queue(queue)
        assert sched._cache is None

    def test_depth_gate_bypasses_cache_on_shallow_queues(
            self, toy_traces, toy_lut):
        # With the default inc_min_queue, a shallow queue never consults
        # the cache: the tight scalar loop is cheaper there.
        sched = make_scheduler("dysta", toy_lut)
        sched.reset()
        queue = ReadyQueue(toy_lut, columns=sched.batch_columns)
        sched.bind_queue(queue)
        spec = WorkloadSpec(50.0, n_requests=10, slo_multiplier=5.0, seed=0)
        for req in generate_workload(toy_traces, spec):
            queue.add(req)
            sched.on_arrival(req, req.arrival)
        assert len(queue) < sched.inc_min_queue
        sched.select_batch(queue, 1.0)
        cache = sched._cache
        assert cache is not None and cache.num_hits == 0 and cache.num_scans == 0
