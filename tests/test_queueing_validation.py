"""Queueing-theory validation of the scheduling engine.

With Poisson arrivals and FCFS run-to-completion service, the engine is an
M/G/1 queue, so the measured mean waiting time must match the
Pollaczek-Khinchine formula:  W = lambda * E[S^2] / (2 * (1 - rho)).
This is a strong end-to-end correctness check of arrival generation, queue
handling and clock advancement.
"""

import numpy as np
import pytest

from repro.core.lut import ModelInfoLUT
from repro.profiling.trace import TraceSet
from repro.schedulers.base import make_scheduler
from repro.sim.engine import simulate
from repro.sim.workload import WorkloadSpec, generate_workload


def _single_class_traces(rng, n_samples=400, layers=4, scale=0.01):
    sp = rng.uniform(0.3, 0.7, (n_samples, layers))
    lat = scale * (1.0 - sp) / layers + rng.uniform(0.3, 1.0, (n_samples, layers)) * (
        scale / layers
    )
    trace = TraceSet(
        model_name="m", pattern_key="dense", dataset="mg1",
        latencies=lat, sparsities=sp,
    )
    return {trace.key: trace}


@pytest.mark.parametrize("target_rho", [0.4, 0.7])
def test_fcfs_matches_pollaczek_khinchine(target_rho):
    rng = np.random.default_rng(0)
    traces = _single_class_traces(rng)
    trace = traces["m/dense"]
    service = trace.isolated_latencies
    mean_s = float(service.mean())
    rate = target_rho / mean_s

    spec = WorkloadSpec(arrival_rate=rate, n_requests=6000, slo_multiplier=50.0,
                        seed=7)
    requests = generate_workload(traces, spec)
    lut = ModelInfoLUT(traces)
    simulate(requests, make_scheduler("fcfs", lut))

    waits = np.array([r.first_dispatch_time - r.arrival for r in requests])
    measured = float(waits.mean())

    # Moments of the *sampled* service distribution actually used.
    samples = np.array([r.isolated_latency for r in requests])
    es2 = float((samples ** 2).mean())
    rho = rate * float(samples.mean())
    expected = rate * es2 / (2.0 * (1.0 - rho))

    assert measured == pytest.approx(expected, rel=0.15)


def test_low_load_has_negligible_waiting():
    rng = np.random.default_rng(1)
    traces = _single_class_traces(rng)
    mean_s = float(traces["m/dense"].isolated_latencies.mean())
    spec = WorkloadSpec(arrival_rate=0.05 / mean_s, n_requests=500,
                        slo_multiplier=50.0, seed=3)
    requests = generate_workload(traces, spec)
    simulate(requests, make_scheduler("fcfs", ModelInfoLUT(traces)))
    waits = np.array([r.first_dispatch_time - r.arrival for r in requests])
    # At rho = 0.05 waiting is a tiny fraction of service time.
    assert waits.mean() < 0.1 * mean_s


def test_utilization_matches_offered_load():
    rng = np.random.default_rng(2)
    traces = _single_class_traces(rng)
    mean_s = float(traces["m/dense"].isolated_latencies.mean())
    rate = 0.6 / mean_s
    spec = WorkloadSpec(arrival_rate=rate, n_requests=4000, slo_multiplier=50.0,
                        seed=5)
    requests = generate_workload(traces, spec)
    result = simulate(requests, make_scheduler("fcfs", ModelInfoLUT(traces)))
    busy = sum(r.isolated_latency for r in requests)
    assert busy / result.makespan == pytest.approx(0.6, abs=0.05)
