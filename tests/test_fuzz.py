"""Adversarial fuzzer tests: determinism, minimization, reproducer replay.

The contract under test: a fuzz run is a pure function of (config, seed) —
byte-identical result JSON for any worker count — and every reproducer it
emits replays to exactly the score it recorded.
"""

import json

import pytest

from repro.errors import FaultError, SchedulingError
from repro.scenarios.fuzz import (
    FuzzConfig,
    evaluate_named_scenario,
    fuzz,
    fuzz_to_json,
    replay,
)

#: Small-but-real search config shared across tests (one lru-cached
#: profiling pass per process).
QUICK = dict(budget=6, duration=4.0, n_profile_samples=30)


@pytest.fixture(scope="module")
def quick_doc():
    """One shared serial fuzz run (dysta, seed 0) with minimization."""
    return fuzz(FuzzConfig(scheduler="dysta", seed=0, **QUICK))


class TestConfigValidation:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SchedulingError, match="unknown scheduler"):
            FuzzConfig(scheduler="crystal_ball")

    def test_budget_must_be_positive(self):
        with pytest.raises(FaultError, match="budget"):
            FuzzConfig(scheduler="sjf", budget=0)

    def test_unknown_objective_rejected(self):
        with pytest.raises(FaultError, match="objective"):
            FuzzConfig(scheduler="sjf", objective="latency")

    def test_unknown_family_rejected(self):
        with pytest.raises(SchedulingError, match="family"):
            FuzzConfig(scheduler="sjf", family="rnn")

    def test_eval_dict_drops_search_only_knobs(self):
        cfg = FuzzConfig(scheduler="sjf", budget=9).eval_dict()
        assert "budget" not in cfg and "minimize" not in cfg
        assert cfg["workload_seed"] == FuzzConfig(
            scheduler="dysta", budget=2
        ).eval_dict()["workload_seed"]  # seed-derived, scheduler-free


class TestDeterminism:
    def test_worker_count_invariance(self):
        config = FuzzConfig(scheduler="sjf", seed=2, minimize=False, **QUICK)
        serial = fuzz_to_json(fuzz(config, workers=1))
        fanned = fuzz_to_json(fuzz(config, workers=2))
        assert serial == fanned

    def test_same_seed_same_bytes(self, quick_doc):
        again = fuzz(FuzzConfig(scheduler="dysta", seed=0, **QUICK))
        assert fuzz_to_json(again) == fuzz_to_json(quick_doc)

    def test_different_seed_different_search(self, quick_doc):
        other = fuzz(FuzzConfig(scheduler="dysta", seed=1, **QUICK))
        assert (fuzz_to_json(other) != fuzz_to_json(quick_doc))

    def test_document_is_json_canonical(self, quick_doc):
        text = fuzz_to_json(quick_doc)
        assert json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n" == text


class TestSearch:
    def test_budget_is_respected(self, quick_doc):
        assert quick_doc["search"]["evaluations"] == QUICK["budget"]

    def test_worst_beats_the_named_baselines(self, quick_doc):
        # Adversarial shapes + faults must at least match the curated
        # scenarios; with this seed they strictly dominate.
        worst = quick_doc["worst"]["score"]
        for entry in quick_doc["baselines"].values():
            assert worst > entry["score"]

    def test_baselines_match_standalone_evaluation(self, quick_doc):
        config = FuzzConfig(scheduler="dysta", seed=0, **QUICK)
        fresh = evaluate_named_scenario("steady", config)
        assert fresh == quick_doc["baselines"]["steady"]


class TestReproducers:
    def test_minimized_replays_to_recorded_score(self, quick_doc):
        minimized = quick_doc["minimized"]
        outcome = replay(minimized)
        assert outcome["score"] == minimized["score"]
        assert outcome == minimized["metrics"]

    def test_worst_replays_to_recorded_score(self, quick_doc):
        worst = quick_doc["worst"]
        assert replay(worst)["score"] == worst["score"]

    def test_minimized_never_scores_below_worst(self, quick_doc):
        # The greedy shrink only keeps changes that do not lower the score.
        assert (quick_doc["minimized"]["score"]
                >= quick_doc["worst"]["score"])

    def test_reproducer_survives_json_roundtrip(self, quick_doc):
        text = json.dumps(quick_doc["minimized"], sort_keys=True)
        outcome = replay(json.loads(text))
        assert outcome["score"] == quick_doc["minimized"]["score"]

    def test_replay_rejects_malformed_documents(self):
        with pytest.raises(FaultError, match="config"):
            replay({"genome": {"params": {}, "faults": []}})
        with pytest.raises(FaultError, match="genome"):
            replay({"config": {}})


class TestCliReplayErrors:
    """`repro fuzz --replay` must fail with `error: ...`, never a traceback."""

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["fuzz", "--replay", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_json_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "broken.json"
        path.write_text("not json")
        assert main(["fuzz", "--replay", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_document_without_reproducer_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "empty.json"
        path.write_text('{"hello": 1}')
        assert main(["fuzz", "--replay", str(path)]) == 1
        assert "no reproducer found" in capsys.readouterr().err
