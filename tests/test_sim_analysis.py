"""Unit tests for post-simulation analysis helpers."""

import pytest

from repro.errors import SchedulingError
from repro.sim.analysis import (
    jains_fairness,
    per_class_breakdown,
    turnaround_percentile,
    waiting_time_stats,
)

from conftest import make_request


def finished(rid, model="short", arrival=0.0, finish=0.003, dispatch=None, slo=1.0):
    req = make_request(rid=rid, model=model, arrival=arrival, slo=slo)
    req.finish_time = finish
    req.first_dispatch_time = dispatch if dispatch is not None else arrival
    return req


class TestPercentiles:
    def test_uniform_slowdown(self):
        reqs = [finished(i, finish=0.003) for i in range(10)]  # slowdown 1.0
        assert turnaround_percentile(reqs, 50) == pytest.approx(1.0)
        assert turnaround_percentile(reqs, 99) == pytest.approx(1.0)

    def test_tail_detected(self):
        reqs = [finished(i, finish=0.003) for i in range(99)]
        reqs.append(finished(99, finish=0.3))  # slowdown 100
        assert turnaround_percentile(reqs, 50) == pytest.approx(1.0)
        assert turnaround_percentile(reqs, 99.9) > 50

    def test_validation(self):
        reqs = [finished(0)]
        with pytest.raises(SchedulingError):
            turnaround_percentile(reqs, 0.0)
        with pytest.raises(SchedulingError):
            turnaround_percentile([], 99)
        unfinished = make_request(rid=1)
        with pytest.raises(SchedulingError):
            turnaround_percentile([unfinished], 99)


class TestFairness:
    def test_perfectly_fair(self):
        reqs = [finished(i, finish=0.006) for i in range(8)]
        assert jains_fairness(reqs) == pytest.approx(1.0)

    def test_starvation_lowers_index(self):
        fair = [finished(i, finish=0.006) for i in range(8)]
        unfair = [finished(i, finish=0.003) for i in range(7)]
        unfair.append(finished(7, finish=3.0))
        assert jains_fairness(unfair) < jains_fairness(fair)

    def test_lower_bound(self):
        # One dominant slowdown drives the index toward 1/N.
        reqs = [finished(0, finish=0.003), finished(1, finish=30.0)]
        assert 0.5 <= jains_fairness(reqs) <= 1.0


class TestBreakdown:
    def test_groups_by_key(self):
        # 'long' requests need long latencies to exist (traces are fixed at
        # construction, so build the request with them).
        long_req = make_request(rid=2, model="long", arrival=0.0, slo=1.0,
                                latencies=(0.01, 0.01, 0.01),
                                sparsities=(0.3, 0.3, 0.3))
        long_req.finish_time = 0.03
        long_req.first_dispatch_time = 0.0
        reqs = [
            finished(0, model="short", finish=0.003),
            finished(1, model="short", finish=0.006),
            long_req,
        ]
        out = per_class_breakdown(reqs)
        assert set(out) == {"short/dense", "long/dense"}
        assert out["short/dense"].count == 2
        assert out["long/dense"].antt == pytest.approx(1.0)

    def test_violation_rates_per_class(self):
        ok = finished(0, finish=0.003, slo=1.0)
        bad = finished(1, finish=5.0, slo=1.0)
        out = per_class_breakdown([ok, bad])
        assert out["short/dense"].violation_rate == pytest.approx(0.5)


class TestWaitingTime:
    def test_zero_wait(self):
        reqs = [finished(0, arrival=1.0, finish=1.003, dispatch=1.0)]
        stats = waiting_time_stats(reqs)
        assert stats["mean_wait"] == pytest.approx(0.0)

    def test_wait_measured(self):
        reqs = [
            finished(0, arrival=0.0, finish=1.0, dispatch=0.5),
            finished(1, arrival=0.0, finish=1.0, dispatch=0.1),
        ]
        stats = waiting_time_stats(reqs)
        assert stats["mean_wait"] == pytest.approx(0.3)
        assert stats["max_wait"] == pytest.approx(0.5)

    def test_missing_dispatch_rejected(self):
        req = finished(0)
        req.first_dispatch_time = None
        with pytest.raises(SchedulingError, match="dispatch"):
            waiting_time_stats([req])
