"""Tests for the parallel sweep runner and the `repro scenario` CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import SchedulingError
from repro.scenarios import (
    SweepConfig,
    aggregate,
    cell_key,
    run_sweep,
    workload_seed,
)

#: Tiny but non-degenerate grid: fast enough for CI, big enough to exercise
#: parallelism (more cells than workers).
TINY = dict(duration=3.0, n_profile_samples=10)


def tiny_config(**overrides):
    params = dict(
        scenarios=("diurnal", "flash_crowd"),
        schedulers=("dysta", "sjf"),
        seeds=(0, 1),
        **TINY,
    )
    params.update(overrides)
    return SweepConfig(**params)


class TestConfig:
    def test_empty_axes_rejected(self):
        with pytest.raises(SchedulingError):
            SweepConfig(scenarios=(), schedulers=("sjf",), seeds=(0,))
        with pytest.raises(SchedulingError):
            SweepConfig(scenarios=("steady",), schedulers=("sjf",), seeds=())

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SchedulingError, match="unknown scenarios"):
            SweepConfig(scenarios=("tsunami",), schedulers=("sjf",), seeds=(0,))

    def test_unknown_scheduler_rejected_before_any_worker_runs(self):
        with pytest.raises(SchedulingError, match="unknown schedulers"):
            SweepConfig(scenarios=("steady",), schedulers=("djysta",), seeds=(0,))

    def test_grid_order_is_deterministic(self):
        config = tiny_config()
        assert config.cells() == config.cells()
        assert len(config.cells()) == 8

    def test_workload_seed_is_stable_and_scheduler_free(self):
        # Stable across processes (no hash() salting) and shared by every
        # scheduler in a cell row, so policies compare on identical streams.
        assert workload_seed("diurnal", 0) == workload_seed("diurnal", 0)
        assert workload_seed("diurnal", 0) != workload_seed("flash_crowd", 0)
        assert workload_seed("diurnal", 0) != workload_seed("diurnal", 1)


class TestSweep:
    def test_results_identical_across_worker_counts(self, tmp_path):
        config = tiny_config()
        run_sweep(config, out_path=tmp_path / "w1.json", workers=1)
        run_sweep(config, out_path=tmp_path / "w3.json", workers=3)
        assert ((tmp_path / "w1.json").read_bytes()
                == (tmp_path / "w3.json").read_bytes())

    def test_resume_skips_completed_cells(self, tmp_path):
        config = tiny_config()
        path = tmp_path / "store.json"
        first = run_sweep(config, out_path=path, workers=1)
        assert first.n_run == 8 and first.n_skipped == 0
        before = path.read_bytes()
        again = run_sweep(config, out_path=path, workers=2)
        assert again.n_run == 0 and again.n_skipped == 8
        assert path.read_bytes() == before

    def test_grid_can_grow_incrementally(self, tmp_path):
        path = tmp_path / "store.json"
        run_sweep(tiny_config(), out_path=path, workers=1)
        grown = run_sweep(tiny_config(schedulers=("dysta", "sjf", "fcfs")),
                          out_path=path, workers=1)
        assert grown.n_skipped == 8 and grown.n_run == 4
        store = json.loads(path.read_text())
        assert len(store["cells"]) == 12

    def test_workload_change_rejected_unless_forced(self, tmp_path):
        path = tmp_path / "store.json"
        run_sweep(tiny_config(), out_path=path, workers=1)
        changed = tiny_config(duration=4.0)
        with pytest.raises(SchedulingError, match="different workload"):
            run_sweep(changed, out_path=path, workers=1)
        forced = run_sweep(changed, out_path=path, workers=1, force=True)
        assert forced.n_run == 8 and forced.n_skipped == 0

    def test_cells_hold_the_metrics(self, tmp_path):
        result = run_sweep(tiny_config(), workers=1)
        cell = result.cells[cell_key("diurnal", "dysta", 0)]
        for key in ("antt", "violation_rate", "stp", "p50", "p95", "p99"):
            assert isinstance(cell[key], float)
        assert cell["n_requests"] > 0
        assert cell["workload_seed"] == workload_seed("diurnal", 0)

    def test_schedulers_see_identical_streams(self, tmp_path):
        result = run_sweep(tiny_config(), workers=1)
        a = result.cells[cell_key("diurnal", "dysta", 0)]
        b = result.cells[cell_key("diurnal", "sjf", 0)]
        assert a["n_requests"] == b["n_requests"]
        assert a["workload_seed"] == b["workload_seed"]

    def test_aggregate_means_across_seeds(self):
        result = run_sweep(tiny_config(), workers=1)
        table = aggregate(result.store)
        assert set(table) == {
            (scenario, scheduler)
            for scenario in ("diurnal", "flash_crowd")
            for scheduler in ("dysta", "sjf")
        }
        cells = result.cells
        expected = (cells[cell_key("diurnal", "sjf", 0)]["antt"]
                    + cells[cell_key("diurnal", "sjf", 1)]["antt"]) / 2.0
        assert table[("diurnal", "sjf")]["antt"] == pytest.approx(expected)

    def test_corrupt_store_rejected(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        with pytest.raises(SchedulingError, match="corrupt"):
            run_sweep(tiny_config(), out_path=path, workers=1)
        path.write_text("null")  # valid JSON, but not a store object
        with pytest.raises(SchedulingError, match="corrupt"):
            run_sweep(tiny_config(), out_path=path, workers=1)

    def test_explicit_default_rate_resumes_default_store(self, tmp_path):
        # base_rate is stored resolved: None and the explicit family
        # default describe the same workload and share one store.
        path = tmp_path / "store.json"
        small = dict(scenarios=("steady",), schedulers=("sjf",), seeds=(0,))
        run_sweep(tiny_config(**small), out_path=path, workers=1)
        explicit = tiny_config(base_rate=tiny_config().rate, **small)
        resumed = run_sweep(explicit, out_path=path, workers=1)
        assert resumed.n_run == 0 and resumed.n_skipped == 1

    def test_bad_workload_params_fail_fast(self):
        with pytest.raises(SchedulingError, match="base rate"):
            tiny_config(base_rate=-5.0)
        with pytest.raises(SchedulingError, match="samples"):
            tiny_config(n_profile_samples=0)

    def test_cluster_engine_rejects_bad_config(self):
        with pytest.raises(SchedulingError, match="engine"):
            tiny_config(engine="quantum")
        with pytest.raises(SchedulingError, match="engine='cluster'"):
            tiny_config(autoscale="reactive")
        with pytest.raises(SchedulingError, match="unknown autoscale"):
            tiny_config(engine="cluster", autoscale="psychic")
        with pytest.raises(SchedulingError, match="pool size"):
            tiny_config(engine="cluster", pool_size=0)

    def test_cluster_cells_hold_cost_metrics(self):
        config = tiny_config(scenarios=("flash_crowd",), seeds=(0,),
                             engine="cluster", pool_size=1,
                             autoscale="reactive", max_queue_depth=8)
        result = run_sweep(config, workers=1)
        cell = result.cells[cell_key("flash_crowd", "dysta", 0)]
        for key in ("acc_seconds_provisioned", "acc_seconds_used",
                    "provisioned_utilization", "num_scale_events",
                    "shed_under_scale_lag", "shed_rate", "antt", "p99"):
            assert isinstance(cell[key], float), key
        assert cell["acc_seconds_provisioned"] >= cell["acc_seconds_used"] > 0
        assert cell["num_shed"] >= 0

    def test_cluster_cells_identical_across_worker_counts(self, tmp_path):
        config = tiny_config(engine="cluster", pool_size=1,
                             autoscale="predictive", max_queue_depth=8)
        run_sweep(config, out_path=tmp_path / "w1.json", workers=1)
        run_sweep(config, out_path=tmp_path / "w3.json", workers=3)
        assert ((tmp_path / "w1.json").read_bytes()
                == (tmp_path / "w3.json").read_bytes())

    def test_cluster_store_never_resumes_single_engine_store(self, tmp_path):
        path = tmp_path / "store.json"
        run_sweep(tiny_config(), out_path=path, workers=1)
        with pytest.raises(SchedulingError, match="different workload"):
            run_sweep(tiny_config(engine="cluster"), out_path=path, workers=1)

    def test_progress_callback(self, tmp_path):
        seen = []
        run_sweep(tiny_config(scenarios=("steady",), seeds=(0,)), workers=1,
                  progress=lambda key, done, total: seen.append((key, done, total)))
        assert seen == [("steady/dysta/seed0", 1, 2), ("steady/sjf/seed0", 2, 2)]


class TestScenarioCLI:
    def test_list_scenarios(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        assert "diurnal" in out and "flash_crowd" in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--scenarios", "tsunami"])

    def test_sweep_runs_and_resumes(self, tmp_path, capsys):
        argv = ["scenario", "--scenarios", "diurnal", "--schedulers", "sjf",
                "fcfs", "--seeds", "0", "--duration", "3", "--samples", "10",
                "--workers", "2", "--out", str(tmp_path / "out.json")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cells (2 run, 0 skipped)" in out
        assert "diurnal/sjf" in out and "wrote" in out
        store = json.loads((tmp_path / "out.json").read_text())
        assert len(store["cells"]) == 2

        assert main(argv) == 0
        assert "(0 run, 2 skipped)" in capsys.readouterr().out
