"""Unit + property tests for the multi-accelerator engine and the engine's
model-switch cost."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulingError
from repro.schedulers.base import make_scheduler
from repro.sim.engine import simulate
from repro.sim.multi import simulate_multi

from conftest import make_request
from test_property_engine import build_world


def short(rid, arrival, slo=10.0):
    return make_request(rid=rid, model="short", arrival=arrival, slo=slo,
                        latencies=(0.001, 0.002), sparsities=(0.5, 0.5))


def long(rid, arrival, slo=10.0):
    return make_request(rid=rid, model="long", arrival=arrival, slo=slo,
                        latencies=(0.01, 0.01, 0.01), sparsities=(0.3, 0.3, 0.3))


class TestSwitchCost:
    def test_negative_rejected(self, toy_lut):
        with pytest.raises(SchedulingError):
            simulate([short(0, 0.0)], make_scheduler("fcfs", toy_lut), switch_cost=-1.0)

    def test_single_request_pays_one_switch(self, toy_lut):
        req = short(0, arrival=0.0)
        result = simulate([req], make_scheduler("fcfs", toy_lut), switch_cost=0.5)
        assert req.finish_time == pytest.approx(0.5 + req.isolated_latency)
        assert result.makespan == pytest.approx(req.finish_time)

    def test_fcfs_pays_one_switch_per_request(self, toy_lut):
        reqs = [short(0, 0.0), short(1, 0.0), short(2, 0.0)]
        simulate(reqs, make_scheduler("fcfs", toy_lut), switch_cost=0.1)
        total_work = sum(r.isolated_latency for r in reqs)
        last = max(r.finish_time for r in reqs)
        assert last == pytest.approx(total_work + 3 * 0.1)

    def test_zero_cost_matches_default(self, toy_lut):
        a = [long(0, 0.0), short(1, 0.005)]
        b = [long(0, 0.0), short(1, 0.005)]
        ra = simulate(a, make_scheduler("sjf", toy_lut))
        rb = simulate(b, make_scheduler("sjf", toy_lut), switch_cost=0.0)
        assert [r.finish_time for r in ra.requests] == [
            r.finish_time for r in rb.requests
        ]

    def test_preemptive_policy_pays_more_under_switch_cost(self, toy_lut):
        # LAS-style thrashing is penalized; FCFS barely notices.
        from repro.schedulers.base import Scheduler

        class Thrash(Scheduler):
            name = "thrash"

            def select(self, queue, now):
                return min(queue, key=lambda r: (r.executed_time, r.rid))

        def makespan(factory, cost):
            reqs = [long(0, 0.0), long(1, 0.0), long(2, 0.0)]
            return simulate(reqs, factory, switch_cost=cost).makespan

        thrash_overhead = makespan(Thrash(toy_lut), 0.01) - makespan(Thrash(toy_lut), 0.0)
        fcfs_overhead = makespan(
            make_scheduler("fcfs", toy_lut), 0.01
        ) - makespan(make_scheduler("fcfs", toy_lut), 0.0)
        assert thrash_overhead > 2 * fcfs_overhead


class TestMultiAccelerator:
    def test_validation(self, toy_lut):
        with pytest.raises(SchedulingError):
            simulate_multi([], make_scheduler("fcfs", toy_lut))
        with pytest.raises(SchedulingError):
            simulate_multi([short(0, 0.0)], make_scheduler("fcfs", toy_lut),
                           num_accelerators=0)

    def test_two_npus_run_independent_requests_in_parallel(self, toy_lut):
        a, b = long(0, 0.0), long(1, 0.0)
        result = simulate_multi([a, b], make_scheduler("fcfs", toy_lut),
                                num_accelerators=2)
        # Perfect parallelism: both finish at their isolated latency.
        assert a.finish_time == pytest.approx(a.isolated_latency)
        assert b.finish_time == pytest.approx(b.isolated_latency)
        assert result.makespan == pytest.approx(0.03)

    def test_idle_npu_wakes_on_arrival(self, toy_lut):
        # NPU0 busy with a long layer; a new request arriving mid-layer must
        # start immediately on the idle NPU1.
        a = long(0, 0.0)
        b = short(1, 0.002)
        simulate_multi([a, b], make_scheduler("fcfs", toy_lut), num_accelerators=2)
        assert b.first_dispatch_time == pytest.approx(0.002)

    def test_pool_speedup_under_load(self, toy_lut):
        def run(k):
            reqs = [long(i, 0.0) for i in range(6)]
            return simulate_multi(reqs, make_scheduler("sjf", toy_lut),
                                  num_accelerators=k)

        assert run(3).makespan < run(1).makespan / 2.5

    @pytest.mark.parametrize("scheduler_name", ["fcfs", "sjf", "planaria", "dysta"])
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=8, deadline=None)
    def test_single_npu_pool_matches_engine(self, scheduler_name, seed):
        lut, requests_a = build_world(seed, n_models=2, n_requests=10)
        _, requests_b = build_world(seed, n_models=2, n_requests=10)
        single = simulate(requests_a, make_scheduler(scheduler_name, lut))
        pooled = simulate_multi(
            requests_b, make_scheduler(scheduler_name, lut), num_accelerators=1
        )
        assert [r.finish_time for r in single.requests] == pytest.approx(
            [r.finish_time for r in pooled.requests]
        )
        assert single.metrics["antt"] == pytest.approx(pooled.metrics["antt"])

    def test_knob_validation(self, toy_lut):
        with pytest.raises(SchedulingError):
            simulate_multi([short(0, 0.0)], make_scheduler("fcfs", toy_lut),
                           switch_cost=-1.0)
        with pytest.raises(SchedulingError):
            simulate_multi([short(0, 0.0)], make_scheduler("fcfs", toy_lut),
                           block_size=0)

    @pytest.mark.parametrize("scheduler_name", ["fcfs", "sjf", "dysta"])
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=6, deadline=None)
    def test_single_npu_pool_matches_engine_with_knobs(self, scheduler_name, seed):
        """Feature parity: switch_cost + block_size behave exactly as in the
        single-NPU engine when the pool has one accelerator."""
        lut, requests_a = build_world(seed, n_models=2, n_requests=10)
        _, requests_b = build_world(seed, n_models=2, n_requests=10)
        single = simulate(requests_a, make_scheduler(scheduler_name, lut),
                          switch_cost=0.003, block_size=2)
        pooled = simulate_multi(
            requests_b, make_scheduler(scheduler_name, lut),
            num_accelerators=1, switch_cost=0.003, block_size=2,
        )
        assert [r.rid for r in single.requests] == [r.rid for r in pooled.requests]
        assert [r.finish_time for r in single.requests] == pytest.approx(
            [r.finish_time for r in pooled.requests]
        )
        assert single.num_preemptions == pooled.num_preemptions
        assert single.num_scheduler_invocations == pooled.num_scheduler_invocations

    def test_each_npu_tracks_resident_weights(self, toy_lut):
        # Two independent requests on two NPUs: one switch each, so both
        # finish at isolated latency + one reload; a shared-resident model
        # would charge one of them twice.
        a, b = long(0, 0.0), long(1, 0.0)
        simulate_multi([a, b], make_scheduler("fcfs", toy_lut),
                       num_accelerators=2, switch_cost=0.5)
        assert a.finish_time == pytest.approx(0.5 + a.isolated_latency)
        assert b.finish_time == pytest.approx(0.5 + b.isolated_latency)

    def test_block_size_reduces_invocations(self, toy_lut):
        def run(block):
            reqs = [long(i, 0.0) for i in range(4)]
            return simulate_multi(reqs, make_scheduler("fcfs", toy_lut),
                                  num_accelerators=2, block_size=block)

        per_layer = run(1)
        per_model = run(3)
        assert per_model.num_scheduler_invocations < per_layer.num_scheduler_invocations
        assert per_model.makespan == pytest.approx(per_layer.makespan)

    @given(
        seed=st.integers(min_value=0, max_value=5000),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=10, deadline=None)
    def test_pool_invariants(self, seed, k):
        lut, requests = build_world(seed, n_models=3, n_requests=12)
        result = simulate_multi(requests, make_scheduler("dysta", lut),
                                num_accelerators=k)
        assert len(result.requests) == len(requests)
        for req in requests:
            assert req.is_done
            assert req.finish_time >= req.arrival + req.isolated_latency - 1e-9
            assert req.executed_time == pytest.approx(req.isolated_latency)
        # k accelerators can do at most k units of work per unit time.
        total_work = sum(r.isolated_latency for r in requests)
        span = result.makespan - min(r.arrival for r in requests)
        assert span * k >= total_work - 1e-9
