"""Unit tests for the Dysta bi-level scheduler (Algorithms 1 & 2)."""

import pytest

from repro.core.dysta import DystaScheduler
from repro.core.predictor import PredictorStrategy

from conftest import make_request


def long_req(rid=1, arrival=0.0, **kw):
    return make_request(rid=rid, model="long", arrival=arrival,
                        latencies=(0.01, 0.01, 0.01), sparsities=(0.3, 0.3, 0.3), **kw)


def short_req(rid=2, arrival=0.0, **kw):
    return make_request(rid=rid, model="short", arrival=arrival,
                        latencies=(0.001, 0.002), sparsities=(0.5, 0.5), **kw)


class TestStaticLevel:
    def test_static_score_formula(self, toy_lut):
        sched = DystaScheduler(toy_lut, beta=0.5)
        req = long_req(slo=1.0)
        lat = toy_lut.avg_total_latency("long/dense")
        expected = lat + 0.5 * (1.0 - lat)
        assert sched.static_score(req, now=0.0) == pytest.approx(expected)

    def test_beta_zero_reduces_to_latency(self, toy_lut):
        sched = DystaScheduler(toy_lut, beta=0.0)
        req = long_req(slo=1.0)
        assert sched.static_score(req, 0.0) == pytest.approx(
            toy_lut.avg_total_latency("long/dense")
        )


class TestDynamicLevel:
    def test_prefers_short_job_when_slack_ample(self, toy_lut):
        sched = DystaScheduler(toy_lut, eta=0.1)
        a, b = long_req(rid=1, slo=10.0), short_req(rid=2, slo=10.0)
        assert sched.select([a, b], now=0.0) is b

    def test_slack_term_rescues_tight_deadline(self, toy_lut):
        sched = DystaScheduler(toy_lut, eta=0.5)
        # Long job about to violate; short job has a week of slack.
        tight = long_req(rid=1, slo=0.032)
        loose = short_req(rid=2, slo=100.0)
        assert sched.select([tight, loose], now=0.0) is tight

    def test_penalty_favours_currently_running(self, toy_lut):
        sched = DystaScheduler(toy_lut, eta=0.5)
        running = long_req(rid=1, slo=1.0)
        waiting = long_req(rid=2, slo=1.0)
        now = 0.5
        running.last_run_end = now  # just ran a layer
        waiting.last_run_end = 0.0  # has been waiting
        s_run = sched.dynamic_score(running, now, queue_len=2)
        s_wait = sched.dynamic_score(waiting, now, queue_len=2)
        assert s_run < s_wait

    def test_slack_clamped_for_hopeless_jobs(self, toy_lut):
        # Without clamping, an expired deadline makes the slack (and hence
        # the score) diverge to -inf over time, letting a hopeless long job
        # monopolize the accelerator.  With the clamp the slack contribution
        # bottoms out at -isolated while the waiting penalty keeps growing.
        sched = DystaScheduler(toy_lut, eta=0.5)
        hopeless = long_req(rid=1, slo=0.001)
        hopeless.last_run_end = 0.0
        score_now = sched.dynamic_score(hopeless, now=1.0, queue_len=1)
        score_much_later = sched.dynamic_score(hopeless, now=100.0, queue_len=1)
        assert score_much_later >= score_now
        # The slack component itself is bounded below by -isolated.
        isolated = sched.estimated_isolated(hopeless)
        remaining = sched.remaining_estimate(hopeless)
        slack = max(hopeless.deadline - 1.0 - remaining, -isolated)
        assert slack == pytest.approx(-isolated)

    def test_sparsity_refines_remaining_estimate(self, toy_lut):
        sched = DystaScheduler(toy_lut, sparsity_aware=True,
                               strategy=PredictorStrategy.LAST_ONE)
        req = long_req(rid=1)
        base = sched.remaining_estimate(req)
        assert base == pytest.approx(toy_lut.static_remaining("long/dense", 0))
        # A much-denser-than-average first layer grows the estimate once
        # that layer has executed (traces are fixed at construction).
        dense = make_request(rid=2, model="long", arrival=0.0,
                             latencies=(0.01, 0.01, 0.01),
                             sparsities=(0.02, 0.3, 0.3))
        dense.next_layer = 1
        refined = sched.remaining_estimate(dense)
        assert refined > toy_lut.static_remaining("long/dense", 1)

    def test_nosparse_ignores_monitored_sparsity(self, toy_lut):
        sched = DystaScheduler(toy_lut, sparsity_aware=False)
        assert sched.predictor is None
        req = long_req(rid=1)
        req.next_layer = 1
        req.layer_sparsities[0] = 0.02
        assert sched.remaining_estimate(req) == pytest.approx(
            toy_lut.static_remaining("long/dense", 1)
        )

    def test_sparse_and_nosparse_agree_on_unstarted_requests(self, toy_lut):
        sparse = DystaScheduler(toy_lut, sparsity_aware=True)
        plain = DystaScheduler(toy_lut, sparsity_aware=False)
        req = long_req(rid=1, slo=1.0)
        assert sparse.dynamic_score(req, 0.0, 1) == pytest.approx(
            plain.dynamic_score(req, 0.0, 1)
        )

    def test_penalty_normalized_by_queue_length(self, toy_lut):
        sched = DystaScheduler(toy_lut, eta=1.0)
        req = long_req(rid=1, slo=1.0)
        req.last_run_end = 0.0
        s_small_q = sched.dynamic_score(req, now=0.5, queue_len=1)
        s_big_q = sched.dynamic_score(req, now=0.5, queue_len=10)
        assert s_small_q > s_big_q
